//! Daily operations: a self-tuning VMT deployment over a week.
//!
//! An operator does not know the optimal grouping value on day one, and
//! the workload mix drifts. This example runs the [`AdaptiveGv`]
//! controller — VMT-WA plus the paper's §V-C "change the GV each day"
//! idea — over a seven-day trace with day-to-day load variation,
//! starting from a deliberately bad guess, and prints its decision log.
//!
//! ```text
//! cargo run --release --example daily_operations
//! ```
//!
//! [`AdaptiveGv`]: vmt::core::AdaptiveGv

use vmt::core::{AdaptiveGv, GroupingValue, PolicyKind, VmtConfig};
use vmt::dcsim::{ClusterConfig, Scheduler, Simulation};
use vmt::units::{Hours, Seconds};
use vmt::workload::{DiurnalTrace, Job, TraceConfig};

/// Wraps the controller so its decision history survives the run (the
/// simulation consumes its scheduler).
#[derive(Debug)]
struct LoggingAdaptive {
    inner: AdaptiveGv,
    log: std::sync::Arc<std::sync::Mutex<Vec<(i64, f64)>>>,
}

// Example-only wrapper; never checkpointed.
impl vmt::dcsim::SnapshotState for LoggingAdaptive {}

impl Scheduler for LoggingAdaptive {
    fn name(&self) -> &str {
        self.inner.name()
    }
    fn on_tick(&mut self, farm: &vmt::dcsim::ServerFarm, now: Seconds) {
        self.inner.on_tick(farm, now);
        *self.log.lock().expect("log lock") = self.inner.history().to_vec();
    }
    fn place(&mut self, job: &Job, farm: &vmt::dcsim::ServerFarm) -> Option<vmt::dcsim::ServerId> {
        self.inner.place(job, farm)
    }
    fn hot_group_size(&self) -> Option<usize> {
        self.inner.hot_group_size()
    }
}

fn main() {
    let cluster = ClusterConfig::paper_default(100);
    let mut trace_cfg = TraceConfig::paper_default();
    trace_cfg.horizon = Hours::new(7.0 * 24.0);
    trace_cfg.day_scale = vec![1.0, 0.98, 1.01, 0.99, 1.0, 0.97, 1.0];
    let trace = DiurnalTrace::new(trace_cfg);

    let baseline = Simulation::new(
        cluster.clone(),
        trace.clone(),
        PolicyKind::RoundRobin.build(&cluster),
    )
    .run();

    // The operator guessed low: GV=20 (hot group too small and hot).
    let log = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
    let controller = LoggingAdaptive {
        inner: AdaptiveGv::new(
            VmtConfig::new(GroupingValue::new(20.0), &cluster),
            (14.0, 30.0),
        ),
        log: log.clone(),
    };
    let adaptive = Simulation::new(cluster.clone(), trace.clone(), Box::new(controller)).run();

    let fixed_bad = Simulation::new(
        cluster.clone(),
        trace.clone(),
        PolicyKind::vmt_wa(20.0).build(&cluster),
    )
    .run();
    let fixed_good = Simulation::new(
        cluster.clone(),
        trace,
        PolicyKind::vmt_wa(22.0).build(&cluster),
    )
    .run();

    println!("controller decision log (day, GV):");
    for (day, gv) in log.lock().expect("log lock").iter() {
        println!("  day {day}: GV = {gv}");
    }
    println!("\nweek-long peak cooling-load reduction vs round robin:");
    for (label, r) in [
        ("fixed GV=20 (the bad guess)", &fixed_bad),
        ("adaptive from GV=20", &adaptive),
        ("fixed GV=22 (oracle tuning)", &fixed_good),
    ] {
        println!(
            "  {:28} {:5.1}%",
            label,
            r.compare_peak(&baseline).reduction_percent()
        );
    }
    // Day-by-day reductions show the trajectory the weekly peak hides.
    println!("\nper-day peak reduction vs round robin:");
    println!("  day    fixed GV=20    adaptive");
    let day_peak = |r: &vmt::dcsim::SimulationResult, day: usize| -> f64 {
        let from = day * 24 * 60;
        let to = from + 24 * 60;
        r.cooling.samples()[from..to]
            .iter()
            .map(|w| w.get())
            .fold(0.0, f64::max)
    };
    for day in 0..7 {
        let base = day_peak(&baseline, day);
        println!(
            "  {:3}    {:10.1}%    {:7.1}%",
            day,
            (1.0 - day_peak(&fixed_bad, day) / base) * 100.0,
            (1.0 - day_peak(&adaptive, day) / base) * 100.0,
        );
    }
    println!(
        "\nthe controller walks toward the optimum within a few days; its weekly\n\
         peak is set by the early mis-tuned days, so tune early or seed from a\n\
         neighbor cluster's GV."
    );
}
