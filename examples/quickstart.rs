//! Quickstart: simulate a PCM-equipped cluster under VMT and measure the
//! peak cooling-load reduction.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use vmt::core::PolicyKind;
use vmt::dcsim::{ClusterConfig, Simulation};
use vmt::workload::{DiurnalTrace, TraceConfig};

fn main() {
    // A 100-server cluster with the paper's configuration: 32-core
    // 100/500 W servers, each carrying 4.0 L of 35.7 °C paraffin wax.
    let cluster = ClusterConfig::paper_default(100);
    let trace = DiurnalTrace::new(TraceConfig::paper_default());

    println!("simulating two days of a 100-server cluster, three policies…\n");

    let mut results = Vec::new();
    for policy in [
        PolicyKind::RoundRobin,
        PolicyKind::CoolestFirst,
        PolicyKind::VmtTa { gv: 22.0 },
        PolicyKind::vmt_wa(22.0),
    ] {
        let sim = Simulation::new(cluster.clone(), trace.clone(), policy.build(&cluster));
        let result = sim.run();
        println!(
            "{:14}  peak cooling {:6.1} kW   wax melted {:5.1}%   stored {:5.1} MJ",
            result.scheduler_name,
            result.peak_cooling().get() / 1e3,
            result.max_melt_fraction() * 100.0,
            result.max_stored_energy().to_megajoules(),
        );
        results.push(result);
    }

    let baseline = &results[0];
    println!();
    for result in &results[1..] {
        let cmp = result.compare_peak(baseline);
        println!(
            "{:14}  peak cooling load reduction vs round robin: {:.1}%",
            result.scheduler_name,
            cmp.reduction_percent()
        );
    }
    println!(
        "\nThe baselines cannot melt wax (the cluster average stays below the\n\
         35.7 °C melt line); VMT concentrates hot jobs to push a subset of\n\
         servers past it, storing heat at the peak — the paper's headline\n\
         ≈12.8% reduction at GV=22."
    );
}
