//! Wax selection: which workload mixes does a PCM deployment help, and
//! when is VMT required?
//!
//! Sweeps pairwise workload mixes (the paper's Figure 1) to show where
//! passive TTS already works, where only VMT extracts value from the
//! wax, and where no placement policy can melt it — then prices the
//! alternatives.
//!
//! ```text
//! cargo run --release --example wax_selection
//! ```

use vmt::experiments::fig1::{fig1, Region};
use vmt::pcm::PcmMaterial;
use vmt::units::Celsius;
use vmt::workload::{ThermalClassifier, WorkloadKind};

fn main() {
    // 1. Classify the catalog: which workloads can melt wax on their own?
    let classifier = ThermalClassifier::paper_default();
    println!("workload thermal classes (filled-server steady temperature):");
    for kind in WorkloadKind::ALL {
        println!(
            "  {:14} {:5.1}  → {}",
            kind.name(),
            classifier.filled_server_temperature(kind),
            kind.vmt_class()
        );
    }
    println!(
        "  (wax melts at 35.7 °C; hot-class threshold ≈ {:.2}/core)\n",
        classifier.hot_core_power_threshold()
    );

    // 2. Figure 1: region maps over pairwise mixes.
    println!("mix region maps (ratio of the first-named workload):");
    for panel in fig1() {
        let band = |region: Region| -> String {
            let ratios: Vec<f64> = panel
                .points
                .iter()
                .filter(|p| p.region == region)
                .map(|p| p.work_ratio_percent)
                .collect();
            match (ratios.first(), ratios.last()) {
                (Some(lo), Some(hi)) => format!("{lo:.0}–{hi:.0}%"),
                _ => "—".to_owned(),
            }
        };
        println!(
            "  {:12}-{:14} TTS works: {:9}  needs VMT: {:9}  neither: {:9}",
            panel.pair.0.name(),
            panel.pair.1.name(),
            band(Region::VmtTts),
            band(Region::NeedsVmt),
            band(Region::Neither),
        );
    }

    // 3. The procurement angle: the commercial floor is 35.7 °C; below
    //    that, the physical options get expensive fast — VMT is a
    //    placement-policy substitute for an exotic material.
    println!("\nmaterial options for lowering the effective melting temperature:");
    for target in [35.7, 33.7, 31.7, 29.7] {
        let material = PcmMaterial::commercial_paraffin(Celsius::new(target))
            .or_else(|_| PcmMaterial::n_paraffin(Celsius::new(target)))
            .expect("within n-paraffin range");
        println!(
            "  melt {:4.1} °C: {:22} at {:>7}/ton",
            target,
            material.class().to_string(),
            format!("${:.0}", material.cost_per_ton().get()),
        );
    }
    println!("  …or keep the $1,000/ton wax and lower the melting point *virtually* with VMT.");
}
