//! Capacity planning: translate a measured peak cooling-load reduction
//! into datacenter-level decisions.
//!
//! Walks the paper's §V-E analysis: a planner measures VMT's reduction on
//! one cluster, then asks what it buys for a 25 MW datacenter — a smaller
//! cooling system, or more servers under the existing one — and what the
//! wax itself costs.
//!
//! ```text
//! cargo run --release --example capacity_planning
//! ```

use vmt::core::PolicyKind;
use vmt::dcsim::{ClusterConfig, Simulation};
use vmt::pcm::{PcmMaterial, ServerWaxConfig};
use vmt::tco::{CoolingCostModel, OversubscriptionPlan, WaxDeployment};
use vmt::units::{Celsius, Kilowatts, Watts};
use vmt::workload::{DiurnalTrace, TraceConfig};

fn main() {
    // 1. Measure the reduction on a representative cluster.
    let cluster = ClusterConfig::paper_default(100);
    let trace = DiurnalTrace::new(TraceConfig::paper_default());
    let baseline = Simulation::new(
        cluster.clone(),
        trace.clone(),
        PolicyKind::RoundRobin.build(&cluster),
    )
    .run();
    let vmt = Simulation::new(
        cluster.clone(),
        trace,
        PolicyKind::VmtTa { gv: 22.0 }.build(&cluster),
    )
    .run();
    let reduction = vmt.compare_peak(&baseline).reduction();
    println!(
        "measured peak cooling-load reduction: {:.1}%\n",
        reduction * 100.0
    );

    // 2. Scale to the paper's 25 MW datacenter of 500 W servers.
    let plan = OversubscriptionPlan::new(Kilowatts::new(25_000.0), Watts::new(500.0), reduction);
    let costs = CoolingCostModel::paper_default();
    println!("option A — install a smaller cooling system:");
    println!(
        "  {:.1} MW less cooling capacity → {} saved over the system's 10-year life",
        plan.cooling_capacity_saved().get() / 1e3,
        plan.cooling_savings(&costs).display_rounded()
    );
    println!("option B — add servers under the existing cooling system:");
    println!(
        "  +{:.1}% servers → {} more servers datacenter-wide ({} per 1,000-server cluster)\n",
        plan.additional_server_fraction() * 100.0,
        plan.additional_servers(),
        plan.additional_servers_per_cluster(1000)
    );

    // 3. What the wax costs — and why the *virtual* melting temperature
    //    matters: physically lowering the melt point needs n-paraffin.
    let servers = plan.baseline_servers();
    let commercial = WaxDeployment::new(
        PcmMaterial::deployed_paraffin(),
        ServerWaxConfig::default(),
        servers,
    );
    let pure = WaxDeployment::new(
        PcmMaterial::n_paraffin(Celsius::new(29.7)).expect("valid melt point"),
        ServerWaxConfig::default(),
        servers,
    );
    println!(
        "wax bill of materials ({} t total):\n  commercial paraffin (35.7 °C): {}\n  \
         n-paraffin (29.7 °C, the physical alternative to VMT): {}",
        commercial.total_mass().to_tons().round(),
        commercial.total_cost().display_rounded(),
        pure.total_cost().display_rounded()
    );
}
