//! Mis-tuned grouping values: why an operator would deploy VMT-WA
//! rather than VMT-TA.
//!
//! VMT-TA's grouping value must be chosen in advance, and the paper's
//! §V-C warns that guessing *low* is dangerous: the hot group comes out
//! small and hot, its wax melts out before the load peak, and the
//! benefit evaporates. VMT-WA watches the reported wax state and
//! extends the hot group when it saturates, so the same mis-tuning
//! degrades gracefully. This example runs both algorithms at the
//! operator's intended GV=22 and at a mis-tuned GV=20.
//!
//! ```text
//! cargo run --release --example load_spike_resilience
//! ```

use vmt::core::PolicyKind;
use vmt::dcsim::{ClusterConfig, Simulation};
use vmt::units::Hours;
use vmt::workload::{DiurnalTrace, TraceConfig};

fn main() {
    let cluster = ClusterConfig::paper_default(100);
    let trace = DiurnalTrace::new(TraceConfig::paper_default());

    let baseline = Simulation::new(
        cluster.clone(),
        trace.clone(),
        PolicyKind::RoundRobin.build(&cluster),
    )
    .run();
    println!(
        "round-robin peak cooling load: {:.1} kW\n",
        baseline.peak_cooling().get() / 1e3
    );

    for (label, gv) in [("well-tuned  (GV=22)", 22.0), ("mis-tuned   (GV=20)", 20.0)] {
        println!("{label}:");
        for policy in [PolicyKind::VmtTa { gv }, PolicyKind::vmt_wa(gv)] {
            let result =
                Simulation::new(cluster.clone(), trace.clone(), policy.build(&cluster)).run();
            let cmp = result.compare_peak(&baseline);
            let base_size = result.hot_group_sizes.first().copied().unwrap_or(0);
            let max_size = result.hot_group_sizes.iter().copied().max().unwrap_or(0);
            println!(
                "  {:8}  reduction {:5.1}%   hot group {:3} → {:3} servers",
                result.scheduler_name,
                cmp.reduction_percent(),
                base_size,
                max_size,
            );
        }
        println!();
    }

    // The wax timeline at the mis-tuned GV under VMT-WA: the small hot
    // group saturates during the peak, the group extends, and the added
    // servers keep storing heat.
    let wa = Simulation::new(
        cluster.clone(),
        trace,
        PolicyKind::vmt_wa(20.0).build(&cluster),
    )
    .run();
    println!("mis-tuned GV=20, VMT-WA timeline (day one peak):");
    for half_hour in 34..46 {
        let t = Hours::new(half_hour as f64 / 2.0);
        let idx = (t.get() * 60.0) as usize;
        println!(
            "  {:4.1}h  stored {:5.1} MJ   hot group {:3} servers   cooling {:5.1} kW",
            t.get(),
            wa.stored_energy[idx].to_megajoules(),
            wa.hot_group_sizes[idx],
            wa.cooling.samples()[idx].get() / 1e3,
        );
    }
}
