//! Trace replay: drive the simulator with a recorded CSV trace instead
//! of the synthetic generator.
//!
//! A deployment that logs its own per-workload utilization can evaluate
//! VMT against *its* day, not the paper's. This example snapshots the
//! synthetic generator to CSV (standing in for a real measurement
//! export), parses it back, and shows the replayed run matching the
//! generated one.
//!
//! ```text
//! cargo run --release --example trace_replay
//! ```

use vmt::core::PolicyKind;
use vmt::dcsim::{ClusterConfig, Simulation};
use vmt::units::Minutes;
use vmt::workload::{DiurnalTrace, RecordedTrace, TraceConfig};

fn main() {
    // 1. "Measure" a trace: here a snapshot of the synthetic generator;
    //    in a real deployment this CSV comes from your telemetry.
    let synthetic = DiurnalTrace::new(TraceConfig::paper_default());
    let recorded = RecordedTrace::sample_from(&synthetic, Minutes::new(5.0));
    let csv = recorded.to_csv();
    println!(
        "exported {} samples ({} bytes of CSV); first rows:",
        recorded.len(),
        csv.len()
    );
    for line in csv.lines().take(4) {
        println!("  {line}");
    }

    // 2. Parse it back, exactly as a user would load their own file.
    let replayed = RecordedTrace::from_csv_str(&csv).expect("well-formed CSV");

    // 3. Run the same policy against both sources.
    let cluster = ClusterConfig::paper_default(50);
    let from_generator = Simulation::new(
        cluster.clone(),
        synthetic,
        PolicyKind::VmtTa { gv: 22.0 }.build(&cluster),
    )
    .run();
    let from_csv = Simulation::new(
        cluster.clone(),
        replayed,
        PolicyKind::VmtTa { gv: 22.0 }.build(&cluster),
    )
    .run();

    println!(
        "\npeak cooling: generator {:.2} kW vs replayed CSV {:.2} kW",
        from_generator.peak_cooling().get() / 1e3,
        from_csv.peak_cooling().get() / 1e3,
    );
    println!(
        "max stored:   generator {:.1} MJ vs replayed CSV {:.1} MJ",
        from_generator.max_stored_energy().to_megajoules(),
        from_csv.max_stored_energy().to_megajoules(),
    );
    println!("\nthe 5-minute sampling loses <1% — bring your own trace.");
}
