//! The temperature-dependent failure-rate law.

use vmt_units::Celsius;

/// Hours in a month (365.25/12 days).
pub(crate) const HOURS_PER_MONTH: f64 = 730.5;

/// An exponential failure model with Arrhenius-style temperature scaling.
///
/// `λ(T) = λ₀ · 2^((T − T₀) / 10 °C)` with `λ₀ = 1 / MTBF₀`: the failure
/// rate doubles for every 10 °C above the reference temperature (and
/// halves below it).
///
/// # Examples
///
/// ```
/// use vmt_reliability::FailureModel;
/// use vmt_units::Celsius;
///
/// let model = FailureModel::paper_default();
/// let base = model.failure_rate_per_hour(Celsius::new(30.0));
/// let hot = model.failure_rate_per_hour(Celsius::new(40.0));
/// assert!((hot / base - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FailureModel {
    mtbf_hours: f64,
    reference: Celsius,
    doubling_interval_k: f64,
}

impl FailureModel {
    /// The paper's model: 70,000 h MTBF at 30 °C, rate doubling every
    /// +10 °C.
    pub fn paper_default() -> Self {
        Self::new(70_000.0, Celsius::new(30.0), 10.0).expect("paper constants are valid")
    }

    /// Creates a model.
    ///
    /// # Errors
    ///
    /// Returns a message if `mtbf_hours` or `doubling_interval_k` is not
    /// strictly positive and finite.
    pub fn new(
        mtbf_hours: f64,
        reference: Celsius,
        doubling_interval_k: f64,
    ) -> Result<Self, String> {
        if !(mtbf_hours > 0.0 && mtbf_hours.is_finite()) {
            return Err(format!("MTBF must be positive, got {mtbf_hours}"));
        }
        if !(doubling_interval_k > 0.0 && doubling_interval_k.is_finite()) {
            return Err(format!(
                "doubling interval must be positive, got {doubling_interval_k}"
            ));
        }
        Ok(Self {
            mtbf_hours,
            reference,
            doubling_interval_k,
        })
    }

    /// Reference-temperature MTBF in hours.
    pub fn mtbf_hours(&self) -> f64 {
        self.mtbf_hours
    }

    /// Failure rate (per hour) at an operating temperature.
    pub fn failure_rate_per_hour(&self, temperature: Celsius) -> f64 {
        let exponent = (temperature - self.reference).get() / self.doubling_interval_k;
        (1.0 / self.mtbf_hours) * exponent.exp2()
    }

    /// Probability that a server operating at `temperature` fails within
    /// `hours` (exponential model: `1 − e^(−λ·t)`).
    pub fn failure_probability(&self, temperature: Celsius, hours: f64) -> f64 {
        debug_assert!(hours >= 0.0, "hours must be non-negative");
        1.0 - (-self.failure_rate_per_hour(temperature) * hours).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn reference_rate() {
        let m = FailureModel::paper_default();
        assert!((m.failure_rate_per_hour(Celsius::new(30.0)) - 1.0 / 70_000.0).abs() < 1e-15);
    }

    #[test]
    fn doubling_per_ten_degrees() {
        let m = FailureModel::paper_default();
        let r30 = m.failure_rate_per_hour(Celsius::new(30.0));
        assert!((m.failure_rate_per_hour(Celsius::new(40.0)) / r30 - 2.0).abs() < 1e-12);
        assert!((m.failure_rate_per_hour(Celsius::new(50.0)) / r30 - 4.0).abs() < 1e-12);
        assert!((m.failure_rate_per_hour(Celsius::new(20.0)) / r30 - 0.5).abs() < 1e-12);
    }

    #[test]
    fn three_year_scale_matches_figure_seven() {
        // Figure 7's 3-year cumulative failure is in the ~25–35% band.
        let m = FailureModel::paper_default();
        let p = m.failure_probability(Celsius::new(32.0), 36.0 * HOURS_PER_MONTH);
        assert!((0.2..0.5).contains(&p), "p = {p}");
    }

    #[test]
    fn invalid_inputs_rejected() {
        assert!(FailureModel::new(0.0, Celsius::new(30.0), 10.0).is_err());
        assert!(FailureModel::new(70_000.0, Celsius::new(30.0), 0.0).is_err());
    }

    proptest! {
        /// Failure probability is a valid probability, increasing in both
        /// temperature and time.
        #[test]
        fn probability_is_monotone(t in 10.0f64..60.0, h in 0.0f64..100_000.0) {
            let m = FailureModel::paper_default();
            let p = m.failure_probability(Celsius::new(t), h);
            prop_assert!((0.0..=1.0).contains(&p));
            prop_assert!(m.failure_probability(Celsius::new(t + 1.0), h) >= p);
            prop_assert!(m.failure_probability(Celsius::new(t), h + 1.0) >= p);
        }
    }
}
