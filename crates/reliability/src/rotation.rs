//! Hot/cold group rotation for wear leveling.

/// A wear-leveling rotation between the hot and cold groups.
///
/// VMT's hot-group servers run hotter and would fail sooner, so the
/// paper rotates 20% of servers between the groups every month. With a
/// ≈60/40 hot/cold split this puts each server on a repeating cycle of
/// `hot_months` in the hot group followed by `cold_months` in the cold
/// group (the paper's 3 + 2 cycle).
///
/// # Examples
///
/// ```
/// use vmt_reliability::RotationPolicy;
///
/// let rotation = RotationPolicy::paper_default();
/// // Months 0,1,2 hot; months 3,4 cold; repeat.
/// assert!(rotation.is_hot_in_month(0));
/// assert!(rotation.is_hot_in_month(2));
/// assert!(!rotation.is_hot_in_month(3));
/// assert!(rotation.is_hot_in_month(5));
/// assert!((rotation.hot_duty_cycle() - 0.6).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct RotationPolicy {
    hot_months: u32,
    cold_months: u32,
}

impl RotationPolicy {
    /// The paper's rotation: 3 months hot, 2 months cold (20% rotated
    /// per month at a 60/40 split).
    pub fn paper_default() -> Self {
        Self::new(3, 2).expect("paper rotation is valid")
    }

    /// A degenerate policy that never rotates (always hot) — the
    /// worst-case comparison.
    pub fn always_hot() -> Self {
        Self {
            hot_months: 1,
            cold_months: 0,
        }
    }

    /// Creates a policy cycling `hot_months` hot then `cold_months`
    /// cold.
    ///
    /// # Errors
    ///
    /// Returns a message if the cycle is empty or has no hot phase.
    pub fn new(hot_months: u32, cold_months: u32) -> Result<Self, String> {
        if hot_months == 0 {
            return Err("rotation must include at least one hot month".to_owned());
        }
        Ok(Self {
            hot_months,
            cold_months,
        })
    }

    /// Months per full cycle.
    pub fn cycle_months(&self) -> u32 {
        self.hot_months + self.cold_months
    }

    /// Fraction of time spent in the hot group.
    pub fn hot_duty_cycle(&self) -> f64 {
        f64::from(self.hot_months) / f64::from(self.cycle_months())
    }

    /// Whether a server following this rotation is in the hot group
    /// during calendar month `month` (0-based).
    pub fn is_hot_in_month(&self, month: u32) -> bool {
        month % self.cycle_months() < self.hot_months
    }

    /// The fraction of servers rotated at each month boundary (the
    /// paper quotes 20% for the 3+2 cycle).
    pub fn monthly_rotation_fraction(&self) -> f64 {
        1.0 / f64::from(self.cycle_months())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_cycle() {
        let r = RotationPolicy::paper_default();
        assert_eq!(r.cycle_months(), 5);
        assert!((r.monthly_rotation_fraction() - 0.2).abs() < 1e-12);
        let pattern: Vec<bool> = (0..10).map(|m| r.is_hot_in_month(m)).collect();
        assert_eq!(
            pattern,
            [true, true, true, false, false, true, true, true, false, false]
        );
    }

    #[test]
    fn always_hot() {
        let r = RotationPolicy::always_hot();
        assert!((0..24).all(|m| r.is_hot_in_month(m)));
        assert_eq!(r.hot_duty_cycle(), 1.0);
    }

    #[test]
    fn rejects_no_hot_phase() {
        assert!(RotationPolicy::new(0, 5).is_err());
    }
}
