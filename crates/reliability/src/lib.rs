//! Temperature-scaled server reliability models and hot/cold rotation
//! policies.
//!
//! VMT deliberately runs a subset of servers hotter, and hotter
//! components fail more often, so the paper quantifies the reliability
//! cost (its §IV-D and Figure 7):
//!
//! * base mean time between failures of **70,000 h at 30 °C** (Intel
//!   white-paper number, the paper's reference \[44\]);
//! * the classic rule of thumb that a **+10 °C rise doubles the failure
//!   rate** (the paper's references \[45\], \[39\]);
//! * **20% of servers rotate between the groups each month**, so with
//!   the paper's ≈60/40 group split each server spends roughly 3 months
//!   hot, then 2 months cold;
//! * result: after 3 years, VMT-WA's cumulative failure probability is
//!   within ≈0.4–0.6% of round robin's.
//!
//! [`FailureModel`] provides the temperature→rate law,
//! [`RotationPolicy`] the duty cycle, and [`cumulative_failure_curve`]
//! the Figure 7 series.

mod curve;
mod mtbf;
mod rotation;

pub use curve::{cumulative_failure_curve, FailureCurve};
pub use mtbf::FailureModel;
pub use rotation::RotationPolicy;
