//! Cumulative failure curves (the paper's Figure 7).

use crate::mtbf::HOURS_PER_MONTH;
use crate::{FailureModel, RotationPolicy};
use vmt_units::Celsius;

/// A cumulative failure-probability series, one point per month.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FailureCurve {
    /// `points[m]` = probability a server has failed by the end of month
    /// `m` (0-based).
    pub points: Vec<f64>,
}

impl FailureCurve {
    /// Final cumulative failure probability.
    pub fn final_probability(&self) -> f64 {
        self.points.last().copied().unwrap_or(0.0)
    }

    /// Cumulative probability at the end of a given month (0-based).
    ///
    /// # Panics
    ///
    /// Panics if `month` is beyond the curve.
    pub fn at_month(&self, month: usize) -> f64 {
        self.points[month]
    }

    /// Number of months covered.
    pub fn months(&self) -> usize {
        self.points.len()
    }
}

/// Computes the cumulative failure curve of a server that alternates
/// between hot- and cold-group operating temperatures under a rotation
/// policy.
///
/// The hazard integrates month by month: while in the hot group the
/// server fails at `λ(hot_temp)`, in the cold group at `λ(cold_temp)`;
/// the cumulative failure probability is `1 − e^(−∫λ dt)`.
///
/// Pass the same temperature for both groups to model a round-robin
/// scheduler (every server sees the cluster-average temperature).
///
/// # Examples
///
/// ```
/// use vmt_reliability::{cumulative_failure_curve, FailureModel, RotationPolicy};
/// use vmt_units::Celsius;
///
/// let model = FailureModel::paper_default();
/// let rr = cumulative_failure_curve(
///     &model, &RotationPolicy::paper_default(),
///     Celsius::new(31.0), Celsius::new(31.0), 36,
/// );
/// let vmt = cumulative_failure_curve(
///     &model, &RotationPolicy::paper_default(),
///     Celsius::new(32.5), Celsius::new(29.0), 36,
/// );
/// // VMT's rotated wear ends within ~1% of round robin after 3 years.
/// assert!(vmt.final_probability() > rr.final_probability());
/// assert!(vmt.final_probability() - rr.final_probability() < 0.01);
/// ```
pub fn cumulative_failure_curve(
    model: &FailureModel,
    rotation: &RotationPolicy,
    hot_temp: Celsius,
    cold_temp: Celsius,
    months: usize,
) -> FailureCurve {
    let mut hazard = 0.0;
    let points = (0..months)
        .map(|m| {
            let temp = if rotation.is_hot_in_month(m as u32) {
                hot_temp
            } else {
                cold_temp
            };
            hazard += model.failure_rate_per_hour(temp) * HOURS_PER_MONTH;
            1.0 - (-hazard).exp()
        })
        .collect();
    FailureCurve { points }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> FailureModel {
        FailureModel::paper_default()
    }

    #[test]
    fn curve_is_monotone_and_bounded() {
        let c = cumulative_failure_curve(
            &model(),
            &RotationPolicy::paper_default(),
            Celsius::new(34.0),
            Celsius::new(28.0),
            36,
        );
        assert_eq!(c.months(), 36);
        for pair in c.points.windows(2) {
            assert!(pair[1] >= pair[0]);
        }
        assert!(c.final_probability() > 0.0 && c.final_probability() < 1.0);
    }

    #[test]
    fn rotation_beats_always_hot() {
        let rotated = cumulative_failure_curve(
            &model(),
            &RotationPolicy::paper_default(),
            Celsius::new(34.0),
            Celsius::new(28.0),
            36,
        );
        let pinned = cumulative_failure_curve(
            &model(),
            &RotationPolicy::always_hot(),
            Celsius::new(34.0),
            Celsius::new(28.0),
            36,
        );
        assert!(rotated.final_probability() < pinned.final_probability());
    }

    #[test]
    fn paper_gap_is_sub_percent() {
        // The paper reports a 0.4–0.6% cumulative-failure gap between
        // VMT-WA (rotated hot/cold) and round robin after 3 years.
        let rr = cumulative_failure_curve(
            &model(),
            &RotationPolicy::paper_default(),
            Celsius::new(31.0),
            Celsius::new(31.0),
            36,
        );
        let vmt = cumulative_failure_curve(
            &model(),
            &RotationPolicy::paper_default(),
            Celsius::new(32.5),
            Celsius::new(29.0),
            36,
        );
        let gap = vmt.final_probability() - rr.final_probability();
        assert!(gap > 0.0, "VMT should wear slightly faster, gap {gap}");
        assert!(gap < 0.01, "gap should be sub-percent, got {gap}");
    }

    #[test]
    fn six_month_scale_matches_figure_seven() {
        // Figure 7's 6-month panel tops out around 5–8%.
        let c = cumulative_failure_curve(
            &model(),
            &RotationPolicy::paper_default(),
            Celsius::new(31.0),
            Celsius::new(31.0),
            6,
        );
        let p = c.final_probability();
        assert!((0.03..0.10).contains(&p), "p = {p}");
    }
}
