//! Benchmark-only crate. See `benches/`:
//!
//! * `simulator` — engine and per-server physics throughput.
//! * `schedulers` — placement cost per policy.
//! * `experiments_tables` — regenerates the paper's tables.
//! * `experiments_figures` — regenerates the paper's figures (reduced
//!   scale; the `vmt-experiments` CLI produces the full-scale runs).
