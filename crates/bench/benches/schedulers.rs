//! Placement-policy benchmarks: cost of one placement decision and of a
//! full tick's worth of arrivals, per policy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use vmt_core::PolicyKind;
use vmt_dcsim::{ClusterConfig, ServerFarm};
use vmt_units::Seconds;
use vmt_workload::{Job, JobId, WorkloadKind};

fn farm(n: usize) -> ServerFarm {
    let config = ClusterConfig::paper_default(n);
    let mut farm = ServerFarm::from_config(&config);
    // Mid-load state: fill 60% of the cores with a representative mix.
    let mut id = 0u64;
    for i in 0..n {
        for c in 0..19 {
            farm.start_job(
                i,
                &Job::new(
                    JobId(id),
                    WorkloadKind::ALL[(i + c) % 5],
                    Seconds::new(600.0),
                ),
            );
            id += 1;
        }
    }
    farm
}

/// One tick of policy bookkeeping plus a burst of 200 placements on a
/// 1,000-server cluster — the engine's inner loop.
fn placement_burst(c: &mut Criterion) {
    let farm = farm(1000);
    let policies = [
        PolicyKind::RoundRobin,
        PolicyKind::CoolestFirst,
        PolicyKind::VmtTa { gv: 22.0 },
        PolicyKind::vmt_wa(22.0),
    ];
    let mut group = c.benchmark_group("placement_burst_1000_servers");
    for policy in policies {
        let cluster = ClusterConfig::paper_default(1000);
        group.bench_with_input(
            BenchmarkId::from_parameter(policy.label()),
            &policy,
            |b, &policy| {
                let mut scheduler = policy.build(&cluster);
                let mut id = 1_000_000u64;
                b.iter(|| {
                    scheduler.on_tick(&farm, Seconds::ZERO);
                    for k in 0..200u64 {
                        let job = Job::new(
                            JobId(id),
                            WorkloadKind::ALL[(k % 5) as usize],
                            Seconds::new(600.0),
                        );
                        id += 1;
                        black_box(scheduler.place(&job, &farm));
                    }
                })
            },
        );
    }
    group.finish();
}

/// Scheduler tick-refresh cost in isolation, across cluster sizes.
fn on_tick_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("vmt_wa_on_tick");
    for n in [100usize, 1000] {
        let farm = farm(n);
        let cluster = ClusterConfig::paper_default(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let mut scheduler = PolicyKind::vmt_wa(22.0).build(&cluster);
            b.iter(|| scheduler.on_tick(black_box(&farm), Seconds::ZERO))
        });
    }
    group.finish();
}

criterion_group!(benches, placement_burst, on_tick_scaling);
criterion_main!(benches);
