//! Regeneration benchmarks for the paper's figures.
//!
//! One bench target per figure of the evaluation. Simulation-backed
//! figures run at a reduced cluster scale (20–30 servers) so Criterion
//! can sample them; the `vmt-experiments` CLI regenerates the full-scale
//! versions (100 or 1,000 servers, per the paper).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use vmt_experiments::heatmaps::HeatmapFigure;

const BENCH_SERVERS: usize = 20;

fn fig1_mix_regions(c: &mut Criterion) {
    c.bench_function("fig1_mix_regions", |b| {
        b.iter(|| black_box(vmt_experiments::fig1::fig1()))
    });
}

fn fig2_tts_concept(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig2_tts_concept");
    g.sample_size(10);
    g.bench_function("one_server_two_days", |b| {
        b.iter(|| black_box(vmt_experiments::fig2::fig2()))
    });
    g.finish();
}

fn fig6_qos(c: &mut Criterion) {
    c.bench_function("fig6_qos_panels", |b| {
        b.iter(|| {
            black_box((
                vmt_experiments::fig6::caching_panel(),
                vmt_experiments::fig6::search_panel(),
            ))
        })
    });
}

fn fig7_reliability(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7_reliability");
    g.sample_size(10);
    g.bench_function("measured_temps", |b| {
        b.iter(|| black_box(vmt_experiments::fig7::fig7(BENCH_SERVERS)))
    });
    g.finish();
}

fn fig8_trace(c: &mut Criterion) {
    c.bench_function("fig8_two_day_trace", |b| {
        b.iter(|| black_box(vmt_experiments::fig8::fig8(10)))
    });
}

fn figs_9_10_11_14_heatmaps(c: &mut Criterion) {
    let mut g = c.benchmark_group("heatmap_figures");
    g.sample_size(10);
    for figure in [
        HeatmapFigure::Fig9RoundRobin,
        HeatmapFigure::Fig10CoolestFirst,
        HeatmapFigure::Fig11VmtTa,
        HeatmapFigure::Fig14VmtWa,
    ] {
        g.bench_function(figure.label(), |b| {
            b.iter(|| black_box(vmt_experiments::heatmaps::heatmap(figure, BENCH_SERVERS)))
        });
    }
    g.finish();
}

fn figs_12_15_hot_group(c: &mut Criterion) {
    let mut g = c.benchmark_group("hot_group_temperature_figures");
    g.sample_size(10);
    g.bench_function("fig12_vmt_ta", |b| {
        b.iter(|| {
            black_box(vmt_experiments::hot_group::hot_group_temps(
                false,
                &[21.0, 22.0],
                BENCH_SERVERS,
            ))
        })
    });
    g.bench_function("fig15_vmt_wa", |b| {
        b.iter(|| {
            black_box(vmt_experiments::hot_group::hot_group_temps(
                true,
                &[20.0, 22.0],
                BENCH_SERVERS,
            ))
        })
    });
    g.finish();
}

fn figs_13_16_cooling_load(c: &mut Criterion) {
    let mut g = c.benchmark_group("cooling_load_figures");
    g.sample_size(10);
    g.bench_function("fig13_vmt_ta", |b| {
        b.iter(|| black_box(vmt_experiments::cooling_load::fig13(BENCH_SERVERS)))
    });
    g.bench_function("fig16_vmt_wa", |b| {
        b.iter(|| black_box(vmt_experiments::cooling_load::fig16(BENCH_SERVERS)))
    });
    g.finish();
}

fn fig17_threshold(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig17_wax_threshold_sweep");
    g.sample_size(10);
    g.bench_function("six_thresholds", |b| {
        b.iter(|| black_box(vmt_experiments::threshold::fig17(BENCH_SERVERS)))
    });
    g.finish();
}

fn fig18_gv_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig18_gv_sweep");
    g.sample_size(10);
    g.bench_function("five_gvs_both_algorithms", |b| {
        b.iter(|| {
            black_box(vmt_experiments::gv_sweep::gv_sweep(
                &[18.0, 20.0, 22.0, 24.0, 26.0],
                BENCH_SERVERS,
            ))
        })
    });
    g.finish();
}

fn figs_19_20_inlet_variation(c: &mut Criterion) {
    let mut g = c.benchmark_group("inlet_variation_figures");
    g.sample_size(10);
    g.bench_function("fig19_vmt_ta", |b| {
        b.iter(|| {
            black_box(vmt_experiments::inlet_variation::inlet_variation(
                false,
                &[20.0, 22.0],
                BENCH_SERVERS,
                1,
            ))
        })
    });
    g.bench_function("fig20_vmt_wa", |b| {
        b.iter(|| {
            black_box(vmt_experiments::inlet_variation::inlet_variation(
                true,
                &[20.0, 22.0],
                BENCH_SERVERS,
                1,
            ))
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    fig1_mix_regions,
    fig2_tts_concept,
    fig6_qos,
    fig7_reliability,
    fig8_trace,
    figs_9_10_11_14_heatmaps,
    figs_12_15_hot_group,
    figs_13_16_cooling_load,
    fig17_threshold,
    fig18_gv_sweep,
    figs_19_20_inlet_variation,
);
criterion_main!(benches);
