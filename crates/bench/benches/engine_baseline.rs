//! Engine throughput: optimized hot path vs the naive-scan baseline.
//!
//! Runs the paper's two-day diurnal scenario under each scheduler twice —
//! once with the production implementation (incremental `ClusterIndex`,
//! heap balancer, scan cursors, allocation-free tick loop) and once with
//! the retained naive-scan references from `vmt_core::reference` — and
//! reports ticks/second and jobs-placed/second for both, plus the
//! speedup. Results land in `BENCH_engine.json` at the workspace root.
//!
//! The differential tests (`tests/differential.rs`) prove the two
//! implementations produce bit-identical `SimulationResult`s, so this
//! comparison is pure like-for-like throughput.
//!
//! Invocation:
//! * `cargo bench -p vmt-bench --bench engine_baseline` — full
//!   measurement (100 and 1000 servers for the naive comparison, plus
//!   1k/10k/100k thread-scaling rows; the four 100k 48 h runs dominate,
//!   expect tens of minutes), rewrites the JSON.
//! * `cargo bench -p vmt-bench --bench engine_baseline -- --smoke` — a
//!   20-server sanity pass that exercises both paths without writing the
//!   JSON (what CI runs).
//! * `cargo bench -p vmt-bench --bench engine_baseline -- --phases` —
//!   re-measures only the `phases[]` section (the 1k instrumented
//!   profiles and the 10k zoned observability/tracing-overhead row,
//!   ~3 min) and patches it into the existing `BENCH_engine.json`,
//!   leaving the expensive scaling sweep untouched.
//! * `cargo bench -p vmt-bench --bench engine_baseline -- --million` —
//!   re-measures only the 1M-tier scaling rows (short-horizon, see
//!   `VMT_BENCH_MILLION_*` knobs on `measure_million`) and patches them
//!   into the existing `BENCH_engine.json`.

use std::time::Instant;
use vmt_core::{
    CoolestFirst, GroupingValue, NaiveCoolestFirst, NaiveVmtTa, NaiveVmtWa, VmtConfig, VmtTa, VmtWa,
};
use vmt_dcsim::{ClusterConfig, Scheduler, Simulation};
use vmt_workload::{DiurnalTrace, TraceConfig};

const SCHEDULERS: [&str; 3] = ["coolest-first", "vmt-ta", "vmt-wa"];

#[derive(Debug, serde::Serialize, serde::Deserialize)]
struct Measurement {
    scheduler: String,
    implementation: String,
    servers: usize,
    ticks: usize,
    elapsed_s: f64,
    ticks_per_sec: f64,
    placements: u64,
    jobs_placed_per_sec: f64,
}

#[derive(Debug, serde::Serialize, serde::Deserialize)]
struct Speedup {
    scheduler: String,
    servers: usize,
    ticks_per_sec_indexed: f64,
    ticks_per_sec_naive: f64,
    speedup: f64,
}

#[derive(Debug, serde::Serialize, serde::Deserialize)]
struct ScalingMeasurement {
    scheduler: String,
    servers: usize,
    threads: usize,
    ticks: usize,
    elapsed_s: f64,
    ticks_per_sec: f64,
    placements: u64,
    /// Heap bytes of the pooled job table at the end of the run,
    /// divided by the server count — the 1M tier's memory-budget
    /// record (`check-bench` requires it on the 1M rows and holds it
    /// under budget). `null` on rows recorded before the pooled table
    /// (the vendored serde stub has no `skip_serializing_if`).
    #[serde(default)]
    bytes_per_server: Option<f64>,
}

#[derive(Debug, serde::Serialize, serde::Deserialize)]
struct PhaseProfile {
    scheduler: String,
    servers: usize,
    /// Throughput with per-phase timing spans enabled (no event sink).
    ticks_per_sec_instrumented: f64,
    /// Fraction of measured tick time attributed to a named phase.
    coverage: f64,
    breakdown: vmt_telemetry::PhaseBreakdown,
    /// Set only on the zoned observability row: throughput of the same
    /// run with the full observability layer layered on top of the
    /// phase spans — time-series rings, per-zone thermal gauges, and a
    /// scrape publisher rendering the exposition at snapshot cadence.
    ticks_per_sec_observed: Option<f64>,
    /// Relative per-tick cost the observability layer adds over the
    /// spans-only run (`instrumented/observed - 1`; may dip slightly
    /// negative under wall-clock noise). `check-bench` holds this at or
    /// below 5%.
    observability_overhead: Option<f64>,
    /// Set only on the zoned tracing row: throughput of the same run
    /// with span tracing enabled — per-tick phase and per-zone spans,
    /// placement/decision instants at a 1-in-100 job sample.
    ticks_per_sec_traced: Option<f64>,
    /// Relative per-tick cost enabled tracing adds over the spans-only
    /// run (`instrumented/traced - 1`). `check-bench` holds this at or
    /// below 5%.
    tracing_overhead: Option<f64>,
}

#[derive(Debug, serde::Serialize, serde::Deserialize)]
struct Report {
    description: String,
    scenario: String,
    measurements: Vec<Measurement>,
    speedups: Vec<Speedup>,
    /// Thread-count scaling of the sharded physics tick at 1k, 10k,
    /// and 100k servers (full 48 h runs; results are bit-identical at
    /// every thread count, so rows differ only in wall-clock). The
    /// 100k rows sample the heatmap hourly (stride 60 instead of 5) to
    /// keep the recorder's footprint bounded; the stride is identical
    /// across the group and does not affect placements.
    scaling: Vec<ScalingMeasurement>,
    /// Per-phase breakdown of the instrumented tick loop (telemetry
    /// enabled, no sink) at 1,000 servers, plus one zoned 10k row that
    /// measures the observability layer's overhead (series + zone
    /// gauges + publisher vs spans only) and the span-tracing overhead
    /// (phase/zone spans + sampled decision instants). Compare
    /// `ticks_per_sec_instrumented` against the indexed `measurements`
    /// rows to see the instrumentation overhead; the uninstrumented
    /// rows take zero timestamps and are the regression reference.
    phases: Vec<PhaseProfile>,
}

fn scheduler_for(name: &str, cluster: &ClusterConfig, naive: bool) -> Box<dyn Scheduler> {
    let vmt = VmtConfig::new(GroupingValue::new(22.0), cluster);
    match (name, naive) {
        ("coolest-first", false) => Box::new(CoolestFirst::new()),
        ("coolest-first", true) => Box::new(NaiveCoolestFirst::new()),
        ("vmt-ta", false) => Box::new(VmtTa::new(vmt)),
        ("vmt-ta", true) => Box::new(NaiveVmtTa::new(vmt)),
        ("vmt-wa", false) => Box::new(VmtWa::new(vmt)),
        ("vmt-wa", true) => Box::new(NaiveVmtWa::new(vmt)),
        _ => unreachable!("unknown scheduler {name}"),
    }
}

fn measure(name: &str, servers: usize, naive: bool) -> Measurement {
    let cluster = ClusterConfig::paper_default(servers);
    let trace = DiurnalTrace::new(TraceConfig::paper_default());
    let ticks = cluster.ticks_for(trace.horizon());
    let scheduler = scheduler_for(name, &cluster, naive);
    let start = Instant::now();
    let result = Simulation::new(cluster, trace, scheduler).run();
    let elapsed = start.elapsed().as_secs_f64();
    Measurement {
        scheduler: name.to_string(),
        implementation: if naive { "naive-scan" } else { "indexed" }.to_string(),
        servers,
        ticks,
        elapsed_s: elapsed,
        ticks_per_sec: ticks as f64 / elapsed,
        placements: result.placements,
        jobs_placed_per_sec: result.placements as f64 / elapsed,
    }
}

/// One timed 48 h scaling run. Reported as the best of several
/// passes: the scaling table feeds `check-bench`'s non-pessimization
/// floor, and on a shared host single-run wall-clock noise (±15–20%
/// observed, occasionally worse) would otherwise dwarf the
/// thread-count effect being measured. Short runs are the noisiest,
/// so the pass count scales down with run length — five at 1k
/// (seconds each), three at 10k, two at 100k (minutes each).
/// Placements are asserted identical between passes — the determinism
/// contract, cheaply re-checked here.
fn measure_scaling(name: &str, servers: usize, threads: usize) -> ScalingMeasurement {
    let passes = match servers {
        n if n >= 100_000 => 2,
        n if n >= 10_000 => 3,
        _ => 5,
    };
    measure_scaling_row(name, servers, threads, passes, None)
}

/// One timed scaling row over `passes` runs, optionally on a shortened
/// horizon (the 1M tier measures a short-horizon run — a 48 h pass at
/// 1M servers is a multi-hour commitment that adds nothing over the
/// 100k rows' full-horizon coverage).
fn measure_scaling_row(
    name: &str,
    servers: usize,
    threads: usize,
    passes: usize,
    hours: Option<f64>,
) -> ScalingMeasurement {
    let mut cluster = ClusterConfig::paper_default(servers);
    if servers >= 100_000 {
        // At 100k servers the default stride-5 heatmap alone is ~0.9 GB
        // of resident rows; sample hourly instead. The stride only
        // affects recording — placements stay identical across every
        // row of the group, which `check-bench` enforces.
        cluster.heatmap_stride = 60;
    }
    let mut trace_config = TraceConfig::paper_default();
    if let Some(hours) = hours {
        trace_config.horizon = vmt_units::Hours::new(hours);
    }
    let trace = DiurnalTrace::new(trace_config);
    let ticks = cluster.ticks_for(trace.horizon());
    let mut best: Option<ScalingMeasurement> = None;
    for _ in 0..passes.max(1) {
        let scheduler = scheduler_for(name, &cluster, false);
        let mut sim =
            Simulation::new(cluster.clone(), trace.clone(), scheduler).with_threads(threads);
        // Timed exactly like `Simulation::run` (step to the horizon,
        // then finish), with the job-table footprint sampled at the
        // horizon — an O(shards) sum, invisible at this scale.
        let start = Instant::now();
        sim.run_until(ticks as u64);
        let table_bytes = sim.farm().job_table_bytes();
        let (result, _) = sim.finish();
        let elapsed = start.elapsed().as_secs_f64();
        let pass = ScalingMeasurement {
            scheduler: name.to_string(),
            servers,
            threads,
            ticks,
            elapsed_s: elapsed,
            ticks_per_sec: ticks as f64 / elapsed,
            placements: result.placements,
            bytes_per_server: Some(table_bytes as f64 / servers as f64),
        };
        best = match best {
            Some(prev) => {
                assert_eq!(
                    prev.placements, pass.placements,
                    "{name}@{servers}: placements differ between passes"
                );
                Some(if pass.elapsed_s < prev.elapsed_s {
                    pass
                } else {
                    prev
                })
            }
            None => Some(pass),
        };
    }
    best.expect("at least one pass ran")
}

/// The 1M-server tier: short-horizon best-of-N rows for the thread
/// counts that bracket the sharded tick (serial and fanned out), with
/// the pooled job table's bytes-per-server recorded on each row.
///
/// Knobs (all optional, for CI budgets and overhead triage):
/// `VMT_BENCH_MILLION_SERVERS` (default 1,000,000),
/// `VMT_BENCH_MILLION_HOURS` (default 2), `VMT_BENCH_MILLION_THREADS`
/// (comma list, default `1,8`), `VMT_BENCH_MILLION_PASSES` (default 2).
fn measure_million() -> Vec<ScalingMeasurement> {
    let servers = env_num("VMT_BENCH_MILLION_SERVERS").unwrap_or(1_000_000);
    let hours: f64 = env_num("VMT_BENCH_MILLION_HOURS").unwrap_or(2.0);
    let passes: usize = env_num("VMT_BENCH_MILLION_PASSES").unwrap_or(2);
    let threads_list = std::env::var("VMT_BENCH_MILLION_THREADS")
        .ok()
        .map(|v| {
            v.split(',')
                .filter_map(|t| t.trim().parse::<usize>().ok())
                .collect::<Vec<_>>()
        })
        .filter(|l| !l.is_empty())
        .unwrap_or_else(|| vec![1, 8]);
    let mut rows = Vec::new();
    for threads in threads_list {
        let s = measure_scaling_row("vmt-wa", servers, threads, passes, Some(hours));
        println!(
            "million vmt-wa @ {servers} x{threads} threads ({hours} h): {:.2} ticks/s \
             ({:.1}s for {} ticks, {} placements, {:.1} B/server)",
            s.ticks_per_sec,
            s.elapsed_s,
            s.ticks,
            s.placements,
            s.bytes_per_server.unwrap_or(0.0),
        );
        rows.push(s);
    }
    rows
}

/// Parses a numeric environment variable, `None` when unset/garbled.
fn env_num<T: std::str::FromStr>(key: &str) -> Option<T> {
    std::env::var(key).ok().and_then(|v| v.parse().ok())
}

fn measure_phases(name: &str, servers: usize) -> PhaseProfile {
    let cluster = ClusterConfig::paper_default(servers);
    let trace = DiurnalTrace::new(TraceConfig::paper_default());
    let scheduler = scheduler_for(name, &cluster, false);
    let telemetry = vmt_dcsim::TelemetryConfig::new();
    let summary = telemetry.summary.clone();
    Simulation::new(cluster, trace, scheduler)
        .with_telemetry(telemetry)
        .run();
    let summary = summary.get().expect("telemetry deposits a summary");
    PhaseProfile {
        scheduler: name.to_string(),
        servers,
        ticks_per_sec_instrumented: summary.ticks_per_s,
        coverage: summary.phases.coverage(),
        breakdown: summary.phases,
        ticks_per_sec_observed: None,
        observability_overhead: None,
        ticks_per_sec_traced: None,
        tracing_overhead: None,
    }
}

/// What a zoned instrumented pass layers on top of the phase spans.
#[derive(Clone, Copy, PartialEq)]
enum ZonedMode {
    /// Phase spans only — the overhead reference.
    Plain,
    /// The full observability layer: series rings at the default
    /// capacity, per-zone thermal gauges, and a scrape publisher
    /// rendering the exposition at snapshot cadence.
    Observed,
    /// Span tracing: per-tick phase and per-zone spans plus
    /// placement/decision instants for every 100th job.
    Traced,
}

/// One zoned vmt-wa run over the full 48 h trace with phase spans on
/// and `mode`'s layer added. Returns the engine's own summary (its
/// `ticks_per_s` is the measurement).
fn run_zoned_instrumented(servers: usize, mode: ZonedMode) -> vmt_telemetry::SummaryEvent {
    let mut cluster = ClusterConfig::paper_default(servers);
    cluster.topology = Some(vmt_dcsim::ZoneSpec::paper_default());
    if servers >= 100_000 {
        cluster.heatmap_stride = 60;
    }
    let trace = DiurnalTrace::new(TraceConfig::paper_default());
    let scheduler = scheduler_for("vmt-wa", &cluster, false);
    let mut telemetry = vmt_dcsim::TelemetryConfig::new();
    match mode {
        ZonedMode::Plain => {}
        ZonedMode::Observed => {
            telemetry = telemetry
                .with_series(vmt_dcsim::TelemetryConfig::DEFAULT_SERIES_CAPACITY)
                .with_publisher(vmt_telemetry::MetricsPublisher::new());
        }
        ZonedMode::Traced => {
            // The benchmarked stride is 200: the densest decade-ish
            // stride whose full 48h zoned-10k trace fits the default
            // 1M-record ring (67.7M placements / 200 = 339k sampled
            // jobs = ~723k records with spans; at 100 the run emits
            // ~1.4M records, so the ring wraps mid-run, silently
            // dropping the first third *and* paying drop-churn that
            // would be billed to the tracer). VMT_BENCH_TRACE_SAMPLE /
            // VMT_BENCH_TRACE_CAP override stride and capacity for
            // overhead triage.
            let sample_every = std::env::var("VMT_BENCH_TRACE_SAMPLE")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(200);
            let mut spec = vmt_dcsim::TraceSpec {
                sample_every,
                ..vmt_dcsim::TraceSpec::default()
            };
            if let Some(cap) = std::env::var("VMT_BENCH_TRACE_CAP")
                .ok()
                .and_then(|v| v.parse().ok())
            {
                spec.capacity = cap;
            }
            telemetry = telemetry.with_trace(spec);
        }
    }
    let summary = telemetry.summary.clone();
    Simulation::new(cluster, trace, scheduler)
        .with_telemetry(telemetry)
        .run();
    summary.get().expect("telemetry deposits a summary")
}

/// Observability and tracing overhead at the zoned 10k scale: the same
/// zoned run measured spans-only, fully observed, and span-traced,
/// best of `passes` each. The passes are *interleaved* (plain,
/// observed, traced, plain, …) rather than run as blocks: host
/// throughput drifts by ±10% across a block of minutes-long runs, and
/// with sequential blocks that drift lands entirely on one side and
/// masquerades as overhead (the true per-tick cost, visible in the
/// `record_s` phase span, is well under 1%). The result rides in
/// `phases[]` with the observed- and traced-side fields set;
/// `check-bench` gates both overheads at 5%.
fn measure_observability(servers: usize, passes: usize) -> PhaseProfile {
    let mut plain: Option<vmt_telemetry::SummaryEvent> = None;
    let mut observed: Option<vmt_telemetry::SummaryEvent> = None;
    let mut traced: Option<vmt_telemetry::SummaryEvent> = None;
    for _ in 0..passes {
        for (best, mode) in [
            (&mut plain, ZonedMode::Plain),
            (&mut observed, ZonedMode::Observed),
            (&mut traced, ZonedMode::Traced),
        ] {
            let pass = run_zoned_instrumented(servers, mode);
            *best = Some(match best.take() {
                Some(prev) if prev.ticks_per_s >= pass.ticks_per_s => prev,
                _ => pass,
            });
        }
    }
    let plain = plain.expect("at least one pass ran");
    let observed = observed.expect("at least one pass ran");
    let traced = traced.expect("at least one pass ran");
    if std::env::var("VMT_BENCH_OBS_DEBUG").is_ok() {
        println!("plain breakdown:    {:?}", plain.phases);
        println!("observed breakdown: {:?}", observed.phases);
        println!("traced breakdown:   {:?}", traced.phases);
    }
    let overhead = plain.ticks_per_s / observed.ticks_per_s - 1.0;
    let trace_overhead = plain.ticks_per_s / traced.ticks_per_s - 1.0;
    PhaseProfile {
        scheduler: "vmt-wa".to_string(),
        servers,
        ticks_per_sec_instrumented: plain.ticks_per_s,
        coverage: plain.phases.coverage(),
        breakdown: plain.phases,
        ticks_per_sec_observed: Some(observed.ticks_per_s),
        observability_overhead: Some(overhead),
        ticks_per_sec_traced: Some(traced.ticks_per_s),
        tracing_overhead: Some(trace_overhead),
    }
}

/// The full `phases[]` section: instrumented profiles for every
/// scheduler at 1k servers, then the zoned 10k observability row.
fn measure_all_phases() -> Vec<PhaseProfile> {
    let mut phases = Vec::new();
    for name in SCHEDULERS {
        let p = measure_phases(name, 1000);
        println!(
            "phases {name} @ 1000 (instrumented): {:.0} ticks/s, coverage {:.1}%",
            p.ticks_per_sec_instrumented,
            p.coverage * 100.0
        );
        phases.push(p);
    }
    let o = measure_observability(10_000, 5);
    println!(
        "observability vmt-wa @ 10000 (zoned): spans-only {:.0} ticks/s, observed {:.0} ticks/s -> {:+.1}% overhead",
        o.ticks_per_sec_instrumented,
        o.ticks_per_sec_observed.unwrap(),
        o.observability_overhead.unwrap() * 100.0,
    );
    println!(
        "tracing vmt-wa @ 10000 (zoned, sample 200): traced {:.0} ticks/s -> {:+.1}% overhead",
        o.ticks_per_sec_traced.unwrap(),
        o.tracing_overhead.unwrap() * 100.0,
    );
    phases.push(o);
    phases
}

const BENCH_JSON: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_engine.json");

fn main() {
    // `cargo bench` hands harness=false targets a `--bench` argument;
    // `-- --smoke` (used by CI) forces the quick pass anyway.
    let smoke = std::env::args().any(|a| a == "--smoke");
    let obs_only = !smoke && std::env::args().any(|a| a == "--obs");
    let refresh_phases = !smoke && !obs_only && std::env::args().any(|a| a == "--phases");
    let refresh_million =
        !smoke && !obs_only && !refresh_phases && std::env::args().any(|a| a == "--million");
    if refresh_million {
        // Re-measure only the 1M-tier rows and patch them into the
        // existing artifact, replacing any prior row with the same
        // (scheduler, servers, threads) key; everything else keeps its
        // recorded values. With the `VMT_BENCH_MILLION_*` knobs this
        // doubles as a targeted re-measure of any single scaling cell.
        let text = std::fs::read_to_string(BENCH_JSON)
            .unwrap_or_else(|err| panic!("cannot read {BENCH_JSON}: {err}"));
        let mut report: Report =
            serde_json::from_str(&text).expect("BENCH_engine.json matches the report schema");
        for row in measure_million() {
            report.scaling.retain(|s| {
                (s.scheduler.as_str(), s.servers, s.threads)
                    != (row.scheduler.as_str(), row.servers, row.threads)
            });
            report.scaling.push(row);
        }
        report
            .scaling
            .sort_by_key(|s| (s.servers, s.threads, s.scheduler.clone()));
        let json = serde_json::to_string_pretty(&report).expect("report serializes");
        std::fs::write(BENCH_JSON, json + "\n").expect("write BENCH_engine.json");
        println!("patched 1M-tier scaling rows in {BENCH_JSON}");
        return;
    }
    if obs_only {
        // Just the zoned 10k observability/tracing overhead row — a
        // quick iteration loop for overhead work (set
        // VMT_BENCH_OBS_DEBUG=1 for the per-arm phase breakdowns,
        // VMT_BENCH_OBS_PASSES to interleave more passes when one is
        // too noisy to trust).
        let passes = std::env::var("VMT_BENCH_OBS_PASSES")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&p| p > 0)
            .unwrap_or(1);
        let o = measure_observability(10_000, passes);
        println!(
            "observability vmt-wa @ 10000 (zoned): spans-only {:.0} ticks/s, observed {:.0} \
             ticks/s -> {:+.1}% overhead",
            o.ticks_per_sec_instrumented,
            o.ticks_per_sec_observed.unwrap(),
            o.observability_overhead.unwrap() * 100.0,
        );
        println!(
            "tracing vmt-wa @ 10000 (zoned, sample 200): traced {:.0} ticks/s -> {:+.1}% overhead",
            o.ticks_per_sec_traced.unwrap(),
            o.tracing_overhead.unwrap() * 100.0,
        );
        return;
    }
    let full = !smoke
        && !refresh_phases
        && (std::env::args().any(|a| a == "--bench")
            || std::env::var("VMT_BENCH_FULL").is_ok_and(|v| v == "1"));
    if refresh_phases {
        // Re-measure only `phases[]` and patch it into the existing
        // artifact; the scaling sweep (tens of minutes at 100k) keeps
        // its recorded rows.
        let text = std::fs::read_to_string(BENCH_JSON)
            .unwrap_or_else(|err| panic!("cannot read {BENCH_JSON}: {err}"));
        let mut report: Report =
            serde_json::from_str(&text).expect("BENCH_engine.json matches the report schema");
        report.phases = measure_all_phases();
        let json = serde_json::to_string_pretty(&report).expect("report serializes");
        std::fs::write(BENCH_JSON, json + "\n").expect("write BENCH_engine.json");
        println!("patched phases[] in {BENCH_JSON}");
        return;
    }
    if !full {
        // Smoke pass: prove both paths run; no JSON output.
        for name in SCHEDULERS {
            for naive in [false, true] {
                let m = measure(name, 20, naive);
                println!(
                    "smoke {name} ({}): {:.0} ticks/s",
                    m.implementation, m.ticks_per_sec
                );
            }
        }
        // Exercise the sharded parallel tick path too.
        let s = measure_scaling("vmt-wa", 20, 4);
        println!(
            "smoke vmt-wa x{} threads: {:.0} ticks/s",
            s.threads, s.ticks_per_sec
        );
        // And the instrumented path: phase spans must account for the
        // tick time they claim to measure.
        let p = measure_phases("vmt-wa", 20);
        println!(
            "smoke vmt-wa instrumented: {:.0} ticks/s, phase coverage {:.1}%",
            p.ticks_per_sec_instrumented,
            p.coverage * 100.0
        );
        // And the fully-observed and traced zoned paths (series +
        // gauges + publisher; span tracing), single pass each: proves
        // the measurement harness runs.
        let o = measure_observability(20, 1);
        println!(
            "smoke vmt-wa observed (zoned): {:.0} ticks/s ({:+.1}% vs spans-only)",
            o.ticks_per_sec_observed.unwrap(),
            o.observability_overhead.unwrap() * 100.0,
        );
        println!(
            "smoke vmt-wa traced (zoned): {:.0} ticks/s ({:+.1}% vs spans-only)",
            o.ticks_per_sec_traced.unwrap(),
            o.tracing_overhead.unwrap() * 100.0,
        );
        return;
    }

    let mut measurements = Vec::new();
    let mut speedups = Vec::new();
    for servers in [100usize, 1000] {
        for name in SCHEDULERS {
            let indexed = measure(name, servers, false);
            let naive = measure(name, servers, true);
            println!(
                "{name} @ {servers}: indexed {:.0} ticks/s ({:.0} jobs/s), naive {:.0} ticks/s ({:.0} jobs/s) -> {:.2}x",
                indexed.ticks_per_sec,
                indexed.jobs_placed_per_sec,
                naive.ticks_per_sec,
                naive.jobs_placed_per_sec,
                indexed.ticks_per_sec / naive.ticks_per_sec,
            );
            speedups.push(Speedup {
                scheduler: name.to_string(),
                servers,
                ticks_per_sec_indexed: indexed.ticks_per_sec,
                ticks_per_sec_naive: naive.ticks_per_sec,
                speedup: indexed.ticks_per_sec / naive.ticks_per_sec,
            });
            measurements.push(indexed);
            measurements.push(naive);
        }
    }
    // Thread-count scaling of the deterministic sharded tick. The 10k
    // rows double as the "10,000-server 48 h run completes" record and
    // the 100k rows as the headline-scale record; the naive references
    // are skipped here (at 10k+ servers their O(n) scans per placement
    // would take hours and prove nothing new).
    let mut scaling = Vec::new();
    for servers in [1000usize, 10_000, 100_000] {
        for threads in [1usize, 2, 4, 8] {
            let s = measure_scaling("vmt-wa", servers, threads);
            println!(
                "scaling vmt-wa @ {servers} x{threads} threads: {:.0} ticks/s ({:.1}s for {} ticks, {} placements)",
                s.ticks_per_sec, s.elapsed_s, s.ticks, s.placements,
            );
            scaling.push(s);
        }
    }
    // The 1M tier: short-horizon rows at the bracketing thread counts,
    // with the pooled job table's bytes-per-server recorded.
    scaling.extend(measure_million());
    // Instrumented per-phase breakdown at the headline cluster size,
    // plus the zoned 10k observability-overhead row.
    let phases = measure_all_phases();

    let report = Report {
        description: "Simulation engine throughput: incremental-index hot path vs retained \
                      naive-scan baseline (bit-identical results; see tests/differential.rs)"
            .to_string(),
        scenario: "ClusterConfig::paper_default, TraceConfig::paper_default (48 h diurnal trace, \
                   one tick per simulated minute)"
            .to_string(),
        measurements,
        speedups,
        scaling,
        phases,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(BENCH_JSON, json + "\n").expect("write BENCH_engine.json");
    println!("wrote {BENCH_JSON}");
}
