//! Regeneration benchmarks for the paper's tables and the TCO analysis.
//!
//! Each bench target regenerates one table of the paper (at a reduced
//! cluster scale where a simulation is involved, so Criterion can sample
//! it); the `vmt-experiments` CLI produces the full-scale versions.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

/// Table I — workload catalog with derived classes.
fn table1(c: &mut Criterion) {
    c.bench_function("table1_workload_catalog", |b| {
        b.iter(|| black_box(vmt_experiments::table1::table1()))
    });
}

/// Table II — the GV → VMT equivalence search (reduced scale: 20
/// servers, coarse GV grid).
fn table2(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_gv_to_vmt_mapping");
    group.sample_size(10);
    group.bench_function("20_servers", |b| {
        b.iter(|| {
            black_box(vmt_experiments::table2::table2_with_grid(
                20, 20.0, 30.0, 2.0,
            ))
        })
    });
    group.finish();
}

/// §V-E — the TCO summary from a given reduction (pure arithmetic).
fn tco(c: &mut Criterion) {
    c.bench_function("tco_summary_from_reduction", |b| {
        b.iter(|| black_box(vmt_experiments::tco_summary::tco_summary(0.128)))
    });
}

criterion_group!(benches, table1, table2, tco);
criterion_main!(benches);
