//! Simulator micro- and macro-benchmarks: per-server physics tick, full
//! engine throughput, and scaling in cluster size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use vmt_core::PolicyKind;
use vmt_dcsim::{ClusterConfig, Server, ServerId, Simulation};
use vmt_units::{Hours, Seconds};
use vmt_workload::{DiurnalTrace, Job, JobId, TraceConfig, WorkloadKind};

/// One physics tick of a loaded, wax-equipped server.
fn server_tick(c: &mut Criterion) {
    let config = ClusterConfig::paper_default(1);
    let mut server = Server::from_config(ServerId(0), &config);
    for i in 0..24 {
        server.start_job(&Job::new(
            JobId(i),
            WorkloadKind::ALL[i as usize % 5],
            Seconds::new(600.0),
        ));
    }
    c.bench_function("server_tick_one_minute", |b| {
        b.iter(|| black_box(server.tick(Seconds::new(60.0))))
    });
}

/// Full two-day simulation throughput at increasing cluster sizes.
fn engine_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_two_day_run");
    group.sample_size(10);
    for servers in [10usize, 50, 100] {
        group.bench_with_input(
            BenchmarkId::from_parameter(servers),
            &servers,
            |b, &servers| {
                b.iter(|| {
                    let cluster = ClusterConfig::paper_default(servers);
                    let sched = PolicyKind::VmtTa { gv: 22.0 }.build(&cluster);
                    let trace = DiurnalTrace::new(TraceConfig::paper_default());
                    black_box(Simulation::new(cluster, trace, sched).run())
                })
            },
        );
    }
    group.finish();
}

/// A short run at several heatmap strides, isolating metrics overhead.
fn metrics_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("metrics_stride");
    group.sample_size(10);
    for stride in [1usize, 5, 30] {
        group.bench_with_input(
            BenchmarkId::from_parameter(stride),
            &stride,
            |b, &stride| {
                b.iter(|| {
                    let mut cluster = ClusterConfig::paper_default(20);
                    cluster.heatmap_stride = stride;
                    let mut trace = TraceConfig::paper_default();
                    trace.horizon = Hours::new(12.0);
                    let sched = PolicyKind::RoundRobin.build(&cluster);
                    black_box(Simulation::new(cluster, DiurnalTrace::new(trace), sched).run())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, server_tick, engine_scaling, metrics_overhead);
criterion_main!(benches);
