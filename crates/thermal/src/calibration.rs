//! Derivation of reduced-order model constants from target operating
//! points.
//!
//! The paper calibrates its per-server DCsim parameters from a CFD model
//! that was itself validated against a real wax-filled server. We do not
//! have that CFD model; this module is the documented substitute. Each
//! function solves a small closed-form inverse problem: *given the
//! operating point the paper reports, what must the lumped constant be?*
//!
//! The two constants this produces — the air-stream capacity rate
//! (≈17 W/K) and the air-to-wax exchanger conductance (≈16 W/K) — are the
//! defaults baked into [`crate::AirStream::paper_default`] and the
//! simulator's wax exchanger.

use crate::AirStream;
use vmt_units::{Celsius, Joules, Seconds, Watts, WattsPerKelvin};

/// Capacity rate `ṁ·c_p` that makes a server drawing `power` settle at
/// `target` air temperature with the given `inlet`.
///
/// E.g. the paper's round-robin cluster "almost but does not quite"
/// reaches the 35.7 °C melt point at peak: a ≈232 W mixed server at a
/// 22 °C inlet targeting ≈35.6 °C gives ≈17 W/K.
///
/// # Panics
///
/// Panics if `target` is not strictly above `inlet` or `power` is not
/// strictly positive.
pub fn capacity_rate_for_operating_point(
    power: Watts,
    inlet: Celsius,
    target: Celsius,
) -> WattsPerKelvin {
    assert!(target > inlet, "target {target} must exceed inlet {inlet}");
    assert!(power.get() > 0.0, "power must be positive, got {power}");
    WattsPerKelvin::new(power.get() / (target - inlet).get())
}

/// Exchanger conductance `UA` that melts a full wax pack of latent
/// capacity `latent` in `duration` when the air holds `air_excess` above
/// the melt point.
///
/// E.g. the paper's GV=22 hot group sits ≈3.2 K above the melt point and
/// (nearly) exhausts its ≈787 kJ pack across the multi-hour peak:
/// 787 kJ / (4.5 h × 3.2 K) ≈ 15–16 W/K.
///
/// # Panics
///
/// Panics if any argument is not strictly positive.
pub fn ua_for_melt_duration(
    latent: Joules,
    air_excess: vmt_units::DegC,
    duration: Seconds,
) -> WattsPerKelvin {
    assert!(latent.get() > 0.0, "latent capacity must be positive");
    assert!(air_excess.get() > 0.0, "air excess must be positive");
    assert!(duration.get() > 0.0, "duration must be positive");
    WattsPerKelvin::new(latent.get() / (air_excess.get() * duration.get()))
}

/// Steady-state air temperature at the wax implied by a power draw — the
/// forward map used to sanity-check a calibration.
pub fn operating_point(air: AirStream, inlet: Celsius, power: Watts) -> Celsius {
    inlet + air.temperature_rise(power)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmt_units::{DegC, Hours};

    #[test]
    fn capacity_rate_reproduces_paper_round_robin_point() {
        let rate = capacity_rate_for_operating_point(
            Watts::new(232.0),
            Celsius::new(22.0),
            Celsius::new(35.3),
        );
        assert!((rate.get() - 17.44).abs() < 0.05, "rate {rate}");
    }

    #[test]
    fn ua_matches_default_scale() {
        let ua = ua_for_melt_duration(
            Joules::new(787_000.0),
            DegC::new(3.2),
            Hours::new(4.5).to_seconds(),
        );
        assert!((ua.get() - 15.2).abs() < 0.3, "ua {ua}");
    }

    #[test]
    fn forward_and_inverse_agree() {
        let rate = capacity_rate_for_operating_point(
            Watts::new(300.0),
            Celsius::new(22.0),
            Celsius::new(40.0),
        );
        let air = AirStream::new(rate);
        let t = operating_point(air, Celsius::new(22.0), Watts::new(300.0));
        assert!((t.get() - 40.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "must exceed inlet")]
    fn rejects_inverted_operating_point() {
        capacity_rate_for_operating_point(
            Watts::new(100.0),
            Celsius::new(30.0),
            Celsius::new(25.0),
        );
    }
}
