//! Cluster cooling-load accounting.

use vmt_units::{Joules, Seconds, Watts};

/// The instantaneous heat a server (or cluster) asks the cooling system to
/// remove.
///
/// The accounting identity behind TTS and VMT: electrical power becomes
/// heat, but the portion absorbed by melting wax is *deferred* —
/// `cooling load = P − Q̇_wax` — and returned later while the wax
/// refreezes (`Q̇_wax` negative). Wax never destroys heat; it time-shifts
/// it.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CoolingLoad {
    /// Electrical power converted to heat.
    pub electrical: Watts,
    /// Heat-flow into the wax (positive while melting, negative while
    /// freezing).
    pub into_wax: Watts,
}

impl CoolingLoad {
    /// Heat rejected to the room right now.
    pub fn rejected(&self) -> Watts {
        self.electrical - self.into_wax
    }
}

impl core::ops::Add for CoolingLoad {
    type Output = CoolingLoad;
    fn add(self, rhs: Self) -> Self {
        CoolingLoad {
            electrical: self.electrical + rhs.electrical,
            into_wax: self.into_wax + rhs.into_wax,
        }
    }
}

impl core::iter::Sum for CoolingLoad {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(
            CoolingLoad {
                electrical: Watts::ZERO,
                into_wax: Watts::ZERO,
            },
            |a, b| a + b,
        )
    }
}

/// A recorded time series of cluster cooling load.
///
/// # Examples
///
/// ```
/// use vmt_thermal::CoolingLoadSeries;
/// use vmt_units::{Seconds, Watts};
///
/// let mut series = CoolingLoadSeries::new(Seconds::new(60.0));
/// series.push(Watts::new(200_000.0));
/// series.push(Watts::new(232_000.0));
/// series.push(Watts::new(210_000.0));
/// assert_eq!(series.peak(), Watts::new(232_000.0));
/// ```
#[derive(Debug, Clone, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct CoolingLoadSeries {
    dt: Seconds,
    samples: Vec<Watts>,
}

impl CoolingLoadSeries {
    /// Creates an empty series sampled every `dt`.
    pub fn new(dt: Seconds) -> Self {
        Self {
            dt,
            samples: Vec::new(),
        }
    }

    /// Sampling interval.
    pub fn dt(&self) -> Seconds {
        self.dt
    }

    /// Appends one sample.
    pub fn push(&mut self, load: Watts) {
        self.samples.push(load);
    }

    /// The recorded samples.
    pub fn samples(&self) -> &[Watts] {
        &self.samples
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Peak (maximum) cooling load over the series; zero for an empty
    /// series.
    pub fn peak(&self) -> Watts {
        self.samples.iter().copied().fold(Watts::ZERO, Watts::max)
    }

    /// Time (from the start of the series) at which the peak occurs.
    pub fn peak_time(&self) -> Seconds {
        let idx = self
            .samples
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("loads are finite"))
            .map(|(i, _)| i)
            .unwrap_or(0);
        self.dt * idx as f64
    }

    /// Mean cooling load; zero for an empty series.
    pub fn mean(&self) -> Watts {
        if self.samples.is_empty() {
            return Watts::ZERO;
        }
        self.samples.iter().copied().sum::<Watts>() / self.samples.len() as f64
    }

    /// Total heat removed across the series (`Σ load·dt`).
    pub fn total_heat(&self) -> Joules {
        self.samples.iter().map(|&w| w * self.dt).sum()
    }

    /// Compares this series' peak against a baseline's.
    pub fn compare_peak(&self, baseline: &CoolingLoadSeries) -> PeakComparison {
        PeakComparison::new(baseline.peak(), self.peak())
    }
}

/// Peak-cooling-load comparison against a baseline — the paper's headline
/// metric ("peak cooling load reduction").
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PeakComparison {
    baseline: Watts,
    subject: Watts,
}

impl PeakComparison {
    /// Creates a comparison from two peaks.
    pub fn new(baseline: Watts, subject: Watts) -> Self {
        Self { baseline, subject }
    }

    /// The baseline peak.
    pub fn baseline(&self) -> Watts {
        self.baseline
    }

    /// The subject peak.
    pub fn subject(&self) -> Watts {
        self.subject
    }

    /// Peak reduction as a fraction of the baseline peak (positive = the
    /// subject peaks lower). The paper reports this as a percentage, e.g.
    /// −12.8%.
    pub fn reduction(&self) -> f64 {
        if self.baseline.get() == 0.0 {
            return 0.0;
        }
        1.0 - self.subject / self.baseline
    }

    /// Peak reduction in percent.
    pub fn reduction_percent(&self) -> f64 {
        self.reduction() * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejected_heat_identity() {
        let load = CoolingLoad {
            electrical: Watts::new(300.0),
            into_wax: Watts::new(48.0),
        };
        assert_eq!(load.rejected(), Watts::new(252.0));
        // Freezing wax adds heat back.
        let releasing = CoolingLoad {
            electrical: Watts::new(150.0),
            into_wax: Watts::new(-30.0),
        };
        assert_eq!(releasing.rejected(), Watts::new(180.0));
    }

    #[test]
    fn cooling_loads_sum() {
        let total: CoolingLoad = [
            CoolingLoad {
                electrical: Watts::new(100.0),
                into_wax: Watts::new(10.0),
            },
            CoolingLoad {
                electrical: Watts::new(200.0),
                into_wax: Watts::new(-5.0),
            },
        ]
        .into_iter()
        .sum();
        assert_eq!(total.electrical, Watts::new(300.0));
        assert_eq!(total.into_wax, Watts::new(5.0));
        assert_eq!(total.rejected(), Watts::new(295.0));
    }

    #[test]
    fn series_statistics() {
        let mut s = CoolingLoadSeries::new(Seconds::new(60.0));
        for w in [100.0, 300.0, 200.0] {
            s.push(Watts::new(w));
        }
        assert_eq!(s.len(), 3);
        assert_eq!(s.peak(), Watts::new(300.0));
        assert_eq!(s.peak_time(), Seconds::new(60.0));
        assert_eq!(s.mean(), Watts::new(200.0));
        assert_eq!(s.total_heat(), Joules::new(600.0 * 60.0));
    }

    #[test]
    fn empty_series() {
        let s = CoolingLoadSeries::new(Seconds::new(60.0));
        assert!(s.is_empty());
        assert_eq!(s.peak(), Watts::ZERO);
        assert_eq!(s.mean(), Watts::ZERO);
    }

    #[test]
    fn peak_comparison_matches_paper_arithmetic() {
        // 25 MW baseline reduced 12.8% → 21.8 MW.
        let cmp = PeakComparison::new(Watts::new(25e6), Watts::new(21.8e6));
        assert!((cmp.reduction_percent() - 12.8).abs() < 0.01);
    }

    #[test]
    fn zero_baseline_reduction_is_zero() {
        let cmp = PeakComparison::new(Watts::ZERO, Watts::new(1.0));
        assert_eq!(cmp.reduction(), 0.0);
    }

    #[test]
    fn compare_peak_of_series() {
        let mut base = CoolingLoadSeries::new(Seconds::new(60.0));
        base.push(Watts::new(1000.0));
        let mut subject = CoolingLoadSeries::new(Seconds::new(60.0));
        subject.push(Watts::new(872.0));
        let cmp = subject.compare_peak(&base);
        assert!((cmp.reduction_percent() - 12.8).abs() < 1e-9);
    }
}
