//! Room-level thermal dynamics under a finite cooling plant.
//!
//! The cluster experiments measure the heat *offered* to the cooling
//! system; this model answers the follow-on question: if the plant can
//! only remove `capacity` watts, what happens to the room? Heat beyond
//! the plant's capacity accumulates in the room's thermal mass and the
//! supply-air temperature rises — the quantity that ultimately causes
//! thermal throttling and emergency shutdowns.

use vmt_units::{Celsius, DegC, Joules, Seconds, Watts};

/// A lumped room-air model with a capacity-limited cooling plant.
///
/// # Examples
///
/// ```
/// use vmt_thermal::RoomModel;
/// use vmt_units::{Celsius, Seconds, Watts};
///
/// let mut room = RoomModel::paper_default(Watts::new(25_000.0));
/// // Offered heat above capacity warms the room.
/// room.step(Watts::new(30_000.0), Seconds::new(600.0));
/// assert!(room.temperature() > Celsius::new(22.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RoomModel {
    /// Plant's maximum removable power.
    capacity: Watts,
    /// Supply-air setpoint the plant regulates toward.
    setpoint: Celsius,
    /// Thermal capacitance of the room air + near-term mass (J/K).
    capacitance_j_per_k: f64,
    temperature: Celsius,
}

impl RoomModel {
    /// A room sized for the paper's cluster scale: 22 °C setpoint and a
    /// thermal capacitance of ≈2 MJ/K per 25 kW of plant capacity
    /// (air plus the first few minutes of rack/floor mass).
    pub fn paper_default(capacity: Watts) -> Self {
        Self::new(
            capacity,
            Celsius::new(22.0),
            2.0e6 * capacity.get() / 25_000.0,
        )
    }

    /// Creates a room model at its setpoint.
    ///
    /// # Panics
    ///
    /// Panics if capacity or capacitance is not strictly positive.
    pub fn new(capacity: Watts, setpoint: Celsius, capacitance_j_per_k: f64) -> Self {
        assert!(capacity.get() > 0.0, "capacity must be positive");
        assert!(
            capacitance_j_per_k > 0.0 && capacitance_j_per_k.is_finite(),
            "capacitance must be positive"
        );
        Self {
            capacity,
            setpoint,
            capacitance_j_per_k,
            temperature: setpoint,
        }
    }

    /// Current supply-air temperature.
    pub fn temperature(&self) -> Celsius {
        self.temperature
    }

    /// Degrees above the setpoint.
    pub fn excursion(&self) -> DegC {
        self.temperature - self.setpoint
    }

    /// The plant's capacity.
    pub fn capacity(&self) -> Watts {
        self.capacity
    }

    /// Derates the plant (emergency scenarios).
    pub fn set_capacity(&mut self, capacity: Watts) {
        assert!(capacity.get() > 0.0, "capacity must be positive");
        self.capacity = capacity;
    }

    /// Advances the room by `dt` with `offered` heat arriving from the
    /// IT load. Returns the unremoved energy added to the room this step
    /// (zero when the plant keeps up).
    pub fn step(&mut self, offered: Watts, dt: Seconds) -> Joules {
        // The plant removes up to its capacity; when the room is above
        // setpoint it runs flat out, below setpoint it only matches the
        // offered load (no sub-cooling).
        let removal = if self.temperature > self.setpoint {
            self.capacity
        } else {
            Watts::new(offered.get().min(self.capacity.get()))
        };
        let net = offered - removal;
        let delta = DegC::new(net.get() * dt.get() / self.capacitance_j_per_k);
        self.temperature += delta;
        // The plant never cools below its setpoint.
        if self.temperature < self.setpoint {
            self.temperature = self.setpoint;
        }
        Joules::new((net.get() * dt.get()).max(0.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn holds_setpoint_when_capacity_suffices() {
        let mut room = RoomModel::paper_default(Watts::new(25_000.0));
        for _ in 0..60 {
            let overflow = room.step(Watts::new(20_000.0), Seconds::new(60.0));
            assert_eq!(overflow.get(), 0.0);
        }
        assert_eq!(room.temperature(), Celsius::new(22.0));
    }

    #[test]
    fn overload_warms_the_room_then_recovers() {
        let mut room = RoomModel::paper_default(Watts::new(25_000.0));
        // 30 minutes of 20% overload.
        for _ in 0..30 {
            room.step(Watts::new(30_000.0), Seconds::new(60.0));
        }
        let peak = room.excursion();
        // 5 kW × 1800 s / 2 MJ/K = 4.5 K.
        assert!((peak.get() - 4.5).abs() < 0.01, "excursion {peak}");
        // Load drops; the plant pulls the room back to setpoint.
        for _ in 0..60 {
            room.step(Watts::new(15_000.0), Seconds::new(60.0));
        }
        assert_eq!(room.temperature(), Celsius::new(22.0));
    }

    #[test]
    fn excursion_scales_with_unremoved_energy() {
        let mut a = RoomModel::paper_default(Watts::new(25_000.0));
        let mut b = RoomModel::paper_default(Watts::new(25_000.0));
        for _ in 0..30 {
            a.step(Watts::new(27_500.0), Seconds::new(60.0));
            b.step(Watts::new(30_000.0), Seconds::new(60.0));
        }
        assert!((b.excursion().get() / a.excursion().get() - 2.0).abs() < 0.01);
    }

    #[test]
    fn derating_mid_run() {
        let mut room = RoomModel::paper_default(Watts::new(25_000.0));
        room.set_capacity(Watts::new(20_000.0));
        room.step(Watts::new(25_000.0), Seconds::new(600.0));
        assert!(room.excursion().get() > 0.0);
    }
}
