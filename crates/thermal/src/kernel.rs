//! Plain-value thermal step kernel.
//!
//! [`crate::ServerThermalModel::step`] delegates here, and the
//! structure-of-arrays farm sweep in `vmt_dcsim` calls these functions
//! directly over contiguous `f64` state — one implementation, so the
//! per-object and the vectorized paths cannot drift apart. The functions
//! are branch-free and operate on raw numbers so the compiler can keep
//! them in registers across a tight loop.

/// Exponential decay factor `e^(−dt/τ)` for one step.
///
/// A whole farm shares one `(dt, τ)` pair per tick, so the sweep hoists
/// this single `exp` out of the per-server loop.
#[inline]
pub fn decay_factor(dt_s: f64, time_constant_s: f64) -> f64 {
    (-dt_s / time_constant_s).exp()
}

/// One first-order lag step of the air temperature at the wax.
///
/// Exact discrete response `T' = T_ss + (T − T_ss)·e^(−dt/τ)` with
/// `T_ss = T_inlet + P / (ṁ·c_p)`; `decay` is [`decay_factor`].
/// Returns the new air-at-wax temperature in °C.
#[inline]
pub fn step(
    at_wax_c: f64,
    inlet_c: f64,
    power_w: f64,
    capacity_rate_w_per_k: f64,
    decay: f64,
) -> f64 {
    let ss = inlet_c + power_w / capacity_rate_w_per_k;
    ss + (at_wax_c - ss) * decay
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converges_to_steady_state() {
        let decay = decay_factor(60.0, 300.0);
        let mut t = 22.0;
        for _ in 0..120 {
            t = step(t, 22.0, 300.0, 17.5, decay);
        }
        let ss = 22.0 + 300.0 / 17.5;
        assert!((t - ss).abs() < 0.01);
    }

    #[test]
    fn zero_dt_limit_is_identity() {
        // decay → 1 as dt → 0: the state must not move.
        let t = step(31.25, 22.0, 250.0, 17.5, 1.0);
        assert_eq!(t, 31.25);
    }
}
