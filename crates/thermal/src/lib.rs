//! Server air-path and cooling-load thermal models.
//!
//! The VMT paper evaluates on a cluster simulator whose per-server thermal
//! behavior was distilled from a CFD model validated against a real,
//! wax-filled test server (its reference \[19\]). This crate is that
//! reduced-order substrate:
//!
//! * [`AirStream`] — the server's cooling air: a mass flow with a heat
//!   capacity rate `ṁ·c_p` (W/K), so a power draw upwind produces a
//!   temperature rise `ΔT = P / (ṁ·c_p)` downwind.
//! * [`ServerThermalModel`] — the air temperature *at the wax containers*
//!   (downwind of the CPU sockets): steady state `T_inlet + P/(ṁ·c_p)`
//!   approached with a first-order lag for the server's thermal mass.
//! * [`InletModel`] — per-server inlet temperatures: uniform, or normally
//!   distributed across servers to model uneven room airflow (Figures 19
//!   and 20 of the paper).
//! * [`CoolingLoad`] — the accounting identity the whole evaluation rests
//!   on: heat rejected to the room = electrical power − heat stored in wax
//!   (+ heat released while the wax refreezes).
//! * [`RoomModel`] — room-level dynamics under a capacity-limited
//!   cooling plant (what happens when the offered heat exceeds what the
//!   plant can remove).
//! * [`calibration`] — derives the model constants from target operating
//!   points, standing in for the paper's CFD design-space exploration.
//!
//! # Examples
//!
//! ```
//! use vmt_thermal::{AirStream, ServerThermalModel};
//! use vmt_units::{Celsius, Seconds, Watts};
//!
//! let air = AirStream::paper_default();
//! let mut server = ServerThermalModel::new(Celsius::new(22.0), air);
//! // Step an hour at a mixed-load power draw.
//! for _ in 0..60 {
//!     server.step(Watts::new(232.0), Seconds::new(60.0));
//! }
//! // Settles just below the 35.7 °C wax melt point — the paper's
//! // round-robin operating point.
//! assert!(server.air_at_wax() > Celsius::new(35.0));
//! assert!(server.air_at_wax() < Celsius::new(35.7));
//! ```

mod air;
pub mod calibration;
mod cooling;
mod inlet;
pub mod kernel;
mod room;
mod server;

pub use air::AirStream;
pub use cooling::{CoolingLoad, CoolingLoadSeries, PeakComparison};
pub use inlet::InletModel;
pub use room::RoomModel;
pub use server::ServerThermalModel;
