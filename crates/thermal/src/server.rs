//! Air temperature at the wax containers of one server.

use crate::AirStream;
use vmt_units::{Celsius, Seconds, Watts};

/// First-order model of the air temperature at a server's wax containers.
///
/// The wax sits directly downwind of the CPU sockets, so in steady state
/// the air reaching it is `T_inlet + P / (ṁ·c_p)`. The server's heat
/// sinks, chassis, and boards add thermal mass, so a step in power is
/// seen at the wax with a first-order lag (time constant ≈5 minutes for
/// the paper's 2U server — heat sinks dominate).
///
/// Note an important asymmetry the model preserves: the *wax state does
/// not affect the air temperature at the wax* (the wax is downwind of the
/// CPUs), but the wax does change the *exhaust* temperature and therefore
/// the room-level cooling load. That accounting lives in
/// [`crate::CoolingLoad`].
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ServerThermalModel {
    inlet: Celsius,
    air: AirStream,
    /// Lag time constant of the CPU-to-air path.
    time_constant: Seconds,
    /// Current air temperature at the wax.
    at_wax: Celsius,
}

/// Default lag time constant (seconds).
const DEFAULT_TAU_S: f64 = 300.0;

impl ServerThermalModel {
    /// Creates a model at thermal equilibrium with zero power draw.
    pub fn new(inlet: Celsius, air: AirStream) -> Self {
        Self::with_time_constant(inlet, air, Seconds::new(DEFAULT_TAU_S))
    }

    /// Creates a model with an explicit lag time constant.
    ///
    /// # Panics
    ///
    /// Panics if `time_constant` is not strictly positive and finite.
    pub fn with_time_constant(inlet: Celsius, air: AirStream, time_constant: Seconds) -> Self {
        assert!(
            time_constant.get() > 0.0 && time_constant.get().is_finite(),
            "time constant must be positive and finite, got {time_constant}"
        );
        Self {
            inlet,
            air,
            time_constant,
            at_wax: inlet,
        }
    }

    /// The server's inlet temperature.
    pub fn inlet(&self) -> Celsius {
        self.inlet
    }

    /// Changes the inlet temperature (e.g. seasonal or per-server
    /// variation studies).
    pub fn set_inlet(&mut self, inlet: Celsius) {
        self.inlet = inlet;
    }

    /// The cooling air stream.
    pub fn air(&self) -> AirStream {
        self.air
    }

    /// Current air temperature at the wax containers.
    pub fn air_at_wax(&self) -> Celsius {
        self.at_wax
    }

    /// Restores the air-at-wax state directly (state transfer between
    /// this per-object model and the farm's structure-of-arrays form).
    pub fn set_air_at_wax(&mut self, at_wax: Celsius) {
        self.at_wax = at_wax;
    }

    /// The lag time constant of the CPU-to-air path.
    pub fn time_constant(&self) -> Seconds {
        self.time_constant
    }

    /// Steady-state air temperature at the wax for a power draw.
    pub fn steady_state(&self, power: Watts) -> Celsius {
        self.inlet + self.air.temperature_rise(power)
    }

    /// Advances the model by `dt` at the given power draw and returns the
    /// new air temperature at the wax.
    ///
    /// Uses the exact first-order response
    /// `T' = T_ss + (T − T_ss)·e^(−dt/τ)`, so any `dt` is stable.
    pub fn step(&mut self, power: Watts, dt: Seconds) -> Celsius {
        debug_assert!(dt.get() > 0.0, "dt must be positive");
        let decay = crate::kernel::decay_factor(dt.get(), self.time_constant.get());
        self.at_wax = Celsius::new(crate::kernel::step(
            self.at_wax.get(),
            self.inlet.get(),
            power.get(),
            self.air.capacity_rate().get(),
            decay,
        ));
        self.at_wax
    }

    /// Forces the model to equilibrium at a power draw (initialization).
    pub fn settle(&mut self, power: Watts) {
        self.at_wax = self.steady_state(power);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn model() -> ServerThermalModel {
        ServerThermalModel::new(Celsius::new(22.0), AirStream::paper_default())
    }

    #[test]
    fn starts_at_inlet() {
        assert_eq!(model().air_at_wax(), Celsius::new(22.0));
    }

    #[test]
    fn converges_to_steady_state() {
        let mut m = model();
        for _ in 0..120 {
            m.step(Watts::new(300.0), Seconds::new(60.0));
        }
        let ss = m.steady_state(Watts::new(300.0));
        assert!((m.air_at_wax() - ss).get().abs() < 0.01);
    }

    #[test]
    fn paper_operating_points() {
        let m = model();
        // Round-robin mixed load (~232 W) sits just below the melt point.
        let rr = m.steady_state(Watts::new(232.0));
        assert!(
            rr > Celsius::new(35.0) && rr < Celsius::new(35.7),
            "rr={rr}"
        );
        // A GV=22 hot-group server (~290 W) sits clearly above it.
        let hot = m.steady_state(Watts::new(290.0));
        assert!(hot > Celsius::new(38.0), "hot={hot}");
        // A nameplate-peak server is within the paper's 50 °C color scale.
        let peak = m.steady_state(Watts::new(500.0));
        assert!(peak < Celsius::new(52.0), "peak={peak}");
    }

    #[test]
    fn lag_slows_response() {
        let mut fast = ServerThermalModel::with_time_constant(
            Celsius::new(22.0),
            AirStream::paper_default(),
            Seconds::new(60.0),
        );
        let mut slow = ServerThermalModel::with_time_constant(
            Celsius::new(22.0),
            AirStream::paper_default(),
            Seconds::new(1200.0),
        );
        fast.step(Watts::new(400.0), Seconds::new(60.0));
        slow.step(Watts::new(400.0), Seconds::new(60.0));
        assert!(fast.air_at_wax() > slow.air_at_wax());
    }

    #[test]
    fn settle_jumps_to_equilibrium() {
        let mut m = model();
        m.settle(Watts::new(250.0));
        assert_eq!(m.air_at_wax(), m.steady_state(Watts::new(250.0)));
    }

    #[test]
    fn inlet_shift_moves_operating_point() {
        let mut m = model();
        m.settle(Watts::new(232.0));
        let before = m.air_at_wax();
        m.set_inlet(Celsius::new(24.0));
        m.settle(Watts::new(232.0));
        assert!(((m.air_at_wax() - before).get() - 2.0).abs() < 1e-9);
    }

    proptest! {
        /// The temperature always moves monotonically toward steady state
        /// and never crosses it.
        #[test]
        fn no_overshoot(p in 0.0f64..500.0, dt in 1.0f64..3600.0, start in 15.0f64..55.0) {
            let mut m = model();
            m.at_wax = Celsius::new(start);
            let ss = m.steady_state(Watts::new(p));
            let before = m.air_at_wax();
            m.step(Watts::new(p), Seconds::new(dt));
            let after = m.air_at_wax();
            if before <= ss {
                prop_assert!(after >= before && after <= ss + vmt_units::DegC::new(1e-9));
            } else {
                prop_assert!(after <= before && after >= ss - vmt_units::DegC::new(1e-9));
            }
        }
    }
}
