//! The server's cooling air stream.

use vmt_units::{DegC, Watts, WattsPerKelvin};

/// A forced-air cooling stream characterized by its heat capacity rate
/// `ṁ·c_p` (W/K).
///
/// A heat source of power `P` upwind raises the downwind air temperature
/// by `ΔT = P / (ṁ·c_p)`. The paper's 2U server moves roughly 30 CFM
/// through the CPU/wax duct; at air density ≈1.15 kg/m³ and
/// c_p ≈ 1005 J/(kg·K) that is ≈17 W/K, which reproduces the paper's
/// operating points (a ≈232 W mixed-load server sits just below the
/// 35.7 °C melt line at a 22 °C inlet).
///
/// # Examples
///
/// ```
/// use vmt_thermal::AirStream;
/// use vmt_units::Watts;
///
/// let air = AirStream::paper_default();
/// let rise = air.temperature_rise(Watts::new(232.0));
/// assert!((rise.get() - 13.3).abs() < 0.2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct AirStream {
    capacity_rate: WattsPerKelvin,
}

/// Air density at typical server inlet conditions (kg/m³).
const AIR_DENSITY: f64 = 1.15;
/// Specific heat of air (J/kg·K).
const AIR_CP: f64 = 1005.0;

impl AirStream {
    /// Creates a stream with the given heat capacity rate.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_rate` is not strictly positive and finite.
    pub fn new(capacity_rate: WattsPerKelvin) -> Self {
        assert!(
            capacity_rate.get() > 0.0 && capacity_rate.get().is_finite(),
            "capacity rate must be positive and finite, got {capacity_rate}"
        );
        Self { capacity_rate }
    }

    /// Creates a stream from a volumetric flow in cubic feet per minute,
    /// the unit server fans are specified in.
    pub fn from_cfm(cfm: f64) -> Self {
        assert!(
            cfm > 0.0 && cfm.is_finite(),
            "CFM must be positive, got {cfm}"
        );
        let m3_per_s = cfm * 0.000_471_947;
        Self::new(WattsPerKelvin::new(m3_per_s * AIR_DENSITY * AIR_CP))
    }

    /// The calibrated stream for the paper's 2U test server (≈17.5 W/K,
    /// ≈30 CFM through the CPU/wax duct).
    pub fn paper_default() -> Self {
        Self::new(WattsPerKelvin::new(17.5))
    }

    /// Heat capacity rate `ṁ·c_p`.
    pub fn capacity_rate(&self) -> WattsPerKelvin {
        self.capacity_rate
    }

    /// Downwind temperature rise produced by a heat source of `power`.
    pub fn temperature_rise(&self, power: Watts) -> DegC {
        DegC::new(power.get() / self.capacity_rate.get())
    }

    /// Heat carried by a downwind temperature rise (the inverse map).
    pub fn heat_for_rise(&self, rise: DegC) -> Watts {
        self.capacity_rate * rise
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn rise_is_linear_in_power() {
        let air = AirStream::paper_default();
        let r1 = air.temperature_rise(Watts::new(100.0));
        let r2 = air.temperature_rise(Watts::new(200.0));
        assert!((r2.get() - 2.0 * r1.get()).abs() < 1e-12);
    }

    #[test]
    fn cfm_conversion_magnitude() {
        // 30 CFM ≈ 16.4 W/K.
        let air = AirStream::from_cfm(30.0);
        assert!((air.capacity_rate().get() - 16.37).abs() < 0.1);
    }

    #[test]
    #[should_panic(expected = "capacity rate must be positive")]
    fn zero_capacity_rejected() {
        AirStream::new(WattsPerKelvin::new(0.0));
    }

    proptest! {
        /// rise ↔ heat round-trips.
        #[test]
        fn rise_heat_round_trip(p in 0.0f64..1000.0) {
            let air = AirStream::paper_default();
            let rise = air.temperature_rise(Watts::new(p));
            prop_assert!((air.heat_for_rise(rise).get() - p).abs() < 1e-9);
        }
    }
}
