//! Per-server inlet temperature models.

use rand::{Rng, SeedableRng};
use vmt_units::{Celsius, DegC};

/// How server inlet temperatures are distributed across a cluster.
///
/// Real datacenters have spatial inlet variation from uneven room airflow
/// (the paper's §V-D studies σ of 0, 1, and 2 °C). Variation is *spatial*,
/// not temporal: each server's inlet is drawn once, deterministically from
/// the seed and the server index, so repeated queries and repeated runs
/// agree.
///
/// # Examples
///
/// ```
/// use vmt_thermal::InletModel;
/// use vmt_units::{Celsius, DegC};
///
/// let uniform = InletModel::uniform(Celsius::new(22.0));
/// assert_eq!(uniform.inlet_for(17), Celsius::new(22.0));
///
/// let varied = InletModel::normal(Celsius::new(22.0), DegC::new(2.0), 42);
/// // Deterministic per server:
/// assert_eq!(varied.inlet_for(3), varied.inlet_for(3));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum InletModel {
    /// Every server sees the same inlet temperature.
    Uniform {
        /// The common inlet temperature.
        temperature: Celsius,
    },
    /// Inlets are normally distributed across servers.
    Normal {
        /// Mean inlet temperature.
        mean: Celsius,
        /// Standard deviation of the per-server draw.
        stdev: DegC,
        /// Seed making the spatial pattern reproducible.
        seed: u64,
    },
    /// The inlet follows the outdoor day: a sinusoid peaking in the
    /// afternoon, as in economizer ("free cooling") datacenters whose
    /// supply air tracks ambient. Spatially uniform; the daily swing is
    /// the paper's "day to day" environmental variability made
    /// continuous.
    DiurnalAmbient {
        /// Daily mean inlet temperature.
        mean: Celsius,
        /// Half-amplitude of the daily swing.
        swing: DegC,
        /// Hour-of-day of the warmest inlet.
        peak_hour: f64,
    },
}

impl InletModel {
    /// A uniform inlet field.
    pub fn uniform(temperature: Celsius) -> Self {
        InletModel::Uniform { temperature }
    }

    /// A normally distributed inlet field.
    ///
    /// # Panics
    ///
    /// Panics if `stdev` is negative or non-finite.
    pub fn normal(mean: Celsius, stdev: DegC, seed: u64) -> Self {
        assert!(
            stdev.get() >= 0.0 && stdev.get().is_finite(),
            "stdev must be non-negative and finite, got {stdev}"
        );
        InletModel::Normal { mean, stdev, seed }
    }

    /// A diurnal-ambient field.
    ///
    /// # Panics
    ///
    /// Panics if `swing` is negative/non-finite or `peak_hour` is
    /// outside a day.
    pub fn diurnal_ambient(mean: Celsius, swing: DegC, peak_hour: f64) -> Self {
        assert!(
            swing.get() >= 0.0 && swing.get().is_finite(),
            "swing must be non-negative and finite, got {swing}"
        );
        assert!(
            (0.0..24.0).contains(&peak_hour),
            "peak hour must be within a day, got {peak_hour}"
        );
        InletModel::DiurnalAmbient {
            mean,
            swing,
            peak_hour,
        }
    }

    /// Mean inlet temperature of the field.
    pub fn mean(&self) -> Celsius {
        match *self {
            InletModel::Uniform { temperature } => temperature,
            InletModel::Normal { mean, .. } => mean,
            InletModel::DiurnalAmbient { mean, .. } => mean,
        }
    }

    /// Whether the field changes over time (the simulator then refreshes
    /// server inlets every tick).
    pub fn is_time_varying(&self) -> bool {
        matches!(self, InletModel::DiurnalAmbient { .. })
    }

    /// The inlet temperature of server `index` at absolute simulation
    /// time `hours`. Static fields ignore the time.
    pub fn inlet_at(&self, index: usize, hours: f64) -> Celsius {
        match *self {
            InletModel::DiurnalAmbient {
                mean,
                swing,
                peak_hour,
            } => {
                let phase = std::f64::consts::TAU * (hours.rem_euclid(24.0) - peak_hour) / 24.0;
                mean + swing * phase.cos()
            }
            _ => self.inlet_for(index),
        }
    }

    /// The inlet temperature of server `index`.
    ///
    /// Deterministic: the same `(model, index)` pair always produces the
    /// same temperature. Draws are clipped to ±3σ so a tail sample cannot
    /// produce a physically absurd inlet.
    pub fn inlet_for(&self, index: usize) -> Celsius {
        match *self {
            InletModel::Uniform { temperature } => temperature,
            InletModel::DiurnalAmbient { mean, .. } => mean,
            InletModel::Normal { mean, stdev, seed } => {
                if stdev.get() == 0.0 {
                    return mean;
                }
                let mut rng = rand::rngs::SmallRng::seed_from_u64(
                    seed ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                // Box–Muller from two uniform draws.
                let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
                let u2: f64 = rng.gen_range(0.0..1.0);
                let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
                let z = z.clamp(-3.0, 3.0);
                mean + stdev * z
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_ignores_index() {
        let m = InletModel::uniform(Celsius::new(22.0));
        assert_eq!(m.inlet_for(0), m.inlet_for(999));
    }

    #[test]
    fn normal_is_deterministic() {
        let m = InletModel::normal(Celsius::new(22.0), DegC::new(1.0), 7);
        assert_eq!(m.inlet_for(5), m.inlet_for(5));
    }

    #[test]
    fn different_seeds_differ() {
        let a = InletModel::normal(Celsius::new(22.0), DegC::new(1.0), 1);
        let b = InletModel::normal(Celsius::new(22.0), DegC::new(1.0), 2);
        let differs = (0..100).any(|i| a.inlet_for(i) != b.inlet_for(i));
        assert!(differs);
    }

    #[test]
    fn zero_stdev_collapses_to_mean() {
        let m = InletModel::normal(Celsius::new(22.0), DegC::new(0.0), 1);
        assert_eq!(m.inlet_for(42), Celsius::new(22.0));
    }

    #[test]
    fn sample_statistics_match() {
        let m = InletModel::normal(Celsius::new(22.0), DegC::new(2.0), 11);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|i| m.inlet_for(i).get()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 22.0).abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "stdev {}", var.sqrt());
    }

    #[test]
    fn draws_clipped_to_three_sigma() {
        let m = InletModel::normal(Celsius::new(22.0), DegC::new(2.0), 3);
        for i in 0..50_000 {
            let t = m.inlet_for(i).get();
            assert!((16.0..=28.0).contains(&t), "inlet {t} outside ±3σ");
        }
    }

    #[test]
    #[should_panic(expected = "stdev must be non-negative")]
    fn negative_stdev_rejected() {
        InletModel::normal(Celsius::new(22.0), DegC::new(-1.0), 0);
    }

    #[test]
    fn diurnal_ambient_peaks_at_the_configured_hour() {
        let m = InletModel::diurnal_ambient(Celsius::new(22.0), DegC::new(3.0), 15.0);
        assert!(m.is_time_varying());
        assert_eq!(m.inlet_at(0, 15.0), Celsius::new(25.0));
        assert_eq!(m.inlet_at(0, 3.0), Celsius::new(19.0));
        // Next day, same hour.
        assert_eq!(m.inlet_at(7, 39.0), Celsius::new(25.0));
        // Static query falls back to the mean.
        assert_eq!(m.inlet_for(3), Celsius::new(22.0));
    }

    #[test]
    fn static_fields_ignore_time() {
        let m = InletModel::uniform(Celsius::new(22.0));
        assert!(!m.is_time_varying());
        assert_eq!(m.inlet_at(5, 13.0), Celsius::new(22.0));
    }

    #[test]
    #[should_panic(expected = "peak hour")]
    fn diurnal_peak_hour_validated() {
        InletModel::diurnal_ambient(Celsius::new(22.0), DegC::new(1.0), 25.0);
    }
}
