//! RAPL-style power sensor emulation.

use vmt_units::{Joules, Seconds, Watts};

/// A RAPL-style energy-counter power sensor.
///
/// Real servers do not expose instantaneous power; they expose a wrapping
/// energy counter with a fixed resolution, and software recovers average
/// power by differencing two counter reads over a window. VMT's job
/// classifier and the wax-state estimator consume power through this
/// interface so that sensor quantization is part of the evaluated system,
/// not an idealization.
///
/// # Examples
///
/// ```
/// use vmt_power::PowerSensor;
/// use vmt_units::{Seconds, Watts};
///
/// let mut sensor = PowerSensor::rapl_like();
/// sensor.accumulate(Watts::new(250.0), Seconds::new(60.0));
/// let avg = sensor.window_average(Seconds::new(60.0));
/// assert!((avg.get() - 250.0).abs() < 0.01);
/// ```
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct PowerSensor {
    /// Energy counter in resolution units.
    counter: u64,
    /// Counter value at the start of the current window.
    window_start: u64,
    /// Joules per counter unit.
    resolution: f64,
    /// Counter wrap modulus, in units.
    wrap: u64,
    /// Sub-unit energy not yet accumulated into the counter.
    residual_joules: f64,
}

impl PowerSensor {
    /// A sensor with RAPL-like characteristics: 15.3 µJ resolution and a
    /// 32-bit wrapping counter.
    pub fn rapl_like() -> Self {
        Self::new(1.0 / 65_536.0, u64::from(u32::MAX) + 1)
    }

    /// Creates a sensor with `resolution` joules per counter unit and a
    /// counter that wraps at `wrap` units.
    ///
    /// # Panics
    ///
    /// Panics if `resolution` is not strictly positive or `wrap` is zero.
    pub fn new(resolution: f64, wrap: u64) -> Self {
        assert!(
            resolution > 0.0 && resolution.is_finite(),
            "resolution must be positive"
        );
        assert!(wrap > 0, "wrap modulus must be non-zero");
        Self {
            counter: 0,
            window_start: 0,
            resolution,
            wrap,
            residual_joules: 0.0,
        }
    }

    /// Feeds energy into the counter (called by the simulator each tick).
    pub fn accumulate(&mut self, power: Watts, dt: Seconds) {
        let energy = (power * dt).get() + self.residual_joules;
        let units = (energy / self.resolution).floor();
        self.residual_joules = energy - units * self.resolution;
        self.counter = (self.counter + units as u64) % self.wrap;
    }

    /// Raw counter value, as software would read it.
    pub fn raw(&self) -> u64 {
        self.counter
    }

    /// Energy accumulated since the start of the current window, handling
    /// a single counter wrap (windows must be short enough that the
    /// counter cannot wrap twice, as with real RAPL).
    pub fn window_energy(&self) -> Joules {
        let delta = if self.counter >= self.window_start {
            self.counter - self.window_start
        } else {
            self.wrap - self.window_start + self.counter
        };
        Joules::new(delta as f64 * self.resolution)
    }

    /// Average power over the current window, then restarts the window.
    pub fn window_average(&mut self, window: Seconds) -> Watts {
        let avg = self.window_energy() / window;
        self.window_start = self.counter;
        avg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_average_power() {
        let mut s = PowerSensor::rapl_like();
        for _ in 0..60 {
            s.accumulate(Watts::new(137.2), Seconds::new(1.0));
        }
        let avg = s.window_average(Seconds::new(60.0));
        assert!((avg.get() - 137.2).abs() < 0.01);
    }

    #[test]
    fn window_restarts() {
        let mut s = PowerSensor::rapl_like();
        s.accumulate(Watts::new(100.0), Seconds::new(10.0));
        s.window_average(Seconds::new(10.0));
        s.accumulate(Watts::new(400.0), Seconds::new(10.0));
        let avg = s.window_average(Seconds::new(10.0));
        assert!((avg.get() - 400.0).abs() < 0.01);
    }

    #[test]
    fn survives_counter_wrap() {
        // Tiny wrap so a single window wraps once.
        let mut s = PowerSensor::new(1.0, 1000);
        s.accumulate(Watts::new(150.0), Seconds::new(4.0)); // 600 units
        s.window_average(Seconds::new(4.0));
        s.accumulate(Watts::new(150.0), Seconds::new(4.0)); // wraps past 1000
        let avg = s.window_average(Seconds::new(4.0));
        assert!((avg.get() - 150.0).abs() < 1.0);
    }

    #[test]
    fn residual_energy_not_lost() {
        // Resolution of 10 J; 1 W for 1 s leaves sub-unit residue each call.
        let mut s = PowerSensor::new(10.0, 1_000_000);
        for _ in 0..100 {
            s.accumulate(Watts::new(1.0), Seconds::new(1.0));
        }
        // 100 J total → 10 units.
        assert_eq!(s.raw(), 10);
    }

    #[test]
    #[should_panic(expected = "resolution must be positive")]
    fn zero_resolution_rejected() {
        PowerSensor::new(0.0, 100);
    }
}
