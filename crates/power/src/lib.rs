//! Server power models and power-sensor emulation.
//!
//! The VMT paper approximates per-core power with a linear model (its
//! reference \[14\], Kontorinis et al.) on a 2U server with 4× Xeon
//! E7-4809 v4 CPUs (32 cores), a 100 W idle floor, and a 500 W nameplate
//! peak. This crate provides:
//!
//! * [`ServerPowerModel`] — the linear per-core power model: server power
//!   is the idle floor plus the sum of the active cores' per-job draws.
//! * [`LinearUtilizationPower`] — the coarser utilization-proportional
//!   form `P(u) = P_idle + (P_peak − P_idle)·u` used for whole-cluster
//!   sanity checks and TCO sizing.
//! * [`PowerSensor`] — a RAPL-style sensor: a wrapping energy counter
//!   sampled at a fixed resolution, from which average power over a window
//!   is recovered. VMT's job classifier and the wax-state estimator read
//!   power through this interface rather than from the model directly.
//!
//! # Examples
//!
//! ```
//! use vmt_power::ServerPowerModel;
//! use vmt_units::Watts;
//!
//! let model = ServerPowerModel::paper_default();
//! // An idle server draws the floor.
//! assert_eq!(model.power([]), Watts::new(100.0));
//! // Eight web-search cores at 4.65 W each.
//! let p = model.power(std::iter::repeat(Watts::new(4.65)).take(8));
//! assert!((p.get() - 137.2).abs() < 1e-9);
//! ```

mod model;
mod sensor;

pub use model::{LinearUtilizationPower, PowerModelError, ServerPowerModel};
pub use sensor::PowerSensor;
