//! Linear server power models.

use core::fmt;
use vmt_units::{Fraction, Watts};

/// Error type for power-model construction.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum PowerModelError {
    /// The idle power exceeded the peak power.
    IdleAbovePeak {
        /// Configured idle power.
        idle: Watts,
        /// Configured peak power.
        peak: Watts,
    },
    /// A power value was negative or non-finite.
    InvalidPower {
        /// Name of the offending parameter.
        parameter: &'static str,
        /// The rejected value in watts.
        value: f64,
    },
    /// The core count was zero.
    ZeroCores,
}

impl fmt::Display for PowerModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PowerModelError::IdleAbovePeak { idle, peak } => {
                write!(f, "idle power {idle} exceeds peak power {peak}")
            }
            PowerModelError::InvalidPower { parameter, value } => {
                write!(
                    f,
                    "power parameter {parameter} must be non-negative and finite, got {value}"
                )
            }
            PowerModelError::ZeroCores => write!(f, "server must have at least one core"),
        }
    }
}

impl std::error::Error for PowerModelError {}

/// Per-core linear server power model: `P = P_idle + Σ p_core`.
///
/// # Examples
///
/// ```
/// use vmt_power::ServerPowerModel;
/// use vmt_units::Watts;
///
/// let model = ServerPowerModel::new(Watts::new(100.0), Watts::new(500.0), 32)?;
/// let busy = model.power(std::iter::repeat(Watts::new(7.44)).take(32));
/// assert!(busy <= model.nameplate_peak());
/// # Ok::<(), vmt_power::PowerModelError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ServerPowerModel {
    idle: Watts,
    nameplate_peak: Watts,
    cores: u32,
}

impl ServerPowerModel {
    /// Creates a model with the given idle floor, nameplate peak, and core
    /// count.
    ///
    /// # Errors
    ///
    /// Returns an error if idle exceeds peak, either power is negative or
    /// non-finite, or `cores` is zero.
    pub fn new(idle: Watts, nameplate_peak: Watts, cores: u32) -> Result<Self, PowerModelError> {
        for (name, value) in [("idle", idle), ("nameplate_peak", nameplate_peak)] {
            if !(value.get() >= 0.0 && value.get().is_finite()) {
                return Err(PowerModelError::InvalidPower {
                    parameter: name,
                    value: value.get(),
                });
            }
        }
        if idle > nameplate_peak {
            return Err(PowerModelError::IdleAbovePeak {
                idle,
                peak: nameplate_peak,
            });
        }
        if cores == 0 {
            return Err(PowerModelError::ZeroCores);
        }
        Ok(Self {
            idle,
            nameplate_peak,
            cores,
        })
    }

    /// The paper's test server: 100 W idle, 500 W peak, 32 cores
    /// (4× 8-core Xeon E7-4809 v4).
    pub fn paper_default() -> Self {
        Self::new(Watts::new(100.0), Watts::new(500.0), 32).expect("paper defaults are valid")
    }

    /// Idle (zero-load) power.
    pub fn idle(&self) -> Watts {
        self.idle
    }

    /// Nameplate peak power.
    pub fn nameplate_peak(&self) -> Watts {
        self.nameplate_peak
    }

    /// Number of physical cores.
    pub fn cores(&self) -> u32 {
        self.cores
    }

    /// Server power for a set of active-core draws: the idle floor plus
    /// the sum of per-core powers.
    ///
    /// The caller is responsible for passing at most [`cores`] draws; the
    /// model sums whatever it is given (debug builds assert the bound).
    ///
    /// [`cores`]: ServerPowerModel::cores
    pub fn power(&self, core_draws: impl IntoIterator<Item = Watts>) -> Watts {
        let mut count = 0u32;
        let total: Watts = core_draws.into_iter().inspect(|_| count += 1).sum();
        debug_assert!(
            count <= self.cores,
            "{count} core draws exceed the server's {} cores",
            self.cores
        );
        self.idle + total
    }
}

/// Utilization-proportional power: `P(u) = P_idle + (P_peak − P_idle)·u`.
///
/// The coarse form used when only an aggregate utilization is known — e.g.
/// cluster-level sanity checks and cooling-system sizing.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct LinearUtilizationPower {
    idle: Watts,
    peak: Watts,
}

impl LinearUtilizationPower {
    /// Creates the model.
    ///
    /// # Errors
    ///
    /// Returns an error if idle exceeds peak or either power is invalid.
    pub fn new(idle: Watts, peak: Watts) -> Result<Self, PowerModelError> {
        let probe = ServerPowerModel::new(idle, peak, 1)?;
        Ok(Self {
            idle: probe.idle(),
            peak: probe.nameplate_peak(),
        })
    }

    /// The paper's server envelope: 100 W idle, 500 W peak.
    pub fn paper_default() -> Self {
        Self::new(Watts::new(100.0), Watts::new(500.0)).expect("paper defaults are valid")
    }

    /// Power at a given utilization.
    pub fn power_at(&self, utilization: Fraction) -> Watts {
        self.idle + (self.peak - self.idle) * utilization.get()
    }

    /// Utilization implied by a power draw (the inverse map), clamped to
    /// `[0, 1]`.
    pub fn utilization_of(&self, power: Watts) -> Fraction {
        Fraction::saturating((power - self.idle) / (self.peak - self.idle))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn construction_validation() {
        assert!(ServerPowerModel::new(Watts::new(600.0), Watts::new(500.0), 32).is_err());
        assert!(ServerPowerModel::new(Watts::new(-1.0), Watts::new(500.0), 32).is_err());
        assert!(ServerPowerModel::new(Watts::new(100.0), Watts::new(f64::NAN), 32).is_err());
        assert!(ServerPowerModel::new(Watts::new(100.0), Watts::new(500.0), 0).is_err());
    }

    #[test]
    fn idle_floor() {
        let m = ServerPowerModel::paper_default();
        assert_eq!(m.power([]), Watts::new(100.0));
    }

    #[test]
    fn sums_core_draws() {
        let m = ServerPowerModel::paper_default();
        let p = m.power([Watts::new(4.65), Watts::new(7.44), Watts::new(1.69)]);
        assert!((p.get() - 113.78).abs() < 1e-9);
    }

    #[test]
    fn utilization_model_endpoints() {
        let m = LinearUtilizationPower::paper_default();
        assert_eq!(m.power_at(Fraction::ZERO), Watts::new(100.0));
        assert_eq!(m.power_at(Fraction::ONE), Watts::new(500.0));
        assert_eq!(m.power_at(Fraction::saturating(0.5)), Watts::new(300.0));
    }

    #[test]
    fn utilization_inverse() {
        let m = LinearUtilizationPower::paper_default();
        let u = m.utilization_of(Watts::new(300.0));
        assert!((u.get() - 0.5).abs() < 1e-12);
        assert_eq!(m.utilization_of(Watts::new(50.0)), Fraction::ZERO);
        assert_eq!(m.utilization_of(Watts::new(900.0)), Fraction::ONE);
    }

    #[test]
    fn error_display() {
        let err = ServerPowerModel::new(Watts::new(600.0), Watts::new(500.0), 1).unwrap_err();
        assert!(err.to_string().contains("exceeds"));
    }

    proptest! {
        /// Round trip power ↔ utilization inside the envelope.
        #[test]
        fn utilization_round_trip(u in 0.0f64..=1.0) {
            let m = LinearUtilizationPower::paper_default();
            let p = m.power_at(Fraction::saturating(u));
            prop_assert!((m.utilization_of(p).get() - u).abs() < 1e-12);
        }

        /// Power is monotone in the number of equally loaded cores.
        #[test]
        fn monotone_in_core_count(n in 0usize..32, draw in 0.0f64..12.5) {
            let m = ServerPowerModel::paper_default();
            let p1 = m.power(std::iter::repeat_n(Watts::new(draw), n));
            let p2 = m.power(std::iter::repeat_n(Watts::new(draw), n + 1));
            prop_assert!(p2 >= p1);
        }
    }
}
