//! Monetizing a peak-cooling reduction.

use crate::CoolingCostModel;
use vmt_units::{Dollars, Kilowatts, Watts};

/// The two ways to exploit a peak-cooling-load reduction in a datacenter
/// of fixed critical power (the paper's §V-E):
///
/// 1. **Shrink the cooling system** by the reduction and pocket the
///    capex.
/// 2. **Add servers** until the (reduced) per-server cooling demand
///    fills the original cooling system again.
///
/// # Examples
///
/// ```
/// use vmt_tco::OversubscriptionPlan;
/// use vmt_units::{Kilowatts, Watts};
///
/// // The paper's 25 MW datacenter of 500 W servers at a 12.8% reduction.
/// let plan = OversubscriptionPlan::new(Kilowatts::new(25_000.0), Watts::new(500.0), 0.128);
/// assert_eq!(plan.baseline_servers(), 50_000);
/// assert_eq!(plan.additional_servers(), 7_339);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct OversubscriptionPlan {
    critical_power: Kilowatts,
    server_peak: Watts,
    reduction: f64,
}

impl OversubscriptionPlan {
    /// Creates a plan.
    ///
    /// # Panics
    ///
    /// Panics if `reduction` is outside `[0, 1)` or either power is not
    /// strictly positive.
    pub fn new(critical_power: Kilowatts, server_peak: Watts, reduction: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&reduction),
            "reduction must be in [0, 1), got {reduction}"
        );
        assert!(
            critical_power.get() > 0.0,
            "critical power must be positive"
        );
        assert!(server_peak.get() > 0.0, "server peak must be positive");
        Self {
            critical_power,
            server_peak,
            reduction,
        }
    }

    /// The peak-cooling-load reduction the plan is built on.
    pub fn reduction(&self) -> f64 {
        self.reduction
    }

    /// Number of servers the datacenter holds before oversubscription.
    pub fn baseline_servers(&self) -> u64 {
        (self.critical_power.to_watts() / self.server_peak).floor() as u64
    }

    /// Option 1: cooling capacity that can be removed.
    pub fn cooling_capacity_saved(&self) -> Kilowatts {
        self.critical_power * self.reduction
    }

    /// Option 1: lifetime capex saved by installing the smaller cooling
    /// system.
    pub fn cooling_savings(&self, model: &CoolingCostModel) -> Dollars {
        model.lifetime_savings(self.critical_power, self.reduction)
    }

    /// Option 2: fraction of additional servers supportable under the
    /// original cooling system (`1/(1−r) − 1`; 12.8% → 14.6%).
    pub fn additional_server_fraction(&self) -> f64 {
        1.0 / (1.0 - self.reduction) - 1.0
    }

    /// Option 2: number of additional servers in the whole datacenter.
    pub fn additional_servers(&self) -> u64 {
        (self.baseline_servers() as f64 * self.additional_server_fraction()).floor() as u64
    }

    /// Option 2: additional servers per cluster of `cluster_size`.
    pub fn additional_servers_per_cluster(&self, cluster_size: usize) -> u64 {
        (cluster_size as f64 * self.additional_server_fraction()).floor() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_plan(reduction: f64) -> OversubscriptionPlan {
        OversubscriptionPlan::new(Kilowatts::new(25_000.0), Watts::new(500.0), reduction)
    }

    #[test]
    fn paper_headline_numbers() {
        let plan = paper_plan(0.128);
        assert_eq!(plan.baseline_servers(), 50_000);
        assert!((plan.additional_server_fraction() - 0.1468).abs() < 0.0002);
        assert_eq!(plan.additional_servers(), 7_339);
        assert_eq!(plan.additional_servers_per_cluster(1000), 146);
        assert!((plan.cooling_capacity_saved().get() - 3200.0).abs() < 1e-9);
        let savings = plan.cooling_savings(&CoolingCostModel::paper_default());
        assert_eq!(savings.display_rounded(), "$2,688,000");
    }

    #[test]
    fn paper_conservative_numbers() {
        let plan = paper_plan(0.06);
        assert!((plan.additional_server_fraction() - 0.0638).abs() < 0.0002);
        assert_eq!(plan.additional_servers(), 3_191);
        assert_eq!(plan.additional_servers_per_cluster(1000), 63);
        let savings = plan.cooling_savings(&CoolingCostModel::paper_default());
        assert_eq!(savings.display_rounded(), "$1,260,000");
    }

    #[test]
    fn zero_reduction_changes_nothing() {
        let plan = paper_plan(0.0);
        assert_eq!(plan.additional_servers(), 0);
        assert_eq!(plan.cooling_capacity_saved(), Kilowatts::ZERO);
    }

    #[test]
    #[should_panic(expected = "reduction must be in")]
    fn full_reduction_rejected() {
        paper_plan(1.0);
    }
}
