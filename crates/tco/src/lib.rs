//! Datacenter cooling-system TCO and oversubscription models.
//!
//! The VMT paper converts peak-cooling-load reductions into money using
//! the cost model of Kontorinis et al. (its reference \[14\]): cooling
//! infrastructure depreciates at **$7 per kW of critical power per
//! month** over a **10-year** life, i.e. $840 per kW over the system's
//! lifetime. A 12.8% reduction on a 25 MW datacenter is then worth
//! ≈$2.69M in avoided cooling capex — or, held the other way, lets the
//! operator add ≈14.6% more servers (7,339 at 500 W each) under the same
//! cooling budget.
//!
//! * [`CoolingCostModel`] — depreciation and lifetime cost of cooling
//!   capacity.
//! * [`OversubscriptionPlan`] — both ways to monetize a reduction:
//!   a smaller cooling system, or more servers.
//! * [`WaxDeployment`] — what the wax itself costs (and why n-paraffin
//!   is not an option).
//! * [`TimeOfUseTariff`] — prices the *shifted* cooling energy under a
//!   peak/off-peak tariff (the §V-E "less expensive off-peak power"
//!   remark, made quantitative).

mod cooling;
mod energy;
mod oversubscription;
mod wax;

pub use cooling::CoolingCostModel;
pub use energy::TimeOfUseTariff;
pub use oversubscription::OversubscriptionPlan;
pub use wax::WaxDeployment;
