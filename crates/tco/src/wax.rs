//! Cost of deploying wax across a datacenter.

use vmt_pcm::{PcmMaterial, ServerWaxConfig};
use vmt_units::{Dollars, Kilograms};

/// A datacenter-wide wax deployment: a material, a per-server quantity,
/// and a server count.
///
/// Used to check the paper's procurement claims: commercial paraffin for
/// a 50,000-server datacenter costs on the order of $100–200k ("less
/// than 0.5% of the purchase cost per server"), while the molecularly
/// pure n-paraffin needed to *physically* lower the melting point costs
/// on the order of $10M — which is why VMT lowers it *virtually*
/// instead.
///
/// # Examples
///
/// ```
/// use vmt_pcm::{PcmMaterial, ServerWaxConfig};
/// use vmt_tco::WaxDeployment;
/// use vmt_units::Celsius;
///
/// let commercial = WaxDeployment::new(
///     PcmMaterial::deployed_paraffin(), ServerWaxConfig::default(), 50_000);
/// let pure = WaxDeployment::new(
///     PcmMaterial::n_paraffin(Celsius::new(29.7)).unwrap(),
///     ServerWaxConfig::default(), 50_000);
/// assert!(pure.total_cost().get() / commercial.total_cost().get() > 70.0);
/// ```
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct WaxDeployment {
    material: PcmMaterial,
    per_server: ServerWaxConfig,
    servers: u64,
}

impl WaxDeployment {
    /// Creates a deployment.
    ///
    /// # Panics
    ///
    /// Panics if `servers` is zero.
    pub fn new(material: PcmMaterial, per_server: ServerWaxConfig, servers: u64) -> Self {
        assert!(servers > 0, "deployment must cover at least one server");
        Self {
            material,
            per_server,
            servers,
        }
    }

    /// The deployed material.
    pub fn material(&self) -> &PcmMaterial {
        &self.material
    }

    /// Number of servers covered.
    pub fn servers(&self) -> u64 {
        self.servers
    }

    /// Wax mass per server.
    pub fn mass_per_server(&self) -> Kilograms {
        self.per_server.mass_of(&self.material)
    }

    /// Total wax mass across the deployment.
    pub fn total_mass(&self) -> Kilograms {
        self.mass_per_server() * self.servers as f64
    }

    /// Procurement cost per server.
    pub fn cost_per_server(&self) -> Dollars {
        self.material.cost_for(self.mass_per_server())
    }

    /// Total procurement cost.
    pub fn total_cost(&self) -> Dollars {
        self.material.cost_for(self.total_mass())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmt_units::Celsius;

    #[test]
    fn commercial_deployment_is_cheap() {
        let d = WaxDeployment::new(
            PcmMaterial::deployed_paraffin(),
            ServerWaxConfig::default(),
            50_000,
        );
        // ≈3.48 kg/server → ≈174 t → ≈$174k total, ≈$3.5/server.
        assert!((d.total_mass().to_tons() - 174.0).abs() < 1.0);
        assert!((d.total_cost().get() - 174_000.0).abs() < 1000.0);
        assert!(d.cost_per_server().get() < 5.0);
    }

    #[test]
    fn n_paraffin_deployment_is_prohibitive() {
        let d = WaxDeployment::new(
            PcmMaterial::n_paraffin(Celsius::new(29.7)).unwrap(),
            ServerWaxConfig::default(),
            50_000,
        );
        // "On the order of $10 million" per the paper.
        assert!(d.total_cost().get() > 10_000_000.0, "{}", d.total_cost());
        assert!(d.total_cost().get() < 20_000_000.0, "{}", d.total_cost());
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn zero_servers_rejected() {
        WaxDeployment::new(
            PcmMaterial::deployed_paraffin(),
            ServerWaxConfig::default(),
            0,
        );
    }
}
