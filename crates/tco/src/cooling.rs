//! Cooling-system depreciation and lifetime cost.

use vmt_units::{Dollars, Kilowatts};

/// The cooling-system cost model (Kontorinis et al., the paper's \[14\]).
///
/// # Examples
///
/// ```
/// use vmt_tco::CoolingCostModel;
/// use vmt_units::Kilowatts;
///
/// let model = CoolingCostModel::paper_default();
/// // $21M lifetime cooling cost for a 25 MW datacenter.
/// let lifetime = model.lifetime_cost(Kilowatts::new(25_000.0));
/// assert_eq!(lifetime.display_rounded(), "$21,000,000");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CoolingCostModel {
    depreciation_per_kw_month: Dollars,
    lifetime_years: f64,
}

impl CoolingCostModel {
    /// The paper's model: $7.00 per kW of critical power per month,
    /// 10-year linear depreciation.
    pub fn paper_default() -> Self {
        Self::new(Dollars::new(7.0), 10.0).expect("paper constants are valid")
    }

    /// Creates a model.
    ///
    /// # Errors
    ///
    /// Returns a message if either parameter is not strictly positive
    /// and finite.
    pub fn new(depreciation_per_kw_month: Dollars, lifetime_years: f64) -> Result<Self, String> {
        if !(depreciation_per_kw_month.get() > 0.0 && depreciation_per_kw_month.is_finite()) {
            return Err(format!(
                "depreciation must be positive, got {depreciation_per_kw_month}"
            ));
        }
        if !(lifetime_years > 0.0 && lifetime_years.is_finite()) {
            return Err(format!(
                "lifetime must be positive, got {lifetime_years} years"
            ));
        }
        Ok(Self {
            depreciation_per_kw_month,
            lifetime_years,
        })
    }

    /// Monthly depreciation per kW of critical power.
    pub fn depreciation_per_kw_month(&self) -> Dollars {
        self.depreciation_per_kw_month
    }

    /// Cooling-system depreciation lifetime in years.
    pub fn lifetime_years(&self) -> f64 {
        self.lifetime_years
    }

    /// Annual cost of cooling a given critical power.
    pub fn annual_cost(&self, capacity: Kilowatts) -> Dollars {
        self.depreciation_per_kw_month * capacity.get() * 12.0
    }

    /// Lifetime (fully depreciated) cost of cooling a given critical
    /// power.
    pub fn lifetime_cost(&self, capacity: Kilowatts) -> Dollars {
        self.annual_cost(capacity) * self.lifetime_years
    }

    /// Lifetime savings from reducing the cooling system by
    /// `reduction` (a fraction of `capacity`).
    ///
    /// # Panics
    ///
    /// Panics if `reduction` is outside `[0, 1]`.
    pub fn lifetime_savings(&self, capacity: Kilowatts, reduction: f64) -> Dollars {
        assert!(
            (0.0..=1.0).contains(&reduction),
            "reduction must be a fraction, got {reduction}"
        );
        self.lifetime_cost(capacity) * reduction
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_arithmetic() {
        let m = CoolingCostModel::paper_default();
        // $84k per MW-year.
        assert!((m.annual_cost(Kilowatts::new(1000.0)).get() - 84_000.0).abs() < 1e-9);
        // 12.8% of a 25 MW system over 10 years ≈ $2.69M.
        let savings = m.lifetime_savings(Kilowatts::new(25_000.0), 0.128);
        assert!((savings.get() - 2_688_000.0).abs() < 1.0);
        // Conservative 6% ≈ $1.26M.
        let conservative = m.lifetime_savings(Kilowatts::new(25_000.0), 0.06);
        assert!((conservative.get() - 1_260_000.0).abs() < 1.0);
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(CoolingCostModel::new(Dollars::new(0.0), 10.0).is_err());
        assert!(CoolingCostModel::new(Dollars::new(7.0), -1.0).is_err());
    }

    #[test]
    #[should_panic(expected = "reduction must be a fraction")]
    fn rejects_out_of_range_reduction() {
        CoolingCostModel::paper_default().lifetime_savings(Kilowatts::new(1.0), 1.5);
    }
}
