//! Time-of-use energy pricing for shifted cooling energy.
//!
//! The paper's §V-E notes that beyond cooling capex, VMT's ability to
//! shift cooling energy in time can "leverage less expensive off-peak
//! power". This module prices a cooling-load time series under a
//! peak/off-peak tariff, so the capex analysis of
//! [`crate::CoolingCostModel`] can be complemented with an opex delta.

use vmt_units::{Dollars, Hours, Seconds};

/// A two-rate time-of-use tariff.
///
/// # Examples
///
/// ```
/// use vmt_tco::TimeOfUseTariff;
/// use vmt_units::Hours;
///
/// let tariff = TimeOfUseTariff::us_commercial_default();
/// assert!(tariff.rate_at(Hours::new(20.0)) > tariff.rate_at(Hours::new(3.0)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TimeOfUseTariff {
    /// $/kWh during peak hours.
    peak_rate: f64,
    /// $/kWh off peak.
    off_peak_rate: f64,
    /// Hour-of-day when the peak window opens.
    peak_start_hour: f64,
    /// Hour-of-day when the peak window closes.
    peak_end_hour: f64,
}

impl TimeOfUseTariff {
    /// A representative US commercial tariff: $0.18/kWh from noon to
    /// 22:00, $0.09/kWh otherwise.
    pub fn us_commercial_default() -> Self {
        Self::new(0.18, 0.09, 12.0, 22.0).expect("defaults are valid")
    }

    /// Creates a tariff.
    ///
    /// # Errors
    ///
    /// Returns a message if rates are not positive/finite or the window
    /// is not within a day.
    pub fn new(
        peak_rate: f64,
        off_peak_rate: f64,
        peak_start_hour: f64,
        peak_end_hour: f64,
    ) -> Result<Self, String> {
        if !(peak_rate > 0.0
            && peak_rate.is_finite()
            && off_peak_rate > 0.0
            && off_peak_rate.is_finite())
        {
            return Err("rates must be positive and finite".to_owned());
        }
        if !(0.0..=24.0).contains(&peak_start_hour)
            || !(0.0..=24.0).contains(&peak_end_hour)
            || peak_end_hour <= peak_start_hour
        {
            return Err("peak window must satisfy 0 ≤ start < end ≤ 24".to_owned());
        }
        Ok(Self {
            peak_rate,
            off_peak_rate,
            peak_start_hour,
            peak_end_hour,
        })
    }

    /// The $/kWh rate at an absolute simulation time (wraps daily).
    pub fn rate_at(&self, t: Hours) -> f64 {
        let hour_of_day = t.get().rem_euclid(24.0);
        if (self.peak_start_hour..self.peak_end_hour).contains(&hour_of_day) {
            self.peak_rate
        } else {
            self.off_peak_rate
        }
    }

    /// Prices a cooling-energy series sampled every `dt` (watts of heat
    /// rejected, one sample per tick), assuming the cooling plant spends
    /// `cop_inverse` watt-electric per watt-thermal removed (1/COP;
    /// ≈0.3 for a chiller plant).
    ///
    /// # Panics
    ///
    /// Panics if `cop_inverse` is not positive and finite.
    pub fn cooling_energy_cost(&self, watts: &[f64], dt: Seconds, cop_inverse: f64) -> Dollars {
        assert!(
            cop_inverse > 0.0 && cop_inverse.is_finite(),
            "1/COP must be positive and finite, got {cop_inverse}"
        );
        let mut total = 0.0;
        for (i, &w) in watts.iter().enumerate() {
            let t = Hours::new(i as f64 * dt.get() / 3600.0);
            let kwh = w * cop_inverse * dt.get() / 3.6e6;
            total += kwh * self.rate_at(t);
        }
        Dollars::new(total)
    }

    /// Cost difference `subject − baseline` for two cooling series under
    /// this tariff (negative = the subject is cheaper to run).
    pub fn cost_delta(
        &self,
        subject: &[f64],
        baseline: &[f64],
        dt: Seconds,
        cop_inverse: f64,
    ) -> Dollars {
        self.cooling_energy_cost(subject, dt, cop_inverse)
            - self.cooling_energy_cost(baseline, dt, cop_inverse)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_and_wrap() {
        let t = TimeOfUseTariff::us_commercial_default();
        assert_eq!(t.rate_at(Hours::new(13.0)), 0.18);
        assert_eq!(t.rate_at(Hours::new(23.0)), 0.09);
        // Day two, 13:00.
        assert_eq!(t.rate_at(Hours::new(37.0)), 0.18);
    }

    #[test]
    fn constant_load_costs_blend_of_rates() {
        let t = TimeOfUseTariff::us_commercial_default();
        // 1 kW thermal for 24 h at 1/COP = 0.3 → 7.2 kWh electric.
        let watts = vec![1000.0; 24 * 60];
        let cost = t.cooling_energy_cost(&watts, Seconds::new(60.0), 0.3);
        // 10 peak hours at 0.18 + 14 off-peak at 0.09, times 0.3 kW.
        let expect = 0.3 * (10.0 * 0.18 + 14.0 * 0.09);
        assert!((cost.get() - expect).abs() < 1e-9, "{cost} vs {expect}");
    }

    #[test]
    fn shifting_heat_off_peak_saves_money() {
        let t = TimeOfUseTariff::us_commercial_default();
        // Baseline: all heat at 14:00–15:00 (peak). Shifted: same energy
        // at 02:00–03:00 (off-peak).
        let mut baseline = vec![0.0; 24 * 60];
        let mut shifted = vec![0.0; 24 * 60];
        for m in 0..60 {
            baseline[14 * 60 + m] = 10_000.0;
            shifted[2 * 60 + m] = 10_000.0;
        }
        let delta = t.cost_delta(&shifted, &baseline, Seconds::new(60.0), 0.3);
        assert!(delta.get() < 0.0, "shifting should be cheaper, got {delta}");
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(TimeOfUseTariff::new(0.0, 0.09, 12.0, 22.0).is_err());
        assert!(TimeOfUseTariff::new(0.18, 0.09, 22.0, 12.0).is_err());
        assert!(TimeOfUseTariff::new(0.18, 0.09, -1.0, 22.0).is_err());
    }

    #[test]
    #[should_panic(expected = "1/COP must be positive")]
    fn invalid_cop_rejected() {
        TimeOfUseTariff::us_commercial_default().cooling_energy_cost(
            &[1.0],
            Seconds::new(60.0),
            0.0,
        );
    }
}
