//! Event-driven datacenter cluster simulator with per-server wax and
//! thermal state.
//!
//! This crate is the reproduction's equivalent of the DCsim simulator the
//! VMT paper evaluates on (its reference \[14\]): an event-driven cluster
//! simulator whose per-server wax model parameters were distilled from a
//! CFD study. A simulation couples four substrates:
//!
//! * job lifecycle — arrivals planned from a [`DiurnalTrace`]
//!   (`vmt-workload`), departures from a time-ordered event queue;
//! * power — the linear per-core model (`vmt-power`);
//! * thermals — per-server air-at-wax temperature (`vmt-thermal`);
//! * wax — per-server [`WaxPack`] + [`HeatExchanger`] plus the
//!   sensor-driven estimator reported to the scheduler (`vmt-pcm`).
//!
//! Placement policy is pluggable through the [`Scheduler`] trait; the
//! `vmt-core` crate provides the paper's four policies (round robin,
//! coolest first, VMT-TA, VMT-WA).
//!
//! The main loop ticks once per simulated minute — the cadence at which
//! the paper's servers update and report their wax state — processing
//! departures, planning arrivals, asking the scheduler to place each job,
//! then stepping every server's physics and recording cluster metrics.
//!
//! # Examples
//!
//! Run two simulated days of a small wax-equipped cluster under a trivial
//! first-fit scheduler:
//!
//! ```
//! use vmt_dcsim::{ClusterConfig, FirstFit, Simulation};
//! use vmt_workload::{DiurnalTrace, TraceConfig};
//!
//! let config = ClusterConfig::paper_default(10);
//! let trace = DiurnalTrace::new(TraceConfig::paper_default());
//! let result = Simulation::new(config, trace, Box::new(FirstFit::new())).run();
//! assert_eq!(result.cooling.len(), 48 * 60);
//! assert!(result.dropped_jobs == 0);
//! ```
//!
//! [`DiurnalTrace`]: vmt_workload::DiurnalTrace
//! [`WaxPack`]: vmt_pcm::WaxPack
//! [`HeatExchanger`]: vmt_pcm::HeatExchanger

mod config;
mod engine;
mod farm;
mod index;
mod metrics;
mod pool;
mod replay;
mod scheduler;
mod server;
mod snapshot;
mod telemetry;
mod topology;

pub use config::{ClusterConfig, WaxSpec};
pub use engine::Simulation;
pub use farm::{default_tick_threads, FarmState, FarmTickTotals, ServerFarm, SweepTiming, SHARD};
pub use index::ClusterIndex;
pub use metrics::{Heatmap, SimulationResult};
pub use pool::TickPool;
pub use replay::{
    digest_final_state, digest_index, RecordingScheduler, ReplayHandle, ReplayScheduler,
    TraceHandle,
};
pub use scheduler::{DecisionCandidate, DecisionDetail, FirstFit, PlacementProbe, Scheduler};
pub use server::{Server, ServerId};
pub use snapshot::{
    SavedState, Snapshot, SnapshotError, SnapshotState, SNAPSHOT_MAGIC, SNAPSHOT_VERSION,
};
pub use topology::{
    PlacementMap, RackId, RackLayout, RackPowerStats, ZoneCooling, ZoneLayout, ZoneSpec,
};
/// Re-exported so downstream crates can attach telemetry without a
/// direct `vmt-telemetry` dependency.
pub use vmt_telemetry::{FlightConfig, SummaryHandle, TelemetryConfig, TraceSpec, TracerHandle};
