//! Engine checkpoints: serialize a mid-run [`Simulation`] and rebuild it.
//!
//! A [`Snapshot`] captures everything that influences the rest of a run —
//! the cluster configuration, a self-describing trace descriptor, the
//! scheduler's cross-tick state, every farm state array, the departure
//! calendar, both RNG streams, and the partially accumulated result
//! series — at a tick boundary. Restoring it yields a simulation whose
//! remaining ticks are bit-identical to the run it was taken from, at any
//! thread count; `tests/snapshot.rs` pins that equivalence per tick.
//!
//! Two pieces make the checkpoint self-describing despite the engine
//! holding its trace and policy as `Box<dyn …>` trait objects:
//!
//! * [`TraceDescriptor`] (from `vmt-workload`) embeds the built-in trace
//!   types whole and rebuilds an equivalent boxed trace;
//! * [`SnapshotState`] lets each scheduler save its cross-tick state into
//!   a kind-tagged [`SavedState`] and restore from one. Per-tick derived
//!   state (balancer heaps, scan cursors, keep-warm lists) is
//!   deliberately *not* serialized — every policy rebuilds it in its
//!   tick refresh before any placement, so only genuinely cross-tick
//!   fields travel.
//!
//! On disk a snapshot is a one-line header plus a JSON payload:
//!
//! ```text
//! VMTSNAP v1 digest=0x<fnv1a of payload> bytes=<payload length>
//! {"config":…}
//! ```
//!
//! [`Snapshot::decode`] validates magic, version, length, and digest in
//! that order and returns a typed [`SnapshotError`] — a malformed or
//! truncated container is rejected, never panicked on.
//!
//! [`Simulation`]: crate::Simulation

use crate::config::ClusterConfig;
use crate::farm::FarmState;
use crate::metrics::SimulationResult;
use vmt_telemetry::replay::StateHasher;
use vmt_workload::TraceDescriptor;

/// Magic token opening every snapshot container.
pub const SNAPSHOT_MAGIC: &str = "VMTSNAP";

/// Container format version written by [`Snapshot::encode`].
pub const SNAPSHOT_VERSION: u32 = 1;

/// Error raised while encoding, decoding, or restoring a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub enum SnapshotError {
    /// The input is not a snapshot container at all.
    BadMagic,
    /// The container declares a version this build cannot read.
    UnsupportedVersion(String),
    /// The payload is shorter or longer than the header declares.
    Truncated {
        /// Payload length the header promised.
        expected: usize,
        /// Payload length actually present.
        actual: usize,
    },
    /// The payload does not hash to the header's digest.
    DigestMismatch {
        /// Digest the header carries.
        expected: u64,
        /// Digest of the bytes actually present.
        actual: u64,
    },
    /// The payload parsed but describes an inconsistent state (bad JSON,
    /// mismatched array lengths, out-of-range ticks).
    Corrupt(String),
    /// A [`SavedState`]'s kind tag does not match the component asked to
    /// restore from it.
    KindMismatch {
        /// Kind the restoring component expected.
        expected: String,
        /// Kind the saved state carries.
        found: String,
    },
    /// A run component (trace or scheduler) has no serializable
    /// description and cannot be checkpointed.
    NotSnapshottable(&'static str),
    /// No known scheduler answers to the saved kind tag.
    UnknownKind(String),
}

impl core::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "not a snapshot container (bad magic)"),
            SnapshotError::UnsupportedVersion(v) => {
                write!(f, "unsupported snapshot version {v:?} (this build reads v1)")
            }
            SnapshotError::Truncated { expected, actual } => write!(
                f,
                "payload length mismatch: header declares {expected} bytes, found {actual}"
            ),
            SnapshotError::DigestMismatch { expected, actual } => write!(
                f,
                "payload digest mismatch: header declares {expected:#018x}, payload hashes to {actual:#018x}"
            ),
            SnapshotError::Corrupt(reason) => write!(f, "corrupt snapshot: {reason}"),
            SnapshotError::KindMismatch { expected, found } => write!(
                f,
                "saved state is for {found:?}, cannot restore a {expected:?}"
            ),
            SnapshotError::NotSnapshottable(what) => {
                write!(f, "this {what} has no serializable description")
            }
            SnapshotError::UnknownKind(kind) => {
                write!(f, "no known scheduler for saved kind {kind:?}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

/// A kind-tagged, serialized blob of one component's cross-tick state.
///
/// The tag makes a snapshot self-describing: restore code dispatches on
/// `kind` to reconstruct the right scheduler, then hands the state back
/// through [`SnapshotState::restore_state`].
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct SavedState {
    /// Stable component tag (the scheduler's policy name).
    pub kind: String,
    /// The component's serialized state.
    pub state: serde::Value,
}

impl SavedState {
    /// Wraps a component's typed state under its kind tag.
    pub fn new<T: serde::Serialize>(kind: &str, state: &T) -> Self {
        Self {
            kind: kind.to_owned(),
            state: state.to_value(),
        }
    }

    /// Decodes the typed state, checking the kind tag first.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::KindMismatch`] when the tag differs,
    /// [`SnapshotError::Corrupt`] when the state does not parse as `T`.
    pub fn decode<T: serde::Deserialize>(&self, kind: &str) -> Result<T, SnapshotError> {
        if self.kind != kind {
            return Err(SnapshotError::KindMismatch {
                expected: kind.to_owned(),
                found: self.kind.clone(),
            });
        }
        T::from_value(&self.state).map_err(|e| SnapshotError::Corrupt(format!("{kind} state: {e}")))
    }
}

/// Checkpointable cross-tick state, implemented by every [`Scheduler`].
///
/// The default implementation reports the component as not
/// checkpointable ([`SnapshotState::state_kind`] returns `None`), which
/// is correct for wrappers that exist only inside one process
/// (recording/replay harnesses, test probes). Policies with serializable
/// state override all three methods; stateless-but-checkpointable
/// policies override only `state_kind`.
///
/// [`Scheduler`]: crate::Scheduler
pub trait SnapshotState {
    /// Stable kind tag, or `None` when this component cannot be
    /// checkpointed. Schedulers reuse their policy name.
    fn state_kind(&self) -> Option<&'static str> {
        None
    }

    /// Serializes the cross-tick state under the kind tag.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::NotSnapshottable`] when [`state_kind`] is `None`.
    ///
    /// [`state_kind`]: SnapshotState::state_kind
    fn save_state(&self) -> Result<SavedState, SnapshotError> {
        match self.state_kind() {
            Some(kind) => Ok(SavedState {
                kind: kind.to_owned(),
                state: serde::Value::Null,
            }),
            None => Err(SnapshotError::NotSnapshottable("scheduler")),
        }
    }

    /// Overwrites the cross-tick state from a [`SavedState`].
    ///
    /// # Errors
    ///
    /// [`SnapshotError::KindMismatch`] when the tag belongs to another
    /// component, [`SnapshotError::NotSnapshottable`] when this one has
    /// no kind, [`SnapshotError::Corrupt`] when the state does not parse.
    fn restore_state(&mut self, saved: &SavedState) -> Result<(), SnapshotError> {
        match self.state_kind() {
            Some(kind) if kind == saved.kind => Ok(()),
            Some(kind) => Err(SnapshotError::KindMismatch {
                expected: kind.to_owned(),
                found: saved.kind.clone(),
            }),
            None => Err(SnapshotError::NotSnapshottable("scheduler")),
        }
    }
}

/// A complete engine checkpoint at a tick boundary.
///
/// `tick` is the next tick the run will execute; everything else is the
/// state *after* tick `tick − 1` finished. Produced by
/// [`Simulation::snapshot`], consumed by [`Simulation::restore_with`].
///
/// [`Simulation::snapshot`]: crate::Simulation::snapshot
/// [`Simulation::restore_with`]: crate::Simulation::restore_with
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct Snapshot {
    /// The cluster configuration the run was built from.
    pub config: ClusterConfig,
    /// Self-describing trace source.
    pub trace: TraceDescriptor,
    /// The scheduler's kind-tagged cross-tick state.
    pub scheduler: SavedState,
    /// Next tick to execute (0 = nothing has run yet).
    pub tick: u64,
    /// Every farm state array (thermal, wax, estimator, job slab).
    pub farm: FarmState,
    /// Occupied cores per workload, by [`WorkloadKind::index`].
    ///
    /// [`WorkloadKind::index`]: vmt_workload::WorkloadKind::index
    pub occupancy: [u64; 5],
    /// Non-empty departure buckets as `(tick, [(job id, server)])`.
    pub departures: Vec<(u64, Vec<(u64, u32)>)>,
    /// Next job id the engine will stamp.
    pub next_job_id: u64,
    /// Raw state of the arrival-shuffle RNG.
    pub arrival_rng: [u64; 4],
    /// Raw state of the planner's duration-jitter RNG.
    pub planner_rng: [u64; 4],
    /// Result series accumulated so far. Series hold `tick` samples; the
    /// heatmaps hold only the rows already written
    /// (`ceil(tick / heatmap_stride)`).
    pub partial: SimulationResult,
    /// Per-zone CRAC supply-air temperatures when the config carries a
    /// [`topology`](ClusterConfig::topology); `None` otherwise. Typed as
    /// an `Option` so snapshots written before zones existed (the golden
    /// fixture among them) keep decoding — the vendored serde derives
    /// treat a missing field as `None`. The integrator state is
    /// history-dependent, so it must travel for a restored zoned run to
    /// report identical zone temperatures.
    pub zone_temps: Option<Vec<f64>>,
}

fn payload_digest(payload: &str) -> u64 {
    let mut hasher = StateHasher::new();
    hasher.write_bytes(payload.as_bytes());
    hasher.finish()
}

impl Snapshot {
    /// FNV-1a digest of the serialized payload — the container's
    /// integrity check, also usable as a cheap identity for a checkpoint.
    pub fn digest(&self) -> u64 {
        payload_digest(&self.payload())
    }

    fn payload(&self) -> String {
        serde_json::to_string(self).expect("snapshot serialization is infallible")
    }

    /// Serializes the snapshot into its versioned container format.
    pub fn encode(&self) -> String {
        let payload = self.payload();
        format!(
            "{SNAPSHOT_MAGIC} v{SNAPSHOT_VERSION} digest={:#018x} bytes={}\n{payload}\n",
            payload_digest(&payload),
            payload.len()
        )
    }

    /// Parses a container produced by [`Snapshot::encode`].
    ///
    /// Validation order: magic, version, header fields, payload length,
    /// payload digest, JSON structure. Every failure is a typed
    /// [`SnapshotError`]; malformed input never panics.
    pub fn decode(text: &str) -> Result<Self, SnapshotError> {
        let (header, body) = match text.split_once('\n') {
            Some((header, body)) => (header, body),
            None => (text, ""),
        };
        let mut fields = header.split_ascii_whitespace();
        if fields.next() != Some(SNAPSHOT_MAGIC) {
            return Err(SnapshotError::BadMagic);
        }
        let version = fields.next().unwrap_or_default();
        if version != "v1" {
            return Err(SnapshotError::UnsupportedVersion(version.to_owned()));
        }
        let digest = fields
            .next()
            .and_then(|f| f.strip_prefix("digest=0x"))
            .and_then(|hex| u64::from_str_radix(hex, 16).ok())
            .ok_or_else(|| SnapshotError::Corrupt("header digest field unreadable".to_owned()))?;
        let bytes = fields
            .next()
            .and_then(|f| f.strip_prefix("bytes="))
            .and_then(|n| n.parse::<usize>().ok())
            .ok_or_else(|| SnapshotError::Corrupt("header bytes field unreadable".to_owned()))?;
        let payload = body.strip_suffix('\n').unwrap_or(body);
        if payload.len() != bytes {
            return Err(SnapshotError::Truncated {
                expected: bytes,
                actual: payload.len(),
            });
        }
        let actual = payload_digest(payload);
        if actual != digest {
            return Err(SnapshotError::DigestMismatch {
                expected: digest,
                actual,
            });
        }
        serde_json::from_str(payload).map_err(|e| SnapshotError::Corrupt(format!("payload: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saved_state_round_trips_typed_payloads() {
        #[derive(Debug, PartialEq, serde::Serialize, serde::Deserialize)]
        struct Demo {
            cursor: u64,
            flags: Vec<bool>,
        }
        let demo = Demo {
            cursor: 17,
            flags: vec![true, false, true],
        };
        let saved = SavedState::new("demo", &demo);
        assert_eq!(saved.decode::<Demo>("demo").unwrap(), demo);
        assert_eq!(
            saved.decode::<Demo>("other").unwrap_err(),
            SnapshotError::KindMismatch {
                expected: "other".to_owned(),
                found: "demo".to_owned(),
            }
        );
    }

    #[test]
    fn default_snapshot_state_refuses() {
        struct Opaque;
        impl SnapshotState for Opaque {}
        let mut opaque = Opaque;
        assert_eq!(opaque.state_kind(), None);
        assert_eq!(
            opaque.save_state().unwrap_err(),
            SnapshotError::NotSnapshottable("scheduler")
        );
        let saved = SavedState {
            kind: "anything".to_owned(),
            state: serde::Value::Null,
        };
        assert_eq!(
            opaque.restore_state(&saved).unwrap_err(),
            SnapshotError::NotSnapshottable("scheduler")
        );
    }

    #[test]
    fn container_errors_are_typed() {
        assert_eq!(Snapshot::decode("").unwrap_err(), SnapshotError::BadMagic);
        assert_eq!(
            Snapshot::decode("GARBAGE v1 digest=0x0 bytes=0\n{}").unwrap_err(),
            SnapshotError::BadMagic
        );
        assert_eq!(
            Snapshot::decode("VMTSNAP v9 digest=0x0 bytes=0\n{}").unwrap_err(),
            SnapshotError::UnsupportedVersion("v9".to_owned())
        );
        assert!(matches!(
            Snapshot::decode("VMTSNAP v1 digest=zz bytes=0\n{}").unwrap_err(),
            SnapshotError::Corrupt(_)
        ));
        assert!(matches!(
            Snapshot::decode("VMTSNAP v1 digest=0x0000000000000000\n{}").unwrap_err(),
            SnapshotError::Corrupt(_)
        ));
        assert_eq!(
            Snapshot::decode("VMTSNAP v1 digest=0x0000000000000000 bytes=99\n{}").unwrap_err(),
            SnapshotError::Truncated {
                expected: 99,
                actual: 2
            }
        );
        assert!(matches!(
            Snapshot::decode("VMTSNAP v1 digest=0x0000000000000000 bytes=2\n{}").unwrap_err(),
            SnapshotError::DigestMismatch { .. }
        ));
        // Right length and digest, wrong structure: Corrupt, not a panic.
        let payload = "{}";
        let digest = payload_digest(payload);
        let text = format!("VMTSNAP v1 digest={digest:#018x} bytes=2\n{payload}");
        assert!(matches!(
            Snapshot::decode(&text).unwrap_err(),
            SnapshotError::Corrupt(_)
        ));
    }

    #[test]
    fn errors_display_their_particulars() {
        let err = SnapshotError::Truncated {
            expected: 10,
            actual: 2,
        };
        assert!(err.to_string().contains("10"));
        let err = SnapshotError::UnsupportedVersion("v9".to_owned());
        assert!(err.to_string().contains("v9"));
        let err = SnapshotError::UnknownKind("mystery".to_owned());
        assert!(err.to_string().contains("mystery"));
    }
}
