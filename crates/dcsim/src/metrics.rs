//! Recorded simulation outputs.

use vmt_thermal::{CoolingLoadSeries, PeakComparison};
use vmt_units::{Celsius, Joules, Seconds};

/// A per-server time-sampled field (air temperature or melt fraction) —
/// the data behind the paper's Figures 9–11 and 14 heatmaps.
#[derive(Debug, Clone, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct Heatmap {
    /// Seconds between rows.
    pub row_interval: f64,
    /// `rows[t][server]` samples.
    pub rows: Vec<Vec<f64>>,
}

impl Heatmap {
    /// Number of sampled rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when nothing has been sampled.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Maximum value across the whole map (0 when empty).
    pub fn max(&self) -> f64 {
        // Seed with -inf, not 0: an all-negative map (e.g. a sub-zero
        // temperature field) must report its true maximum, not a floor.
        let max = self
            .rows
            .iter()
            .flat_map(|r| r.iter().copied())
            .fold(f64::NEG_INFINITY, f64::max);
        if max == f64::NEG_INFINITY {
            0.0
        } else {
            max
        }
    }

    /// Minimum value across the whole map (0 when empty).
    pub fn min(&self) -> f64 {
        let min = self
            .rows
            .iter()
            .flat_map(|r| r.iter().copied())
            .fold(f64::INFINITY, f64::min);
        if min == f64::INFINITY {
            0.0
        } else {
            min
        }
    }

    /// Per-row mean values (one per sampled tick).
    pub fn row_means(&self) -> Vec<f64> {
        self.rows
            .iter()
            .map(|r| {
                if r.is_empty() {
                    0.0
                } else {
                    r.iter().sum::<f64>() / r.len() as f64
                }
            })
            .collect()
    }
}

/// Everything a simulation run records.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SimulationResult {
    /// Which policy produced this run.
    pub scheduler_name: String,
    /// Cluster cooling load (heat rejected to the room) per tick.
    pub cooling: CoolingLoadSeries,
    /// Cluster electrical power per tick (what the cooling load would be
    /// without wax).
    pub electrical: CoolingLoadSeries,
    /// Mean air-at-wax temperature across all servers, per tick.
    pub avg_temp: Vec<Celsius>,
    /// Mean air-at-wax temperature across the scheduler's hot group, per
    /// tick (empty when the policy has no hot group).
    pub hot_group_temp: Vec<Celsius>,
    /// Hot-group size per tick (empty when the policy has no hot group).
    pub hot_group_sizes: Vec<usize>,
    /// Cluster-total stored latent energy per tick.
    pub stored_energy: Vec<Joules>,
    /// Sampled per-server air temperatures.
    pub temp_heatmap: Heatmap,
    /// Sampled per-server melt fractions (physical truth).
    pub melt_heatmap: Heatmap,
    /// Jobs that could not be placed anywhere.
    pub dropped_jobs: u64,
    /// Total successful placements.
    pub placements: u64,
    /// Simulation tick length.
    pub tick: Seconds,
}

impl SimulationResult {
    /// Peak cooling load over the run.
    pub fn peak_cooling(&self) -> vmt_units::Watts {
        self.cooling.peak()
    }

    /// Serializes the cluster-level time series as CSV
    /// (`minute,cooling_w,electrical_w,avg_temp_c,stored_j[,hot_group_temp_c,hot_group_size]`),
    /// ready for external plotting.
    pub fn series_csv(&self) -> String {
        let has_group = !self.hot_group_temp.is_empty();
        let mut out = String::from("minute,cooling_w,electrical_w,avg_temp_c,stored_j");
        if has_group {
            out.push_str(",hot_group_temp_c,hot_group_size");
        }
        out.push('\n');
        for i in 0..self.cooling.len() {
            out.push_str(&format!(
                "{},{:.1},{:.1},{:.3},{:.0}",
                i,
                self.cooling.samples()[i].get(),
                self.electrical.samples()[i].get(),
                self.avg_temp[i].get(),
                self.stored_energy[i].get(),
            ));
            if has_group {
                out.push_str(&format!(
                    ",{:.3},{}",
                    self.hot_group_temp[i].get(),
                    self.hot_group_sizes[i]
                ));
            }
            out.push('\n');
        }
        out
    }

    /// Peak-cooling comparison against a baseline run.
    pub fn compare_peak(&self, baseline: &SimulationResult) -> PeakComparison {
        self.cooling.compare_peak(&baseline.cooling)
    }

    /// Largest cluster-total stored latent energy reached during the run.
    pub fn max_stored_energy(&self) -> Joules {
        self.stored_energy
            .iter()
            .copied()
            .fold(Joules::ZERO, Joules::max)
    }

    /// Largest melt fraction any server reached (from the heatmap).
    pub fn max_melt_fraction(&self) -> f64 {
        self.melt_heatmap.max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heatmap_statistics() {
        let map = Heatmap {
            row_interval: 300.0,
            rows: vec![vec![1.0, 3.0], vec![2.0, 4.0]],
        };
        assert_eq!(map.len(), 2);
        assert_eq!(map.max(), 4.0);
        assert_eq!(map.row_means(), vec![2.0, 3.0]);
    }

    #[test]
    fn series_csv_shape() {
        use vmt_thermal::CoolingLoadSeries;
        use vmt_units::{Celsius, Joules, Seconds, Watts};
        let mut cooling = CoolingLoadSeries::new(Seconds::new(60.0));
        cooling.push(Watts::new(100.0));
        cooling.push(Watts::new(200.0));
        let result = SimulationResult {
            scheduler_name: "test".into(),
            electrical: cooling.clone(),
            cooling,
            avg_temp: vec![Celsius::new(30.0); 2],
            hot_group_temp: vec![Celsius::new(38.0); 2],
            hot_group_sizes: vec![6; 2],
            stored_energy: vec![Joules::new(1.0); 2],
            temp_heatmap: Heatmap::default(),
            melt_heatmap: Heatmap::default(),
            dropped_jobs: 0,
            placements: 2,
            tick: Seconds::new(60.0),
        };
        let csv = result.series_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("hot_group_temp_c"));
        assert!(lines[1].starts_with("0,100.0,100.0,30.000,1"));
        assert_eq!(lines[2].split(',').count(), 7);
    }

    #[test]
    fn empty_heatmap() {
        let map = Heatmap::default();
        assert!(map.is_empty());
        assert_eq!(map.max(), 0.0);
        assert_eq!(map.min(), 0.0);
        assert!(map.row_means().is_empty());
    }

    #[test]
    fn max_and_min_survive_all_negative_data() {
        // Sub-zero fields (e.g. a chiller-failure temperature delta) must
        // report their true extrema, not a spurious 0 floor.
        let map = Heatmap {
            row_interval: 60.0,
            rows: vec![vec![-5.0, -2.5], vec![-9.0, -3.0]],
        };
        assert_eq!(map.max(), -2.5);
        assert_eq!(map.min(), -9.0);
    }

    #[test]
    fn max_and_min_on_mixed_sign_data() {
        let map = Heatmap {
            row_interval: 60.0,
            rows: vec![vec![-1.0, 0.5], vec![3.0, -4.0]],
        };
        assert_eq!(map.max(), 3.0);
        assert_eq!(map.min(), -4.0);
    }
}
