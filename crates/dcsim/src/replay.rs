//! Scheduler wrappers that record and replay placement-decision traces.
//!
//! The trace data model (header/tick/footer lines, [`StateHasher`])
//! lives in [`vmt_telemetry::replay`]; this module supplies the two
//! [`Scheduler`] implementations that produce and consume traces plus
//! the digest functions tying them to engine state:
//!
//! * [`RecordingScheduler`] wraps any policy, delegates every call, and
//!   logs the tick-boundary state digest, the policy's hot-group size,
//!   and every placement decision into a shared [`TraceHandle`].
//! * [`ReplayScheduler`] drives a simulation *from* a trace: decisions
//!   come straight off the recorded stream (the policy is bypassed
//!   entirely) while every tick's recomputed digest is compared against
//!   the recorded one. Bit-identical digests prove the trace captured
//!   everything that influenced the run; the first mismatch localizes a
//!   divergence for bisection.
//!
//! Both wrappers share their results through `Arc<Mutex<_>>` handles
//! because [`Simulation::run`](crate::Simulation::run) consumes its
//! boxed scheduler — the caller keeps a handle clone and reads it back
//! after the run.

use crate::farm::ServerFarm;
use crate::index::ClusterIndex;
use crate::metrics::SimulationResult;
use crate::scheduler::Scheduler;
use crate::server::{Server, ServerId};
use std::sync::{Arc, Mutex};
use vmt_telemetry::replay::{
    PlacementTrace, ReplayVerdict, StateHasher, TickTrace, TraceFooter, TraceHeader,
};
use vmt_units::Seconds;
use vmt_workload::Job;

/// Digest of the scheduler-visible cluster state at the tick boundary
/// (after departures, before placements) — exactly the state a policy's
/// decisions depend on.
///
/// Zone-cooling temperatures are deliberately *excluded*: they are
/// derived, observational state (a deterministic function of the power
/// lane's history that never feeds back into placement), so including
/// them would change every recorded digest without adding discriminating
/// power — and would break replay of traces recorded before zones
/// existed. Zone state is pinned separately by the snapshot round-trip
/// tests.
pub fn digest_index(index: &ClusterIndex) -> u64 {
    let mut h = StateHasher::new();
    h.write_u64(index.len() as u64);
    for &v in index.air_c() {
        h.write_f64(v);
    }
    for &v in index.reported_melt() {
        h.write_f64(v);
    }
    for &v in index.free_cores() {
        h.write_u64(u64::from(v));
    }
    h.write_u64(index.used_cores_total());
    h.finish()
}

/// Digest of a finished run: the result's full series plus every
/// server's final occupancy and thermal state. Two runs with equal
/// final digests produced bit-identical trajectories.
pub fn digest_final_state(result: &SimulationResult, servers: &[Server]) -> u64 {
    let mut h = StateHasher::new();
    h.write_u64(result.placements);
    h.write_u64(result.dropped_jobs);
    for w in result.cooling.samples() {
        h.write_f64(w.get());
    }
    for w in result.electrical.samples() {
        h.write_f64(w.get());
    }
    for c in &result.avg_temp {
        h.write_f64(c.get());
    }
    for c in &result.hot_group_temp {
        h.write_f64(c.get());
    }
    for &s in &result.hot_group_sizes {
        h.write_u64(s as u64);
    }
    for j in &result.stored_energy {
        h.write_f64(j.get());
    }
    for s in servers {
        h.write_u64(u64::from(s.used_cores()));
        h.write_f64(s.air_at_wax().get());
        h.write_f64(s.reported_melt_fraction().get());
    }
    h.finish()
}

/// The in-flight tick log a [`RecordingScheduler`] appends to.
#[derive(Debug, Default)]
struct TraceLog {
    ticks: Vec<TickTrace>,
}

/// Caller-side handle to a recording in progress.
///
/// Keep a clone before boxing the [`RecordingScheduler`]; after the run
/// finishes, [`TraceHandle::into_trace`] assembles the complete
/// [`PlacementTrace`] (footer digest included).
#[derive(Debug, Clone, Default)]
pub struct TraceHandle(Arc<Mutex<TraceLog>>);

impl TraceHandle {
    /// Creates an empty handle.
    pub fn new() -> Self {
        Self::default()
    }

    /// Assembles the finished trace from the recorded ticks and the
    /// run's end state.
    pub fn into_trace(
        &self,
        header: TraceHeader,
        result: &SimulationResult,
        servers: &[Server],
    ) -> PlacementTrace {
        let log = self.0.lock().expect("trace handle poisoned");
        PlacementTrace {
            header,
            ticks: log.ticks.clone(),
            footer: TraceFooter {
                placements: result.placements,
                dropped_jobs: result.dropped_jobs,
                final_digest: digest_final_state(result, servers),
                ticks_run: log.ticks.len() as u64,
            },
        }
    }
}

/// Wraps a policy and records its full decision stream.
///
/// Observationally transparent: every trait call is delegated, so a
/// recorded run is bit-identical to a bare one under the same policy.
pub struct RecordingScheduler {
    inner: Box<dyn Scheduler>,
    log: TraceHandle,
    tick: u64,
}

impl RecordingScheduler {
    /// Wraps `inner`, appending the recording into `log`.
    pub fn new(inner: Box<dyn Scheduler>, log: TraceHandle) -> Self {
        Self {
            inner,
            log,
            tick: 0,
        }
    }
}

// Recording wraps a live trace handle; it exists only inside one
// process, so the default "not checkpointable" SnapshotState applies.
impl crate::snapshot::SnapshotState for RecordingScheduler {}

impl Scheduler for RecordingScheduler {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn place(&mut self, _job: &Job, _farm: &ServerFarm) -> Option<ServerId> {
        unreachable!("engine drives place_indexed");
    }

    fn on_tick_indexed(&mut self, farm: &ServerFarm, index: &ClusterIndex, now: Seconds) {
        let digest = digest_index(index);
        self.log
            .0
            .lock()
            .expect("trace handle poisoned")
            .ticks
            .push(TickTrace {
                t: self.tick,
                digest,
                hot: None,
                decisions: Vec::new(),
            });
        self.tick += 1;
        self.inner.on_tick_indexed(farm, index, now);
    }

    fn place_indexed(
        &mut self,
        job: &Job,
        farm: &ServerFarm,
        index: &ClusterIndex,
    ) -> Option<ServerId> {
        let decision = self.inner.place_indexed(job, farm, index);
        let encoded = decision.map(|sid| sid.0 as i32).unwrap_or(-1);
        self.log
            .0
            .lock()
            .expect("trace handle poisoned")
            .ticks
            .last_mut()
            .expect("place before first tick")
            .decisions
            .push(encoded);
        decision
    }

    fn hot_group_size(&self) -> Option<usize> {
        let hot = self.inner.hot_group_size();
        // The engine samples the hot-group size once per tick, after
        // placements; recording it here captures exactly the value the
        // physics sweep will act on.
        if let Some(tick) = self
            .log
            .0
            .lock()
            .expect("trace handle poisoned")
            .ticks
            .last_mut()
        {
            tick.hot = hot.map(|s| s as u32);
        }
        hot
    }

    fn counters(&self) -> Option<vmt_telemetry::SchedulerCounters> {
        self.inner.counters()
    }
}

/// What a replay found, accumulated tick by tick.
#[derive(Debug, Default)]
struct ReplayLog {
    ticks_compared: u64,
    first_divergence: Option<(u64, u64, u64)>,
    /// Jobs that arrived with no recorded decision left (a workload
    /// divergence — should never happen for a complete trace).
    missing_decisions: u64,
}

/// Caller-side handle to a replay's verdict.
#[derive(Debug, Clone, Default)]
pub struct ReplayHandle(Arc<Mutex<ReplayLog>>);

impl ReplayHandle {
    /// Creates an empty handle.
    pub fn new() -> Self {
        Self::default()
    }

    /// The per-tick digest verdict. Call after the replay run finishes.
    pub fn verdict(&self) -> ReplayVerdict {
        let log = self.0.lock().expect("replay handle poisoned");
        match log.first_divergence {
            Some((first_tick, expected, actual)) => ReplayVerdict::Diverged {
                first_tick,
                expected,
                actual,
            },
            None => ReplayVerdict::BitIdentical {
                ticks_compared: log.ticks_compared,
            },
        }
    }

    /// Jobs that arrived during replay with no recorded decision left.
    pub fn missing_decisions(&self) -> u64 {
        self.0
            .lock()
            .expect("replay handle poisoned")
            .missing_decisions
    }
}

/// Re-drives a simulation from a recorded trace, bypassing the policy.
///
/// Placement decisions come straight off the trace in arrival order;
/// each tick's recomputed state digest is compared against the recorded
/// one and the first mismatch is reported through the [`ReplayHandle`].
pub struct ReplayScheduler {
    trace: PlacementTrace,
    /// Current tick (0-based); `None` until the first `on_tick_indexed`.
    current: Option<usize>,
    /// Next decision within the current tick.
    cursor: usize,
    report: ReplayHandle,
}

impl ReplayScheduler {
    /// Builds a replayer over `trace`, reporting into `report`.
    pub fn new(trace: PlacementTrace, report: ReplayHandle) -> Self {
        Self {
            trace,
            current: None,
            cursor: 0,
            report,
        }
    }
}

// Replaying mid-trace state is the flight recorder's own format; a
// snapshot of a replay run is out of scope, so the default applies.
impl crate::snapshot::SnapshotState for ReplayScheduler {}

impl Scheduler for ReplayScheduler {
    fn name(&self) -> &str {
        // The recorded policy's label, so a replayed run's result is
        // field-for-field comparable with the original.
        &self.trace.header.policy
    }

    fn place(&mut self, _job: &Job, _farm: &ServerFarm) -> Option<ServerId> {
        unreachable!("engine drives place_indexed");
    }

    fn on_tick_indexed(&mut self, _farm: &ServerFarm, index: &ClusterIndex, _now: Seconds) {
        let t = self.current.map(|c| c + 1).unwrap_or(0);
        self.current = Some(t);
        self.cursor = 0;
        let digest = digest_index(index);
        let mut log = self.report.0.lock().expect("replay handle poisoned");
        if let Some(recorded) = self.trace.ticks.get(t) {
            log.ticks_compared += 1;
            if recorded.digest != digest && log.first_divergence.is_none() {
                log.first_divergence = Some((t as u64, recorded.digest, digest));
            }
        }
    }

    fn place_indexed(
        &mut self,
        _job: &Job,
        _farm: &ServerFarm,
        index: &ClusterIndex,
    ) -> Option<ServerId> {
        let decision = self
            .current
            .and_then(|t| self.trace.ticks.get(t))
            .and_then(|tick| tick.decisions.get(self.cursor).copied());
        self.cursor += 1;
        match decision {
            // An infeasible decision (out-of-range server, or a full
            // one) means the trace is corrupt or incomplete; drop the
            // job and let the digest comparison surface the divergence
            // rather than panic the engine.
            Some(d)
                if d >= 0 && (d as usize) < index.len() && index.free_cores()[d as usize] > 0 =>
            {
                Some(ServerId(d as usize))
            }
            Some(d) if d >= 0 => {
                self.report
                    .0
                    .lock()
                    .expect("replay handle poisoned")
                    .missing_decisions += 1;
                None
            }
            Some(_) => None,
            None => {
                // More arrivals than the trace recorded: count it and
                // drop the job rather than guess a server.
                self.report
                    .0
                    .lock()
                    .expect("replay handle poisoned")
                    .missing_decisions += 1;
                None
            }
        }
    }

    fn hot_group_size(&self) -> Option<usize> {
        self.current
            .and_then(|t| self.trace.ticks.get(t))
            .and_then(|tick| tick.hot)
            .map(|s| s as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ClusterConfig;
    use crate::engine::Simulation;
    use crate::scheduler::FirstFit;
    use vmt_telemetry::replay::TRACE_SCHEMA_VERSION;
    use vmt_units::Hours;
    use vmt_workload::{DiurnalTrace, TraceConfig};

    fn record_run(servers: usize, hours: f64) -> (PlacementTrace, SimulationResult, Vec<Server>) {
        let cluster = ClusterConfig::paper_default(servers);
        let mut trace_cfg = TraceConfig::paper_default();
        trace_cfg.horizon = Hours::new(hours);
        let handle = TraceHandle::new();
        let recorder = RecordingScheduler::new(Box::new(FirstFit::new()), handle.clone());
        let header = TraceHeader {
            schema_version: TRACE_SCHEMA_VERSION,
            policy: "first-fit".into(),
            servers: servers as u64,
            hours,
            cluster_seed: cluster.seed,
            trace_seed: trace_cfg.seed,
            tick_seconds: cluster.tick.get(),
            ticks: 0,
        };
        let (result, end_servers) =
            Simulation::new(cluster, DiurnalTrace::new(trace_cfg), Box::new(recorder))
                .run_returning_servers();
        let mut trace = handle.into_trace(header, &result, &end_servers);
        trace.header.ticks = trace.footer.ticks_run;
        (trace, result, end_servers)
    }

    fn replay_run(trace: &PlacementTrace) -> (ReplayVerdict, SimulationResult, Vec<Server>) {
        let mut cluster = ClusterConfig::paper_default(trace.header.servers as usize);
        cluster.seed = trace.header.cluster_seed;
        let mut trace_cfg = TraceConfig::paper_default();
        trace_cfg.horizon = Hours::new(trace.header.hours);
        trace_cfg.seed = trace.header.trace_seed;
        let report = ReplayHandle::new();
        let replayer = ReplayScheduler::new(trace.clone(), report.clone());
        let (result, servers) =
            Simulation::new(cluster, DiurnalTrace::new(trace_cfg), Box::new(replayer))
                .run_returning_servers();
        (report.verdict(), result, servers)
    }

    #[test]
    fn recording_is_transparent() {
        let cluster = ClusterConfig::paper_default(3);
        let mut trace_cfg = TraceConfig::paper_default();
        trace_cfg.horizon = Hours::new(4.0);
        let bare = Simulation::new(
            cluster,
            DiurnalTrace::new(trace_cfg),
            Box::new(FirstFit::new()),
        )
        .run();
        let (_, recorded, _) = record_run(3, 4.0);
        assert_eq!(bare.cooling, recorded.cooling);
        assert_eq!(bare.placements, recorded.placements);
        assert_eq!(bare.dropped_jobs, recorded.dropped_jobs);
    }

    #[test]
    fn replay_reproduces_the_run_bit_identically() {
        let (trace, original, original_servers) = record_run(4, 6.0);
        assert!(trace.decision_count() > 0, "trace recorded decisions");
        let (verdict, replayed, replayed_servers) = replay_run(&trace);
        assert!(
            verdict.is_identical(),
            "per-tick digests diverged: {verdict:?}"
        );
        assert_eq!(
            verdict,
            ReplayVerdict::BitIdentical {
                ticks_compared: trace.footer.ticks_run
            }
        );
        assert_eq!(original.cooling, replayed.cooling);
        assert_eq!(original.avg_temp, replayed.avg_temp);
        assert_eq!(original.placements, replayed.placements);
        assert_eq!(original.dropped_jobs, replayed.dropped_jobs);
        assert_eq!(
            digest_final_state(&replayed, &replayed_servers),
            trace.footer.final_digest
        );
        assert_eq!(
            digest_final_state(&original, &original_servers),
            trace.footer.final_digest
        );
    }

    #[test]
    fn tampered_decision_is_caught_as_divergence() {
        let (mut trace, ..) = record_run(4, 4.0);
        // Reroute one mid-run placement to a different server; the state
        // digest must diverge on the following tick at the latest.
        let victim = trace
            .ticks
            .iter()
            .position(|t| t.t > 10 && t.decisions.iter().any(|&d| d >= 0))
            .expect("a tick with a placement");
        let slot = trace.ticks[victim]
            .decisions
            .iter()
            .position(|&d| d >= 0)
            .unwrap();
        let old = trace.ticks[victim].decisions[slot];
        trace.ticks[victim].decisions[slot] = (old + 1) % trace.header.servers as i32;
        let (verdict, ..) = replay_run(&trace);
        match verdict {
            ReplayVerdict::Diverged { first_tick, .. } => {
                assert!(
                    first_tick > trace.ticks[victim].t,
                    "divergence at {first_tick} must follow the tampered tick {}",
                    trace.ticks[victim].t
                );
            }
            ReplayVerdict::BitIdentical { .. } => panic!("tampered trace replayed identically"),
        }
    }

    #[test]
    fn truncated_replay_compares_a_prefix() {
        // `replay --until T` runs a shortened horizon over the same
        // trace; digests must match tick-for-tick over the prefix.
        let (trace, ..) = record_run(3, 6.0);
        let mut cluster = ClusterConfig::paper_default(3);
        cluster.seed = trace.header.cluster_seed;
        let mut trace_cfg = TraceConfig::paper_default();
        trace_cfg.horizon = Hours::new(2.0);
        trace_cfg.seed = trace.header.trace_seed;
        let report = ReplayHandle::new();
        let replayer = ReplayScheduler::new(trace.clone(), report.clone());
        Simulation::new(cluster, DiurnalTrace::new(trace_cfg), Box::new(replayer)).run();
        assert_eq!(
            report.verdict(),
            ReplayVerdict::BitIdentical {
                ticks_compared: 120
            }
        );
        assert_eq!(report.missing_decisions(), 0);
    }
}
