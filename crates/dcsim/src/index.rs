//! Incrementally maintained cluster state for schedulers.

use crate::farm::ServerFarm;

/// Flat per-server state the engine keeps current so schedulers can
/// query the cluster without rescanning the farm.
///
/// The engine updates the index at the moments the underlying state
/// changes — thermal fields during the physics pass, core counts on
/// every job start/end — so at the points where schedulers run
/// ([`Scheduler::on_tick_indexed`] and [`Scheduler::place_indexed`])
/// each field is exactly the value the corresponding [`ServerFarm`]
/// accessor would return. That makes the index a pure read-path
/// optimization: policies written against it are observationally
/// identical to policies that walk the farm, just without the per-job
/// O(n) scans.
///
/// [`Scheduler::on_tick_indexed`]: crate::Scheduler::on_tick_indexed
/// [`Scheduler::place_indexed`]: crate::Scheduler::place_indexed
#[derive(Debug, Clone)]
pub struct ClusterIndex {
    /// Air temperature at the wax exchanger per server (°C); equals
    /// [`Server::air_at_wax`] as of the last physics tick.
    air_c: Vec<f64>,
    /// Estimator-reported melt fraction per server; equals
    /// [`Server::reported_melt_fraction`] as of the last physics tick.
    reported_melt: Vec<f64>,
    /// Free cores per server, updated on every job start/end.
    free_cores: Vec<u32>,
    /// Cluster-wide occupied cores.
    used_total: u64,
    /// Cluster-wide core count (fixed).
    total_cores: u64,
}

impl ClusterIndex {
    /// Builds the index from the farm's current state.
    pub fn new(farm: &ServerFarm) -> Self {
        let n = farm.len();
        Self {
            air_c: (0..n).map(|i| farm.air_at_wax(i).get()).collect(),
            reported_melt: (0..n)
                .map(|i| farm.reported_melt_fraction(i).get())
                .collect(),
            free_cores: (0..n).map(|i| farm.free_cores(i)).collect(),
            used_total: (0..n).map(|i| u64::from(farm.used_cores(i))).sum(),
            total_cores: (0..n).map(|_| u64::from(farm.cores())).sum(),
        }
    }

    /// Number of indexed servers.
    pub fn len(&self) -> usize {
        self.air_c.len()
    }

    /// True when the index covers no servers.
    pub fn is_empty(&self) -> bool {
        self.air_c.is_empty()
    }

    /// Per-server air temperature at the wax exchanger (°C).
    pub fn air_c(&self) -> &[f64] {
        &self.air_c
    }

    /// Per-server estimator-reported melt fraction.
    pub fn reported_melt(&self) -> &[f64] {
        &self.reported_melt
    }

    /// Per-server free cores.
    pub fn free_cores(&self) -> &[u32] {
        &self.free_cores
    }

    /// Cluster-wide occupied cores.
    pub fn used_cores_total(&self) -> u64 {
        self.used_total
    }

    /// Cluster-wide core count.
    pub fn total_cores(&self) -> u64 {
        self.total_cores
    }

    /// Fraction of the cluster's cores occupied, in O(1).
    pub fn utilization(&self) -> f64 {
        if self.total_cores == 0 {
            return 0.0;
        }
        self.used_total as f64 / self.total_cores as f64
    }

    /// Records the post-physics thermal state of server `idx`.
    #[cfg(test)]
    pub(crate) fn record_physics(&mut self, idx: usize, air_c: f64, reported_melt: f64) {
        self.air_c[idx] = air_c;
        self.reported_melt[idx] = reported_melt;
    }

    /// Mutable views of the thermal columns, written in bulk by the
    /// farm's sharded physics sweep.
    pub(crate) fn physics_slices_mut(&mut self) -> (&mut [f64], &mut [f64]) {
        (&mut self.air_c, &mut self.reported_melt)
    }

    /// Records a job start on server `idx`. Public because a
    /// [`Scheduler::place_batch`] override starts jobs itself and must
    /// keep the index in lockstep with the farm, exactly as the default
    /// batch body does.
    ///
    /// [`Scheduler::place_batch`]: crate::Scheduler::place_batch
    #[inline]
    pub fn record_start(&mut self, idx: usize) {
        self.free_cores[idx] -= 1;
        self.used_total += 1;
    }

    /// Records a job end on server `idx`.
    #[inline]
    pub(crate) fn record_end(&mut self, idx: usize) {
        self.free_cores[idx] += 1;
        self.used_total -= 1;
    }

    /// Mutable view of the free-core column, written shard-locally by
    /// the farm's sharded departure drain.
    pub(crate) fn free_cores_mut(&mut self) -> &mut [u32] {
        &mut self.free_cores
    }

    /// Hints the CPU to pull server `idx`'s free-core entry toward L1.
    /// Architecturally a no-op; see [`ServerFarm::prefetch_server`]
    /// (same predicted-winner pattern, same soundness argument).
    ///
    /// [`ServerFarm::prefetch_server`]: crate::ServerFarm::prefetch_server
    #[inline]
    pub fn prefetch_server(&self, idx: usize) {
        #[cfg(target_arch = "x86_64")]
        if idx < self.free_cores.len() {
            use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
            // SAFETY: `idx` is in bounds (checked above); prefetch never
            // faults architecturally.
            unsafe {
                _mm_prefetch::<_MM_HINT_T0>(self.free_cores.as_ptr().add(idx).cast());
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        let _ = idx;
    }

    /// Records `count` job ends whose per-server free-core increments
    /// were already applied through [`ClusterIndex::free_cores_mut`].
    pub(crate) fn record_bulk_ends(&mut self, count: u64) {
        self.used_total -= count;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ClusterConfig;
    use vmt_units::Seconds;
    use vmt_workload::{Job, JobId, WorkloadKind};

    fn farm(n: usize) -> ServerFarm {
        ServerFarm::from_config(&ClusterConfig::paper_default(n))
    }

    #[test]
    fn mirrors_initial_server_state() {
        let farm = farm(3);
        let index = ClusterIndex::new(&farm);
        assert_eq!(index.len(), 3);
        assert_eq!(index.total_cores(), 96);
        assert_eq!(index.used_cores_total(), 0);
        assert_eq!(index.utilization(), 0.0);
        for i in 0..farm.len() {
            assert_eq!(index.air_c()[i], farm.air_at_wax(i).get());
            assert_eq!(
                index.reported_melt()[i],
                farm.reported_melt_fraction(i).get()
            );
            assert_eq!(index.free_cores()[i], farm.free_cores(i));
        }
    }

    #[test]
    fn tracks_job_lifecycle() {
        let mut farm = farm(2);
        let mut index = ClusterIndex::new(&farm);
        let job = Job::new(JobId(1), WorkloadKind::WebSearch, Seconds::new(300.0));
        farm.start_job(0, &job);
        index.record_start(0);
        assert_eq!(index.free_cores()[0], farm.free_cores(0));
        assert_eq!(index.used_cores_total(), 1);
        assert_eq!(index.utilization(), 1.0 / 64.0);
        farm.end_job(0, JobId(1));
        index.record_end(0);
        assert_eq!(index.free_cores()[0], farm.free_cores(0));
        assert_eq!(index.used_cores_total(), 0);
    }

    #[test]
    fn tracks_physics_state() {
        let mut farm = farm(1);
        let mut index = ClusterIndex::new(&farm);
        for i in 0..8 {
            farm.start_job(
                0,
                &Job::new(JobId(i), WorkloadKind::VideoEncoding, Seconds::new(3600.0)),
            );
            index.record_start(0);
        }
        for _ in 0..60 {
            farm.tick_physics(Seconds::new(60.0));
        }
        index.record_physics(
            0,
            farm.air_at_wax(0).get(),
            farm.reported_melt_fraction(0).get(),
        );
        assert_eq!(index.air_c()[0], farm.air_at_wax(0).get());
        assert!(index.air_c()[0] > 22.0);
    }
}
