//! One simulated server: cores, power, thermals, wax.

use crate::config::{ClusterConfig, WaxSpec};
use std::collections::HashMap;
use vmt_pcm::{HeatExchanger, SensorReading, WaxPack, WaxStateEstimator};
use vmt_power::ServerPowerModel;
use vmt_thermal::{CoolingLoad, ServerThermalModel};
use vmt_units::{Celsius, Fraction, Seconds, Watts};
use vmt_workload::{Job, JobId, VmtClass, WorkloadKind};

/// Index of a server within its cluster.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct ServerId(pub usize);

impl core::fmt::Display for ServerId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "server#{}", self.0)
    }
}

/// The wax subsystem of one server: physical truth plus the estimator the
/// scheduler actually reads.
#[derive(Debug, Clone)]
struct ServerWax {
    pack: WaxPack,
    exchanger: HeatExchanger,
    estimator: WaxStateEstimator,
}

/// One simulated server.
///
/// The server owns its physical state (running jobs, thermal model, wax)
/// and exposes the two views the rest of the system needs: *physical*
/// accessors used by the engine's metrics, and *sensor* accessors
/// ([`Server::reported_melt_fraction`]) that go through the quantized
/// estimator, because that is all a real cluster scheduler would see.
#[derive(Debug, Clone)]
pub struct Server {
    id: ServerId,
    power_model: ServerPowerModel,
    thermal: ServerThermalModel,
    wax: Option<ServerWax>,
    jobs: HashMap<JobId, WorkloadKind>,
    /// Sum of per-core powers of running jobs, maintained incrementally.
    active_core_power: Watts,
    /// Report physical wax state instead of the estimator's (ablation).
    oracle_wax_state: bool,
}

impl Server {
    /// Builds server `id` from the cluster configuration.
    pub fn from_config(id: ServerId, config: &ClusterConfig) -> Self {
        let inlet = config.inlet.inlet_for(id.0);
        let mut thermal =
            ServerThermalModel::with_time_constant(inlet, config.air, config.thermal_time_constant);
        thermal.settle(config.power.idle());
        let wax = config.wax.as_ref().map(|spec: &WaxSpec| {
            let mass = spec.sizing.mass_of(&spec.material);
            let pack = WaxPack::new(spec.material.clone(), mass, thermal.air_at_wax());
            let mut estimator =
                WaxStateEstimator::new(spec.material.clone(), mass, spec.exchanger_ua)
                    .with_taper(spec.interface_taper);
            estimator.reset(thermal.air_at_wax(), Fraction::ZERO);
            ServerWax {
                pack,
                exchanger: HeatExchanger::with_taper(spec.exchanger_ua, spec.interface_taper),
                estimator,
            }
        });
        Self {
            id,
            power_model: config.power,
            thermal,
            wax,
            jobs: HashMap::new(),
            active_core_power: Watts::ZERO,
            oracle_wax_state: config.oracle_wax_state,
        }
    }

    /// Reassembles a server from farm state (see
    /// [`crate::ServerFarm::to_servers`]).
    pub(crate) fn from_parts(
        id: ServerId,
        power_model: ServerPowerModel,
        thermal: ServerThermalModel,
        wax: Option<(WaxPack, HeatExchanger, WaxStateEstimator)>,
        jobs: HashMap<JobId, WorkloadKind>,
        active_core_power: Watts,
        oracle_wax_state: bool,
    ) -> Self {
        Self {
            id,
            power_model,
            thermal,
            wax: wax.map(|(pack, exchanger, estimator)| ServerWax {
                pack,
                exchanger,
                estimator,
            }),
            jobs,
            active_core_power,
            oracle_wax_state,
        }
    }

    /// The per-server power model (farm construction).
    pub(crate) fn power_model(&self) -> ServerPowerModel {
        self.power_model
    }

    /// The thermal model (farm construction).
    pub(crate) fn thermal(&self) -> &ServerThermalModel {
        &self.thermal
    }

    /// The wax subsystem's parts, if deployed (farm construction).
    pub(crate) fn wax_parts(&self) -> Option<(&WaxPack, &HeatExchanger, &WaxStateEstimator)> {
        self.wax
            .as_ref()
            .map(|w| (&w.pack, &w.exchanger, &w.estimator))
    }

    /// The running-job map (farm construction).
    pub(crate) fn jobs_map(&self) -> &HashMap<JobId, WorkloadKind> {
        &self.jobs
    }

    /// Sum of running jobs' core powers (farm construction).
    pub(crate) fn active_core_power(&self) -> Watts {
        self.active_core_power
    }

    /// The oracle-ablation flag (farm construction).
    pub(crate) fn oracle_wax_state(&self) -> bool {
        self.oracle_wax_state
    }

    /// This server's id.
    pub fn id(&self) -> ServerId {
        self.id
    }

    /// Total cores.
    pub fn cores(&self) -> u32 {
        self.power_model.cores()
    }

    /// Cores currently running jobs.
    pub fn used_cores(&self) -> u32 {
        self.jobs.len() as u32
    }

    /// Cores available for placement.
    pub fn free_cores(&self) -> u32 {
        self.cores() - self.used_cores()
    }

    /// Current electrical power draw.
    pub fn power(&self) -> Watts {
        self.power_model.idle() + self.active_core_power
    }

    /// Current air temperature at the wax containers.
    pub fn air_at_wax(&self) -> Celsius {
        self.thermal.air_at_wax()
    }

    /// The server's inlet temperature.
    pub fn inlet(&self) -> Celsius {
        self.thermal.inlet()
    }

    /// The server's cooling air stream.
    pub fn air(&self) -> vmt_thermal::AirStream {
        self.thermal.air()
    }

    /// Updates the inlet temperature (time-varying ambient models).
    pub fn set_inlet(&mut self, inlet: Celsius) {
        self.thermal.set_inlet(inlet);
    }

    /// Physical (ground-truth) wax melt fraction; zero for waxless
    /// servers.
    pub fn melt_fraction(&self) -> Fraction {
        self.wax
            .as_ref()
            .map(|w| w.pack.melt_fraction())
            .unwrap_or(Fraction::ZERO)
    }

    /// Melt fraction as reported by the on-server estimator — what the
    /// cluster scheduler sees. Zero for waxless servers. With the
    /// cluster's `oracle_wax_state` ablation flag set, this returns the
    /// physical state instead.
    pub fn reported_melt_fraction(&self) -> Fraction {
        if self.oracle_wax_state {
            return self.melt_fraction();
        }
        self.wax
            .as_ref()
            .map(|w| w.estimator.melt_fraction())
            .unwrap_or(Fraction::ZERO)
    }

    /// Physical latent energy currently stored in the wax.
    pub fn stored_latent_energy(&self) -> vmt_units::Joules {
        self.wax
            .as_ref()
            .map(|w| w.pack.stored_latent_energy())
            .unwrap_or(vmt_units::Joules::ZERO)
    }

    /// The wax melting temperature, if wax is deployed.
    pub fn melt_temperature(&self) -> Option<Celsius> {
        self.wax
            .as_ref()
            .map(|w| w.pack.material().melt_temperature())
    }

    /// Number of running jobs of each workload, indexed by
    /// [`WorkloadKind::index`].
    pub fn kind_counts(&self) -> [u32; 5] {
        let mut counts = [0u32; 5];
        for kind in self.jobs.values() {
            counts[kind.index()] += 1;
        }
        counts
    }

    /// Number of running jobs of each VMT class `(hot, cold)`.
    pub fn class_counts(&self) -> (u32, u32) {
        let mut hot = 0;
        let mut cold = 0;
        for kind in self.jobs.values() {
            match kind.vmt_class() {
                VmtClass::Hot => hot += 1,
                VmtClass::Cold => cold += 1,
            }
        }
        (hot, cold)
    }

    /// Starts a job on a free core.
    ///
    /// # Panics
    ///
    /// Panics if the server is full or the job id is already running here
    /// — both indicate an engine bug, not a recoverable condition.
    pub fn start_job(&mut self, job: &Job) {
        assert!(self.free_cores() > 0, "placement on a full {}", self.id);
        let prev = self.jobs.insert(job.id(), job.kind());
        assert!(prev.is_none(), "duplicate {} on {}", job.id(), self.id);
        self.active_core_power += job.core_power();
    }

    /// Ends a job, freeing its core. Returns the job's workload.
    ///
    /// # Panics
    ///
    /// Panics if the job is not running on this server.
    pub fn end_job(&mut self, id: JobId) -> WorkloadKind {
        let kind = self
            .jobs
            .remove(&id)
            .unwrap_or_else(|| panic!("{id} not running on {}", self.id));
        self.active_core_power -= kind.core_power();
        // Guard against f64 drift accumulating into a negative draw.
        if self.jobs.is_empty() {
            self.active_core_power = Watts::ZERO;
        }
        kind
    }

    /// Advances physics by `dt`: thermal response to the current power
    /// draw, then wax exchange, then the estimator's sensor update.
    /// Returns this server's cooling-load contribution.
    pub fn tick(&mut self, dt: Seconds) -> CoolingLoad {
        let electrical = self.power();
        let air = self.thermal.step(electrical, dt);
        let into_wax = match &mut self.wax {
            Some(w) => {
                let step = w.exchanger.step(&mut w.pack, air, dt);
                w.estimator.update(
                    SensorReading {
                        container_air: air,
                        cpu_power: electrical,
                    },
                    dt,
                );
                step.average_power
            }
            None => Watts::ZERO,
        };
        CoolingLoad {
            electrical,
            into_wax,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmt_workload::JobId;

    fn server() -> Server {
        Server::from_config(ServerId(0), &ClusterConfig::paper_default(1))
    }

    fn job(id: u64, kind: WorkloadKind) -> Job {
        Job::new(JobId(id), kind, Seconds::new(300.0))
    }

    #[test]
    fn starts_idle_at_inlet_equilibrium() {
        let s = server();
        assert_eq!(s.used_cores(), 0);
        assert_eq!(s.power(), Watts::new(100.0));
        // Idle equilibrium: inlet + 100/17.5 ≈ 27.7 °C.
        assert!((s.air_at_wax().get() - 27.71).abs() < 0.05);
        assert!(s.melt_fraction().is_zero());
    }

    #[test]
    fn job_lifecycle_updates_power() {
        let mut s = server();
        s.start_job(&job(1, WorkloadKind::VideoEncoding));
        s.start_job(&job(2, WorkloadKind::VirusScan));
        assert_eq!(s.used_cores(), 2);
        let expect = 100.0 + 60.9 / 8.0 + 3.4 / 8.0;
        assert!((s.power().get() - expect).abs() < 1e-9);
        assert_eq!(s.end_job(JobId(1)), WorkloadKind::VideoEncoding);
        assert_eq!(s.used_cores(), 1);
        s.end_job(JobId(2));
        assert_eq!(s.power(), Watts::new(100.0));
    }

    #[test]
    fn class_counts() {
        let mut s = server();
        s.start_job(&job(1, WorkloadKind::WebSearch));
        s.start_job(&job(2, WorkloadKind::Clustering));
        s.start_job(&job(3, WorkloadKind::DataCaching));
        assert_eq!(s.class_counts(), (2, 1));
    }

    #[test]
    #[should_panic(expected = "not running")]
    fn ending_unknown_job_panics() {
        let mut s = server();
        s.end_job(JobId(99));
    }

    #[test]
    #[should_panic(expected = "full")]
    fn overfilling_panics() {
        let mut s = server();
        for i in 0..=32 {
            s.start_job(&job(i, WorkloadKind::VirusScan));
        }
    }

    #[test]
    fn fully_loaded_hot_server_melts_wax() {
        let mut s = server();
        for i in 0..32 {
            s.start_job(&job(i, WorkloadKind::VideoEncoding));
        }
        // 8 hours at full video-encoding load (343 W → ≈42 °C at the wax).
        for _ in 0..480 {
            s.tick(Seconds::new(60.0));
        }
        assert!(s.melt_fraction().get() > 0.5, "melt {}", s.melt_fraction());
        // The estimator tracks the physical state.
        let err = (s.melt_fraction().get() - s.reported_melt_fraction().get()).abs();
        assert!(err < 0.1, "estimator error {err}");
    }

    #[test]
    fn cold_server_never_melts() {
        let mut s = server();
        for i in 0..32 {
            s.start_job(&job(i, WorkloadKind::DataCaching));
        }
        for _ in 0..480 {
            s.tick(Seconds::new(60.0));
        }
        assert!(s.melt_fraction().is_zero());
    }

    #[test]
    fn cooling_load_identity_holds_per_tick() {
        let mut s = server();
        for i in 0..32 {
            s.start_job(&job(i, WorkloadKind::Clustering));
        }
        for _ in 0..240 {
            let load = s.tick(Seconds::new(60.0));
            assert!(load.rejected() <= load.electrical + Watts::new(1e-9));
            assert!(load.rejected().get() >= 0.0);
        }
    }

    #[test]
    fn waxless_server_rejects_all_heat() {
        let config = ClusterConfig::without_wax(1);
        let mut s = Server::from_config(ServerId(0), &config);
        for i in 0..32 {
            s.start_job(&job(i, WorkloadKind::VideoEncoding));
        }
        for _ in 0..60 {
            let load = s.tick(Seconds::new(60.0));
            assert_eq!(load.into_wax, Watts::ZERO);
            assert_eq!(load.rejected(), load.electrical);
        }
        assert!(s.melt_temperature().is_none());
    }
}
