//! Persistent worker pool for the sharded tick.
//!
//! [`TickPool`] replaces the per-tick `std::thread::scope` the farm used
//! through PR 2–4: workers are spawned **once** (per [`Simulation`], via
//! the farm that owns the pool) and parked on a condvar between ticks,
//! so the steady-state handoff cost of a parallel tick is one mutex
//! publish, one `notify_all`, and one completion wait — instead of
//! `threads` thread spawns and joins every 60 simulated seconds.
//!
//! # Execution model
//!
//! A caller hands [`TickPool::run`] a task count and a `Fn(usize)`
//! closure; the pool's workers *and the calling thread* claim task
//! indices from a shared atomic counter and run them. Which thread runs
//! a task is scheduling noise — determinism therefore requires (and the
//! farm's sweep guarantees) that tasks write only disjoint state and
//! that any floating-point reduction over task outputs is folded by the
//! caller in task order afterwards. The pool itself never touches task
//! outputs.
//!
//! The claim counter also makes the pool degrade gracefully on
//! oversubscribed or single-core hosts: if workers are never scheduled,
//! the calling thread simply claims every task itself and the only
//! parallel overhead left is one wake/wait round-trip.
//!
//! # Lifetime safety
//!
//! `run` publishes a raw pointer to the caller's borrowed closure and
//! does not return until every worker has finished the generation and
//! checked back in, so no worker can hold the closure (or the state it
//! borrows) after `run` returns. Shutdown joins every worker in
//! [`Drop`], so a pool owner never leaks threads.
//!
//! [`Simulation`]: crate::Simulation

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// A persistent pool of parked worker threads for sharded tick work.
pub struct TickPool {
    shared: Arc<Shared>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

/// The state a worker parks on.
struct Handoff {
    /// Bumped once per published batch; a worker runs each generation
    /// exactly once.
    generation: u64,
    /// The current batch, `None` between batches.
    job: Option<Job>,
    /// Workers still running the current generation.
    active: usize,
    shutdown: bool,
}

struct Shared {
    state: Mutex<Handoff>,
    /// Wakes workers when a batch is published (or on shutdown).
    work_ready: Condvar,
    /// Wakes the caller when the last worker checks in.
    work_done: Condvar,
    /// Next unclaimed task index of the current batch.
    next: AtomicUsize,
    /// Per-worker busy nanoseconds of the current batch; written only
    /// for timed batches, read by the caller after the completion wait.
    busy_ns: Vec<AtomicU64>,
}

/// A published batch: a type-erased pointer to the caller's closure.
/// Sound because `run` blocks until every worker finished the batch.
#[derive(Clone, Copy)]
struct Job {
    task: *const (dyn Fn(usize) + Sync),
    count: usize,
    timed: bool,
}

// SAFETY: the pointee is a `Sync` closure the publishing thread keeps
// alive (and borrowed) for the entire batch; see the module docs.
unsafe impl Send for Job {}

impl TickPool {
    /// Spawns `workers` parked worker threads (the calling thread of
    /// [`TickPool::run`] participates too, so total parallelism is
    /// `workers + 1`).
    pub fn new(workers: usize) -> Self {
        let shared = Arc::new(Shared {
            state: Mutex::new(Handoff {
                generation: 0,
                job: None,
                active: 0,
                shutdown: false,
            }),
            work_ready: Condvar::new(),
            work_done: Condvar::new(),
            next: AtomicUsize::new(0),
            busy_ns: (0..workers).map(|_| AtomicU64::new(0)).collect(),
        });
        let handles = (0..workers)
            .map(|slot| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("vmt-tick-{slot}"))
                    .spawn(move || worker_loop(&shared, slot))
                    .expect("spawn tick worker")
            })
            .collect();
        Self { shared, handles }
    }

    /// Number of pool worker threads (excluding the calling thread).
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Runs `task(i)` for every `i in 0..count`, distributing indices
    /// over the pool workers and the calling thread, and returns when
    /// all tasks finished. Tasks must touch only disjoint state (the
    /// caller's responsibility; the farm's shard views enforce it by
    /// construction).
    pub fn run(&self, count: usize, task: &(dyn Fn(usize) + Sync)) {
        self.dispatch(count, task, None);
    }

    /// [`TickPool::run`] that also measures per-participant busy
    /// nanoseconds into `busy_out` (len `workers() + 1`; the last slot
    /// is the calling thread). Only telemetry-enabled sweeps call this —
    /// the untimed path takes no timestamps anywhere.
    pub fn run_timed(&self, count: usize, task: &(dyn Fn(usize) + Sync), busy_out: &mut [u64]) {
        debug_assert_eq!(busy_out.len(), self.workers() + 1);
        self.dispatch(count, task, Some(busy_out));
    }

    fn dispatch(&self, count: usize, task: &(dyn Fn(usize) + Sync), busy_out: Option<&mut [u64]>) {
        if count == 0 {
            if let Some(out) = busy_out {
                out.fill(0);
            }
            return;
        }
        let timed = busy_out.is_some();
        if timed {
            for slot in &self.shared.busy_ns {
                slot.store(0, Ordering::Relaxed);
            }
        }
        self.shared.next.store(0, Ordering::Relaxed);
        // SAFETY: erases the closure's borrow lifetime for the raw
        // pointer in `Job`. Sound because this function does not return
        // until every worker checked back in for this generation, so no
        // worker holds the pointer after the borrow ends.
        let erased: *const (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(task) };
        {
            let mut state = self.shared.state.lock().unwrap();
            state.generation += 1;
            state.active = self.handles.len();
            state.job = Some(Job {
                task: erased,
                count,
                timed,
            });
        }
        self.shared.work_ready.notify_all();

        // Participate: claim tasks alongside the workers.
        let started = timed.then(Instant::now);
        let mut caller_busy = 0u64;
        loop {
            let i = self.shared.next.fetch_add(1, Ordering::Relaxed);
            if i >= count {
                break;
            }
            task(i);
        }
        if let Some(t0) = started {
            caller_busy = t0.elapsed().as_nanos() as u64;
        }

        // Completion barrier: the mutex hand-back is also the
        // happens-before edge that publishes worker writes (shard state,
        // busy slots) to the caller.
        let mut state = self.shared.state.lock().unwrap();
        while state.active > 0 {
            state = self.shared.work_done.wait(state).unwrap();
        }
        state.job = None;
        drop(state);
        if let Some(out) = busy_out {
            for (dst, slot) in out.iter_mut().zip(&self.shared.busy_ns) {
                *dst = slot.load(Ordering::Relaxed);
            }
            out[self.handles.len()] = caller_busy;
        }
    }

    /// Weak handle to the pool's shared state; used by tests to prove
    /// the workers released it (i.e. actually exited) after drop.
    #[cfg(test)]
    fn shared_weak(&self) -> std::sync::Weak<Shared> {
        Arc::downgrade(&self.shared)
    }
}

impl Drop for TickPool {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock().unwrap();
            state.shutdown = true;
        }
        self.shared.work_ready.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for TickPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TickPool")
            .field("workers", &self.handles.len())
            .finish()
    }
}

fn worker_loop(shared: &Shared, slot: usize) {
    let mut seen_generation = 0u64;
    loop {
        let job = {
            let mut state = shared.state.lock().unwrap();
            loop {
                if state.shutdown {
                    return;
                }
                if state.generation > seen_generation {
                    break;
                }
                state = shared.work_ready.wait(state).unwrap();
            }
            seen_generation = state.generation;
            state.job.expect("published generation carries a job")
        };
        let started = job.timed.then(Instant::now);
        // SAFETY: the publisher blocks in `dispatch` until this worker
        // checks back in below, so the closure outlives this use.
        let task = unsafe { &*job.task };
        loop {
            let i = shared.next.fetch_add(1, Ordering::Relaxed);
            if i >= job.count {
                break;
            }
            task(i);
        }
        if let Some(t0) = started {
            shared.busy_ns[slot].store(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        }
        let mut state = shared.state.lock().unwrap();
        state.active -= 1;
        if state.active == 0 {
            shared.work_done.notify_one();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn runs_every_task_exactly_once() {
        let pool = TickPool::new(3);
        let hits: Vec<AtomicU32> = (0..100).map(|_| AtomicU32::new(0)).collect();
        for _ in 0..50 {
            pool.run(hits.len(), &|i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
        }
        for (i, hit) in hits.iter().enumerate() {
            assert_eq!(hit.load(Ordering::Relaxed), 50, "task {i}");
        }
    }

    #[test]
    fn zero_tasks_is_a_no_op() {
        let pool = TickPool::new(2);
        pool.run(0, &|_| panic!("no task should run"));
        let mut busy = vec![7u64; 3];
        pool.run_timed(0, &|_| panic!("no task should run"), &mut busy);
        assert_eq!(busy, vec![0, 0, 0]);
    }

    #[test]
    fn timed_run_reports_caller_participation() {
        let pool = TickPool::new(2);
        let mut busy = vec![0u64; 3];
        pool.run_timed(
            64,
            &|_| {
                std::hint::black_box((0..500).sum::<u64>());
            },
            &mut busy,
        );
        // The caller always participates (it claims until the counter
        // runs out), so its slot — the last — must be non-zero.
        assert!(busy[2] > 0, "caller busy time missing: {busy:?}");
    }

    #[test]
    fn drop_joins_all_workers() {
        let pool = TickPool::new(4);
        let weak = pool.shared_weak();
        pool.run(16, &|_| {});
        drop(pool);
        // Every worker held an Arc to the shared state; if any thread
        // leaked, the weak handle would still upgrade.
        assert!(
            weak.upgrade().is_none(),
            "a worker thread outlived the pool"
        );
    }

    #[test]
    fn reusable_across_many_generations_with_disjoint_writes() {
        use std::cell::UnsafeCell;
        /// Test-only disjoint-write helper mirroring how the farm hands
        /// shard views to the pool.
        struct SliceCells<'a>(&'a [UnsafeCell<u64>]);
        unsafe impl Sync for SliceCells<'_> {}
        impl SliceCells<'_> {
            /// SAFETY: each index must be presented by one thread only.
            unsafe fn add(&self, i: usize, v: u64) {
                unsafe { *self.0[i].get() += v }
            }
        }

        let pool = TickPool::new(2);
        let data: Vec<UnsafeCell<u64>> = (0..257).map(|_| UnsafeCell::new(0)).collect();
        for round in 1..=20u64 {
            let cells = SliceCells(&data);
            pool.run(data.len(), &move |i| {
                // SAFETY: each index is claimed by exactly one thread.
                unsafe { cells.add(i, round) };
            });
        }
        let expected: u64 = (1..=20).sum();
        for cell in &data {
            assert_eq!(unsafe { *cell.get() }, expected);
        }
    }
}
