//! Cluster configuration.

use vmt_pcm::{PcmMaterial, ServerWaxConfig};
use vmt_power::ServerPowerModel;
use vmt_thermal::{AirStream, InletModel};
use vmt_units::{Celsius, Seconds, WattsPerKelvin};

/// Wax deployment parameters shared by every server in a cluster.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct WaxSpec {
    /// The deployed material.
    pub material: PcmMaterial,
    /// How much wax each server carries.
    pub sizing: ServerWaxConfig,
    /// Air-to-wax exchanger conductance (un-tapered).
    pub exchanger_ua: WattsPerKelvin,
    /// Phase-interface taper coefficient `b` (see
    /// [`vmt_pcm::HeatExchanger::with_taper`]).
    pub interface_taper: f64,
}

impl WaxSpec {
    /// The paper's deployment: 4.0 L of 35.7 °C commercial paraffin with
    /// the calibrated ≈17.5 W/K exchanger, no interface taper.
    pub fn paper_default() -> Self {
        Self {
            material: PcmMaterial::deployed_paraffin(),
            sizing: ServerWaxConfig::default(),
            exchanger_ua: WattsPerKelvin::new(17.5),
            interface_taper: 0.0,
        }
    }
}

/// Static description of a homogeneous cluster.
///
/// # Examples
///
/// ```
/// use vmt_dcsim::ClusterConfig;
///
/// let config = ClusterConfig::paper_default(1000);
/// assert_eq!(config.num_servers, 1000);
/// assert_eq!(config.total_cores(), 32_000);
/// ```
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ClusterConfig {
    /// Number of servers in the cluster.
    pub num_servers: usize,
    /// Per-server power model.
    pub power: ServerPowerModel,
    /// Per-server cooling air stream.
    pub air: AirStream,
    /// Inlet temperature distribution across servers.
    pub inlet: InletModel,
    /// First-order lag of the CPU-to-air path.
    pub thermal_time_constant: Seconds,
    /// Wax deployment; `None` simulates a conventional (waxless) cluster.
    pub wax: Option<WaxSpec>,
    /// Simulation tick (the paper updates wax state once per minute).
    pub tick: Seconds,
    /// How often the per-server heatmap rows are sampled, in ticks.
    pub heatmap_stride: usize,
    /// Seed for the arrival planner's duration jitter.
    pub seed: u64,
    /// When true, schedulers read the *physical* wax state instead of
    /// the on-server estimator's report — an oracle used by ablation
    /// studies to price the estimator's error.
    pub oracle_wax_state: bool,
    /// How job durations scatter around each workload's typical
    /// duration.
    pub duration_model: vmt_workload::DurationModel,
    /// Rack/row/zone cooling hierarchy; `None` keeps the legacy single
    /// room model. Stored as an `Option` so configs and snapshots
    /// serialized before zones existed keep decoding (a missing field
    /// deserializes to `None`). Zone cooling is observational — enabling
    /// it changes no placement or physics result.
    pub topology: Option<crate::topology::ZoneSpec>,
}

impl ClusterConfig {
    /// The paper's test cluster scaled to `num_servers`: 32-core 100/500 W
    /// servers, 22 °C uniform inlet, 4.0 L of 35.7 °C paraffin each.
    ///
    /// # Panics
    ///
    /// Panics if `num_servers` is zero.
    pub fn paper_default(num_servers: usize) -> Self {
        assert!(num_servers > 0, "cluster must have at least one server");
        Self {
            num_servers,
            power: ServerPowerModel::paper_default(),
            air: AirStream::paper_default(),
            inlet: InletModel::uniform(Celsius::new(22.0)),
            thermal_time_constant: Seconds::new(300.0),
            wax: Some(WaxSpec::paper_default()),
            tick: Seconds::new(60.0),
            heatmap_stride: 5,
            seed: 0xD15EA5E,
            oracle_wax_state: false,
            duration_model: vmt_workload::DurationModel::default(),
            topology: None,
        }
    }

    /// The same cluster with the paper-scale rack/row/zone cooling
    /// hierarchy attached ([`ZoneSpec::paper_default`]).
    ///
    /// [`ZoneSpec::paper_default`]: crate::topology::ZoneSpec::paper_default
    pub fn with_zones(mut self) -> Self {
        self.topology = Some(crate::topology::ZoneSpec::paper_default());
        self
    }

    /// Same cluster without wax (the "thermally unconstrained" baseline).
    pub fn without_wax(num_servers: usize) -> Self {
        Self {
            wax: None,
            ..Self::paper_default(num_servers)
        }
    }

    /// Total cores in the cluster.
    pub fn total_cores(&self) -> usize {
        self.num_servers * self.power.cores() as usize
    }

    /// Number of ticks needed to cover `horizon`.
    pub fn ticks_for(&self, horizon: vmt_units::Hours) -> usize {
        (horizon.to_seconds().get() / self.tick.get()).round() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmt_units::Hours;

    #[test]
    fn paper_default_dimensions() {
        let c = ClusterConfig::paper_default(100);
        assert_eq!(c.total_cores(), 3200);
        assert_eq!(c.ticks_for(Hours::new(48.0)), 2880);
        assert!(c.wax.is_some());
    }

    #[test]
    fn waxless_variant() {
        assert!(ClusterConfig::without_wax(10).wax.is_none());
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn zero_servers_rejected() {
        ClusterConfig::paper_default(0);
    }
}
