//! The placement-policy interface.

use crate::farm::ServerFarm;
use crate::index::ClusterIndex;
use crate::server::ServerId;
use crate::snapshot::SnapshotState;
use vmt_units::Seconds;
use vmt_workload::Job;

/// One tournament candidate inside a [`DecisionDetail`]: a server and
/// its balancer key at the moment of the decision.
///
/// This *is* the tracer's candidate type — the alias lets a policy's
/// candidate snapshot travel by move from the balancer through the
/// probe into the trace ring, instead of being copied element-by-
/// element at each crate boundary (it rides the placement hot path on
/// traced runs).
pub type DecisionCandidate = vmt_telemetry::SpanCandidate;

/// A policy's explanation of one placement decision, reported through
/// a [`PlacementProbe`].
///
/// Everything here is derived from the policy's deterministic state
/// *before* the placement mutated it, so the detail stream is
/// bit-identical across thread counts.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DecisionDetail {
    /// Which rung of the policy's placement ladder produced the
    /// decision (e.g. `"hot-balancer"`, `"keep-warm"`, `"cold-any"`).
    pub rung: &'static str,
    /// The chosen server, `None` when every rung failed.
    pub chosen: Option<u32>,
    /// The chosen server's tournament key when a balancer rung won;
    /// `None` on priority/cursor rungs.
    pub winning_key: Option<f64>,
    /// Top tournament candidates (winner first) the balancer was
    /// offering when the decision was made; empty for policies or
    /// rungs without a tournament.
    pub candidates: Vec<DecisionCandidate>,
}

/// Receives per-job decision detail from a policy's
/// [`Scheduler::place_batch_traced`].
///
/// The engine implements this to feed its span tracer. [`wants`]
/// gates the (comparatively expensive) detail assembly to sampled
/// jobs; `decision` is called at most once per wanted job, after the
/// placement's bookkeeping against the policy's own structures but
/// before the next job is considered.
///
/// [`wants`]: PlacementProbe::wants
pub trait PlacementProbe {
    /// Whether detail for `job` should be assembled and reported.
    fn wants(&self, job: &Job) -> bool;

    /// Fills `out` with the strictly increasing indices of the wanted
    /// jobs in `jobs` — equivalent to filtering every index through
    /// [`wants`](PlacementProbe::wants), which is what the default
    /// does. Batch loops should prefer this over a per-job `wants`
    /// call: it lets the engine's probe answer arithmetically for a
    /// whole batch of consecutive job ids, keeping the unsampled
    /// fast path free of per-job sampling checks (at cluster scale a
    /// tick places tens of thousands of jobs).
    fn sampled_indices(&self, jobs: &[Job], out: &mut Vec<usize>) {
        out.clear();
        for (i, job) in jobs.iter().enumerate() {
            if self.wants(job) {
                out.push(i);
            }
        }
    }

    /// Reports the decision detail for a wanted job.
    fn decision(&mut self, job: &Job, detail: DecisionDetail);
}

/// A cluster-level job placement policy.
///
/// The engine calls [`Scheduler::on_tick`] once per simulated minute
/// (after departures, before arrivals) so policies can refresh any
/// derived state — sorted orders, group sizes, wax scans — and then calls
/// [`Scheduler::place`] once per arriving job. Policies should do their
/// per-tick work in `on_tick` and keep `place` amortized O(1); at cluster
/// scale the engine performs millions of placements per simulated day.
///
/// Schedulers observe servers only through the [`ServerFarm`]'s public
/// accessors; in particular the wax state they can see is the
/// *estimator's report* ([`ServerFarm::reported_melt_fraction`]),
/// matching the paper's deployment where each server runs a lightweight
/// wax model and reports once per minute.
///
/// The [`SnapshotState`] supertrait is how a policy participates in
/// engine checkpoints: it saves its cross-tick state under its policy
/// name and restores from a matching [`SavedState`]. The default
/// implementation marks a policy as not checkpointable, which is fine
/// for harness wrappers and test probes — [`Simulation::snapshot`] then
/// returns a typed error instead of a lossy checkpoint.
///
/// [`SavedState`]: crate::SavedState
/// [`Simulation::snapshot`]: crate::Simulation::snapshot
pub trait Scheduler: SnapshotState {
    /// Human-readable policy name (used in reports and plots).
    fn name(&self) -> &str;

    /// Called at the start of every tick, before any placements.
    fn on_tick(&mut self, farm: &ServerFarm, now: Seconds) {
        let _ = (farm, now);
    }

    /// Chooses a server for `job`, or `None` if the cluster cannot hold
    /// it (the job is dropped and counted).
    fn place(&mut self, job: &Job, farm: &ServerFarm) -> Option<ServerId>;

    /// Index-aware variant of [`Scheduler::on_tick`].
    ///
    /// The engine maintains a [`ClusterIndex`] — flat per-server
    /// temperature, melt, and core-count arrays updated incrementally as
    /// jobs start/end and physics ticks — and calls this instead of
    /// `on_tick`. Policies that can exploit the index (O(1) cluster
    /// utilization, cache-friendly flag scans) override it; the default
    /// ignores the index and delegates, so legacy policies and direct
    /// test harnesses keep working unchanged.
    fn on_tick_indexed(&mut self, farm: &ServerFarm, index: &ClusterIndex, now: Seconds) {
        let _ = index;
        self.on_tick(farm, now);
    }

    /// Index-aware variant of [`Scheduler::place`]; see
    /// [`Scheduler::on_tick_indexed`]. The default delegates to `place`.
    fn place_indexed(
        &mut self,
        job: &Job,
        farm: &ServerFarm,
        index: &ClusterIndex,
    ) -> Option<ServerId> {
        let _ = index;
        self.place(job, farm)
    }

    /// Places one tick's arrival batch in order: every placed job is
    /// started on the farm and recorded in the index before the next
    /// decision, and each job's outcome is pushed onto `out`.
    ///
    /// The default runs exactly the per-job sequence the engine used
    /// to run inline (VMT-WA overrides it to add prefetching), so the
    /// policy observes identical farm/index state before every decision
    /// and the outcomes (hence results, counters, and replay digests)
    /// are bit-identical to per-job placement. Batching exists to
    /// devirtualize the hot loop: the engine pays one dynamic dispatch
    /// per tick instead of one per job, and each policy's monomorphized
    /// body can inline its own `place_indexed`.
    fn place_batch(
        &mut self,
        jobs: &[Job],
        farm: &mut ServerFarm,
        index: &mut ClusterIndex,
        out: &mut Vec<Option<ServerId>>,
    ) {
        for job in jobs {
            let placed = self.place_indexed(job, farm, index);
            if let Some(sid) = placed {
                farm.start_job(sid.0, job);
                index.record_start(sid.0);
            }
            out.push(placed);
        }
    }

    /// [`Scheduler::place_batch`] with a decision probe attached: the
    /// engine calls this instead of `place_batch` when span tracing is
    /// armed.
    ///
    /// The default ignores the probe and delegates, so the placements
    /// — and therefore results, counters, and replay digests — are
    /// bit-identical to an untraced run for every policy. Policies
    /// that can explain their decisions (VMT-WA's placement ladder)
    /// override this to report a [`DecisionDetail`] per sampled job;
    /// the override must keep the decision sequence identical to
    /// `place_batch`, reporting detail without perturbing it. The
    /// record/replay harness wrappers deliberately do *not* override
    /// this: a recorded run and its replay both fall through to the
    /// detail-free default, which keeps their traces bit-identical to
    /// each other.
    fn place_batch_traced(
        &mut self,
        jobs: &[Job],
        farm: &mut ServerFarm,
        index: &mut ClusterIndex,
        out: &mut Vec<Option<ServerId>>,
        probe: &mut dyn PlacementProbe,
    ) {
        let _ = probe;
        self.place_batch(jobs, farm, index, out);
    }

    /// Observes the per-zone CRAC supply-air temperatures, indexed by
    /// zone ([`ZoneCooling::temperatures`]). Called once per tick after
    /// physics when the cluster carries a
    /// [`topology`](crate::ClusterConfig::topology); never called
    /// otherwise. Purely informational: the built-in policies ignore it
    /// (the default is a no-op), and a policy that reads it must not let
    /// it perturb placement unless it intends to diverge from the
    /// zoneless baseline.
    ///
    /// [`ZoneCooling::temperatures`]: crate::ZoneCooling::temperatures
    fn observe_zones(&mut self, zone_temps: &[f64]) {
        let _ = zone_temps;
    }

    /// Size of the policy's current hot group, if it maintains one.
    ///
    /// By convention a policy's hot group is the servers with ids
    /// `0..size` — the paper notes hot/cold servers need not be physically
    /// adjacent, so using index order costs no generality and makes the
    /// heatmap figures directly comparable to the paper's.
    fn hot_group_size(&self) -> Option<usize> {
        None
    }

    /// The policy's cumulative decision counters, if it keeps any.
    ///
    /// Policies that participate in telemetry maintain these as plain
    /// integer fields incremented unconditionally on their decision
    /// paths — deterministic and cheap enough to leave always-on — and
    /// the engine reads them once at the end of a run for the summary
    /// event. The default reports nothing.
    fn counters(&self) -> Option<vmt_telemetry::SchedulerCounters> {
        None
    }

    /// Boxed deep copy of the policy, for forking a running simulation.
    ///
    /// The default reports the policy as not cloneable (`None`), which
    /// makes [`Simulation::fork`] fail with a typed error rather than
    /// silently sharing or resetting state. Concrete policies override
    /// this as `Some(Box::new(self.clone()))`.
    ///
    /// [`Simulation::fork`]: crate::Simulation::fork
    fn clone_box(&self) -> Option<Box<dyn Scheduler>> {
        None
    }
}

/// Trivial first-fit policy: the lowest-indexed server with a free core.
///
/// Not part of the paper's evaluation — useful as a smoke-test policy and
/// as the simplest possible [`Scheduler`] example.
#[derive(Debug, Clone, Default)]
pub struct FirstFit {
    _private: (),
}

impl FirstFit {
    /// Creates the policy.
    pub fn new() -> Self {
        Self::default()
    }
}

impl SnapshotState for FirstFit {
    // Stateless: the kind tag alone (with a null state) fully describes
    // the policy, so the defaulted save/restore bodies suffice.
    fn state_kind(&self) -> Option<&'static str> {
        Some("first-fit")
    }
}

impl Scheduler for FirstFit {
    fn name(&self) -> &str {
        "first-fit"
    }

    fn place(&mut self, _job: &Job, farm: &ServerFarm) -> Option<ServerId> {
        (0..farm.len())
            .find(|&i| farm.free_cores(i) > 0)
            .map(ServerId)
    }

    fn clone_box(&self) -> Option<Box<dyn Scheduler>> {
        Some(Box::new(self.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ClusterConfig;
    use vmt_units::Seconds;
    use vmt_workload::{JobId, WorkloadKind};

    #[test]
    fn first_fit_picks_lowest_free_server() {
        let config = ClusterConfig::paper_default(3);
        let mut farm = ServerFarm::from_config(&config);
        let mut policy = FirstFit::new();
        let job = Job::new(JobId(0), WorkloadKind::WebSearch, Seconds::new(60.0));
        assert_eq!(policy.place(&job, &farm), Some(ServerId(0)));
        // Fill server 0 completely; placement moves to server 1.
        for i in 0..32 {
            farm.start_job(
                0,
                &Job::new(JobId(100 + i), WorkloadKind::VirusScan, Seconds::new(60.0)),
            );
        }
        assert_eq!(policy.place(&job, &farm), Some(ServerId(1)));
    }

    #[test]
    fn first_fit_returns_none_when_full() {
        let config = ClusterConfig::paper_default(1);
        let mut farm = ServerFarm::from_config(&config);
        for i in 0..32 {
            farm.start_job(
                0,
                &Job::new(JobId(i), WorkloadKind::VirusScan, Seconds::new(60.0)),
            );
        }
        let mut policy = FirstFit::new();
        let job = Job::new(JobId(99), WorkloadKind::WebSearch, Seconds::new(60.0));
        assert_eq!(policy.place(&job, &farm), None);
        assert!(policy.hot_group_size().is_none());
    }
}
