//! Physical rack topology and power-distribution balance.
//!
//! VMT's hot/cold groups are *logical*: the paper notes the hot group's
//! servers "do not need to be physically clustered: they can be
//! distributed throughout the datacenter to maintain the same …
//! temperature distributions" and "balanced power distribution". This
//! module makes that remark checkable: it maps logical server ids to
//! physical rack slots and reports per-rack power statistics, so a
//! deployment can verify that striping the hot group across racks keeps
//! every rack's feed within its budget.

use crate::Server;
use vmt_units::Watts;

/// Index of a rack within the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RackId(pub usize);

/// How logical server ids are assigned to physical rack slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementMap {
    /// Logical id order fills rack 0 first, then rack 1, … — the naive
    /// layout that physically clusters VMT's hot group.
    Contiguous,
    /// Logical ids stripe round-robin across racks — the paper's
    /// recommendation, spreading the hot group over every rack.
    Striped,
}

/// A cluster's rack layout.
///
/// # Examples
///
/// ```
/// use vmt_dcsim::{PlacementMap, RackLayout};
///
/// // The paper's form factor: ≈20 2U servers per rack.
/// let layout = RackLayout::paper_default(100);
/// assert_eq!(layout.racks(), 5);
/// // Striping sends consecutive logical servers to different racks.
/// assert_ne!(
///     layout.rack_of(0, PlacementMap::Striped),
///     layout.rack_of(1, PlacementMap::Striped)
/// );
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RackLayout {
    num_servers: usize,
    servers_per_rack: usize,
}

impl RackLayout {
    /// The paper's layout: 20 servers per rack (50 racks per
    /// 1,000-server cluster).
    pub fn paper_default(num_servers: usize) -> Self {
        Self::new(num_servers, 20)
    }

    /// Creates a layout.
    ///
    /// # Panics
    ///
    /// Panics if either count is zero.
    pub fn new(num_servers: usize, servers_per_rack: usize) -> Self {
        assert!(num_servers > 0, "cluster must have servers");
        assert!(servers_per_rack > 0, "racks must hold servers");
        Self {
            num_servers,
            servers_per_rack,
        }
    }

    /// Number of racks (last rack may be partial).
    pub fn racks(&self) -> usize {
        self.num_servers.div_ceil(self.servers_per_rack)
    }

    /// Servers per rack.
    pub fn servers_per_rack(&self) -> usize {
        self.servers_per_rack
    }

    /// The rack hosting logical server `id` under a placement map.
    pub fn rack_of(&self, id: usize, map: PlacementMap) -> RackId {
        debug_assert!(id < self.num_servers, "server id out of range");
        match map {
            PlacementMap::Contiguous => RackId(id / self.servers_per_rack),
            PlacementMap::Striped => RackId(id % self.racks()),
        }
    }

    /// Per-rack total electrical power for the cluster's current state.
    pub fn rack_powers(&self, servers: &[Server], map: PlacementMap) -> Vec<Watts> {
        let mut powers = vec![Watts::ZERO; self.racks()];
        for (id, server) in servers.iter().enumerate() {
            powers[self.rack_of(id, map).0] += server.power();
        }
        powers
    }

    /// Summary of the rack power distribution.
    pub fn power_stats(&self, servers: &[Server], map: PlacementMap) -> RackPowerStats {
        let powers = self.rack_powers(servers, map);
        RackPowerStats::from_powers(&powers)
    }
}

/// Per-rack power distribution statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RackPowerStats {
    /// Hottest rack's power.
    pub max: Watts,
    /// Coolest rack's power.
    pub min: Watts,
    /// Mean rack power.
    pub mean: Watts,
}

impl RackPowerStats {
    fn from_powers(powers: &[Watts]) -> Self {
        let max = powers.iter().copied().fold(Watts::ZERO, Watts::max);
        let min = powers
            .iter()
            .copied()
            .fold(Watts::new(f64::INFINITY), Watts::min);
        let mean = powers.iter().copied().sum::<Watts>() / powers.len().max(1) as f64;
        Self { max, min, mean }
    }

    /// Peak-to-mean imbalance: how much head-room the worst rack's power
    /// feed needs beyond an even split (0 = perfectly balanced).
    pub fn imbalance(&self) -> f64 {
        if self.mean.get() == 0.0 {
            return 0.0;
        }
        self.max / self.mean - 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClusterConfig, ServerId};
    use vmt_units::Seconds;
    use vmt_workload::{Job, JobId, WorkloadKind};

    fn hot_and_cold_cluster(n: usize, hot: usize) -> Vec<Server> {
        let config = ClusterConfig::paper_default(n);
        let mut servers: Vec<Server> = (0..n)
            .map(|i| Server::from_config(ServerId(i), &config))
            .collect();
        let mut id = 0u64;
        for (i, s) in servers.iter_mut().enumerate() {
            let (kind, count) = if i < hot {
                (WorkloadKind::VideoEncoding, 30)
            } else {
                (WorkloadKind::VirusScan, 30)
            };
            for _ in 0..count {
                s.start_job(&Job::new(JobId(id), kind, Seconds::new(600.0)));
                id += 1;
            }
        }
        servers
    }

    #[test]
    fn layout_geometry() {
        let layout = RackLayout::paper_default(1000);
        assert_eq!(layout.racks(), 50);
        let partial = RackLayout::new(101, 20);
        assert_eq!(partial.racks(), 6);
    }

    #[test]
    fn contiguous_concentrates_the_hot_group() {
        // 100 servers, hot group = first 60 (VMT's id-ordered group):
        // contiguous placement puts 3 full racks of hot servers together.
        let servers = hot_and_cold_cluster(100, 60);
        let layout = RackLayout::paper_default(100);
        let contiguous = layout.power_stats(&servers, PlacementMap::Contiguous);
        let striped = layout.power_stats(&servers, PlacementMap::Striped);
        assert!(
            contiguous.imbalance() > 0.2,
            "contiguous should be imbalanced, got {:.3}",
            contiguous.imbalance()
        );
        assert!(
            striped.imbalance() < 0.02,
            "striping should balance racks, got {:.3}",
            striped.imbalance()
        );
    }

    #[test]
    fn total_power_is_placement_invariant() {
        let servers = hot_and_cold_cluster(60, 30);
        let layout = RackLayout::new(60, 10);
        let a: Watts = layout
            .rack_powers(&servers, PlacementMap::Contiguous)
            .into_iter()
            .sum();
        let b: Watts = layout
            .rack_powers(&servers, PlacementMap::Striped)
            .into_iter()
            .sum();
        assert!((a - b).get().abs() < 1e-9);
    }

    #[test]
    fn idle_cluster_is_balanced_either_way() {
        let config = ClusterConfig::paper_default(40);
        let servers: Vec<Server> = (0..40)
            .map(|i| Server::from_config(ServerId(i), &config))
            .collect();
        let layout = RackLayout::paper_default(40);
        for map in [PlacementMap::Contiguous, PlacementMap::Striped] {
            assert!(layout.power_stats(&servers, map).imbalance() < 1e-9);
        }
    }
}
