//! Physical rack topology and power-distribution balance.
//!
//! VMT's hot/cold groups are *logical*: the paper notes the hot group's
//! servers "do not need to be physically clustered: they can be
//! distributed throughout the datacenter to maintain the same …
//! temperature distributions" and "balanced power distribution". This
//! module makes that remark checkable: it maps logical server ids to
//! physical rack slots and reports per-rack power statistics, so a
//! deployment can verify that striping the hot group across racks keeps
//! every rack's feed within its budget.

use crate::Server;
use vmt_units::Watts;

/// Index of a rack within the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RackId(pub usize);

/// How logical server ids are assigned to physical rack slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementMap {
    /// Logical id order fills rack 0 first, then rack 1, … — the naive
    /// layout that physically clusters VMT's hot group.
    Contiguous,
    /// Logical ids stripe round-robin across racks — the paper's
    /// recommendation, spreading the hot group over every rack.
    Striped,
}

/// A cluster's rack layout.
///
/// # Examples
///
/// ```
/// use vmt_dcsim::{PlacementMap, RackLayout};
///
/// // The paper's form factor: ≈20 2U servers per rack.
/// let layout = RackLayout::paper_default(100);
/// assert_eq!(layout.racks(), 5);
/// // Striping sends consecutive logical servers to different racks.
/// assert_ne!(
///     layout.rack_of(0, PlacementMap::Striped),
///     layout.rack_of(1, PlacementMap::Striped)
/// );
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RackLayout {
    num_servers: usize,
    servers_per_rack: usize,
}

impl RackLayout {
    /// The paper's layout: 20 servers per rack (50 racks per
    /// 1,000-server cluster).
    pub fn paper_default(num_servers: usize) -> Self {
        Self::new(num_servers, 20)
    }

    /// Creates a layout.
    ///
    /// # Panics
    ///
    /// Panics if either count is zero.
    pub fn new(num_servers: usize, servers_per_rack: usize) -> Self {
        assert!(num_servers > 0, "cluster must have servers");
        assert!(servers_per_rack > 0, "racks must hold servers");
        Self {
            num_servers,
            servers_per_rack,
        }
    }

    /// Number of racks (last rack may be partial).
    pub fn racks(&self) -> usize {
        self.num_servers.div_ceil(self.servers_per_rack)
    }

    /// Servers per rack.
    pub fn servers_per_rack(&self) -> usize {
        self.servers_per_rack
    }

    /// The rack hosting logical server `id` under a placement map.
    pub fn rack_of(&self, id: usize, map: PlacementMap) -> RackId {
        debug_assert!(id < self.num_servers, "server id out of range");
        match map {
            PlacementMap::Contiguous => RackId(id / self.servers_per_rack),
            PlacementMap::Striped => RackId(id % self.racks()),
        }
    }

    /// Per-rack total electrical power for the cluster's current state.
    pub fn rack_powers(&self, servers: &[Server], map: PlacementMap) -> Vec<Watts> {
        let mut powers = vec![Watts::ZERO; self.racks()];
        for (id, server) in servers.iter().enumerate() {
            powers[self.rack_of(id, map).0] += server.power();
        }
        powers
    }

    /// Summary of the rack power distribution.
    pub fn power_stats(&self, servers: &[Server], map: PlacementMap) -> RackPowerStats {
        let powers = self.rack_powers(servers, map);
        RackPowerStats::from_powers(&powers)
    }
}

/// Per-rack power distribution statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RackPowerStats {
    /// Hottest rack's power.
    pub max: Watts,
    /// Coolest rack's power.
    pub min: Watts,
    /// Mean rack power.
    pub mean: Watts,
}

impl RackPowerStats {
    fn from_powers(powers: &[Watts]) -> Self {
        let max = powers.iter().copied().fold(Watts::ZERO, Watts::max);
        let min = powers
            .iter()
            .copied()
            .fold(Watts::new(f64::INFINITY), Watts::min);
        let mean = powers.iter().copied().sum::<Watts>() / powers.len().max(1) as f64;
        Self { max, min, mean }
    }

    /// Peak-to-mean imbalance: how much head-room the worst rack's power
    /// feed needs beyond an even split (0 = perfectly balanced).
    pub fn imbalance(&self) -> f64 {
        if self.mean.get() == 0.0 {
            return 0.0;
        }
        self.max / self.mean - 1.0
    }
}

/// Configuration of the rack/row/zone cooling hierarchy.
///
/// Serializable and carried by
/// [`ClusterConfig::topology`](crate::ClusterConfig) (as an `Option`,
/// so configs and snapshots from before zones existed keep decoding).
/// Zones are contiguous logical id ranges — rack `r` holds servers
/// `[r·spr, (r+1)·spr)`, rows group racks, zones group rows — which
/// keeps every per-zone reduction a contiguous array walk.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ZoneSpec {
    /// Servers per rack (the paper's 2U form factor: 20).
    pub servers_per_rack: usize,
    /// Racks per row.
    pub racks_per_row: usize,
    /// Rows per CRAC cooling zone.
    pub rows_per_zone: usize,
    /// CRAC plant capacity provisioned per server in the zone (W).
    pub crac_capacity_w_per_server: f64,
    /// CRAC supply-air setpoint (°C).
    pub crac_setpoint_c: f64,
    /// Zone thermal capacitance provisioned per server (J/K).
    pub crac_capacitance_j_per_k_per_server: f64,
}

impl ZoneSpec {
    /// The paper-scale hierarchy: 20-server racks, 10 racks per row,
    /// 8 rows (1,600 servers) per CRAC zone; 250 W of plant and 20 kJ/K
    /// of thermal mass per server (the same 80 J/K-per-watt sizing as
    /// [`vmt_thermal::RoomModel::paper_default`]).
    pub fn paper_default() -> Self {
        Self {
            servers_per_rack: 20,
            racks_per_row: 10,
            rows_per_zone: 8,
            crac_capacity_w_per_server: 250.0,
            crac_setpoint_c: 22.0,
            crac_capacitance_j_per_k_per_server: 20_000.0,
        }
    }

    /// Servers in one row.
    pub fn servers_per_row(&self) -> usize {
        self.servers_per_rack * self.racks_per_row
    }

    /// Servers in one full zone.
    pub fn servers_per_zone(&self) -> usize {
        self.servers_per_row() * self.rows_per_zone
    }

    /// True when every count is positive and every CRAC parameter is
    /// finite and (where required) positive — the precondition of
    /// [`ZoneLayout::new`] and [`ZoneCooling::new`].
    pub fn is_valid(&self) -> bool {
        self.servers_per_rack > 0
            && self.racks_per_row > 0
            && self.rows_per_zone > 0
            && self.crac_capacity_w_per_server > 0.0
            && self.crac_capacity_w_per_server.is_finite()
            && self.crac_setpoint_c.is_finite()
            && self.crac_capacitance_j_per_k_per_server > 0.0
            && self.crac_capacitance_j_per_k_per_server.is_finite()
    }
}

/// Derived geometry of a [`ZoneSpec`] over a concrete cluster size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ZoneLayout {
    num_servers: usize,
    servers_per_rack: usize,
    servers_per_row: usize,
    servers_per_zone: usize,
}

impl ZoneLayout {
    /// Lays the hierarchy over `num_servers` servers (the last rack,
    /// row, and zone may be partial).
    ///
    /// # Panics
    ///
    /// Panics if `num_servers` is zero or the spec is invalid.
    pub fn new(num_servers: usize, spec: &ZoneSpec) -> Self {
        assert!(num_servers > 0, "cluster must have servers");
        assert!(spec.is_valid(), "invalid zone spec");
        Self {
            num_servers,
            servers_per_rack: spec.servers_per_rack,
            servers_per_row: spec.servers_per_row(),
            servers_per_zone: spec.servers_per_zone(),
        }
    }

    /// Number of servers the layout covers.
    pub fn num_servers(&self) -> usize {
        self.num_servers
    }

    /// Number of CRAC zones (last may be partial).
    pub fn zones(&self) -> usize {
        self.num_servers.div_ceil(self.servers_per_zone)
    }

    /// Servers per full zone.
    pub fn servers_per_zone(&self) -> usize {
        self.servers_per_zone
    }

    /// The rack hosting server `id` (contiguous id order).
    pub fn rack_of(&self, id: usize) -> RackId {
        debug_assert!(id < self.num_servers, "server id out of range");
        RackId(id / self.servers_per_rack)
    }

    /// The row hosting server `id`.
    pub fn row_of(&self, id: usize) -> usize {
        debug_assert!(id < self.num_servers, "server id out of range");
        id / self.servers_per_row
    }

    /// The CRAC zone hosting server `id`.
    pub fn zone_of(&self, id: usize) -> usize {
        debug_assert!(id < self.num_servers, "server id out of range");
        id / self.servers_per_zone
    }

    /// The contiguous server-id range of zone `z`.
    pub fn zone_range(&self, z: usize) -> std::ops::Range<usize> {
        debug_assert!(z < self.zones(), "zone out of range");
        let start = z * self.servers_per_zone;
        start..(start + self.servers_per_zone).min(self.num_servers)
    }
}

/// Per-zone CRAC integrators: one capacity-limited cooling plant per
/// zone, replacing the single room model at datacenter scale.
///
/// Each zone runs the same plant law as
/// [`vmt_thermal::RoomModel::step`] — removal capped at capacity, flat
/// out above setpoint, floored at setpoint — over the *electrical*
/// power of its contiguous server range. The model is observational:
/// zone temperatures never feed back into server inlets, so enabling a
/// topology leaves every placement, physics result, and replay digest
/// bit-identical to a zoneless run, and the per-zone sums are computed
/// in a serial server-order pass, making them independent of the tick's
/// thread count.
#[derive(Debug, Clone)]
pub struct ZoneCooling {
    layout: ZoneLayout,
    setpoint_c: f64,
    /// Per-zone plant capacity (W), scaled to each zone's actual server
    /// count so a partial tail zone gets a proportionally smaller CRAC.
    capacity_w: Vec<f64>,
    /// Per-zone thermal capacitance (J/K), scaled like `capacity_w`.
    capacitance_j_per_k: Vec<f64>,
    /// Per-zone supply-air temperature (°C) — the integrator state.
    temperature_c: Vec<f64>,
    /// Per-zone CRAC duty over the last step: heat removed divided by
    /// plant capacity, 0..=1. Observability only — derived afresh each
    /// step from the integrator state, so it is excluded from equality
    /// and never snapshotted.
    duty: Vec<f64>,
}

/// Equality covers persistent state only: `duty` is a per-step derived
/// observation (not restored by [`ZoneCooling::apply_temperatures`]),
/// so two states that restore identically always compare equal.
impl PartialEq for ZoneCooling {
    fn eq(&self, other: &Self) -> bool {
        self.layout == other.layout
            && self.setpoint_c == other.setpoint_c
            && self.capacity_w == other.capacity_w
            && self.capacitance_j_per_k == other.capacitance_j_per_k
            && self.temperature_c == other.temperature_c
    }
}

impl ZoneCooling {
    /// Builds the per-zone integrators at their setpoint.
    ///
    /// # Panics
    ///
    /// Panics if `num_servers` is zero or the spec is invalid.
    pub fn new(num_servers: usize, spec: &ZoneSpec) -> Self {
        let layout = ZoneLayout::new(num_servers, spec);
        let zones = layout.zones();
        let mut capacity_w = Vec::with_capacity(zones);
        let mut capacitance = Vec::with_capacity(zones);
        for z in 0..zones {
            let servers = layout.zone_range(z).len() as f64;
            capacity_w.push(spec.crac_capacity_w_per_server * servers);
            capacitance.push(spec.crac_capacitance_j_per_k_per_server * servers);
        }
        Self {
            layout,
            setpoint_c: spec.crac_setpoint_c,
            capacity_w,
            capacitance_j_per_k: capacitance,
            temperature_c: vec![spec.crac_setpoint_c; zones],
            duty: vec![0.0; zones],
        }
    }

    /// The layout geometry.
    pub fn layout(&self) -> &ZoneLayout {
        &self.layout
    }

    /// The CRAC supply-air setpoint (°C).
    pub fn setpoint_c(&self) -> f64 {
        self.setpoint_c
    }

    /// Per-zone supply-air temperatures (°C), indexed by zone.
    pub fn temperatures(&self) -> &[f64] {
        &self.temperature_c
    }

    /// Per-zone CRAC duty over the last [`ZoneCooling::step`]: heat
    /// removed divided by plant capacity, 0..=1 (all zeros before the
    /// first step).
    pub fn duties(&self) -> &[f64] {
        &self.duty
    }

    /// Hottest zone's excursion above the setpoint (°C ≥ 0).
    pub fn peak_excursion(&self) -> f64 {
        self.temperature_c
            .iter()
            .fold(0.0f64, |acc, &t| acc.max(t - self.setpoint_c))
    }

    /// Advances every zone by `dt_s` seconds given the farm's per-server
    /// active power lane and uniform idle draw. The per-zone offered
    /// load is summed element-serially in server order (deterministic at
    /// any thread count), then each zone integrates the room-model plant
    /// law.
    pub fn step(&mut self, active_power_w: &[f64], idle_w: f64, dt_s: f64) {
        debug_assert_eq!(active_power_w.len(), self.layout.num_servers);
        for z in 0..self.temperature_c.len() {
            self.step_zone(z, active_power_w, idle_w, dt_s);
        }
    }

    /// [`ZoneCooling::step`] with a per-zone observer: `observe(zone,
    /// elapsed_ns, temp_c, duty)` is called after each zone integrates,
    /// with that zone's wall-clock integration time. The zone state
    /// after this is bit-identical to `step` — the per-zone work is the
    /// shared [`ZoneCooling::step_zone`] body, and the `Instant` reads
    /// happen *between* zones, never inside the arithmetic. Only the
    /// tracing path calls this; the plain path takes zero timestamps.
    pub fn step_traced(
        &mut self,
        active_power_w: &[f64],
        idle_w: f64,
        dt_s: f64,
        mut observe: impl FnMut(usize, u64, f64, f64),
    ) {
        debug_assert_eq!(active_power_w.len(), self.layout.num_servers);
        for z in 0..self.temperature_c.len() {
            let started = std::time::Instant::now();
            self.step_zone(z, active_power_w, idle_w, dt_s);
            let elapsed_ns = started.elapsed().as_nanos() as u64;
            observe(z, elapsed_ns, self.temperature_c[z], self.duty[z]);
        }
    }

    /// One zone's integration step — the shared body of
    /// [`ZoneCooling::step`] and [`ZoneCooling::step_traced`].
    #[inline]
    fn step_zone(&mut self, z: usize, active_power_w: &[f64], idle_w: f64, dt_s: f64) {
        let range = self.layout.zone_range(z);
        let mut offered = 0.0;
        for &active in &active_power_w[range] {
            offered += idle_w + active;
        }
        // Same plant law as `RoomModel::step`, on raw f64 lanes.
        let removal = if self.temperature_c[z] > self.setpoint_c {
            self.capacity_w[z]
        } else {
            offered.min(self.capacity_w[z])
        };
        let net = offered - removal;
        self.temperature_c[z] += net * dt_s / self.capacitance_j_per_k[z];
        if self.temperature_c[z] < self.setpoint_c {
            self.temperature_c[z] = self.setpoint_c;
        }
        self.duty[z] = removal / self.capacity_w[z];
    }

    /// Overwrites the integrator state from a snapshot's saved zone
    /// temperatures. Returns `false` (leaving the state untouched) when
    /// the zone count disagrees.
    #[must_use]
    pub fn apply_temperatures(&mut self, temps: &[f64]) -> bool {
        if temps.len() != self.temperature_c.len() {
            return false;
        }
        self.temperature_c.copy_from_slice(temps);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClusterConfig, ServerId};
    use vmt_units::Seconds;
    use vmt_workload::{Job, JobId, WorkloadKind};

    fn hot_and_cold_cluster(n: usize, hot: usize) -> Vec<Server> {
        let config = ClusterConfig::paper_default(n);
        let mut servers: Vec<Server> = (0..n)
            .map(|i| Server::from_config(ServerId(i), &config))
            .collect();
        let mut id = 0u64;
        for (i, s) in servers.iter_mut().enumerate() {
            let (kind, count) = if i < hot {
                (WorkloadKind::VideoEncoding, 30)
            } else {
                (WorkloadKind::VirusScan, 30)
            };
            for _ in 0..count {
                s.start_job(&Job::new(JobId(id), kind, Seconds::new(600.0)));
                id += 1;
            }
        }
        servers
    }

    #[test]
    fn layout_geometry() {
        let layout = RackLayout::paper_default(1000);
        assert_eq!(layout.racks(), 50);
        let partial = RackLayout::new(101, 20);
        assert_eq!(partial.racks(), 6);
    }

    #[test]
    fn contiguous_concentrates_the_hot_group() {
        // 100 servers, hot group = first 60 (VMT's id-ordered group):
        // contiguous placement puts 3 full racks of hot servers together.
        let servers = hot_and_cold_cluster(100, 60);
        let layout = RackLayout::paper_default(100);
        let contiguous = layout.power_stats(&servers, PlacementMap::Contiguous);
        let striped = layout.power_stats(&servers, PlacementMap::Striped);
        assert!(
            contiguous.imbalance() > 0.2,
            "contiguous should be imbalanced, got {:.3}",
            contiguous.imbalance()
        );
        assert!(
            striped.imbalance() < 0.02,
            "striping should balance racks, got {:.3}",
            striped.imbalance()
        );
    }

    #[test]
    fn total_power_is_placement_invariant() {
        let servers = hot_and_cold_cluster(60, 30);
        let layout = RackLayout::new(60, 10);
        let a: Watts = layout
            .rack_powers(&servers, PlacementMap::Contiguous)
            .into_iter()
            .sum();
        let b: Watts = layout
            .rack_powers(&servers, PlacementMap::Striped)
            .into_iter()
            .sum();
        assert!((a - b).get().abs() < 1e-9);
    }

    #[test]
    fn idle_cluster_is_balanced_either_way() {
        let config = ClusterConfig::paper_default(40);
        let servers: Vec<Server> = (0..40)
            .map(|i| Server::from_config(ServerId(i), &config))
            .collect();
        let layout = RackLayout::paper_default(40);
        for map in [PlacementMap::Contiguous, PlacementMap::Striped] {
            assert!(layout.power_stats(&servers, map).imbalance() < 1e-9);
        }
    }

    mod zones {
        use super::*;
        use vmt_thermal::RoomModel;
        use vmt_units::{Celsius, Seconds};

        #[test]
        fn hierarchy_geometry() {
            let spec = ZoneSpec::paper_default();
            assert_eq!(spec.servers_per_row(), 200);
            assert_eq!(spec.servers_per_zone(), 1600);
            let layout = ZoneLayout::new(100_000, &spec);
            assert_eq!(layout.zones(), 63);
            // The tail zone is partial: 100,000 − 62·1,600 = 800 servers.
            assert_eq!(layout.zone_range(62).len(), 800);
            assert_eq!(layout.zone_of(1599), 0);
            assert_eq!(layout.zone_of(1600), 1);
            assert_eq!(layout.rack_of(39), RackId(1));
            assert_eq!(layout.row_of(200), 1);
        }

        /// A single zone steps bit-identically to the unit-typed
        /// [`RoomModel`] it mirrors, through overload and recovery.
        #[test]
        fn zone_integrator_matches_room_model() {
            let mut spec = ZoneSpec::paper_default();
            spec.racks_per_row = 1;
            spec.rows_per_zone = 1; // one 20-server zone
            let n = 20usize;
            let mut zones = ZoneCooling::new(n, &spec);
            let mut room = RoomModel::new(
                Watts::new(spec.crac_capacity_w_per_server * n as f64),
                Celsius::new(spec.crac_setpoint_c),
                spec.crac_capacitance_j_per_k_per_server * n as f64,
            );
            for t in 0..240 {
                let active = if t < 30 { 400.0 } else { 10.0 };
                let lane = vec![active; n];
                zones.step(&lane, 100.0, 60.0);
                let mut offered = 0.0;
                for &a in &lane {
                    offered += 100.0 + a;
                }
                room.step(Watts::new(offered), Seconds::new(60.0));
                assert_eq!(
                    zones.temperatures()[0],
                    room.temperature().get(),
                    "tick {t}"
                );
            }
            // Long recovery floors the zone back at its setpoint.
            assert_eq!(zones.peak_excursion(), 0.0);
        }

        #[test]
        fn only_the_overloaded_zone_warms() {
            let mut spec = ZoneSpec::paper_default();
            spec.racks_per_row = 1;
            spec.rows_per_zone = 1; // two 20-server zones over 40 servers
            let mut zones = ZoneCooling::new(40, &spec);
            let mut lane = vec![0.0; 40];
            for slot in lane.iter_mut().take(20) {
                *slot = 400.0; // zone 0 at nameplate, zone 1 idle
            }
            for _ in 0..30 {
                zones.step(&lane, 100.0, 60.0);
            }
            assert!(zones.temperatures()[0] > spec.crac_setpoint_c);
            assert_eq!(zones.temperatures()[1], spec.crac_setpoint_c);
            assert!(zones.peak_excursion() > 0.0);
        }

        /// Duty is removal/capacity — pinned at 1 while a warm zone
        /// runs flat out, proportional below setpoint — and, being a
        /// per-step observation, never participates in equality.
        #[test]
        fn duty_tracks_plant_load_but_not_equality() {
            let mut spec = ZoneSpec::paper_default();
            spec.racks_per_row = 1;
            spec.rows_per_zone = 1; // two 20-server zones over 40 servers
            let mut zones = ZoneCooling::new(40, &spec);
            assert_eq!(zones.duties(), &[0.0, 0.0]);
            // Zone 0 offered exactly half its 5 kW plant; zone 1 idle
            // servers offer 100 W each = 2 kW (40% duty). At setpoint,
            // removal == offered, so duty is offered/capacity.
            let mut lane = vec![0.0; 40];
            for slot in lane.iter_mut().take(20) {
                *slot = 25.0; // 125 W/server over 250 W/server plant
            }
            zones.step(&lane, 100.0, 60.0);
            assert!((zones.duties()[0] - 0.5).abs() < 1e-12);
            assert!((zones.duties()[1] - 0.4).abs() < 1e-12);
            // Overload zone 0: once above setpoint the plant runs flat
            // out, duty == 1.
            for slot in lane.iter_mut().take(20) {
                *slot = 400.0;
            }
            for _ in 0..30 {
                zones.step(&lane, 100.0, 60.0);
            }
            assert_eq!(zones.duties()[0], 1.0);
            // Equality ignores duty: a fresh instance with the same
            // temperatures applied compares equal despite zeroed duty.
            let mut restored = ZoneCooling::new(40, &spec);
            assert!(restored.apply_temperatures(zones.temperatures()));
            assert_ne!(restored.duties(), zones.duties());
            assert_eq!(restored, zones);
        }

        #[test]
        fn temperatures_apply_and_reject_bad_shapes() {
            let spec = ZoneSpec::paper_default();
            let mut a = ZoneCooling::new(4000, &spec);
            let lane = vec![250.0; 4000];
            for _ in 0..10 {
                a.step(&lane, 100.0, 60.0);
            }
            let saved = a.temperatures().to_vec();
            let mut b = ZoneCooling::new(4000, &spec);
            assert!(b.apply_temperatures(&saved));
            assert_eq!(a, b);
            assert!(!b.apply_temperatures(&saved[1..]));
            assert_eq!(a, b);
        }
    }
}
