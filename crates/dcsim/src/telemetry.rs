//! Engine-side telemetry wiring.
//!
//! A [`Simulation`](crate::Simulation) built with
//! [`with_telemetry`](crate::Simulation::with_telemetry) carries an
//! [`EngineTelemetry`] for the duration of the run; without one the
//! engine takes **zero** timestamps and performs no telemetry work at
//! all, so the disabled path stays bit-identical and allocation-free.
//!
//! All observation here is read-only: counters, gauges, and events are
//! derived from state the engine already computes (the cluster index,
//! the sweep totals), never fed back into placement or physics, so an
//! instrumented run produces the same [`SimulationResult`]
//! (crate::SimulationResult) as a bare one.

use crate::config::ClusterConfig;
use crate::farm::ServerFarm;
use crate::index::ClusterIndex;
use crate::topology::ZoneCooling;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};
use vmt_pcm::{MeltDirection, MELT_EVENT_THRESHOLD};
use vmt_telemetry::{
    render_openmetrics, AnomalyEvent, Counter, Dashboard, DashboardRow, Event, FlightConfig,
    FlightRecorder, Gauge, Histogram, HotGroupEvent, HotGroupTransition, MeltEvent, MeltTransition,
    PhaseProfiler, ProgressMeter, RunConfigEvent, SchedulerCounters, SharedSeries, SnapshotEvent,
    SummaryEvent, TelemetryConfig, TickState, TraceRecord, Tracer, WatchdogSet, SCHEMA_VERSION,
    SPARK_WIDTH,
};

/// Bucket bounds for the arrivals-per-tick histogram: powers of two up
/// to 4096 jobs in one tick (a 10k-server cluster peaks well below
/// that).
const ARRIVAL_BUCKETS: [f64; 14] = [
    0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0, 2048.0, 4096.0,
];

/// `# HELP` text for the `/metrics` exposition, keyed by OpenMetrics
/// family name (dots already folded to underscores).
const METRIC_HELP: &[(&str, &str)] = &[
    ("engine_ticks", "Simulation ticks executed."),
    ("engine_placements", "Jobs placed onto servers."),
    ("engine_dropped_jobs", "Jobs dropped at admission."),
    (
        "engine_melt_events",
        "Per-server wax melt threshold crossings.",
    ),
    ("engine_hot_group_events", "Hot-group resize events."),
    ("engine_anomaly_events", "Watchdog anomalies raised."),
    ("engine_tick_arrivals", "Jobs arriving per tick."),
    ("cluster_utilization", "Fraction of cluster cores busy."),
    (
        "cluster_mean_air_c",
        "Mean server air temperature (Celsius).",
    ),
    (
        "cluster_max_air_c",
        "Max server air temperature (Celsius), sampled at snapshot cadence.",
    ),
    (
        "cluster_melted_fraction",
        "Fraction of servers reporting melted wax.",
    ),
    ("cluster_cooling_w", "Cooling load this tick (Watts)."),
    ("scheduler_spills_per_tick", "QoS spills this tick."),
    ("zone_temp_c", "CRAC zone supply-air temperature (Celsius)."),
    (
        "zone_crac_duty",
        "Zone CRAC duty: heat removed over plant capacity, 0 to 1.",
    ),
    (
        "zone_headroom_c",
        "Setpoint minus zone temperature (Celsius); negative when over setpoint.",
    ),
    (
        "zone_melt_fraction",
        "Mean reported wax melt fraction across the zone's servers.",
    ),
    (
        "zone_hot_occupancy",
        "Fraction of the zone's servers inside the hot group.",
    ),
    ("zone_max_temp_c", "Hottest zone temperature (Celsius)."),
];

/// Cluster-wide per-tick time series, registered when
/// [`TelemetryConfig::series_capacity`] is set.
struct ClusterSeries {
    utilization: SharedSeries,
    mean_air_c: SharedSeries,
    melted_fraction: SharedSeries,
    cooling_w: SharedSeries,
    spills: SharedSeries,
}

/// Per-zone instruments: gauges always, temperature series when series
/// are enabled.
struct ZoneGauges {
    temp: Gauge,
    duty: Gauge,
    headroom: Gauge,
    melt: Gauge,
    hot_occupancy: Gauge,
    temp_series: Option<SharedSeries>,
}

/// All per-zone observability state, present only on zoned runs.
struct ZoneObservability {
    setpoint_c: f64,
    gauges: Vec<ZoneGauges>,
    /// Hottest zone per tick — one series that stays readable when the
    /// cluster has more zones than a dashboard has rows.
    max_temp_series: Option<SharedSeries>,
}

/// Dashboard cadence state: its own meter (the dashboard cadence is
/// independent of `--progress`) plus a short wall-clock ticks/s history
/// for the throughput sparkline. The ticks/s ring lives here — never in
/// the registry — because it is wall-clock derived and must not ride
/// into the (deterministic) metrics snapshot.
struct DashboardDriver {
    meter: ProgressMeter,
    dashboard: Dashboard,
    ticks_per_s: Vec<f64>,
}

/// A stopwatch for the engine's per-phase laps.
///
/// Constructed once per tick *only when telemetry is enabled*; the
/// disabled path never touches `Instant`.
pub(crate) struct PhaseClock {
    started: Instant,
    last: Instant,
}

impl PhaseClock {
    pub(crate) fn start() -> Self {
        let now = Instant::now();
        Self {
            started: now,
            last: now,
        }
    }

    /// Nanoseconds since the previous lap (or construction).
    pub(crate) fn lap(&mut self) -> u64 {
        let now = Instant::now();
        let ns = now.duration_since(self.last).as_nanos() as u64;
        self.last = now;
        ns
    }

    /// Whole-tick-body elapsed time.
    pub(crate) fn total(&self) -> Duration {
        self.started.elapsed()
    }
}

/// Everything a telemetry-enabled run tracks while ticking.
pub(crate) struct EngineTelemetry {
    config: TelemetryConfig,
    pub(crate) profiler: PhaseProfiler,
    started: Instant,
    progress: Option<ProgressMeter>,
    progress_drawn: bool,
    /// Whether each server's reported melt was above
    /// [`MELT_EVENT_THRESHOLD`] last tick.
    melted: Vec<bool>,
    melted_count: u64,
    last_hot_size: Option<u64>,
    /// The flight ring, when [`FlightConfig`] armed one.
    recorder: Option<FlightRecorder>,
    /// Dump destinations for the armed ring.
    flight: Option<FlightConfig>,
    /// Watchdog-triggered dump files written so far.
    anomaly_dumps: usize,
    /// Armed anomaly detectors, when the config listed any.
    watchdogs: Option<WatchdogSet>,
    /// The deterministic span tracer, when [`TelemetryConfig::trace`]
    /// armed one. The engine drives it directly (phase laps, zone
    /// spans, placement instants); this module adds anomaly instants
    /// and deposits the finished buffer at the end of the run.
    pub(crate) tracer: Option<Tracer>,
    /// Scheduler spill total as of the previous tick (for deltas).
    last_spills: u64,
    cores_per_server: u32,
    ticks: Counter,
    placements: Counter,
    dropped: Counter,
    melt_events: Counter,
    hot_group_events: Counter,
    anomaly_events: Counter,
    utilization: Gauge,
    mean_air_c: Gauge,
    max_air_c: Gauge,
    melted_fraction: Gauge,
    tick_arrivals: Arc<Histogram>,
    /// Cluster-wide ring-buffer series, when series are enabled.
    series: Option<ClusterSeries>,
    /// Per-zone gauges and series, when the run is zoned.
    zones_obs: Option<ZoneObservability>,
    /// Live dashboard state, when `--dashboard` armed one.
    dashboard: Option<DashboardDriver>,
}

/// `<base>.anomaly<n>` — sibling path for the n-th watchdog dump.
fn anomaly_dump_path(base: &Path, n: usize) -> PathBuf {
    let mut os = base.as_os_str().to_owned();
    os.push(format!(".anomaly{n}"));
    PathBuf::from(os)
}

/// How many individual zones get their own dashboard row before the
/// display falls back to the hottest-zone aggregate.
const DASHBOARD_ZONE_ROWS: usize = 6;

/// Builds the dashboard's sparkline rows from the current series
/// windows. Peaky quantities (cooling load, spills, hottest zone) fold
/// buckets by max so bursts survive downsampling; level quantities fold
/// by mean.
fn dashboard_rows(
    ticks_per_s: &[f64],
    series: Option<&ClusterSeries>,
    zones_obs: Option<&ZoneObservability>,
) -> Vec<DashboardRow> {
    let mut rows = Vec::new();
    rows.push(DashboardRow::new(
        "ticks/s",
        ticks_per_s.last().copied().unwrap_or(0.0),
        "",
        ticks_per_s.to_vec(),
    ));
    if let Some(cs) = series {
        let cooling = cs.cooling_w.snapshot();
        rows.push(DashboardRow::new(
            "cooling",
            cooling.last_value().unwrap_or(0.0) / 1000.0,
            "kW",
            cooling
                .downsample_to(SPARK_WIDTH)
                .iter()
                .map(|b| b.max / 1000.0)
                .collect(),
        ));
        let melted = cs.melted_fraction.snapshot();
        rows.push(DashboardRow::new(
            "melted",
            melted.last_value().unwrap_or(0.0) * 100.0,
            "%",
            melted
                .downsample_to(SPARK_WIDTH)
                .iter()
                .map(|b| b.mean * 100.0)
                .collect(),
        ));
        let spills = cs.spills.snapshot();
        rows.push(DashboardRow::new(
            "spills",
            spills.last_value().unwrap_or(0.0),
            "/tick",
            spills
                .downsample_to(SPARK_WIDTH)
                .iter()
                .map(|b| b.max)
                .collect(),
        ));
    }
    if let Some(obs) = zones_obs {
        for (z, g) in obs.gauges.iter().enumerate().take(DASHBOARD_ZONE_ROWS) {
            let Some(s) = &g.temp_series else { continue };
            let snap = s.snapshot();
            rows.push(DashboardRow::new(
                format!("zone {z:02}"),
                snap.last_value().unwrap_or(obs.setpoint_c),
                "°C",
                snap.downsample_to(SPARK_WIDTH)
                    .iter()
                    .map(|b| b.mean)
                    .collect(),
            ));
        }
        if obs.gauges.len() > DASHBOARD_ZONE_ROWS {
            if let Some(s) = &obs.max_temp_series {
                let snap = s.snapshot();
                rows.push(DashboardRow::new(
                    "zone max",
                    snap.last_value().unwrap_or(obs.setpoint_c),
                    "°C",
                    snap.downsample_to(SPARK_WIDTH)
                        .iter()
                        .map(|b| b.max)
                        .collect(),
                ));
            }
        }
    }
    rows
}

impl EngineTelemetry {
    /// Registers the engine's metrics and arms the progress meter,
    /// flight recorder, watchdogs, series rings, per-zone instruments,
    /// and dashboard.
    pub(crate) fn new(
        mut config: TelemetryConfig,
        num_servers: usize,
        cores_per_server: u32,
        total_ticks: u64,
        zones: Option<&ZoneCooling>,
    ) -> Self {
        let registry = &config.registry;
        let ticks = registry.counter("engine.ticks");
        let placements = registry.counter("engine.placements");
        let dropped = registry.counter("engine.dropped_jobs");
        let melt_events = registry.counter("engine.melt_events");
        let hot_group_events = registry.counter("engine.hot_group_events");
        let anomaly_events = registry.counter("engine.anomaly_events");
        let utilization = registry.gauge("cluster.utilization");
        let mean_air_c = registry.gauge("cluster.mean_air_c");
        let max_air_c = registry.gauge("cluster.max_air_c");
        let melted_fraction = registry.gauge("cluster.melted_fraction");
        let tick_arrivals = registry.histogram("engine.tick_arrivals", &ARRIVAL_BUCKETS);
        let series_capacity = config.series_capacity;
        // Series duplicating a live gauge get a `.recent` suffix so the
        // exposition keeps one family per name; window-only quantities
        // (cooling watts, spills) are series alone.
        let series = series_capacity.map(|cap| ClusterSeries {
            utilization: registry.series("cluster.utilization.recent", cap),
            mean_air_c: registry.series("cluster.mean_air_c.recent", cap),
            melted_fraction: registry.series("cluster.melted_fraction.recent", cap),
            cooling_w: registry.series("cluster.cooling_w", cap),
            spills: registry.series("scheduler.spills_per_tick", cap),
        });
        let zones_obs = zones.map(|zc| {
            let gauges = (0..zc.layout().zones())
                .map(|z| ZoneGauges {
                    temp: registry.gauge(&format!("zone.temp_c{{zone=\"{z}\"}}")),
                    duty: registry.gauge(&format!("zone.crac_duty{{zone=\"{z}\"}}")),
                    headroom: registry.gauge(&format!("zone.headroom_c{{zone=\"{z}\"}}")),
                    melt: registry.gauge(&format!("zone.melt_fraction{{zone=\"{z}\"}}")),
                    hot_occupancy: registry.gauge(&format!("zone.hot_occupancy{{zone=\"{z}\"}}")),
                    temp_series: series_capacity.map(|cap| {
                        registry.series(&format!("zone.temp_c.recent{{zone=\"{z}\"}}"), cap)
                    }),
                })
                .collect();
            ZoneObservability {
                setpoint_c: zc.setpoint_c(),
                gauges,
                max_temp_series: series_capacity.map(|cap| registry.series("zone.max_temp_c", cap)),
            }
        });
        let dashboard = config.dashboard_every_ticks.map(|every| DashboardDriver {
            meter: ProgressMeter::new(total_ticks, every),
            dashboard: Dashboard::auto(),
            ticks_per_s: Vec::new(),
        });
        let progress = config
            .progress_every_ticks
            .map(|every| ProgressMeter::new(total_ticks, every));
        let flight = config.flight.take();
        let recorder = flight
            .as_ref()
            .map(|f| FlightRecorder::with_capacity(f.capacity));
        let specs = std::mem::take(&mut config.watchdogs);
        let watchdogs = (!specs.is_empty()).then(|| WatchdogSet::new(specs, num_servers));
        let tracer = config.trace.take().map(|spec| Tracer::new(&spec));
        Self {
            config,
            profiler: PhaseProfiler::new(),
            started: Instant::now(),
            progress,
            progress_drawn: false,
            melted: vec![false; num_servers],
            melted_count: 0,
            last_hot_size: None,
            recorder,
            flight,
            anomaly_dumps: 0,
            watchdogs,
            tracer,
            last_spills: 0,
            cores_per_server,
            ticks,
            placements,
            dropped,
            melt_events,
            hot_group_events,
            anomaly_events,
            utilization,
            mean_air_c,
            max_air_c,
            melted_fraction,
            tick_arrivals,
            series,
            zones_obs,
            dashboard,
        }
    }

    /// Records a job placement into the flight ring. No-op when the
    /// ring is not armed.
    #[inline]
    pub(crate) fn record_placement(
        &mut self,
        tick: u64,
        job: u64,
        server: u32,
        kind: u8,
        duration_ticks: u32,
    ) {
        if let Some(rec) = self.recorder.as_mut() {
            rec.push(TraceRecord::JobPlaced {
                tick,
                job,
                server,
                kind,
                duration_ticks,
            });
        }
    }

    /// Records a dropped job into the flight ring.
    #[inline]
    pub(crate) fn record_drop(&mut self, tick: u64, job: u64, kind: u8) {
        if let Some(rec) = self.recorder.as_mut() {
            rec.push(TraceRecord::JobDropped { tick, job, kind });
        }
    }

    /// True when a flight recorder is attached, letting callers skip
    /// whole per-entry record loops instead of taking a no-op per item.
    #[inline]
    pub(crate) fn flight_armed(&self) -> bool {
        self.recorder.is_some()
    }

    /// Records a job departure into the flight ring.
    #[inline]
    pub(crate) fn record_departure(&mut self, tick: u64, job: u64, server: u32) {
        if let Some(rec) = self.recorder.as_mut() {
            rec.push(TraceRecord::JobDeparted { tick, job, server });
        }
    }

    /// Writes a watchdog-triggered flight dump, capped by
    /// [`FlightConfig::max_anomaly_dumps`].
    fn dump_anomaly(&mut self, tick: u64, watchdog: vmt_telemetry::WatchdogKind) {
        let Some(flight) = self.flight.as_ref() else {
            return;
        };
        let Some(base) = flight.dump_path.as_deref() else {
            return;
        };
        if self.anomaly_dumps >= flight.max_anomaly_dumps {
            return;
        }
        let Some(rec) = self.recorder.as_ref() else {
            return;
        };
        self.anomaly_dumps += 1;
        let path = anomaly_dump_path(base, self.anomaly_dumps);
        let written = std::fs::File::create(&path)
            .and_then(|mut file| rec.dump_jsonl(&mut file, tick, Some(watchdog)));
        if let Err(e) = written {
            eprintln!("flight dump to {} failed: {e}", path.display());
        }
    }

    /// Writes the stream's opening [`RunConfigEvent`].
    pub(crate) fn emit_run_config(
        &self,
        policy: &str,
        cluster: &ClusterConfig,
        farm: &ServerFarm,
        ticks: u64,
    ) {
        if let Some(sink) = &self.config.sink {
            sink.emit(&Event::RunConfig(RunConfigEvent {
                schema_version: SCHEMA_VERSION,
                policy: policy.to_owned(),
                servers: cluster.num_servers as u64,
                cores_per_server: u64::from(farm.cores()),
                ticks,
                tick_seconds: cluster.tick.get(),
                seed: cluster.seed,
                threads: farm.threads() as u64,
                has_wax: farm.has_wax(),
                snapshot_every_ticks: self.config.snapshot_every_ticks,
            }));
        }
    }

    /// The engine's per-tick record step, called after physics with the
    /// index freshly updated. `tick` is 1-based (the tick just ran).
    /// `cooling_w` is the tick's cooling load; `zones` is the freshly
    /// stepped zone model on zoned runs.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn record_tick(
        &mut self,
        tick: u64,
        sim_hours: f64,
        index: &ClusterIndex,
        mean_air_c: f64,
        hot_size: Option<usize>,
        placed_delta: u64,
        dropped_delta: u64,
        scheduler: Option<SchedulerCounters>,
        cooling_w: f64,
        zones: Option<&ZoneCooling>,
    ) {
        self.ticks.inc();
        self.placements.add(placed_delta);
        self.dropped.add(dropped_delta);
        self.tick_arrivals
            .record((placed_delta + dropped_delta) as f64);
        let utilization = index.utilization();
        self.utilization.set(utilization);
        self.mean_air_c.set(mean_air_c);

        // Threshold scan over the estimator-reported melt fractions —
        // the same signal the paper's schedulers act on.
        let melt = index.reported_melt();
        let air = index.air_c();
        for (i, was) in self.melted.iter_mut().enumerate() {
            let Some(direction) =
                vmt_pcm::classify_melt_transition(*was, melt[i], MELT_EVENT_THRESHOLD)
            else {
                continue;
            };
            *was = !*was;
            match direction {
                MeltDirection::Melting => self.melted_count += 1,
                MeltDirection::Freezing => self.melted_count -= 1,
            }
            self.melt_events.inc();
            if let Some(rec) = self.recorder.as_mut() {
                rec.push(TraceRecord::MeltCrossing {
                    tick,
                    server: i as u32,
                    melting: matches!(direction, MeltDirection::Melting),
                    air_c: air[i] as f32,
                });
            }
            if let Some(sink) = &self.config.sink {
                sink.emit(&Event::Melt(MeltEvent {
                    tick,
                    server: i as u64,
                    transition: match direction {
                        MeltDirection::Melting => MeltTransition::BeganMelting,
                        MeltDirection::Freezing => MeltTransition::Refroze,
                    },
                    air_c: air[i],
                    melted_servers: self.melted_count,
                }));
            }
        }
        let melted_fraction = if self.melted.is_empty() {
            0.0
        } else {
            self.melted_count as f64 / self.melted.len() as f64
        };
        self.melted_fraction.set(melted_fraction);

        // Hot-group size changes (first observation sets the baseline
        // silently; a policy growing from its initial size is an event).
        let hot = hot_size.map(|s| s as u64);
        if hot != self.last_hot_size {
            if let (Some(previous), Some(current)) = (self.last_hot_size, hot) {
                self.hot_group_events.inc();
                if let Some(rec) = self.recorder.as_mut() {
                    rec.push(TraceRecord::HotGroupResize {
                        tick,
                        previous: previous as u32,
                        current: current as u32,
                    });
                }
                if let Some(sink) = &self.config.sink {
                    sink.emit(&Event::HotGroup(HotGroupEvent {
                        tick,
                        transition: if current > previous {
                            HotGroupTransition::Grew
                        } else {
                            HotGroupTransition::Shrank
                        },
                        previous,
                        current,
                    }));
                }
            }
            self.last_hot_size = hot;
        }

        // Spill delta from the policy's cumulative counters; recorded
        // into the flight ring and fed to the QoS-spill watchdog.
        let spills_total = scheduler.map(|s| s.spills).unwrap_or(self.last_spills);
        let spills_delta = spills_total.saturating_sub(self.last_spills);
        self.last_spills = spills_total;
        if spills_delta > 0 {
            if let Some(rec) = self.recorder.as_mut() {
                rec.push(TraceRecord::SchedulerSpill {
                    tick,
                    spills: spills_delta as u32,
                });
            }
        }

        // Per-zone instruments: all reads, over state the zone step
        // already computed; zone temperatures never feed back into the
        // simulation, so updating gauges cannot perturb it.
        if let (Some(obs), Some(zones)) = (self.zones_obs.as_ref(), zones) {
            let layout = zones.layout();
            let temps = zones.temperatures();
            let duties = zones.duties();
            let hot = hot_size.unwrap_or(0);
            let mut max_temp = f64::NEG_INFINITY;
            for (z, g) in obs.gauges.iter().enumerate() {
                let range = layout.zone_range(z);
                let servers = range.len() as f64;
                let temp = temps[z];
                g.temp.set(temp);
                g.duty.set(duties[z]);
                g.headroom.set(obs.setpoint_c - temp);
                let melt_sum: f64 = melt[range.clone()].iter().sum();
                g.melt.set(melt_sum / servers);
                // VMT's hot group is the id-ordered prefix [0, hot), so
                // its overlap with a contiguous zone is a range clip.
                let overlap = hot.min(range.end).saturating_sub(range.start) as f64;
                g.hot_occupancy.set(overlap / servers);
                if let Some(s) = &g.temp_series {
                    s.push(tick, temp);
                }
                max_temp = max_temp.max(temp);
            }
            if let Some(s) = &obs.max_temp_series {
                if max_temp.is_finite() {
                    s.push(tick, max_temp);
                }
            }
        }

        // Cluster-wide series: one push per quantity per tick.
        if let Some(cs) = &self.series {
            cs.utilization.push(tick, utilization);
            cs.mean_air_c.push(tick, mean_air_c);
            cs.melted_fraction.push(tick, melted_fraction);
            cs.cooling_w.push(tick, cooling_w);
            cs.spills.push(tick, spills_delta as f64);
        }

        // Watchdogs see only state this method already has in hand.
        if let Some(watchdogs) = self.watchdogs.as_mut() {
            let state = TickState {
                tick,
                air_c: index.air_c(),
                reported_melt: index.reported_melt(),
                free_cores: index.free_cores(),
                cores_per_server: self.cores_per_server,
                hot_group_size: hot,
                spills_delta,
            };
            let fired: Vec<AnomalyEvent> = watchdogs.observe(&state).to_vec();
            for event in &fired {
                self.anomaly_events.inc();
                if let Some(rec) = self.recorder.as_mut() {
                    rec.push(TraceRecord::AnomalyMark {
                        tick,
                        watchdog: event.watchdog,
                    });
                }
                // Span-trace instant: lands inside the current tick's
                // span, linking the anomaly to the phases (and any
                // sampled placements) of its window.
                if let Some(tr) = self.tracer.as_mut() {
                    tr.anomaly(event.watchdog.label(), event.server, event.value);
                }
                if let Some(sink) = &self.config.sink {
                    sink.emit(&Event::Anomaly(event.clone()));
                }
            }
            if let Some(first) = fired.first() {
                self.dump_anomaly(tick, first.watchdog);
            }
        }

        if tick.is_multiple_of(self.config.snapshot_every_ticks) {
            let max_air = air.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let max_air = if max_air == f64::NEG_INFINITY {
                0.0
            } else {
                max_air
            };
            self.max_air_c.set(max_air);
            if let Some(sink) = &self.config.sink {
                sink.emit(&Event::Snapshot(SnapshotEvent {
                    tick,
                    sim_hours,
                    jobs_in_flight: index.used_cores_total(),
                    utilization,
                    mean_air_c,
                    max_air_c: max_air,
                    melted_fraction,
                    hot_group_size: hot,
                }));
            }
        }

        // Publish a freshly rendered exposition for `/metrics` scrapes:
        // at snapshot cadence, plus tick 1 so early scrapes see real
        // families rather than the empty bootstrap document.
        if let Some(publisher) = &self.config.publisher {
            if tick == 1 || tick.is_multiple_of(self.config.snapshot_every_ticks) {
                let body = render_openmetrics(&self.config.registry.snapshot(), METRIC_HELP);
                publisher.publish(tick, body);
            }
        }

        if let Some(meter) = &self.progress {
            if let Some(frame) = meter.observe(tick, index.used_cores_total(), melted_fraction) {
                eprint!("\r{}", frame.render());
                self.progress_drawn = true;
            }
        }

        if let Some(drv) = self.dashboard.as_mut() {
            if let Some(frame) = drv
                .meter
                .observe(tick, index.used_cores_total(), melted_fraction)
            {
                drv.ticks_per_s.push(frame.ticks_per_s);
                if drv.ticks_per_s.len() > SPARK_WIDTH {
                    drv.ticks_per_s.remove(0);
                }
                let rows = dashboard_rows(
                    &drv.ticks_per_s,
                    self.series.as_ref(),
                    self.zones_obs.as_ref(),
                );
                drv.dashboard.draw(&frame, &rows);
            }
        }
    }

    /// Closes out the run: summary event to the sink (flushed) and into
    /// the caller's [`SummaryHandle`](vmt_telemetry::SummaryHandle).
    pub(crate) fn finish(
        mut self,
        policy: &str,
        scheduler: Option<SchedulerCounters>,
        placements: u64,
        dropped_jobs: u64,
        peak_cooling_w: f64,
        peak_electrical_w: f64,
    ) {
        if self.progress_drawn {
            eprintln!();
        }
        if let Some(drv) = self.dashboard.as_mut() {
            drv.dashboard.finish();
        }
        let wall_s = self.started.elapsed().as_secs_f64();
        let ticks_run = self.profiler.ticks();
        let final_melted_fraction = if self.melted.is_empty() {
            0.0
        } else {
            self.melted_count as f64 / self.melted.len() as f64
        };
        // On-demand end-of-run dump (`--flight-dump` without an anomaly).
        if let (Some(rec), Some(flight)) = (self.recorder.as_ref(), self.flight.as_ref()) {
            if let Some(path) = flight.dump_path.as_deref() {
                let written = std::fs::File::create(path)
                    .and_then(|mut file| rec.dump_jsonl(&mut file, ticks_run, None));
                if let Err(e) = written {
                    eprintln!("flight dump to {} failed: {e}", path.display());
                }
            }
        }
        // Deposit the finished trace for the caller holding a clone of
        // the config's [`TracerHandle`](vmt_telemetry::TracerHandle).
        if let Some(tracer) = self.tracer.take() {
            self.config.tracer.set(tracer.into_buffer());
        }
        let anomalies = self
            .watchdogs
            .as_ref()
            .map(WatchdogSet::anomalies_total)
            .unwrap_or(0);
        // Snapshot the error count before the summary's own write so the
        // value describes the stream the summary closes.
        let write_errors = self
            .config
            .sink
            .as_ref()
            .map(|sink| sink.write_errors())
            .unwrap_or(0);
        let summary = SummaryEvent {
            schema_version: SCHEMA_VERSION,
            policy: policy.to_owned(),
            ticks_run,
            wall_s,
            ticks_per_s: if wall_s > 0.0 {
                ticks_run as f64 / wall_s
            } else {
                0.0
            },
            placements,
            dropped_jobs,
            peak_cooling_w,
            peak_electrical_w,
            final_melted_fraction,
            write_errors,
            anomalies,
            phases: self.profiler.breakdown(),
            scheduler,
            metrics: self.config.registry.snapshot(),
        };
        if let Some(sink) = &self.config.sink {
            sink.emit(&Event::Summary(summary.clone()));
            sink.flush();
        }
        // Final publication so a scrape after the run ends (or between
        // snapshot cadences) sees the closing state.
        if let Some(publisher) = &self.config.publisher {
            publisher.publish(ticks_run, render_openmetrics(&summary.metrics, METRIC_HELP));
        }
        self.config.summary.set(summary);
    }
}
