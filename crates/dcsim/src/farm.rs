//! Structure-of-arrays cluster state and the deterministic sharded
//! physics tick.
//!
//! [`ServerFarm`] holds every server's physical state as contiguous
//! arrays — inlet and air temperatures, active core power, wax enthalpy,
//! estimator state — instead of a `Vec<Server>` of pointer-rich structs.
//! The per-tick physics pass sweeps those arrays with the plain-value
//! kernels from `vmt_thermal::kernel` and `vmt_pcm::kernel` in tight,
//! cache-friendly loops, and parallelizes over a **fixed shard grid**:
//!
//! * Servers are split into contiguous shards of [`SHARD`] servers. The
//!   shard layout depends only on the server count — never on the thread
//!   count.
//! * Each shard accumulates its partial sums (electrical power, heat
//!   into wax, temperature sums, stored energy) element-serially in
//!   server order.
//! * The main thread folds the per-shard partials **in shard order**.
//!
//! Because IEEE-754 addition is not associative, this canonical
//! reduction — not "sum in whatever order threads finish" — is what
//! makes the results bit-identical at any thread count, including one:
//! every thread count computes exactly the same shard partials and folds
//! them in exactly the same order. Worker threads only change *who*
//! computes a shard, never *what* is computed.

use crate::config::{ClusterConfig, WaxSpec};
use crate::index::ClusterIndex;
use crate::pool::TickPool;
use crate::server::{Server, ServerId};
use std::cell::UnsafeCell;
use vmt_pcm::{PcmMaterial, WaxKernel, WaxPack, WaxStateEstimator};
use vmt_power::ServerPowerModel;
use vmt_thermal::{AirStream, ServerThermalModel};
use vmt_units::{Celsius, Fraction, Joules, Kilograms, Seconds, Watts, WattsPerKelvin};
use vmt_workload::{Job, JobId, VmtClass, WorkloadKind};

/// Servers per shard of the parallel physics sweep.
///
/// A fixed layout constant (never derived from the thread count), so the
/// reduction tree — and therefore every floating-point result — is a
/// function of the cluster size alone. 64 servers × a handful of `f64`
/// lanes keeps a shard's working set inside L1 while amortizing the
/// per-shard bookkeeping.
pub const SHARD: usize = 64;

/// Minimum servers backing each extra physics worker.
///
/// One pool handoff (wake, claim, park) costs on the order of tens of
/// microseconds; a server's physics step costs tens of nanoseconds. A
/// worker therefore has to cover a couple thousand servers per tick
/// before fanning out beats running its share inline — below that the
/// engine thread sweeps alone no matter how many workers were requested
/// (requesting threads stays harmless at any cluster size, which is
/// what keeps small-cluster multi-thread rows from inverting).
const SERVERS_PER_WORKER: usize = 2048;

/// Minimum departures backing each extra drain worker, for the same
/// handoff-vs-work reason as [`SERVERS_PER_WORKER`]: a worker must
/// retire thousands of jobs for its wake/park round-trip to pay, so
/// the drain fans out one worker per 4,096 bucketed departures and
/// never spreads a tick's bucket thinner than that.
const DEPART_JOBS_PER_WORKER: usize = 4096;

/// Slots per page of the pooled job table. Eight 4-byte delta ids fit
/// in half a cache line, and a server's chain is at most
/// `cores / JOB_PAGE` pages (four at the paper's 32 cores), so a
/// departure scan touches a handful of small pages instead of a
/// 256-byte slab row sized for the fully-loaded worst case.
const JOB_PAGE: usize = 8;

/// Chain terminator / "no page" sentinel in job-table page links.
const NO_PAGE: u32 = u32::MAX;

/// One shard's pooled job storage: page-granular parallel arrays plus a
/// LIFO free list. Pools are per-shard (not farm-wide) so the sharded
/// departure drain stays lock-free — each drain task owns its shard's
/// pool outright — and so a shard's live pages cluster in memory.
#[derive(Debug, Clone, Default)]
struct JobPool {
    /// Job ids, stored as u32 deltas against the farm's `id_base`
    /// ([`JOB_PAGE`] slots per page).
    ids: Vec<u32>,
    /// Workload index byte of each slot, parallel to `ids`.
    kinds: Vec<u8>,
    /// Next-page link of each page; [`NO_PAGE`] terminates a chain.
    next: Vec<u32>,
    /// Recycled page indices, reused LIFO so churn rides hot lines.
    free: Vec<u32>,
}

impl JobPool {
    /// Hands out a page — recycled when possible, freshly grown
    /// otherwise — with its chain link cleared.
    fn alloc_page(&mut self) -> u32 {
        if let Some(page) = self.free.pop() {
            self.next[page as usize] = NO_PAGE;
            return page;
        }
        let page = self.next.len() as u32;
        self.ids.resize(self.ids.len() + JOB_PAGE, 0);
        self.kinds.resize(self.kinds.len() + JOB_PAGE, 0);
        self.next.push(NO_PAGE);
        page
    }

    /// Heap bytes currently reserved by this pool.
    fn heap_bytes(&self) -> usize {
        self.ids.capacity() * 4
            + self.kinds.capacity()
            + self.next.capacity() * 4
            + self.free.capacity() * 4
    }
}

/// Appends one entry at chain position `len` — the pooled equivalent of
/// writing slab slot `len`. Counts and power stay with the callers.
#[inline]
fn append_job(
    pool: &mut JobPool,
    head: &mut u32,
    tail: &mut u32,
    len: usize,
    delta: u32,
    kind: u8,
) {
    if len.is_multiple_of(JOB_PAGE) {
        let page = pool.alloc_page();
        if *head == NO_PAGE {
            *head = page;
        } else {
            pool.next[*tail as usize] = page;
        }
        *tail = page;
    }
    let slot = *tail as usize * JOB_PAGE + len % JOB_PAGE;
    pool.ids[slot] = delta;
    pool.kinds[slot] = kind;
}

/// Removes job `id` from one server's chain — the exact swap-remove
/// `end_job` has always performed, expressed on the pooled layout: the
/// chain's last entry moves into the hole, and an emptied tail page
/// returns to the pool's free list. Shared by [`ServerFarm::end_job`]
/// and the sharded departure drain.
fn remove_job(
    pool: &mut JobPool,
    id_base: u64,
    head: &mut u32,
    tail: &mut u32,
    count: &mut u32,
    server: usize,
    id: JobId,
) -> WorkloadKind {
    let len = *count as usize;
    let delta =
        id.0.checked_sub(id_base)
            .filter(|&d| d <= u32::MAX as u64)
            .unwrap_or_else(|| panic!("{id} not running on {}", ServerId(server))) as u32;
    // Walk the chain for the job's slot.
    let mut page = *head;
    let mut found = None;
    'walk: for j in (0..len).step_by(JOB_PAGE) {
        let base_slot = page as usize * JOB_PAGE;
        for s in 0..JOB_PAGE.min(len - j) {
            if pool.ids[base_slot + s] == delta {
                found = Some(base_slot + s);
                break 'walk;
            }
        }
        page = pool.next[page as usize];
    }
    let pos = found.unwrap_or_else(|| panic!("{id} not running on {}", ServerId(server)));
    let last = *tail as usize * JOB_PAGE + (len - 1) % JOB_PAGE;
    let kind = WorkloadKind::ALL[pool.kinds[pos] as usize];
    pool.ids[pos] = pool.ids[last];
    pool.kinds[pos] = pool.kinds[last];
    *count = (len - 1) as u32;
    // Free an emptied tail page, re-terminating the chain at its
    // predecessor (chains are at most `cores / JOB_PAGE` pages long).
    if (len - 1).is_multiple_of(JOB_PAGE) {
        let emptied = *tail;
        pool.free.push(emptied);
        if *head == emptied {
            *head = NO_PAGE;
            *tail = NO_PAGE;
        } else {
            let mut prev = *head;
            while pool.next[prev as usize] != emptied {
                prev = pool.next[prev as usize];
            }
            pool.next[prev as usize] = NO_PAGE;
            *tail = prev;
        }
    }
    kind
}

/// Physical-parallelism ceiling on per-sweep fan-out, resolved once.
///
/// Requesting more workers than the machine has cores cannot make a
/// sweep faster — the surplus workers only time-slice one another and
/// add context-switch overhead (measured ~10–20% on a 1-core host at
/// `--threads 8`). The shard-ordered fold makes the worker count
/// semantically free, so clamping here changes wall-clock only; the
/// configured thread count is still honored up to the hardware.
fn machine_parallelism() -> usize {
    static CAP: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *CAP.get_or_init(|| {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    })
}

/// Resolves the default tick-level thread count: the `VMT_THREADS`
/// environment variable when set to a positive integer, otherwise
/// [`std::thread::available_parallelism`].
pub fn default_tick_threads() -> usize {
    std::env::var("VMT_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        })
}

/// Wall-clock attribution of one physics sweep, filled only when the
/// engine runs with telemetry enabled — the untimed path takes no
/// timestamps at all.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SweepTiming {
    /// Nanoseconds spent running the shard kernels (inline or pooled,
    /// including the pool handoff).
    pub shards_ns: u64,
    /// Nanoseconds spent folding the per-shard partials in shard order.
    pub fold_ns: u64,
    /// Summed busy nanoseconds across pool participants (workers plus
    /// the engine thread) while the shard section ran; zero on the
    /// inline single-thread path, where the pool is not engaged.
    pub pool_busy_ns: u64,
    /// Summed idle nanoseconds across pool participants within the
    /// shard section's wall-clock span (`span × participants − busy`);
    /// zero on the inline path.
    pub pool_idle_ns: u64,
}

impl SweepTiming {
    /// Folds a pool section's per-participant busy slots into the
    /// busy/idle attribution, given the section's wall-clock span.
    fn add_pool_busy(&mut self, span_ns: u64, busy: &[u64]) {
        let busy_sum: u64 = busy.iter().sum();
        self.pool_busy_ns += busy_sum;
        self.pool_idle_ns += (span_ns * busy.len() as u64).saturating_sub(busy_sum);
    }
}

/// Order-stable partial sums of one physics tick (raw accumulator
/// units: W, W, °C·servers, °C·servers, J).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FarmTickTotals {
    /// Total electrical power (sum of per-server draws, W).
    pub electrical_w: f64,
    /// Total heat-flow into wax (W; negative while refreezing).
    pub into_wax_w: f64,
    /// Sum of air-at-wax temperatures over all servers (°C).
    pub temp_sum_c: f64,
    /// Sum of air-at-wax temperatures over servers below the hot-group
    /// limit (°C).
    pub hot_sum_c: f64,
    /// Total stored latent energy (J).
    pub stored_energy_j: f64,
}

impl FarmTickTotals {
    /// Folds another partial into this one (field-wise addition).
    fn fold(&mut self, other: &FarmTickTotals) {
        self.electrical_w += other.electrical_w;
        self.into_wax_w += other.into_wax_w;
        self.temp_sum_c += other.temp_sum_c;
        self.hot_sum_c += other.hot_sum_c;
        self.stored_energy_j += other.stored_energy_j;
    }
}

/// Shared wax-pack design of a farm (every server carries the same pack).
#[derive(Debug, Clone)]
struct FarmWax {
    material: PcmMaterial,
    mass: Kilograms,
    ua: WattsPerKelvin,
    taper: f64,
    kernel: WaxKernel,
    /// Estimator template: holds the shared melt-rate lookup table; the
    /// per-server `(temperature, fraction)` state lives in the farm's
    /// arrays and flows through [`WaxStateEstimator::step_state`].
    estimator: WaxStateEstimator,
}

impl FarmWax {
    fn new(spec: &WaxSpec) -> Self {
        Self::from_parts(
            spec.material.clone(),
            spec.sizing.mass_of(&spec.material),
            spec.exchanger_ua,
            spec.interface_taper,
        )
    }

    fn from_parts(material: PcmMaterial, mass: Kilograms, ua: WattsPerKelvin, taper: f64) -> Self {
        Self {
            kernel: WaxKernel::new(&material, mass, ua, taper),
            estimator: WaxStateEstimator::new(material.clone(), mass, ua).with_taper(taper),
            material,
            mass,
            ua,
            taper,
        }
    }
}

/// Serializable image of a farm's per-server state arrays.
///
/// Captures exactly the fields that evolve during a run — thermal and
/// wax arrays plus the running-job slab. Config-derived parts (power
/// model, air stream, wax design) are *not* here; a restore rebuilds
/// them from [`ClusterConfig`] and then overwrites the arrays with
/// [`ServerFarm::apply_state`], which makes the image independent of
/// how those parts are represented internally.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FarmState {
    /// Per-server inlet temperature (°C).
    pub inlet_c: Vec<f64>,
    /// Per-server air temperature at the wax (°C).
    pub at_wax_c: Vec<f64>,
    /// Per-server sum of running jobs' core powers (W).
    pub active_power_w: Vec<f64>,
    /// Per-server wax enthalpy (J).
    pub enthalpy_j: Vec<f64>,
    /// Per-server estimator wax-temperature state (°C).
    pub est_temp_c: Vec<f64>,
    /// Per-server estimator melt-fraction state.
    pub est_fraction: Vec<f64>,
    /// Flat running-job slab (`num_servers × cores` slots). Rows
    /// written by [`ServerFarm::state`] are dense — the first
    /// `job_counts[i]` slots of row `i` hold that server's jobs in
    /// table order, the rest are zero — but a restore only ever reads
    /// the first `job_counts[i]` slots, so archives from writers that
    /// left stale bytes past the count keep restoring identically.
    pub job_ids: Vec<u64>,
    /// Workload index byte of each slab slot.
    pub job_kinds: Vec<u8>,
    /// Occupied slot count per server.
    pub job_counts: Vec<u32>,
}

/// All servers' physical state in structure-of-arrays form.
///
/// Mirrors the per-server [`Server`] API index-wise (`air_at_wax(i)`,
/// `free_cores(i)`, `start_job(i, …)`, …) so schedulers and tests read
/// and mutate one server at a time, while the physics tick sweeps whole
/// arrays at once. [`ServerFarm::to_servers`] and
/// [`ServerFarm::from_servers`] convert losslessly to and from the
/// array-of-structs form.
#[derive(Debug)]
pub struct ServerFarm {
    power_model: ServerPowerModel,
    air: AirStream,
    time_constant: Seconds,
    oracle_wax_state: bool,
    threads: usize,
    wax: Option<FarmWax>,
    /// Per-server inlet temperature (°C).
    inlet_c: Vec<f64>,
    /// Per-server air temperature at the wax (°C).
    at_wax_c: Vec<f64>,
    /// Per-server sum of running jobs' core powers (W).
    active_power_w: Vec<f64>,
    /// Per-server wax enthalpy (J); untouched when the farm is waxless.
    enthalpy_j: Vec<f64>,
    /// Per-server estimator wax-temperature state (°C).
    est_temp_c: Vec<f64>,
    /// Per-server estimator melt-fraction state.
    est_fraction: Vec<f64>,
    /// Pooled running-job table, one pool per [`SHARD`] of servers:
    /// server `i`'s jobs live in `pools[i / SHARD]` as a chain of
    /// [`JOB_PAGE`]-slot pages from `job_heads[i]` to `job_tails[i]`,
    /// the first `job_counts[i]` chain slots valid, ids stored as u32
    /// deltas against `id_base`. Compared to the former
    /// `num_servers × cores` u64 slab this sizes the table to *live*
    /// jobs — pages recycle through per-pool free lists — cutting
    /// ~288 MB of slab at 1M servers to tens of MB of pages.
    pools: Vec<JobPool>,
    /// First page of each server's job chain ([`NO_PAGE`] when idle).
    job_heads: Vec<u32>,
    /// Last page of each server's job chain ([`NO_PAGE`] when idle).
    job_tails: Vec<u32>,
    /// Occupied chain slots of each server (= used cores).
    job_counts: Vec<u32>,
    /// Base subtracted from absolute job ids before storing them as
    /// u32 deltas; re-anchored by `rebase_ids` when the engine's
    /// monotonically increasing ids outrun the 32-bit window.
    id_base: u64,
    /// Persistent worker pool, created lazily on the first multi-worker
    /// sweep and rebuilt when the thread count changes. Clones of the
    /// farm start poolless and spin up their own on demand.
    pool: Option<TickPool>,
    /// Reusable index-column sinks for the standalone
    /// [`ServerFarm::tick_physics`] entry point (tests and benches) —
    /// hoisted here so repeated standalone ticks allocate nothing.
    /// Semantically empty between ticks; never serialized or compared.
    scratch_air: Vec<f64>,
    scratch_melt: Vec<f64>,
}

impl Clone for ServerFarm {
    fn clone(&self) -> Self {
        Self {
            power_model: self.power_model,
            air: self.air,
            time_constant: self.time_constant,
            oracle_wax_state: self.oracle_wax_state,
            threads: self.threads,
            wax: self.wax.clone(),
            inlet_c: self.inlet_c.clone(),
            at_wax_c: self.at_wax_c.clone(),
            active_power_w: self.active_power_w.clone(),
            enthalpy_j: self.enthalpy_j.clone(),
            est_temp_c: self.est_temp_c.clone(),
            est_fraction: self.est_fraction.clone(),
            pools: self.pools.clone(),
            job_heads: self.job_heads.clone(),
            job_tails: self.job_tails.clone(),
            job_counts: self.job_counts.clone(),
            id_base: self.id_base,
            pool: None,
            scratch_air: Vec::new(),
            scratch_melt: Vec::new(),
        }
    }
}

impl ServerFarm {
    /// Builds a farm of `config.num_servers` servers, each initialized
    /// exactly as [`Server::from_config`] initializes one: thermal state
    /// settled at idle power, wax equilibrated at the resulting
    /// air-at-wax temperature, estimator reset to that temperature and
    /// zero melt.
    pub fn from_config(config: &ClusterConfig) -> Self {
        let n = config.num_servers;
        let wax = config.wax.as_ref().map(FarmWax::new);
        let mut farm = Self {
            power_model: config.power,
            air: config.air,
            time_constant: config.thermal_time_constant,
            oracle_wax_state: config.oracle_wax_state,
            threads: default_tick_threads(),
            wax,
            inlet_c: Vec::with_capacity(n),
            at_wax_c: Vec::with_capacity(n),
            active_power_w: vec![0.0; n],
            enthalpy_j: Vec::with_capacity(n),
            est_temp_c: Vec::with_capacity(n),
            est_fraction: vec![0.0; n],
            pools: vec![JobPool::default(); n.div_ceil(SHARD)],
            job_heads: vec![NO_PAGE; n],
            job_tails: vec![NO_PAGE; n],
            job_counts: vec![0; n],
            id_base: 0,
            pool: None,
            scratch_air: Vec::new(),
            scratch_melt: Vec::new(),
        };
        for i in 0..n {
            let inlet = config.inlet.inlet_for(i);
            let mut thermal = ServerThermalModel::with_time_constant(
                inlet,
                config.air,
                config.thermal_time_constant,
            );
            thermal.settle(config.power.idle());
            let at_wax = thermal.air_at_wax();
            farm.inlet_c.push(inlet.get());
            farm.at_wax_c.push(at_wax.get());
            match &farm.wax {
                Some(w) => {
                    let pack = WaxPack::new(w.material.clone(), w.mass, at_wax);
                    farm.enthalpy_j.push(pack.enthalpy().get());
                    farm.est_temp_c.push(at_wax.get());
                }
                None => {
                    farm.enthalpy_j.push(0.0);
                    farm.est_temp_c.push(0.0);
                }
            }
        }
        farm
    }

    /// Builds a farm from existing servers, preserving every state field
    /// bit-for-bit. The servers must share one hardware configuration
    /// (power model, air stream, time constant, wax design), which is
    /// how the engine constructs clusters.
    ///
    /// # Panics
    ///
    /// Panics if `servers` is empty.
    pub fn from_servers(servers: &[Server]) -> Self {
        let first = servers.first().expect("farm needs at least one server");
        let wax = first.wax_parts().map(|(pack, exchanger, _)| {
            FarmWax::from_parts(
                pack.material().clone(),
                pack.mass(),
                exchanger.ua(),
                exchanger.taper(),
            )
        });
        let n = servers.len();
        // Delta-anchor the incoming ids at the smallest live id so
        // every stored delta fits u32.
        let id_base = servers
            .iter()
            .flat_map(|s| s.jobs_map().keys())
            .map(|id| id.0)
            .min()
            .unwrap_or(0);
        let mut pools = vec![JobPool::default(); n.div_ceil(SHARD)];
        let mut job_heads = vec![NO_PAGE; n];
        let mut job_tails = vec![NO_PAGE; n];
        let mut job_counts = vec![0u32; n];
        for (i, s) in servers.iter().enumerate() {
            for (&id, &kind) in s.jobs_map() {
                let delta = id.0 - id_base;
                assert!(delta <= u32::MAX as u64, "live job-id span exceeds u32");
                append_job(
                    &mut pools[i / SHARD],
                    &mut job_heads[i],
                    &mut job_tails[i],
                    job_counts[i] as usize,
                    delta as u32,
                    kind.index() as u8,
                );
                job_counts[i] += 1;
            }
        }
        let mut farm = Self {
            power_model: first.power_model(),
            air: first.air(),
            time_constant: first.thermal().time_constant(),
            oracle_wax_state: first.oracle_wax_state(),
            threads: default_tick_threads(),
            wax,
            inlet_c: servers.iter().map(|s| s.inlet().get()).collect(),
            at_wax_c: servers.iter().map(|s| s.air_at_wax().get()).collect(),
            active_power_w: servers
                .iter()
                .map(|s| s.active_core_power().get())
                .collect(),
            enthalpy_j: Vec::with_capacity(n),
            est_temp_c: Vec::with_capacity(n),
            est_fraction: Vec::with_capacity(n),
            pools,
            job_heads,
            job_tails,
            job_counts,
            id_base,
            pool: None,
            scratch_air: Vec::new(),
            scratch_melt: Vec::new(),
        };
        for s in servers {
            match s.wax_parts() {
                Some((pack, _, estimator)) => {
                    farm.enthalpy_j.push(pack.enthalpy().get());
                    farm.est_temp_c.push(estimator.temperature().get());
                    farm.est_fraction.push(estimator.melt_fraction().get());
                }
                None => {
                    farm.enthalpy_j.push(0.0);
                    farm.est_temp_c.push(0.0);
                    farm.est_fraction.push(0.0);
                }
            }
        }
        farm
    }

    /// Materializes the farm back into per-object [`Server`]s with
    /// identical state (rack post-mortems, round-trip tests).
    pub fn to_servers(&self) -> Vec<Server> {
        (0..self.len())
            .map(|i| {
                let mut thermal = ServerThermalModel::with_time_constant(
                    self.inlet(i),
                    self.air,
                    self.time_constant,
                );
                thermal.set_air_at_wax(self.air_at_wax(i));
                let wax = self.wax.as_ref().map(|w| {
                    let mut pack = WaxPack::new(w.material.clone(), w.mass, Celsius::new(0.0));
                    pack.set_enthalpy(Joules::new(self.enthalpy_j[i]));
                    let mut estimator = WaxStateEstimator::new(w.material.clone(), w.mass, w.ua)
                        .with_taper(w.taper);
                    estimator.reset(
                        Celsius::new(self.est_temp_c[i]),
                        Fraction::saturating(self.est_fraction[i]),
                    );
                    (
                        pack,
                        vmt_pcm::HeatExchanger::with_taper(w.ua, w.taper),
                        estimator,
                    )
                });
                Server::from_parts(
                    ServerId(i),
                    self.power_model,
                    thermal,
                    wax,
                    self.job_row(i).collect(),
                    Watts::new(self.active_power_w[i]),
                    self.oracle_wax_state,
                )
            })
            .collect()
    }

    /// Captures every evolving per-server array as a serializable
    /// [`FarmState`] image. Job rows are emitted dense — the first
    /// `job_counts[i]` slots of each row hold that server's jobs in
    /// table order, the rest zero — independent of how the pooled
    /// table arranges them internally.
    pub fn state(&self) -> FarmState {
        let n = self.len();
        let stride = self.cores() as usize;
        let mut job_ids = vec![0u64; n * stride];
        let mut job_kinds = vec![0u8; n * stride];
        for i in 0..n {
            let row = i * stride;
            for (j, (id, kind)) in self.job_row(i).enumerate() {
                job_ids[row + j] = id.0;
                job_kinds[row + j] = kind.index() as u8;
            }
        }
        FarmState {
            inlet_c: self.inlet_c.clone(),
            at_wax_c: self.at_wax_c.clone(),
            active_power_w: self.active_power_w.clone(),
            enthalpy_j: self.enthalpy_j.clone(),
            est_temp_c: self.est_temp_c.clone(),
            est_fraction: self.est_fraction.clone(),
            job_ids,
            job_kinds,
            job_counts: self.job_counts.clone(),
        }
    }

    /// Overwrites the evolving arrays from a [`FarmState`] image taken
    /// on a farm of the same shape (same server count and core count).
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Corrupt`] when any array length disagrees with
    /// this farm's shape; the farm is left untouched in that case.
    ///
    /// [`SnapshotError::Corrupt`]: crate::SnapshotError::Corrupt
    pub fn apply_state(&mut self, state: &FarmState) -> Result<(), crate::snapshot::SnapshotError> {
        let n = self.len();
        let stride = self.cores() as usize;
        let slab = n * stride;
        let per_server_ok = state.inlet_c.len() == n
            && state.at_wax_c.len() == n
            && state.active_power_w.len() == n
            && state.enthalpy_j.len() == n
            && state.est_temp_c.len() == n
            && state.est_fraction.len() == n
            && state.job_counts.len() == n;
        let slab_ok = state.job_ids.len() == slab && state.job_kinds.len() == slab;
        if !per_server_ok || !slab_ok {
            return Err(crate::snapshot::SnapshotError::Corrupt(format!(
                "farm state shaped for {} servers / {} slots, farm has {n} / {slab}",
                state.job_counts.len(),
                state.job_ids.len(),
            )));
        }
        if let Some(i) = (0..n).find(|&i| state.job_counts[i] as usize > stride) {
            return Err(crate::snapshot::SnapshotError::Corrupt(format!(
                "server {i} claims {} jobs on {stride} cores",
                state.job_counts[i]
            )));
        }
        // Delta-anchor the incoming ids; only the first `job_counts[i]`
        // slots of each row are live (older writers left stale bytes
        // past the count, which a restore must keep ignoring).
        let mut id_base = u64::MAX;
        let mut max_id = 0u64;
        let mut any = false;
        for i in 0..n {
            let row = i * stride;
            for &id in &state.job_ids[row..row + state.job_counts[i] as usize] {
                id_base = id_base.min(id);
                max_id = max_id.max(id);
                any = true;
            }
        }
        let id_base = if any { id_base } else { 0 };
        if max_id - id_base > u32::MAX as u64 {
            return Err(crate::snapshot::SnapshotError::Corrupt(format!(
                "live job-id span {} exceeds u32 range",
                max_id - id_base
            )));
        }
        self.inlet_c.clone_from(&state.inlet_c);
        self.at_wax_c.clone_from(&state.at_wax_c);
        self.active_power_w.clone_from(&state.active_power_w);
        self.enthalpy_j.clone_from(&state.enthalpy_j);
        self.est_temp_c.clone_from(&state.est_temp_c);
        self.est_fraction.clone_from(&state.est_fraction);
        self.job_counts.clone_from(&state.job_counts);
        self.id_base = id_base;
        for pool in &mut self.pools {
            pool.ids.clear();
            pool.kinds.clear();
            pool.next.clear();
            pool.free.clear();
        }
        self.job_heads.fill(NO_PAGE);
        self.job_tails.fill(NO_PAGE);
        for i in 0..n {
            let row = i * stride;
            for j in 0..state.job_counts[i] as usize {
                append_job(
                    &mut self.pools[i / SHARD],
                    &mut self.job_heads[i],
                    &mut self.job_tails[i],
                    j,
                    (state.job_ids[row + j] - id_base) as u32,
                    state.job_kinds[row + j],
                );
            }
        }
        Ok(())
    }

    /// Number of servers.
    pub fn len(&self) -> usize {
        self.at_wax_c.len()
    }

    /// True when the farm has no servers.
    pub fn is_empty(&self) -> bool {
        self.at_wax_c.is_empty()
    }

    /// Worker threads used by the physics tick.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Sets the tick-level worker count (clamped to at least 1).
    /// Results are bit-identical at any setting. A resized pool is
    /// rebuilt lazily on the next multi-worker sweep.
    pub fn set_threads(&mut self, threads: usize) {
        let threads = threads.max(1);
        if threads != self.threads {
            self.pool = None;
        }
        self.threads = threads;
    }

    /// Total cores of server `i` (uniform across the farm).
    #[inline]
    pub fn cores(&self) -> u32 {
        self.power_model.cores()
    }

    /// Cores of server `i` currently running jobs.
    #[inline]
    pub fn used_cores(&self, i: usize) -> u32 {
        self.job_counts[i]
    }

    /// Server `i`'s running jobs, in table order — the order departure
    /// swap-removes and snapshot rows observe.
    fn job_row(&self, i: usize) -> impl Iterator<Item = (JobId, WorkloadKind)> + '_ {
        let pool = &self.pools[i / SHARD];
        let count = self.job_counts[i] as usize;
        let id_base = self.id_base;
        let mut page = self.job_heads[i];
        (0..count).map(move |j| {
            let slot = page as usize * JOB_PAGE + j % JOB_PAGE;
            let entry = (
                JobId(id_base + pool.ids[slot] as u64),
                WorkloadKind::ALL[pool.kinds[slot] as usize],
            );
            if j % JOB_PAGE == JOB_PAGE - 1 {
                page = pool.next[page as usize];
            }
            entry
        })
    }

    /// Cores of server `i` available for placement.
    #[inline]
    pub fn free_cores(&self, i: usize) -> u32 {
        self.cores() - self.used_cores(i)
    }

    /// Current electrical power draw of server `i`.
    #[inline]
    pub fn power(&self, i: usize) -> Watts {
        self.power_model.idle() + Watts::new(self.active_power_w[i])
    }

    /// Current air temperature at server `i`'s wax containers.
    #[inline]
    pub fn air_at_wax(&self, i: usize) -> Celsius {
        Celsius::new(self.at_wax_c[i])
    }

    /// Inlet temperature of server `i`.
    #[inline]
    pub fn inlet(&self, i: usize) -> Celsius {
        Celsius::new(self.inlet_c[i])
    }

    /// The cooling air stream (uniform across the farm).
    pub fn air(&self) -> AirStream {
        self.air
    }

    /// The per-server active-power lane (W), for order-stable external
    /// reductions (zone cooling sums it in server order).
    pub(crate) fn active_power_lane(&self) -> &[f64] {
        &self.active_power_w
    }

    /// Uniform per-server idle draw (W).
    pub(crate) fn idle_w(&self) -> f64 {
        self.power_model.idle().get()
    }

    /// Updates server `i`'s inlet temperature (time-varying ambient
    /// models).
    pub fn set_inlet(&mut self, i: usize, inlet: Celsius) {
        self.inlet_c[i] = inlet.get();
    }

    /// Physical (ground-truth) melt fraction of server `i`'s wax; zero
    /// for waxless farms.
    pub fn melt_fraction(&self, i: usize) -> Fraction {
        match &self.wax {
            Some(w) => Fraction::saturating(w.kernel.melt_fraction(self.enthalpy_j[i])),
            None => Fraction::ZERO,
        }
    }

    /// Melt fraction of server `i` as reported by the on-server
    /// estimator — what the cluster scheduler sees. With the cluster's
    /// `oracle_wax_state` ablation flag set, returns the physical state.
    #[inline]
    pub fn reported_melt_fraction(&self, i: usize) -> Fraction {
        if self.oracle_wax_state {
            return self.melt_fraction(i);
        }
        match &self.wax {
            Some(_) => Fraction::saturating(self.est_fraction[i]),
            None => Fraction::ZERO,
        }
    }

    /// Physical latent energy currently stored in server `i`'s wax.
    pub fn stored_latent_energy(&self, i: usize) -> Joules {
        match &self.wax {
            Some(w) => Joules::new(
                w.kernel.latent_capacity_j() * w.kernel.melt_fraction(self.enthalpy_j[i]),
            ),
            None => Joules::ZERO,
        }
    }

    /// The wax melting temperature, if wax is deployed.
    pub fn melt_temperature(&self) -> Option<Celsius> {
        self.wax.as_ref().map(|w| w.material.melt_temperature())
    }

    /// True when every server carries a PCM (wax) store.
    pub fn has_wax(&self) -> bool {
        self.wax.is_some()
    }

    /// Latent heat capacity of one server's wax pack; zero without wax.
    pub fn latent_capacity_per_server(&self) -> Joules {
        match &self.wax {
            Some(w) => Joules::new(w.kernel.latent_capacity_j()),
            None => Joules::ZERO,
        }
    }

    /// Number of running jobs of each workload on server `i`, indexed by
    /// [`WorkloadKind::index`].
    pub fn kind_counts(&self, i: usize) -> [u32; 5] {
        let mut counts = [0u32; 5];
        for (_, kind) in self.job_row(i) {
            counts[kind.index()] += 1;
        }
        counts
    }

    /// Number of running jobs of each VMT class `(hot, cold)` on server
    /// `i`.
    pub fn class_counts(&self, i: usize) -> (u32, u32) {
        let mut hot = 0;
        let mut cold = 0;
        for (_, kind) in self.job_row(i) {
            match kind.vmt_class() {
                VmtClass::Hot => hot += 1,
                VmtClass::Cold => cold += 1,
            }
        }
        (hot, cold)
    }

    /// Starts a job on a free core of server `i`.
    ///
    /// # Panics
    ///
    /// Panics if the server is full or the job id is already running
    /// here — both indicate an engine bug.
    #[inline]
    pub fn start_job(&mut self, i: usize, job: &Job) {
        assert!(
            self.free_cores(i) > 0,
            "placement on a full {}",
            ServerId(i)
        );
        debug_assert!(
            self.job_row(i).all(|(id, _)| id != job.id()),
            "duplicate {} on {}",
            job.id(),
            ServerId(i)
        );
        if job.id().0 < self.id_base || job.id().0 - self.id_base > u32::MAX as u64 {
            self.rebase_ids(job.id().0);
        }
        let delta = job.id().0 - self.id_base;
        assert!(delta <= u32::MAX as u64, "live job-id span exceeds u32");
        let delta = delta as u32;
        let len = self.job_counts[i] as usize;
        append_job(
            &mut self.pools[i / SHARD],
            &mut self.job_heads[i],
            &mut self.job_tails[i],
            len,
            delta,
            job.kind().index() as u8,
        );
        self.job_counts[i] += 1;
        self.active_power_w[i] += job.core_power().get();
    }

    /// Re-anchors the delta-encoded job ids so `incoming` and every
    /// live id fit the 32-bit window. O(live jobs) and rare: the engine
    /// issues monotonically increasing ids, so a rebase fires once per
    /// ~4.3 billion placements, re-anchoring at the oldest id still
    /// running.
    ///
    /// # Panics
    ///
    /// Panics if the live id span itself exceeds `u32::MAX` — no base
    /// can represent such a table.
    #[cold]
    fn rebase_ids(&mut self, incoming: u64) {
        let mut new_base = incoming;
        for i in 0..self.len() {
            for (id, _) in self.job_row(i) {
                new_base = new_base.min(id.0);
            }
        }
        let old_base = self.id_base;
        for i in 0..self.len() {
            let len = self.job_counts[i] as usize;
            let pool = &mut self.pools[i / SHARD];
            let mut page = self.job_heads[i];
            for j in (0..len).step_by(JOB_PAGE) {
                let base_slot = page as usize * JOB_PAGE;
                for s in 0..JOB_PAGE.min(len - j) {
                    let delta = old_base + pool.ids[base_slot + s] as u64 - new_base;
                    assert!(delta <= u32::MAX as u64, "live job-id span exceeds u32");
                    pool.ids[base_slot + s] = delta as u32;
                }
                page = pool.next[page as usize];
            }
        }
        self.id_base = new_base;
    }

    /// Heap bytes currently reserved by the pooled job table — pages,
    /// free lists, and per-server chain anchors. The 1M-tier budget
    /// divides this by the server count for its recorded
    /// bytes-per-server figure.
    pub fn job_table_bytes(&self) -> usize {
        self.pools.iter().map(JobPool::heap_bytes).sum::<usize>()
            + self.pools.capacity() * std::mem::size_of::<JobPool>()
            + self.job_heads.capacity() * 4
            + self.job_tails.capacity() * 4
            + self.job_counts.capacity() * 4
    }

    /// Hints the CPU to pull server `i`'s placement-hot lanes (chain
    /// anchors, occupancy count, power lane, and the tail page itself)
    /// toward L1. Architecturally a no-op — no result ever depends on
    /// whether the hint fired — so callers may prefetch a *predicted*
    /// placement target while the current job's bookkeeping still runs;
    /// at 100k+ servers these lanes are far out of cache and each
    /// placement otherwise eats the full miss latency serially.
    ///
    /// The tail page (where `start_job` writes) is hinted through a
    /// plain read of `job_tails[i]`: the read has no side effects, and
    /// an out-of-order core issues the dependent prefetch as soon as
    /// the anchor arrives — still well ahead of the commit that needs
    /// the page.
    #[inline]
    pub fn prefetch_server(&self, i: usize) {
        #[cfg(target_arch = "x86_64")]
        if i < self.len() {
            use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
            // SAFETY: `i` is in bounds (checked above), so every
            // pointer is derived in-bounds; prefetch has no other
            // requirements and never faults architecturally.
            unsafe {
                _mm_prefetch::<_MM_HINT_T0>(self.job_heads.as_ptr().add(i).cast());
                _mm_prefetch::<_MM_HINT_T0>(self.job_tails.as_ptr().add(i).cast());
                _mm_prefetch::<_MM_HINT_T0>(self.job_counts.as_ptr().add(i).cast());
                _mm_prefetch::<_MM_HINT_T0>(self.active_power_w.as_ptr().add(i).cast());
            }
            let page = self.job_tails[i];
            if page != NO_PAGE {
                let pool = &self.pools[i / SHARD];
                let slot = page as usize * JOB_PAGE;
                if slot < pool.ids.len() {
                    // SAFETY: `slot` is in bounds of both page arrays.
                    unsafe {
                        _mm_prefetch::<_MM_HINT_T0>(pool.ids.as_ptr().add(slot).cast());
                        _mm_prefetch::<_MM_HINT_T0>(pool.kinds.as_ptr().add(slot).cast());
                    }
                }
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        let _ = i;
    }

    /// Ensures the persistent pool exists with `threads - 1` parked
    /// threads (the engine thread participates, so total parallelism is
    /// `self.threads`).
    ///
    /// Sized from the configured thread count alone — never from a
    /// per-tick fan-out decision. The physics gate (servers per worker)
    /// and the departure gate (bucketed jobs per worker) routinely
    /// disagree within a tick; sizing the pool to whichever gate just
    /// fired used to tear it down and respawn OS threads every tick,
    /// which is exactly the 10k-server regression where 8 requested
    /// threads ran slower than 2. The gates now only choose between the
    /// inline path and engaging the (stably sized) pool.
    fn ensure_pool(&mut self) {
        let needed = self.threads.min(machine_parallelism()) - 1;
        if self.pool.as_ref().map(TickPool::workers) != Some(needed) {
            self.pool = Some(TickPool::new(needed));
        }
    }

    /// Applies one tick's departures, pre-partitioned by server shard,
    /// in parallel on the persistent pool: each shard task mutates only
    /// its own slab rows, power lanes, and free-core window, and the
    /// integer per-shard outcomes are folded in shard order.
    ///
    /// Bit-identical to calling [`ServerFarm::end_job`] over the
    /// original bucket: the partition is stable, so every server sees
    /// its departures in exactly the bucket order, and per-server power
    /// subtraction order (the only floating-point state involved) is
    /// unchanged. Cross-shard effects are integer counts, which fold
    /// order-independently.
    ///
    /// Returns the number of jobs ended. `occupancy` is decremented per
    /// workload kind; the index's free-core column and used total are
    /// updated in place.
    pub(crate) fn end_jobs_sharded(
        &mut self,
        shard_buckets: &[Vec<(JobId, u32)>],
        index: &mut ClusterIndex,
        occupancy: &mut [usize; 5],
        timing: Option<&mut SweepTiming>,
    ) -> u64 {
        let n = self.len();
        let num_shards = n.div_ceil(SHARD);
        debug_assert_eq!(shard_buckets.len(), num_shards);
        let total_jobs: usize = shard_buckets.iter().map(Vec::len).sum();
        let workers = self
            .threads
            .min(machine_parallelism())
            .min(num_shards)
            .min((total_jobs / DEPART_JOBS_PER_WORKER).max(1))
            .max(1);
        if workers > 1 {
            self.ensure_pool();
        }
        let mut outs = vec![DepartOut::default(); num_shards];
        let mut tasks: Vec<DepartView<'_>> = Vec::with_capacity(num_shards);
        let id_base = self.id_base;
        {
            let mut pools = self.pools.as_mut_slice();
            let mut heads = self.job_heads.as_mut_slice();
            let mut tails = self.job_tails.as_mut_slice();
            let mut counts = self.job_counts.as_mut_slice();
            let mut power = self.active_power_w.as_mut_slice();
            let mut free = index.free_cores_mut();
            let mut outs_rest = outs.as_mut_slice();
            let mut base = 0;
            for bucket in shard_buckets {
                let len = SHARD.min(n - base);
                let (out, rest) = std::mem::take(&mut outs_rest).split_at_mut(1);
                outs_rest = rest;
                let pool = &mut split_front_mut(&mut pools, 1)[0];
                tasks.push(DepartView {
                    base,
                    id_base,
                    entries: bucket,
                    pool,
                    job_heads: split_front_mut(&mut heads, len),
                    job_tails: split_front_mut(&mut tails, len),
                    job_counts: split_front_mut(&mut counts, len),
                    active_power_w: split_front_mut(&mut power, len),
                    free_cores: split_front_mut(&mut free, len),
                    out: &mut out[0],
                });
                base += len;
            }
        }

        let started = timing.as_ref().map(|_| std::time::Instant::now());
        let mut pool_busy: Vec<u64> = Vec::new();
        if workers == 1 {
            for task in tasks {
                run_depart_shard(task);
            }
        } else {
            let pool = self.pool.as_ref().expect("pool sized above");
            let slots: Vec<UnsafeCell<Option<DepartView<'_>>>> = tasks
                .into_iter()
                .map(|t| UnsafeCell::new(Some(t)))
                .collect();
            let slots = TaskSlots(&slots);
            let run = move |i: usize| {
                // SAFETY: the pool's claim counter hands out each index
                // exactly once, so this take never aliases.
                let task = unsafe { slots.take(i) }.expect("shard claimed once");
                run_depart_shard(task);
            };
            if started.is_some() {
                pool_busy = vec![0u64; pool.workers() + 1];
                pool.run_timed(num_shards, &run, &mut pool_busy);
            } else {
                pool.run(num_shards, &run);
            }
        }
        if let (Some(timing), Some(t0)) = (timing, started) {
            let span_ns = t0.elapsed().as_nanos() as u64;
            timing.shards_ns += span_ns;
            if !pool_busy.is_empty() {
                timing.add_pool_busy(span_ns, &pool_busy);
            }
        }

        // Shard-ordered integer fold of the per-shard outcomes.
        let mut ended = 0u64;
        for out in &outs {
            ended += u64::from(out.ended);
            for (slot, &count) in occupancy.iter_mut().zip(&out.kinds) {
                *slot -= count as usize;
            }
        }
        index.record_bulk_ends(ended);
        ended
    }

    /// Ends a job on server `i`, freeing its core. Returns the job's
    /// workload.
    ///
    /// # Panics
    ///
    /// Panics if the job is not running on server `i`.
    #[inline]
    pub fn end_job(&mut self, i: usize, id: JobId) -> WorkloadKind {
        let kind = remove_job(
            &mut self.pools[i / SHARD],
            self.id_base,
            &mut self.job_heads[i],
            &mut self.job_tails[i],
            &mut self.job_counts[i],
            i,
            id,
        );
        self.active_power_w[i] -= kind.core_power().get();
        // Guard against f64 drift accumulating into a negative draw.
        if self.job_counts[i] == 0 {
            self.active_power_w[i] = 0.0;
        }
        kind
    }

    /// Advances every server's physics by `dt` (thermal response, wax
    /// exchange, estimator update) and returns the order-stable tick
    /// totals. Standalone form for tests and benches; the engine uses
    /// the recording variant that also refreshes the [`ClusterIndex`]
    /// and heatmap rows.
    pub fn tick_physics(&mut self, dt: Seconds) -> FarmTickTotals {
        let n = self.len();
        // Reuse the hoisted sink buffers (taken around the sweep borrow,
        // restored after) so repeated standalone ticks allocate nothing.
        let mut air = std::mem::take(&mut self.scratch_air);
        let mut melt = std::mem::take(&mut self.scratch_melt);
        air.clear();
        air.resize(n, 0.0);
        melt.clear();
        melt.resize(n, 0.0);
        let totals = self.sweep(dt, 0, &mut air, &mut melt, None, None, None);
        self.scratch_air = air;
        self.scratch_melt = melt;
        totals
    }

    /// The engine's physics tick: advances all servers, refreshes the
    /// index's thermal columns in place, and fills the optional heatmap
    /// rows (physical air temperature and melt fraction per server).
    /// When `timing` is supplied the sweep attributes its wall time to
    /// the shard-run and fold sections; the `None` path takes no
    /// timestamps.
    pub(crate) fn tick_physics_recorded(
        &mut self,
        dt: Seconds,
        hot_limit: usize,
        index: &mut ClusterIndex,
        temp_row: Option<&mut [f64]>,
        melt_row: Option<&mut [f64]>,
        timing: Option<&mut SweepTiming>,
    ) -> FarmTickTotals {
        let (index_air, index_melt) = index.physics_slices_mut();
        self.sweep(
            dt, hot_limit, index_air, index_melt, temp_row, melt_row, timing,
        )
    }

    /// The sharded sweep behind both tick entry points.
    #[allow(clippy::too_many_arguments)]
    fn sweep(
        &mut self,
        dt: Seconds,
        hot_limit: usize,
        index_air: &mut [f64],
        index_melt: &mut [f64],
        temp_row: Option<&mut [f64]>,
        melt_row: Option<&mut [f64]>,
        timing: Option<&mut SweepTiming>,
    ) -> FarmTickTotals {
        let n = self.len();
        if n == 0 {
            return FarmTickTotals::default();
        }
        debug_assert!(dt.get() > 0.0, "dt must be positive");
        let num_shards = n.div_ceil(SHARD);
        let workers = self
            .threads
            .min(machine_parallelism())
            .min(num_shards)
            .min((n / SERVERS_PER_WORKER).max(1))
            .max(1);
        // Spin up the persistent pool before any state borrows are taken.
        if workers > 1 {
            self.ensure_pool();
        }
        let wax = self.wax.as_ref().map(|w| {
            let (substeps, sub_dt_s) = w.kernel.substeps(dt.get());
            WaxTick {
                kernel: w.kernel,
                estimator: &w.estimator,
                substeps,
                sub_dt_s,
                oracle: self.oracle_wax_state,
            }
        });
        let params = TickParams {
            idle_w: self.power_model.idle().get(),
            capacity_rate: self.air.capacity_rate().get(),
            decay: vmt_thermal::kernel::decay_factor(dt.get(), self.time_constant.get()),
            dt_s: dt.get(),
            hot_limit,
            wax,
        };

        // Slice the state and sink arrays into the fixed shard grid.
        let mut outs = vec![FarmTickTotals::default(); num_shards];
        let mut tasks: Vec<ShardView<'_>> = Vec::with_capacity(num_shards);
        {
            let mut inlet = self.inlet_c.as_slice();
            let mut active = self.active_power_w.as_slice();
            let mut at_wax = self.at_wax_c.as_mut_slice();
            let mut enthalpy = self.enthalpy_j.as_mut_slice();
            let mut est_temp = self.est_temp_c.as_mut_slice();
            let mut est_frac = self.est_fraction.as_mut_slice();
            let mut index_air = index_air;
            let mut index_melt = index_melt;
            let mut temp_row = temp_row;
            let mut melt_row = melt_row;
            let mut outs_rest = outs.as_mut_slice();
            let mut base = 0;
            while base < n {
                let len = SHARD.min(n - base);
                let (out, rest) = std::mem::take(&mut outs_rest).split_at_mut(1);
                outs_rest = rest;
                tasks.push(ShardView {
                    base,
                    inlet: split_front(&mut inlet, len),
                    active: split_front(&mut active, len),
                    at_wax: split_front_mut(&mut at_wax, len),
                    enthalpy: split_front_mut(&mut enthalpy, len),
                    est_temp: split_front_mut(&mut est_temp, len),
                    est_frac: split_front_mut(&mut est_frac, len),
                    index_air: split_front_mut(&mut index_air, len),
                    index_melt: split_front_mut(&mut index_melt, len),
                    temp_row: split_front_opt(&mut temp_row, len),
                    melt_row: split_front_opt(&mut melt_row, len),
                    out: &mut out[0],
                });
                base += len;
            }
        }

        // Run the shards: inline at one worker, else on the persistent
        // pool where workers and the engine thread claim shard indices
        // from an atomic counter. Which thread runs a shard does not
        // affect its output, and the fold below is always in shard
        // order.
        let shards_started = timing.as_ref().map(|_| std::time::Instant::now());
        let mut pool_busy: Vec<u64> = Vec::new();
        if workers == 1 {
            for task in tasks {
                run_shard(task, &params);
            }
        } else {
            let pool = self.pool.as_ref().expect("pool sized above");
            let slots: Vec<UnsafeCell<Option<ShardView<'_>>>> = tasks
                .into_iter()
                .map(|t| UnsafeCell::new(Some(t)))
                .collect();
            let slots = TaskSlots(&slots);
            let params = &params;
            let run = move |i: usize| {
                // SAFETY: the pool's claim counter hands out each index
                // exactly once, so this take never aliases.
                let task = unsafe { slots.take(i) }.expect("shard claimed once");
                run_shard(task, params);
            };
            if shards_started.is_some() {
                pool_busy = vec![0u64; pool.workers() + 1];
                pool.run_timed(num_shards, &run, &mut pool_busy);
            } else {
                pool.run(num_shards, &run);
            }
        }
        let fold_started = shards_started.map(|t0| {
            let now = std::time::Instant::now();
            (now, now.duration_since(t0))
        });

        // Order-stable fold of the shard partials.
        let mut totals = FarmTickTotals::default();
        for out in &outs {
            totals.fold(out);
        }
        if let (Some(timing), Some((fold_t0, shards_elapsed))) = (timing, fold_started) {
            let span_ns = shards_elapsed.as_nanos() as u64;
            timing.shards_ns += span_ns;
            timing.fold_ns += fold_t0.elapsed().as_nanos() as u64;
            if !pool_busy.is_empty() {
                timing.add_pool_busy(span_ns, &pool_busy);
            }
        }
        totals
    }
}

/// `Sync` wrapper handing pool participants claim-once access to the
/// shard tasks: each slot is taken by exactly one thread (the pool's
/// atomic claim counter guarantees a given index is handed out once),
/// so the interior mutability is never aliased.
struct TaskSlots<'slot, T>(&'slot [UnsafeCell<Option<T>>]);

impl<T> Clone for TaskSlots<'_, T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for TaskSlots<'_, T> {}

// SAFETY: see above — disjoint claim-once access by construction; the
// tasks themselves move to the claiming thread, hence `T: Send`.
unsafe impl<T: Send> Sync for TaskSlots<'_, T> {}

impl<T> TaskSlots<'_, T> {
    /// Takes slot `i`'s task.
    ///
    /// # Safety
    ///
    /// The caller must guarantee no two threads present the same index
    /// (the pool's atomic claim counter does).
    unsafe fn take(&self, i: usize) -> Option<T> {
        unsafe { (*self.0[i].get()).take() }
    }
}

/// Detaches the first `len` elements from a shrinking slice cursor.
fn split_front<'a, T>(s: &mut &'a [T], len: usize) -> &'a [T] {
    let (head, tail) = std::mem::take(s).split_at(len);
    *s = tail;
    head
}

/// Mutable variant of [`split_front`].
fn split_front_mut<'a, T>(s: &mut &'a mut [T], len: usize) -> &'a mut [T] {
    let (head, tail) = std::mem::take(s).split_at_mut(len);
    *s = tail;
    head
}

/// [`split_front_mut`] over an optional row (heatmap sampling ticks).
fn split_front_opt<'a>(s: &mut Option<&'a mut [f64]>, len: usize) -> Option<&'a mut [f64]> {
    s.take().map(|row| {
        let (head, tail) = row.split_at_mut(len);
        *s = Some(tail);
        head
    })
}

/// Per-tick constants shared by every shard.
struct TickParams<'a> {
    idle_w: f64,
    capacity_rate: f64,
    decay: f64,
    dt_s: f64,
    hot_limit: usize,
    wax: Option<WaxTick<'a>>,
}

/// Per-tick wax constants (sub-step schedule is shared since `dt` is).
struct WaxTick<'a> {
    kernel: WaxKernel,
    estimator: &'a WaxStateEstimator,
    substeps: usize,
    sub_dt_s: f64,
    oracle: bool,
}

/// One shard's mutable window over the farm's state and sink arrays.
struct ShardView<'a> {
    /// Global index of the first server in the shard.
    base: usize,
    inlet: &'a [f64],
    active: &'a [f64],
    at_wax: &'a mut [f64],
    enthalpy: &'a mut [f64],
    est_temp: &'a mut [f64],
    est_frac: &'a mut [f64],
    index_air: &'a mut [f64],
    index_melt: &'a mut [f64],
    temp_row: Option<&'a mut [f64]>,
    melt_row: Option<&'a mut [f64]>,
    out: &'a mut FarmTickTotals,
}

/// Per-shard integer outcome of a sharded departure drain, folded by
/// [`ServerFarm::end_jobs_sharded`] in shard order.
#[derive(Debug, Clone, Copy, Default)]
struct DepartOut {
    /// Jobs ended in this shard.
    ended: u32,
    /// Ended jobs per workload, indexed by [`WorkloadKind::index`].
    kinds: [u32; 5],
}

/// One shard's mutable window over the pooled job table (the shard's
/// pool owned outright, plus chain-anchor/count windows), power lane,
/// and free-core column, plus its slice of the tick's departure bucket.
struct DepartView<'a> {
    /// Global index of the first server in the shard.
    base: usize,
    /// Farm-wide delta base for stored job ids.
    id_base: u64,
    /// This shard's departures, in original bucket order.
    entries: &'a [(JobId, u32)],
    pool: &'a mut JobPool,
    job_heads: &'a mut [u32],
    job_tails: &'a mut [u32],
    job_counts: &'a mut [u32],
    active_power_w: &'a mut [f64],
    free_cores: &'a mut [u32],
    out: &'a mut DepartOut,
}

/// Applies one shard's departures — the same per-entry sequence
/// [`ServerFarm::end_job`] runs, on shard-local windows.
fn run_depart_shard(task: DepartView<'_>) {
    let DepartView {
        base,
        id_base,
        entries,
        pool,
        job_heads,
        job_tails,
        job_counts,
        active_power_w,
        free_cores,
        out,
    } = task;
    for &(id, server) in entries {
        let local = server as usize - base;
        let kind = remove_job(
            pool,
            id_base,
            &mut job_heads[local],
            &mut job_tails[local],
            &mut job_counts[local],
            server as usize,
            id,
        );
        active_power_w[local] -= kind.core_power().get();
        // Same drift guard as `end_job`.
        if job_counts[local] == 0 {
            active_power_w[local] = 0.0;
        }
        free_cores[local] += 1;
        out.ended += 1;
        out.kinds[kind.index()] += 1;
    }
}

/// Advances one shard: the element-serial physics sequence every thread
/// count runs identically, split into per-quantity passes over
/// shard-local stack lanes (loop fission).
///
/// Fission is bit-identical to the fused per-server loop because every
/// pass still walks servers in order and each accumulator field of
/// [`FarmTickTotals`] is independent — splitting the loop changes which
/// *other* fields are updated between two additions to a field, never
/// the sequence of additions the field itself sees. What fission buys is
/// that the branch-free passes (thermal lag, untapered single-substep
/// wax exchange, melt clamp, the running sums) become straight-line
/// loops over `f64` lanes that the compiler auto-vectorizes, while the
/// genuinely branchy estimator spec stays a scalar per-object loop.
fn run_shard(task: ShardView<'_>, p: &TickParams<'_>) {
    let ShardView {
        base,
        inlet,
        active,
        at_wax,
        enthalpy,
        est_temp,
        est_frac,
        index_air,
        index_melt,
        temp_row,
        melt_row,
        out,
    } = task;
    let len = at_wax.len();
    debug_assert!(len <= SHARD);
    // Shard-local lanes: ≤ SHARD elements each, stack-resident.
    let mut air_buf = [0.0f64; SHARD];
    let mut heat_buf = [0.0f64; SHARD];
    let mut melt_buf = [0.0f64; SHARD];
    let air = &mut air_buf[..len];
    let heat = &mut heat_buf[..len];
    let melt = &mut melt_buf[..len];

    // Thermal-lag pass (branch-free: exponential decay toward steady
    // state).
    for j in 0..len {
        air[j] = vmt_thermal::kernel::step(
            at_wax[j],
            inlet[j],
            p.idle_w + active[j],
            p.capacity_rate,
            p.decay,
        );
    }
    at_wax.copy_from_slice(air);

    if let Some(w) = &p.wax {
        // Wax-exchange pass. The paper's deployment ticks with one
        // sub-step and no interface taper, which admits the branch-light
        // selected-temperature kernel; anything else falls back to the
        // per-object sub-stepped spec. Both compute the identical
        // per-server operation sequence.
        if w.substeps == 1 && w.kernel.is_untapered() {
            for j in 0..len {
                let (h, q) = w
                    .kernel
                    .exchange_step_untapered(enthalpy[j], air[j], w.sub_dt_s);
                enthalpy[j] = h;
                heat[j] = q;
            }
        } else {
            for j in 0..len {
                let (h, q) = w
                    .kernel
                    .exchange(enthalpy[j], air[j], w.substeps, w.sub_dt_s);
                enthalpy[j] = h;
                heat[j] = q;
            }
        }
        // Estimator pass: stays per-object — the plateau/sensible
        // anchoring logic is genuinely branchy and is the executable
        // spec the differential tests pin.
        for j in 0..len {
            let (temp, fraction) = w
                .estimator
                .step_state(est_temp[j], est_frac[j], air[j], p.dt_s);
            est_temp[j] = temp;
            est_frac[j] = fraction;
        }
        // Melt derivation (a clamp — vectorizes).
        for j in 0..len {
            melt[j] = w.kernel.melt_fraction(enthalpy[j]);
        }
        // Accumulation passes: each field sees its additions in server
        // order, exactly as the fused loop delivered them.
        for &q in heat.iter() {
            out.into_wax_w += q / p.dt_s;
        }
        let latent = w.kernel.latent_capacity_j();
        for &m in melt.iter() {
            out.stored_energy_j += latent * m;
        }
        index_melt.copy_from_slice(if w.oracle { &*melt } else { &*est_frac });
    } else {
        // Waxless: the fused loop accumulated per-server zeros into
        // into_wax/stored, which leaves +0.0 — identical to not adding.
        index_melt.fill(0.0);
    }

    for &a in active.iter() {
        out.electrical_w += p.idle_w + a;
    }
    for &t in air.iter() {
        out.temp_sum_c += t;
    }
    // Leading-servers hot sum: same elements the fused loop's
    // `base + j < hot_limit` test admitted.
    let hot_count = p.hot_limit.saturating_sub(base).min(len);
    for &t in &air[..hot_count] {
        out.hot_sum_c += t;
    }

    index_air.copy_from_slice(air);
    if let Some(row) = temp_row {
        row.copy_from_slice(air);
    }
    if let Some(row) = melt_row {
        row.copy_from_slice(melt);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmt_units::Hours;

    fn job(id: u64, kind: WorkloadKind) -> Job {
        Job::new(JobId(id), kind, Seconds::new(300.0))
    }

    fn loaded_farm(n: usize) -> ServerFarm {
        let config = ClusterConfig::paper_default(n);
        let mut farm = ServerFarm::from_config(&config);
        for i in 0..n {
            for core in 0..(i % 8) as u64 {
                farm.start_job(i, &job(i as u64 * 100 + core, WorkloadKind::VideoEncoding));
            }
        }
        farm
    }

    #[test]
    fn matches_per_server_tick_bit_for_bit() {
        let config = ClusterConfig::paper_default(7);
        let mut farm = ServerFarm::from_config(&config);
        let mut servers: Vec<Server> = (0..7)
            .map(|i| Server::from_config(ServerId(i), &config))
            .collect();
        for (i, server) in servers.iter_mut().enumerate() {
            for core in 0..i as u64 {
                let j = job(i as u64 * 10 + core, WorkloadKind::WebSearch);
                farm.start_job(i, &j);
                server.start_job(&j);
            }
        }
        for _ in 0..240 {
            farm.tick_physics(Seconds::new(60.0));
            for s in servers.iter_mut() {
                s.tick(Seconds::new(60.0));
            }
        }
        for (i, s) in servers.iter().enumerate() {
            assert_eq!(farm.air_at_wax(i), s.air_at_wax(), "air of {i}");
            assert_eq!(farm.melt_fraction(i), s.melt_fraction(), "melt of {i}");
            assert_eq!(
                farm.reported_melt_fraction(i),
                s.reported_melt_fraction(),
                "reported of {i}"
            );
            assert_eq!(
                farm.stored_latent_energy(i),
                s.stored_latent_energy(),
                "stored of {i}"
            );
            assert_eq!(farm.power(i), s.power(), "power of {i}");
        }
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let horizon = Hours::new(4.0);
        let ticks = (horizon.get() * 60.0) as usize;
        let mut reference: Option<(Vec<f64>, FarmTickTotals)> = None;
        for threads in [1usize, 2, 3, 8] {
            let mut farm = loaded_farm(150);
            farm.set_threads(threads);
            let mut last = FarmTickTotals::default();
            for _ in 0..ticks {
                last = farm.tick_physics(Seconds::new(60.0));
            }
            let state: Vec<f64> = (0..farm.len()).map(|i| farm.air_at_wax(i).get()).collect();
            match &reference {
                None => reference = Some((state, last)),
                Some((ref_state, ref_totals)) => {
                    assert_eq!(&state, ref_state, "state at {threads} threads");
                    assert_eq!(&last, ref_totals, "totals at {threads} threads");
                }
            }
        }
    }

    #[test]
    fn round_trips_through_servers() {
        let mut farm = loaded_farm(5);
        for _ in 0..60 {
            farm.tick_physics(Seconds::new(60.0));
        }
        let servers = farm.to_servers();
        let back = ServerFarm::from_servers(&servers);
        for i in 0..farm.len() {
            assert_eq!(farm.air_at_wax(i), back.air_at_wax(i));
            assert_eq!(farm.melt_fraction(i), back.melt_fraction(i));
            assert_eq!(
                farm.reported_melt_fraction(i),
                back.reported_melt_fraction(i)
            );
            assert_eq!(farm.power(i), back.power(i));
            assert_eq!(farm.used_cores(i), back.used_cores(i));
            assert_eq!(farm.kind_counts(i), back.kind_counts(i));
        }
        // And the next tick evolves identically from both copies.
        let mut round = back;
        let a = farm.tick_physics(Seconds::new(60.0));
        let b = round.tick_physics(Seconds::new(60.0));
        assert_eq!(a, b);
    }

    #[test]
    fn pooled_table_survives_a_rebase() {
        // The engine's ids are monotonic: by the time one outruns the
        // 32-bit delta window, the oldest live id is nearby. Model
        // that: live ids near u32::MAX (deltas from base 0 barely
        // fit), then one past the window, forcing a rebase to the
        // oldest live id; every pre-rebase id must keep resolving.
        let config = ClusterConfig::paper_default(2);
        let mut farm = ServerFarm::from_config(&config);
        let near = u32::MAX as u64 - 5;
        farm.start_job(0, &job(near, WorkloadKind::VideoEncoding));
        farm.start_job(1, &job(near + 1, WorkloadKind::WebSearch));
        let big = near + 1000;
        farm.start_job(0, &job(big, WorkloadKind::VirusScan));
        assert_eq!(farm.used_cores(0), 2);
        assert_eq!(farm.end_job(0, JobId(near)), WorkloadKind::VideoEncoding);
        assert_eq!(farm.end_job(1, JobId(near + 1)), WorkloadKind::WebSearch);
        assert_eq!(
            farm.job_row(0).collect::<Vec<_>>(),
            vec![(JobId(big), WorkloadKind::VirusScan)]
        );
        assert_eq!(farm.end_job(0, JobId(big)), WorkloadKind::VirusScan);
        // An id below the current base rebases downward again.
        farm.start_job(1, &job(7, WorkloadKind::WebSearch));
        assert_eq!(
            farm.job_row(1).next(),
            Some((JobId(7), WorkloadKind::WebSearch))
        );
        assert_eq!(farm.end_job(1, JobId(7)), WorkloadKind::WebSearch);
        assert!((0..2).all(|i| farm.used_cores(i) == 0));
    }

    #[test]
    fn pooled_table_recycles_pages_under_churn() {
        let config = ClusterConfig::paper_default(4);
        let mut farm = ServerFarm::from_config(&config);
        let fill = |farm: &mut ServerFarm, round: u64| {
            for i in 0..4 {
                for core in 0..32u64 {
                    let id = round * 1000 + i as u64 * 100 + core;
                    farm.start_job(i, &job(id, WorkloadKind::WebSearch));
                }
            }
        };
        let drain = |farm: &mut ServerFarm, round: u64| {
            for i in 0..4 {
                for core in 0..32u64 {
                    farm.end_job(i, JobId(round * 1000 + i as u64 * 100 + core));
                }
            }
        };
        fill(&mut farm, 0);
        drain(&mut farm, 0);
        let settled = farm.job_table_bytes();
        for round in 1..40 {
            fill(&mut farm, round);
            drain(&mut farm, round);
        }
        // Freed pages are reused, so churn never grows the table.
        assert_eq!(farm.job_table_bytes(), settled);
        assert!((0..4).all(|i| farm.used_cores(i) == 0));
    }

    #[test]
    fn state_rows_are_dense_and_restore_identically() {
        let mut farm = loaded_farm(12);
        // Punch a hole mid-row so the swap-remove order is non-trivial.
        farm.end_job(5, JobId(502));
        let state = farm.state();
        let stride = farm.cores() as usize;
        for i in 0..farm.len() {
            let row = &state.job_ids[i * stride..(i + 1) * stride];
            let count = state.job_counts[i] as usize;
            let live: Vec<u64> = farm.job_row(i).map(|(id, _)| id.0).collect();
            assert_eq!(&row[..count], &live[..], "row {i}");
            assert!(row[count..].iter().all(|&id| id == 0), "row {i} tail");
        }
        let mut restored = ServerFarm::from_config(&ClusterConfig::paper_default(12));
        restored.apply_state(&state).unwrap();
        for i in 0..farm.len() {
            assert_eq!(restored.kind_counts(i), farm.kind_counts(i));
            assert_eq!(restored.used_cores(i), farm.used_cores(i));
            assert_eq!(
                restored.job_row(i).collect::<Vec<_>>(),
                farm.job_row(i).collect::<Vec<_>>()
            );
        }
        // The restored table keeps evolving identically, including the
        // swap-remove sequence a later departure triggers.
        assert_eq!(restored.end_job(5, JobId(501)), farm.end_job(5, JobId(501)));
        assert_eq!(
            restored.job_row(5).collect::<Vec<_>>(),
            farm.job_row(5).collect::<Vec<_>>()
        );
        assert_eq!(
            restored.tick_physics(Seconds::new(60.0)),
            farm.tick_physics(Seconds::new(60.0))
        );
    }

    #[test]
    fn hot_limit_sums_leading_servers() {
        let mut farm = loaded_farm(10);
        let mut index = ClusterIndex::new(&farm);
        let totals =
            farm.tick_physics_recorded(Seconds::new(60.0), 3, &mut index, None, None, None);
        let manual: f64 = (0..3).map(|i| farm.air_at_wax(i).get()).sum();
        assert!((totals.hot_sum_c - manual).abs() < 1e-9);
        for i in 0..10 {
            assert_eq!(index.air_c()[i], farm.air_at_wax(i).get());
            assert_eq!(
                index.reported_melt()[i],
                farm.reported_melt_fraction(i).get()
            );
        }
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        /// Splitmix64: expands one drawn seed into a per-server fill
        /// count (the vendored proptest has no `collection::vec`
        /// strategy, so composite inputs are derived from scalars).
        fn fill_for(seed: u64, i: usize) -> u64 {
            let mut z = seed.wrapping_add((i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            (z ^ (z >> 31)) % 33
        }

        /// Builds a farm with an arbitrary mixed load, aged by a few
        /// ticks so thermal, wax, and estimator state are all non-trivial.
        fn aged_farm(n: usize, fill_seed: u64, kind_offset: usize, age_ticks: usize) -> ServerFarm {
            let config = ClusterConfig::paper_default(n);
            let mut farm = ServerFarm::from_config(&config);
            for i in 0..n {
                for core in 0..fill_for(fill_seed, i) {
                    let kind = WorkloadKind::ALL[(i + core as usize + kind_offset) % 5];
                    farm.start_job(
                        i,
                        &Job::new(JobId(i as u64 * 100 + core), kind, Seconds::new(300.0)),
                    );
                }
            }
            for _ in 0..age_ticks {
                farm.tick_physics(Seconds::new(60.0));
            }
            farm
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(16))]

            /// `ServerFarm` → `Vec<Server>` → `ServerFarm` preserves every
            /// observable a scheduler or probe can read, and the round
            /// trip continues to evolve bit-identically.
            #[test]
            fn round_trip_preserves_every_observable(
                n in 1usize..40,
                fill_seed in 0u64..u64::MAX,
                kind_offset in 0usize..5,
                age_ticks in 0usize..120,
            ) {
                let mut farm = aged_farm(n, fill_seed, kind_offset, age_ticks);
                let mut back = ServerFarm::from_servers(&farm.to_servers());
                prop_assert_eq!(back.len(), farm.len());
                prop_assert_eq!(back.cores(), farm.cores());
                prop_assert_eq!(back.air(), farm.air());
                prop_assert_eq!(back.melt_temperature(), farm.melt_temperature());
                for i in 0..n {
                    prop_assert_eq!(back.inlet(i), farm.inlet(i));
                    prop_assert_eq!(back.air_at_wax(i), farm.air_at_wax(i));
                    prop_assert_eq!(back.power(i), farm.power(i));
                    prop_assert_eq!(back.used_cores(i), farm.used_cores(i));
                    prop_assert_eq!(back.free_cores(i), farm.free_cores(i));
                    prop_assert_eq!(back.melt_fraction(i), farm.melt_fraction(i));
                    prop_assert_eq!(back.reported_melt_fraction(i), farm.reported_melt_fraction(i));
                    prop_assert_eq!(back.stored_latent_energy(i), farm.stored_latent_energy(i));
                    prop_assert_eq!(back.kind_counts(i), farm.kind_counts(i));
                    prop_assert_eq!(back.class_counts(i), farm.class_counts(i));
                }
                for _ in 0..4 {
                    prop_assert_eq!(
                        back.tick_physics(Seconds::new(60.0)),
                        farm.tick_physics(Seconds::new(60.0))
                    );
                }
            }

            /// The fused, fissioned, shard-blocked sweep is bit-identical
            /// to the per-object `Server::tick` executable spec exactly at
            /// the farm sizes that stress the shard grid's edges — 1,
            /// SHARD−1, SHARD, SHARD+1, and a non-multiple-of-SHARD tail —
            /// across worker counts 1, 2, and 8. The random-size fold
            /// property below only rarely samples these boundaries; this
            /// pins them.
            #[test]
            fn fused_sweep_matches_per_object_spec_at_shard_edges(
                size_sel in 0usize..5,
                threads_sel in 0usize..3,
                fill_seed in 0u64..u64::MAX,
                kind_offset in 0usize..5,
                ticks in 1usize..40,
            ) {
                let n = [1, SHARD - 1, SHARD, SHARD + 1, 2 * SHARD + 17][size_sel];
                let threads = [1usize, 2, 8][threads_sel];
                let mut farm = aged_farm(n, fill_seed, kind_offset, 0);
                farm.set_threads(threads);
                let mut servers: Vec<Server> = farm.to_servers();
                for _ in 0..ticks {
                    farm.tick_physics(Seconds::new(60.0));
                    for s in servers.iter_mut() {
                        s.tick(Seconds::new(60.0));
                    }
                }
                for (i, s) in servers.iter().enumerate() {
                    prop_assert_eq!(farm.air_at_wax(i), s.air_at_wax());
                    prop_assert_eq!(farm.melt_fraction(i), s.melt_fraction());
                    prop_assert_eq!(
                        farm.reported_melt_fraction(i),
                        s.reported_melt_fraction()
                    );
                    prop_assert_eq!(
                        farm.stored_latent_energy(i),
                        s.stored_latent_energy()
                    );
                    prop_assert_eq!(farm.power(i), s.power());
                }
            }

            /// The sharded sweep's partial-sum fold is invariant under the
            /// worker partition: any thread count (i.e. any contiguous
            /// grouping of the fixed shard grid onto workers) produces
            /// bit-identical totals AND bit-identical per-server state to
            /// the single-worker serial fold.
            #[test]
            fn fold_is_invariant_under_worker_partition(
                n in 1usize..300,
                threads in 2usize..=8,
                fill_seed in 0u64..u64::MAX,
                kind_offset in 0usize..5,
                ticks in 1usize..30,
            ) {
                let mut serial = aged_farm(n, fill_seed, kind_offset, 0);
                serial.set_threads(1);
                let mut sharded = serial.clone();
                sharded.set_threads(threads);
                for _ in 0..ticks {
                    let a = serial.tick_physics(Seconds::new(60.0));
                    let b = sharded.tick_physics(Seconds::new(60.0));
                    prop_assert_eq!(a, b);
                }
                for i in 0..n {
                    prop_assert_eq!(serial.air_at_wax(i), sharded.air_at_wax(i));
                    prop_assert_eq!(serial.melt_fraction(i), sharded.melt_fraction(i));
                    prop_assert_eq!(
                        serial.reported_melt_fraction(i),
                        sharded.reported_melt_fraction(i)
                    );
                }
            }
        }
    }
}
