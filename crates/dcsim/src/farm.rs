//! Structure-of-arrays cluster state and the deterministic sharded
//! physics tick.
//!
//! [`ServerFarm`] holds every server's physical state as contiguous
//! arrays — inlet and air temperatures, active core power, wax enthalpy,
//! estimator state — instead of a `Vec<Server>` of pointer-rich structs.
//! The per-tick physics pass sweeps those arrays with the plain-value
//! kernels from `vmt_thermal::kernel` and `vmt_pcm::kernel` in tight,
//! cache-friendly loops, and parallelizes over a **fixed shard grid**:
//!
//! * Servers are split into contiguous shards of [`SHARD`] servers. The
//!   shard layout depends only on the server count — never on the thread
//!   count.
//! * Each shard accumulates its partial sums (electrical power, heat
//!   into wax, temperature sums, stored energy) element-serially in
//!   server order.
//! * The main thread folds the per-shard partials **in shard order**.
//!
//! Because IEEE-754 addition is not associative, this canonical
//! reduction — not "sum in whatever order threads finish" — is what
//! makes the results bit-identical at any thread count, including one:
//! every thread count computes exactly the same shard partials and folds
//! them in exactly the same order. Worker threads only change *who*
//! computes a shard, never *what* is computed.

use crate::config::{ClusterConfig, WaxSpec};
use crate::index::ClusterIndex;
use crate::server::{Server, ServerId};
use vmt_pcm::{PcmMaterial, WaxKernel, WaxPack, WaxStateEstimator};
use vmt_power::ServerPowerModel;
use vmt_thermal::{AirStream, ServerThermalModel};
use vmt_units::{Celsius, Fraction, Joules, Kilograms, Seconds, Watts, WattsPerKelvin};
use vmt_workload::{Job, JobId, VmtClass, WorkloadKind};

/// Servers per shard of the parallel physics sweep.
///
/// A fixed layout constant (never derived from the thread count), so the
/// reduction tree — and therefore every floating-point result — is a
/// function of the cluster size alone. 64 servers × a handful of `f64`
/// lanes keeps a shard's working set inside L1 while amortizing the
/// per-shard bookkeeping.
pub const SHARD: usize = 64;

/// Resolves the default tick-level thread count: the `VMT_THREADS`
/// environment variable when set to a positive integer, otherwise
/// [`std::thread::available_parallelism`].
pub fn default_tick_threads() -> usize {
    std::env::var("VMT_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        })
}

/// Wall-clock attribution of one physics sweep, filled only when the
/// engine runs with telemetry enabled — the untimed path takes no
/// timestamps at all.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SweepTiming {
    /// Nanoseconds spent running the shard kernels (inline or pooled,
    /// including worker spawn/join).
    pub shards_ns: u64,
    /// Nanoseconds spent folding the per-shard partials in shard order.
    pub fold_ns: u64,
}

/// Order-stable partial sums of one physics tick (raw accumulator
/// units: W, W, °C·servers, °C·servers, J).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FarmTickTotals {
    /// Total electrical power (sum of per-server draws, W).
    pub electrical_w: f64,
    /// Total heat-flow into wax (W; negative while refreezing).
    pub into_wax_w: f64,
    /// Sum of air-at-wax temperatures over all servers (°C).
    pub temp_sum_c: f64,
    /// Sum of air-at-wax temperatures over servers below the hot-group
    /// limit (°C).
    pub hot_sum_c: f64,
    /// Total stored latent energy (J).
    pub stored_energy_j: f64,
}

impl FarmTickTotals {
    /// Folds another partial into this one (field-wise addition).
    fn fold(&mut self, other: &FarmTickTotals) {
        self.electrical_w += other.electrical_w;
        self.into_wax_w += other.into_wax_w;
        self.temp_sum_c += other.temp_sum_c;
        self.hot_sum_c += other.hot_sum_c;
        self.stored_energy_j += other.stored_energy_j;
    }
}

/// Shared wax-pack design of a farm (every server carries the same pack).
#[derive(Debug, Clone)]
struct FarmWax {
    material: PcmMaterial,
    mass: Kilograms,
    ua: WattsPerKelvin,
    taper: f64,
    kernel: WaxKernel,
    /// Estimator template: holds the shared melt-rate lookup table; the
    /// per-server `(temperature, fraction)` state lives in the farm's
    /// arrays and flows through [`WaxStateEstimator::step_state`].
    estimator: WaxStateEstimator,
}

impl FarmWax {
    fn new(spec: &WaxSpec) -> Self {
        Self::from_parts(
            spec.material.clone(),
            spec.sizing.mass_of(&spec.material),
            spec.exchanger_ua,
            spec.interface_taper,
        )
    }

    fn from_parts(material: PcmMaterial, mass: Kilograms, ua: WattsPerKelvin, taper: f64) -> Self {
        Self {
            kernel: WaxKernel::new(&material, mass, ua, taper),
            estimator: WaxStateEstimator::new(material.clone(), mass, ua).with_taper(taper),
            material,
            mass,
            ua,
            taper,
        }
    }
}

/// All servers' physical state in structure-of-arrays form.
///
/// Mirrors the per-server [`Server`] API index-wise (`air_at_wax(i)`,
/// `free_cores(i)`, `start_job(i, …)`, …) so schedulers and tests read
/// and mutate one server at a time, while the physics tick sweeps whole
/// arrays at once. [`ServerFarm::to_servers`] and
/// [`ServerFarm::from_servers`] convert losslessly to and from the
/// array-of-structs form.
#[derive(Debug, Clone)]
pub struct ServerFarm {
    power_model: ServerPowerModel,
    air: AirStream,
    time_constant: Seconds,
    oracle_wax_state: bool,
    threads: usize,
    wax: Option<FarmWax>,
    /// Per-server inlet temperature (°C).
    inlet_c: Vec<f64>,
    /// Per-server air temperature at the wax (°C).
    at_wax_c: Vec<f64>,
    /// Per-server sum of running jobs' core powers (W).
    active_power_w: Vec<f64>,
    /// Per-server wax enthalpy (J); untouched when the farm is waxless.
    enthalpy_j: Vec<f64>,
    /// Per-server estimator wax-temperature state (°C).
    est_temp_c: Vec<f64>,
    /// Per-server estimator melt-fraction state.
    est_fraction: Vec<f64>,
    /// Per-server running jobs (cold path: only start/end touch these).
    /// A flat vec beats a hash map here: at most `cores` (32) entries,
    /// so a linear id scan stays in one cache line's worth of probes.
    jobs: Vec<Vec<(JobId, WorkloadKind)>>,
}

impl ServerFarm {
    /// Builds a farm of `config.num_servers` servers, each initialized
    /// exactly as [`Server::from_config`] initializes one: thermal state
    /// settled at idle power, wax equilibrated at the resulting
    /// air-at-wax temperature, estimator reset to that temperature and
    /// zero melt.
    pub fn from_config(config: &ClusterConfig) -> Self {
        let n = config.num_servers;
        let wax = config.wax.as_ref().map(FarmWax::new);
        let mut farm = Self {
            power_model: config.power,
            air: config.air,
            time_constant: config.thermal_time_constant,
            oracle_wax_state: config.oracle_wax_state,
            threads: default_tick_threads(),
            wax,
            inlet_c: Vec::with_capacity(n),
            at_wax_c: Vec::with_capacity(n),
            active_power_w: vec![0.0; n],
            enthalpy_j: Vec::with_capacity(n),
            est_temp_c: Vec::with_capacity(n),
            est_fraction: vec![0.0; n],
            jobs: (0..n).map(|_| Vec::new()).collect(),
        };
        for i in 0..n {
            let inlet = config.inlet.inlet_for(i);
            let mut thermal = ServerThermalModel::with_time_constant(
                inlet,
                config.air,
                config.thermal_time_constant,
            );
            thermal.settle(config.power.idle());
            let at_wax = thermal.air_at_wax();
            farm.inlet_c.push(inlet.get());
            farm.at_wax_c.push(at_wax.get());
            match &farm.wax {
                Some(w) => {
                    let pack = WaxPack::new(w.material.clone(), w.mass, at_wax);
                    farm.enthalpy_j.push(pack.enthalpy().get());
                    farm.est_temp_c.push(at_wax.get());
                }
                None => {
                    farm.enthalpy_j.push(0.0);
                    farm.est_temp_c.push(0.0);
                }
            }
        }
        farm
    }

    /// Builds a farm from existing servers, preserving every state field
    /// bit-for-bit. The servers must share one hardware configuration
    /// (power model, air stream, time constant, wax design), which is
    /// how the engine constructs clusters.
    ///
    /// # Panics
    ///
    /// Panics if `servers` is empty.
    pub fn from_servers(servers: &[Server]) -> Self {
        let first = servers.first().expect("farm needs at least one server");
        let wax = first.wax_parts().map(|(pack, exchanger, _)| {
            FarmWax::from_parts(
                pack.material().clone(),
                pack.mass(),
                exchanger.ua(),
                exchanger.taper(),
            )
        });
        let mut farm = Self {
            power_model: first.power_model(),
            air: first.air(),
            time_constant: first.thermal().time_constant(),
            oracle_wax_state: first.oracle_wax_state(),
            threads: default_tick_threads(),
            wax,
            inlet_c: servers.iter().map(|s| s.inlet().get()).collect(),
            at_wax_c: servers.iter().map(|s| s.air_at_wax().get()).collect(),
            active_power_w: servers
                .iter()
                .map(|s| s.active_core_power().get())
                .collect(),
            enthalpy_j: Vec::with_capacity(servers.len()),
            est_temp_c: Vec::with_capacity(servers.len()),
            est_fraction: Vec::with_capacity(servers.len()),
            jobs: servers
                .iter()
                .map(|s| s.jobs_map().iter().map(|(&id, &kind)| (id, kind)).collect())
                .collect(),
        };
        for s in servers {
            match s.wax_parts() {
                Some((pack, _, estimator)) => {
                    farm.enthalpy_j.push(pack.enthalpy().get());
                    farm.est_temp_c.push(estimator.temperature().get());
                    farm.est_fraction.push(estimator.melt_fraction().get());
                }
                None => {
                    farm.enthalpy_j.push(0.0);
                    farm.est_temp_c.push(0.0);
                    farm.est_fraction.push(0.0);
                }
            }
        }
        farm
    }

    /// Materializes the farm back into per-object [`Server`]s with
    /// identical state (rack post-mortems, round-trip tests).
    pub fn to_servers(&self) -> Vec<Server> {
        (0..self.len())
            .map(|i| {
                let mut thermal = ServerThermalModel::with_time_constant(
                    self.inlet(i),
                    self.air,
                    self.time_constant,
                );
                thermal.set_air_at_wax(self.air_at_wax(i));
                let wax = self.wax.as_ref().map(|w| {
                    let mut pack = WaxPack::new(w.material.clone(), w.mass, Celsius::new(0.0));
                    pack.set_enthalpy(Joules::new(self.enthalpy_j[i]));
                    let mut estimator = WaxStateEstimator::new(w.material.clone(), w.mass, w.ua)
                        .with_taper(w.taper);
                    estimator.reset(
                        Celsius::new(self.est_temp_c[i]),
                        Fraction::saturating(self.est_fraction[i]),
                    );
                    (
                        pack,
                        vmt_pcm::HeatExchanger::with_taper(w.ua, w.taper),
                        estimator,
                    )
                });
                Server::from_parts(
                    ServerId(i),
                    self.power_model,
                    thermal,
                    wax,
                    self.jobs[i].iter().copied().collect(),
                    Watts::new(self.active_power_w[i]),
                    self.oracle_wax_state,
                )
            })
            .collect()
    }

    /// Number of servers.
    pub fn len(&self) -> usize {
        self.at_wax_c.len()
    }

    /// True when the farm has no servers.
    pub fn is_empty(&self) -> bool {
        self.at_wax_c.is_empty()
    }

    /// Worker threads used by the physics tick.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Sets the physics-tick worker count (clamped to at least 1).
    /// Results are bit-identical at any setting.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }

    /// Total cores of server `i` (uniform across the farm).
    pub fn cores(&self) -> u32 {
        self.power_model.cores()
    }

    /// Cores of server `i` currently running jobs.
    pub fn used_cores(&self, i: usize) -> u32 {
        self.jobs[i].len() as u32
    }

    /// Cores of server `i` available for placement.
    pub fn free_cores(&self, i: usize) -> u32 {
        self.cores() - self.used_cores(i)
    }

    /// Current electrical power draw of server `i`.
    pub fn power(&self, i: usize) -> Watts {
        self.power_model.idle() + Watts::new(self.active_power_w[i])
    }

    /// Current air temperature at server `i`'s wax containers.
    pub fn air_at_wax(&self, i: usize) -> Celsius {
        Celsius::new(self.at_wax_c[i])
    }

    /// Inlet temperature of server `i`.
    pub fn inlet(&self, i: usize) -> Celsius {
        Celsius::new(self.inlet_c[i])
    }

    /// The cooling air stream (uniform across the farm).
    pub fn air(&self) -> AirStream {
        self.air
    }

    /// Updates server `i`'s inlet temperature (time-varying ambient
    /// models).
    pub fn set_inlet(&mut self, i: usize, inlet: Celsius) {
        self.inlet_c[i] = inlet.get();
    }

    /// Physical (ground-truth) melt fraction of server `i`'s wax; zero
    /// for waxless farms.
    pub fn melt_fraction(&self, i: usize) -> Fraction {
        match &self.wax {
            Some(w) => Fraction::saturating(w.kernel.melt_fraction(self.enthalpy_j[i])),
            None => Fraction::ZERO,
        }
    }

    /// Melt fraction of server `i` as reported by the on-server
    /// estimator — what the cluster scheduler sees. With the cluster's
    /// `oracle_wax_state` ablation flag set, returns the physical state.
    pub fn reported_melt_fraction(&self, i: usize) -> Fraction {
        if self.oracle_wax_state {
            return self.melt_fraction(i);
        }
        match &self.wax {
            Some(_) => Fraction::saturating(self.est_fraction[i]),
            None => Fraction::ZERO,
        }
    }

    /// Physical latent energy currently stored in server `i`'s wax.
    pub fn stored_latent_energy(&self, i: usize) -> Joules {
        match &self.wax {
            Some(w) => Joules::new(
                w.kernel.latent_capacity_j() * w.kernel.melt_fraction(self.enthalpy_j[i]),
            ),
            None => Joules::ZERO,
        }
    }

    /// The wax melting temperature, if wax is deployed.
    pub fn melt_temperature(&self) -> Option<Celsius> {
        self.wax.as_ref().map(|w| w.material.melt_temperature())
    }

    /// True when every server carries a PCM (wax) store.
    pub fn has_wax(&self) -> bool {
        self.wax.is_some()
    }

    /// Latent heat capacity of one server's wax pack; zero without wax.
    pub fn latent_capacity_per_server(&self) -> Joules {
        match &self.wax {
            Some(w) => Joules::new(w.kernel.latent_capacity_j()),
            None => Joules::ZERO,
        }
    }

    /// Number of running jobs of each workload on server `i`, indexed by
    /// [`WorkloadKind::index`].
    pub fn kind_counts(&self, i: usize) -> [u32; 5] {
        let mut counts = [0u32; 5];
        for &(_, kind) in &self.jobs[i] {
            counts[kind.index()] += 1;
        }
        counts
    }

    /// Number of running jobs of each VMT class `(hot, cold)` on server
    /// `i`.
    pub fn class_counts(&self, i: usize) -> (u32, u32) {
        let mut hot = 0;
        let mut cold = 0;
        for &(_, kind) in &self.jobs[i] {
            match kind.vmt_class() {
                VmtClass::Hot => hot += 1,
                VmtClass::Cold => cold += 1,
            }
        }
        (hot, cold)
    }

    /// Starts a job on a free core of server `i`.
    ///
    /// # Panics
    ///
    /// Panics if the server is full or the job id is already running
    /// here — both indicate an engine bug.
    pub fn start_job(&mut self, i: usize, job: &Job) {
        assert!(
            self.free_cores(i) > 0,
            "placement on a full {}",
            ServerId(i)
        );
        debug_assert!(
            self.jobs[i].iter().all(|&(id, _)| id != job.id()),
            "duplicate {} on {}",
            job.id(),
            ServerId(i)
        );
        self.jobs[i].push((job.id(), job.kind()));
        self.active_power_w[i] += job.core_power().get();
    }

    /// Ends a job on server `i`, freeing its core. Returns the job's
    /// workload.
    ///
    /// # Panics
    ///
    /// Panics if the job is not running on server `i`.
    pub fn end_job(&mut self, i: usize, id: JobId) -> WorkloadKind {
        let pos = self.jobs[i]
            .iter()
            .position(|&(running, _)| running == id)
            .unwrap_or_else(|| panic!("{id} not running on {}", ServerId(i)));
        let (_, kind) = self.jobs[i].swap_remove(pos);
        self.active_power_w[i] -= kind.core_power().get();
        // Guard against f64 drift accumulating into a negative draw.
        if self.jobs[i].is_empty() {
            self.active_power_w[i] = 0.0;
        }
        kind
    }

    /// Advances every server's physics by `dt` (thermal response, wax
    /// exchange, estimator update) and returns the order-stable tick
    /// totals. Standalone form for tests and benches; the engine uses
    /// the recording variant that also refreshes the [`ClusterIndex`]
    /// and heatmap rows.
    pub fn tick_physics(&mut self, dt: Seconds) -> FarmTickTotals {
        let n = self.len();
        let mut scratch_air = vec![0.0; n];
        let mut scratch_melt = vec![0.0; n];
        self.sweep(dt, 0, &mut scratch_air, &mut scratch_melt, None, None, None)
    }

    /// The engine's physics tick: advances all servers, refreshes the
    /// index's thermal columns in place, and fills the optional heatmap
    /// rows (physical air temperature and melt fraction per server).
    /// When `timing` is supplied the sweep attributes its wall time to
    /// the shard-run and fold sections; the `None` path takes no
    /// timestamps.
    pub(crate) fn tick_physics_recorded(
        &mut self,
        dt: Seconds,
        hot_limit: usize,
        index: &mut ClusterIndex,
        temp_row: Option<&mut [f64]>,
        melt_row: Option<&mut [f64]>,
        timing: Option<&mut SweepTiming>,
    ) -> FarmTickTotals {
        let (index_air, index_melt) = index.physics_slices_mut();
        self.sweep(
            dt, hot_limit, index_air, index_melt, temp_row, melt_row, timing,
        )
    }

    /// The sharded sweep behind both tick entry points.
    #[allow(clippy::too_many_arguments)]
    fn sweep(
        &mut self,
        dt: Seconds,
        hot_limit: usize,
        index_air: &mut [f64],
        index_melt: &mut [f64],
        temp_row: Option<&mut [f64]>,
        melt_row: Option<&mut [f64]>,
        timing: Option<&mut SweepTiming>,
    ) -> FarmTickTotals {
        let n = self.len();
        if n == 0 {
            return FarmTickTotals::default();
        }
        debug_assert!(dt.get() > 0.0, "dt must be positive");
        let wax = self.wax.as_ref().map(|w| {
            let (substeps, sub_dt_s) = w.kernel.substeps(dt.get());
            WaxTick {
                kernel: w.kernel,
                estimator: &w.estimator,
                substeps,
                sub_dt_s,
                oracle: self.oracle_wax_state,
            }
        });
        let params = TickParams {
            idle_w: self.power_model.idle().get(),
            capacity_rate: self.air.capacity_rate().get(),
            decay: vmt_thermal::kernel::decay_factor(dt.get(), self.time_constant.get()),
            dt_s: dt.get(),
            hot_limit,
            wax,
        };

        // Slice the state and sink arrays into the fixed shard grid.
        let num_shards = n.div_ceil(SHARD);
        let mut outs = vec![FarmTickTotals::default(); num_shards];
        let mut tasks: Vec<ShardView<'_>> = Vec::with_capacity(num_shards);
        {
            let mut inlet = self.inlet_c.as_slice();
            let mut active = self.active_power_w.as_slice();
            let mut at_wax = self.at_wax_c.as_mut_slice();
            let mut enthalpy = self.enthalpy_j.as_mut_slice();
            let mut est_temp = self.est_temp_c.as_mut_slice();
            let mut est_frac = self.est_fraction.as_mut_slice();
            let mut index_air = index_air;
            let mut index_melt = index_melt;
            let mut temp_row = temp_row;
            let mut melt_row = melt_row;
            let mut outs_rest = outs.as_mut_slice();
            let mut base = 0;
            while base < n {
                let len = SHARD.min(n - base);
                let (out, rest) = std::mem::take(&mut outs_rest).split_at_mut(1);
                outs_rest = rest;
                tasks.push(ShardView {
                    base,
                    inlet: split_front(&mut inlet, len),
                    active: split_front(&mut active, len),
                    at_wax: split_front_mut(&mut at_wax, len),
                    enthalpy: split_front_mut(&mut enthalpy, len),
                    est_temp: split_front_mut(&mut est_temp, len),
                    est_frac: split_front_mut(&mut est_frac, len),
                    index_air: split_front_mut(&mut index_air, len),
                    index_melt: split_front_mut(&mut index_melt, len),
                    temp_row: split_front_opt(&mut temp_row, len),
                    melt_row: split_front_opt(&mut melt_row, len),
                    out: &mut out[0],
                });
                base += len;
            }
        }

        // Run the shards: inline at one worker, else on a scoped pool
        // with contiguous shard ranges per worker. Which thread runs a
        // shard does not affect its output, and the fold below is always
        // in shard order.
        let workers = self.threads.min(num_shards).max(1);
        let shards_started = timing.as_ref().map(|_| std::time::Instant::now());
        if workers == 1 {
            for task in tasks {
                run_shard(task, &params);
            }
        } else {
            let per_worker = num_shards.div_ceil(workers);
            std::thread::scope(|scope| {
                let params = &params;
                let mut tasks = tasks;
                while !tasks.is_empty() {
                    let take = per_worker.min(tasks.len());
                    let group: Vec<ShardView<'_>> = tasks.drain(..take).collect();
                    scope.spawn(move || {
                        for task in group {
                            run_shard(task, params);
                        }
                    });
                }
            });
        }
        let fold_started = shards_started.map(|t0| {
            let now = std::time::Instant::now();
            (now, now.duration_since(t0))
        });

        // Order-stable fold of the shard partials.
        let mut totals = FarmTickTotals::default();
        for out in &outs {
            totals.fold(out);
        }
        if let (Some(timing), Some((fold_t0, shards_elapsed))) = (timing, fold_started) {
            timing.shards_ns += shards_elapsed.as_nanos() as u64;
            timing.fold_ns += fold_t0.elapsed().as_nanos() as u64;
        }
        totals
    }
}

/// Detaches the first `len` elements from a shrinking slice cursor.
fn split_front<'a>(s: &mut &'a [f64], len: usize) -> &'a [f64] {
    let (head, tail) = std::mem::take(s).split_at(len);
    *s = tail;
    head
}

/// Mutable variant of [`split_front`].
fn split_front_mut<'a>(s: &mut &'a mut [f64], len: usize) -> &'a mut [f64] {
    let (head, tail) = std::mem::take(s).split_at_mut(len);
    *s = tail;
    head
}

/// [`split_front_mut`] over an optional row (heatmap sampling ticks).
fn split_front_opt<'a>(s: &mut Option<&'a mut [f64]>, len: usize) -> Option<&'a mut [f64]> {
    s.take().map(|row| {
        let (head, tail) = row.split_at_mut(len);
        *s = Some(tail);
        head
    })
}

/// Per-tick constants shared by every shard.
struct TickParams<'a> {
    idle_w: f64,
    capacity_rate: f64,
    decay: f64,
    dt_s: f64,
    hot_limit: usize,
    wax: Option<WaxTick<'a>>,
}

/// Per-tick wax constants (sub-step schedule is shared since `dt` is).
struct WaxTick<'a> {
    kernel: WaxKernel,
    estimator: &'a WaxStateEstimator,
    substeps: usize,
    sub_dt_s: f64,
    oracle: bool,
}

/// One shard's mutable window over the farm's state and sink arrays.
struct ShardView<'a> {
    /// Global index of the first server in the shard.
    base: usize,
    inlet: &'a [f64],
    active: &'a [f64],
    at_wax: &'a mut [f64],
    enthalpy: &'a mut [f64],
    est_temp: &'a mut [f64],
    est_frac: &'a mut [f64],
    index_air: &'a mut [f64],
    index_melt: &'a mut [f64],
    temp_row: Option<&'a mut [f64]>,
    melt_row: Option<&'a mut [f64]>,
    out: &'a mut FarmTickTotals,
}

/// Advances one shard: the element-serial physics loop every thread
/// count runs identically.
fn run_shard(task: ShardView<'_>, p: &TickParams<'_>) {
    let ShardView {
        base,
        inlet,
        active,
        at_wax,
        enthalpy,
        est_temp,
        est_frac,
        index_air,
        index_melt,
        mut temp_row,
        mut melt_row,
        out,
    } = task;
    for j in 0..at_wax.len() {
        let electrical = p.idle_w + active[j];
        let air =
            vmt_thermal::kernel::step(at_wax[j], inlet[j], electrical, p.capacity_rate, p.decay);
        at_wax[j] = air;
        let (into_wax_w, melt, stored_j, reported) = match &p.wax {
            Some(w) => {
                let (h, heat_j) = w.kernel.exchange(enthalpy[j], air, w.substeps, w.sub_dt_s);
                enthalpy[j] = h;
                let (temp, fraction) =
                    w.estimator
                        .step_state(est_temp[j], est_frac[j], air, p.dt_s);
                est_temp[j] = temp;
                est_frac[j] = fraction;
                let melt = w.kernel.melt_fraction(h);
                let reported = if w.oracle { melt } else { fraction };
                (
                    heat_j / p.dt_s,
                    melt,
                    w.kernel.latent_capacity_j() * melt,
                    reported,
                )
            }
            None => (0.0, 0.0, 0.0, 0.0),
        };
        out.electrical_w += electrical;
        out.into_wax_w += into_wax_w;
        out.temp_sum_c += air;
        out.stored_energy_j += stored_j;
        if base + j < p.hot_limit {
            out.hot_sum_c += air;
        }
        index_air[j] = air;
        index_melt[j] = reported;
        if let Some(row) = temp_row.as_deref_mut() {
            row[j] = air;
        }
        if let Some(row) = melt_row.as_deref_mut() {
            row[j] = melt;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmt_units::Hours;

    fn job(id: u64, kind: WorkloadKind) -> Job {
        Job::new(JobId(id), kind, Seconds::new(300.0))
    }

    fn loaded_farm(n: usize) -> ServerFarm {
        let config = ClusterConfig::paper_default(n);
        let mut farm = ServerFarm::from_config(&config);
        for i in 0..n {
            for core in 0..(i % 8) as u64 {
                farm.start_job(i, &job(i as u64 * 100 + core, WorkloadKind::VideoEncoding));
            }
        }
        farm
    }

    #[test]
    fn matches_per_server_tick_bit_for_bit() {
        let config = ClusterConfig::paper_default(7);
        let mut farm = ServerFarm::from_config(&config);
        let mut servers: Vec<Server> = (0..7)
            .map(|i| Server::from_config(ServerId(i), &config))
            .collect();
        for (i, server) in servers.iter_mut().enumerate() {
            for core in 0..i as u64 {
                let j = job(i as u64 * 10 + core, WorkloadKind::WebSearch);
                farm.start_job(i, &j);
                server.start_job(&j);
            }
        }
        for _ in 0..240 {
            farm.tick_physics(Seconds::new(60.0));
            for s in servers.iter_mut() {
                s.tick(Seconds::new(60.0));
            }
        }
        for (i, s) in servers.iter().enumerate() {
            assert_eq!(farm.air_at_wax(i), s.air_at_wax(), "air of {i}");
            assert_eq!(farm.melt_fraction(i), s.melt_fraction(), "melt of {i}");
            assert_eq!(
                farm.reported_melt_fraction(i),
                s.reported_melt_fraction(),
                "reported of {i}"
            );
            assert_eq!(
                farm.stored_latent_energy(i),
                s.stored_latent_energy(),
                "stored of {i}"
            );
            assert_eq!(farm.power(i), s.power(), "power of {i}");
        }
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let horizon = Hours::new(4.0);
        let ticks = (horizon.get() * 60.0) as usize;
        let mut reference: Option<(Vec<f64>, FarmTickTotals)> = None;
        for threads in [1usize, 2, 3, 8] {
            let mut farm = loaded_farm(150);
            farm.set_threads(threads);
            let mut last = FarmTickTotals::default();
            for _ in 0..ticks {
                last = farm.tick_physics(Seconds::new(60.0));
            }
            let state: Vec<f64> = (0..farm.len()).map(|i| farm.air_at_wax(i).get()).collect();
            match &reference {
                None => reference = Some((state, last)),
                Some((ref_state, ref_totals)) => {
                    assert_eq!(&state, ref_state, "state at {threads} threads");
                    assert_eq!(&last, ref_totals, "totals at {threads} threads");
                }
            }
        }
    }

    #[test]
    fn round_trips_through_servers() {
        let mut farm = loaded_farm(5);
        for _ in 0..60 {
            farm.tick_physics(Seconds::new(60.0));
        }
        let servers = farm.to_servers();
        let back = ServerFarm::from_servers(&servers);
        for i in 0..farm.len() {
            assert_eq!(farm.air_at_wax(i), back.air_at_wax(i));
            assert_eq!(farm.melt_fraction(i), back.melt_fraction(i));
            assert_eq!(
                farm.reported_melt_fraction(i),
                back.reported_melt_fraction(i)
            );
            assert_eq!(farm.power(i), back.power(i));
            assert_eq!(farm.used_cores(i), back.used_cores(i));
            assert_eq!(farm.kind_counts(i), back.kind_counts(i));
        }
        // And the next tick evolves identically from both copies.
        let mut round = back;
        let a = farm.tick_physics(Seconds::new(60.0));
        let b = round.tick_physics(Seconds::new(60.0));
        assert_eq!(a, b);
    }

    #[test]
    fn hot_limit_sums_leading_servers() {
        let mut farm = loaded_farm(10);
        let mut index = ClusterIndex::new(&farm);
        let totals =
            farm.tick_physics_recorded(Seconds::new(60.0), 3, &mut index, None, None, None);
        let manual: f64 = (0..3).map(|i| farm.air_at_wax(i).get()).sum();
        assert!((totals.hot_sum_c - manual).abs() < 1e-9);
        for i in 0..10 {
            assert_eq!(index.air_c()[i], farm.air_at_wax(i).get());
            assert_eq!(
                index.reported_melt()[i],
                farm.reported_melt_fraction(i).get()
            );
        }
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        /// Splitmix64: expands one drawn seed into a per-server fill
        /// count (the vendored proptest has no `collection::vec`
        /// strategy, so composite inputs are derived from scalars).
        fn fill_for(seed: u64, i: usize) -> u64 {
            let mut z = seed.wrapping_add((i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            (z ^ (z >> 31)) % 33
        }

        /// Builds a farm with an arbitrary mixed load, aged by a few
        /// ticks so thermal, wax, and estimator state are all non-trivial.
        fn aged_farm(n: usize, fill_seed: u64, kind_offset: usize, age_ticks: usize) -> ServerFarm {
            let config = ClusterConfig::paper_default(n);
            let mut farm = ServerFarm::from_config(&config);
            for i in 0..n {
                for core in 0..fill_for(fill_seed, i) {
                    let kind = WorkloadKind::ALL[(i + core as usize + kind_offset) % 5];
                    farm.start_job(
                        i,
                        &Job::new(JobId(i as u64 * 100 + core), kind, Seconds::new(300.0)),
                    );
                }
            }
            for _ in 0..age_ticks {
                farm.tick_physics(Seconds::new(60.0));
            }
            farm
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(16))]

            /// `ServerFarm` → `Vec<Server>` → `ServerFarm` preserves every
            /// observable a scheduler or probe can read, and the round
            /// trip continues to evolve bit-identically.
            #[test]
            fn round_trip_preserves_every_observable(
                n in 1usize..40,
                fill_seed in 0u64..u64::MAX,
                kind_offset in 0usize..5,
                age_ticks in 0usize..120,
            ) {
                let mut farm = aged_farm(n, fill_seed, kind_offset, age_ticks);
                let mut back = ServerFarm::from_servers(&farm.to_servers());
                prop_assert_eq!(back.len(), farm.len());
                prop_assert_eq!(back.cores(), farm.cores());
                prop_assert_eq!(back.air(), farm.air());
                prop_assert_eq!(back.melt_temperature(), farm.melt_temperature());
                for i in 0..n {
                    prop_assert_eq!(back.inlet(i), farm.inlet(i));
                    prop_assert_eq!(back.air_at_wax(i), farm.air_at_wax(i));
                    prop_assert_eq!(back.power(i), farm.power(i));
                    prop_assert_eq!(back.used_cores(i), farm.used_cores(i));
                    prop_assert_eq!(back.free_cores(i), farm.free_cores(i));
                    prop_assert_eq!(back.melt_fraction(i), farm.melt_fraction(i));
                    prop_assert_eq!(back.reported_melt_fraction(i), farm.reported_melt_fraction(i));
                    prop_assert_eq!(back.stored_latent_energy(i), farm.stored_latent_energy(i));
                    prop_assert_eq!(back.kind_counts(i), farm.kind_counts(i));
                    prop_assert_eq!(back.class_counts(i), farm.class_counts(i));
                }
                for _ in 0..4 {
                    prop_assert_eq!(
                        back.tick_physics(Seconds::new(60.0)),
                        farm.tick_physics(Seconds::new(60.0))
                    );
                }
            }

            /// The sharded sweep's partial-sum fold is invariant under the
            /// worker partition: any thread count (i.e. any contiguous
            /// grouping of the fixed shard grid onto workers) produces
            /// bit-identical totals AND bit-identical per-server state to
            /// the single-worker serial fold.
            #[test]
            fn fold_is_invariant_under_worker_partition(
                n in 1usize..300,
                threads in 2usize..=8,
                fill_seed in 0u64..u64::MAX,
                kind_offset in 0usize..5,
                ticks in 1usize..30,
            ) {
                let mut serial = aged_farm(n, fill_seed, kind_offset, 0);
                serial.set_threads(1);
                let mut sharded = serial.clone();
                sharded.set_threads(threads);
                for _ in 0..ticks {
                    let a = serial.tick_physics(Seconds::new(60.0));
                    let b = sharded.tick_physics(Seconds::new(60.0));
                    prop_assert_eq!(a, b);
                }
                for i in 0..n {
                    prop_assert_eq!(serial.air_at_wax(i), sharded.air_at_wax(i));
                    prop_assert_eq!(serial.melt_fraction(i), sharded.melt_fraction(i));
                    prop_assert_eq!(
                        serial.reported_melt_fraction(i),
                        sharded.reported_melt_fraction(i)
                    );
                }
            }
        }
    }
}
