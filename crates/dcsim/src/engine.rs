//! The simulation main loop.

use crate::config::ClusterConfig;
use crate::farm::{ServerFarm, SweepTiming, SHARD};
use crate::index::ClusterIndex;
use crate::metrics::{Heatmap, SimulationResult};
use crate::scheduler::{DecisionDetail, PlacementProbe, Scheduler};
use crate::server::Server;
use crate::server::ServerId;
use crate::snapshot::{Snapshot, SnapshotError};
use crate::telemetry::{EngineTelemetry, PhaseClock};
use crate::topology::ZoneCooling;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use vmt_telemetry::{TelemetryConfig, TickPhase, Tracer};
use vmt_thermal::CoolingLoadSeries;
use vmt_units::{Celsius, Hours, Joules, Watts};
use vmt_workload::{ArrivalPlanner, Job, JobId, JobSpec, LoadTrace, WorkloadKind};

/// Minimum departure-bucket size worth shard-partitioning: below this
/// the extra partition pass cannot recoup its cost and the plain
/// per-entry drain wins. Above it the drain is partitioned by server
/// shard even on a single thread — the bucket arrives in job-id
/// (arrival) order, which walks the job slab essentially at random, and
/// at 10k+ servers the slab has long outgrown L2, so each lookup eats a
/// full miss. Draining shard-by-shard visits slab rows in ascending
/// server order instead, which is the difference between ~70ns and
/// ~25ns per departure at 100k servers. A 1,000-server paper-trace tick
/// retires ~2,300 jobs and stays on the direct drain; 10,000 servers
/// retire ~23,000 and partition.
const PAR_DEPART_MIN: usize = 4096;

/// Retired departure buckets kept for reuse. One bucket retires per
/// tick while placement provisions buckets across the whole spread of
/// job durations, so a moderately deep pool (not just one or two slots)
/// is needed before the steady state stops allocating fresh buckets.
const BUCKET_POOL_CAP: usize = 32;

/// A configured simulation, ready to run.
///
/// Couples a cluster ([`ClusterConfig`]), a load trace
/// ([`LoadTrace`]), and a placement policy ([`Scheduler`]). The run is
/// fully deterministic: all randomness flows from the seeds in the
/// configuration and trace.
///
/// # Examples
///
/// ```
/// use vmt_dcsim::{ClusterConfig, FirstFit, Simulation};
/// use vmt_workload::{DiurnalTrace, TraceConfig};
///
/// let result = Simulation::new(
///     ClusterConfig::paper_default(5),
///     DiurnalTrace::new(TraceConfig::paper_default()),
///     Box::new(FirstFit::new()),
/// )
/// .run();
/// assert!(result.peak_cooling().get() > 0.0);
/// ```
pub struct Simulation {
    config: ClusterConfig,
    trace: Box<dyn LoadTrace>,
    scheduler: Box<dyn Scheduler>,
    farm: ServerFarm,
    planner: ArrivalPlanner,
    /// Occupied cores per workload, indexed by [`WorkloadKind::index`].
    occupancy: [usize; 5],
    /// Departure calendar: `departures[t]` holds the jobs ending at tick
    /// `t`, each with the server it runs on. Sized to the horizon when
    /// the run starts; jobs outliving the trace are simply never ended,
    /// as with the former priority queue. Job ids grow monotonically, so
    /// bucket insertion order equals the old heap's `(tick, id)` pop
    /// order and draining a bucket is O(1) per job.
    departures: Vec<Vec<(JobId, u32)>>,
    next_job_id: u64,
    /// Shuffles each tick's arrival order (seeded; deterministic).
    arrival_rng: rand::rngs::SmallRng,
    /// Incremental per-server state handed to the scheduler.
    index: ClusterIndex,
    /// Per-workload arrival staging, reused across ticks.
    per_kind: [Vec<JobSpec>; 5],
    /// Materialized jobs of the tick's batch, reused across ticks.
    batch: Vec<Job>,
    /// Per-job placement outcomes of the tick's batch, reused across
    /// ticks.
    outcomes: Vec<Option<ServerId>>,
    /// Departure entries partitioned by server shard for the parallel
    /// drain, reused across ticks.
    depart_shards: Vec<Vec<(JobId, u32)>>,
    /// Retired departure buckets recycled into future calendar slots so
    /// the steady state allocates no new buckets.
    bucket_pool: Vec<Vec<(JobId, u32)>>,
    /// Per-zone CRAC integrators when the config carries a topology.
    /// Observational: stepped after physics from the farm's power lane,
    /// never fed back into inlets, so results stay bit-identical to a
    /// zoneless run.
    zones: Option<ZoneCooling>,
    /// Telemetry wiring; `None` (the default) is the zero-cost path —
    /// the run loop takes no timestamps and emits nothing.
    telemetry: Option<TelemetryConfig>,
    /// In-flight run accumulators, `Some` from the first [`Simulation::step`]
    /// until [`Simulation::finish`]. Keeping them on the simulation (rather
    /// than as `run()` locals) is what lets a run pause at any tick
    /// boundary for [`Simulation::snapshot`] and [`Simulation::fork`].
    run: Option<RunState>,
}

/// Everything the run loop accumulates across ticks: result series,
/// heatmaps, counters, and the live telemetry handle.
struct RunState {
    /// Total ticks in the trace horizon.
    ticks: usize,
    /// Next tick to execute (0-based).
    next_tick: usize,
    cooling: CoolingLoadSeries,
    electrical: CoolingLoadSeries,
    avg_temp: Vec<Celsius>,
    hot_group_temp: Vec<Celsius>,
    hot_group_sizes: Vec<usize>,
    stored_energy: Vec<Joules>,
    temp_heatmap: Heatmap,
    melt_heatmap: Heatmap,
    dropped_jobs: u64,
    placements: u64,
    /// Live instrumentation; observational only, so it never travels
    /// through a snapshot or fork.
    telemetry: Option<EngineTelemetry>,
}

impl RunState {
    /// Deep copy of the accumulators without the (non-cloneable)
    /// telemetry handle — what a forked simulation starts from.
    fn clone_without_telemetry(&self) -> Self {
        Self {
            ticks: self.ticks,
            next_tick: self.next_tick,
            cooling: self.cooling.clone(),
            electrical: self.electrical.clone(),
            avg_temp: self.avg_temp.clone(),
            hot_group_temp: self.hot_group_temp.clone(),
            hot_group_sizes: self.hot_group_sizes.clone(),
            stored_energy: self.stored_energy.clone(),
            temp_heatmap: self.temp_heatmap.clone(),
            melt_heatmap: self.melt_heatmap.clone(),
            dropped_jobs: self.dropped_jobs,
            placements: self.placements,
            telemetry: None,
        }
    }
}

/// The engine's [`PlacementProbe`]: forwards sampled decision detail
/// from a policy's `place_batch_traced` into the span tracer.
struct TraceProbe<'a> {
    tracer: &'a mut Tracer,
}

impl PlacementProbe for TraceProbe<'_> {
    fn wants(&self, job: &Job) -> bool {
        self.tracer.wants_job(job.id().0)
    }

    fn sampled_indices(&self, jobs: &[Job], out: &mut Vec<usize>) {
        out.clear();
        let (Some(first), Some(last)) = (jobs.first(), jobs.last()) else {
            return;
        };
        // The engine assigns batch ids serially, so the sampled
        // offsets come out of one arithmetic pass instead of a
        // per-job modulo scan over the whole batch.
        if last.id().0.wrapping_sub(first.id().0) == jobs.len() as u64 - 1 {
            *out = self.tracer.sampled_offsets(first.id().0, jobs.len());
            debug_assert!(out.iter().all(|&i| self.wants(&jobs[i])));
        } else {
            for (i, job) in jobs.iter().enumerate() {
                if self.wants(job) {
                    out.push(i);
                }
            }
        }
    }

    fn decision(&mut self, job: &Job, detail: DecisionDetail) {
        // `DecisionCandidate` is an alias of `SpanCandidate`, so the
        // policy's snapshot moves into the ring without a copy.
        self.tracer.decision(
            job.id().0,
            detail.rung,
            detail.chosen,
            detail.winning_key,
            detail.candidates,
        );
    }
}

impl Simulation {
    /// Builds a simulation from any [`LoadTrace`] source (the synthetic
    /// [`DiurnalTrace`](vmt_workload::DiurnalTrace) and the replayed
    /// [`RecordedTrace`](vmt_workload::RecordedTrace) convert
    /// implicitly).
    pub fn new(
        config: ClusterConfig,
        trace: impl Into<Box<dyn LoadTrace>>,
        scheduler: Box<dyn Scheduler>,
    ) -> Self {
        let trace = trace.into();
        let farm = ServerFarm::from_config(&config);
        let planner = ArrivalPlanner::with_model(config.seed, config.duration_model);
        let arrival_rng = rand::rngs::SmallRng::seed_from_u64(config.seed ^ 0xA11C_E5ED);
        let index = ClusterIndex::new(&farm);
        let zones = config
            .topology
            .as_ref()
            .map(|spec| ZoneCooling::new(farm.len(), spec));
        Self {
            config,
            trace,
            scheduler,
            farm,
            planner,
            occupancy: [0; 5],
            departures: Vec::new(),
            next_job_id: 0,
            arrival_rng,
            index,
            per_kind: std::array::from_fn(|_| Vec::new()),
            batch: Vec::new(),
            outcomes: Vec::new(),
            depart_shards: Vec::new(),
            bucket_pool: Vec::new(),
            zones,
            telemetry: None,
            run: None,
        }
    }

    /// Attaches telemetry: per-phase tick profiling, engine metrics, and
    /// (when the config carries a sink) a structured JSONL event stream.
    ///
    /// Telemetry is purely observational — an instrumented run returns a
    /// [`SimulationResult`] bit-identical to an uninstrumented one. Keep
    /// a clone of [`TelemetryConfig::summary`] (and of the registry, for
    /// live reads) before handing the config over; `run()` deposits the
    /// final [`SummaryEvent`](vmt_telemetry::SummaryEvent) there.
    pub fn with_telemetry(mut self, telemetry: TelemetryConfig) -> Self {
        self.telemetry = Some(telemetry);
        self
    }

    /// Read access to the cluster state (e.g. for custom probes between
    /// manual steps).
    pub fn farm(&self) -> &ServerFarm {
        &self.farm
    }

    /// The per-zone CRAC cooling state, when the config carries a
    /// [`topology`](ClusterConfig::topology).
    pub fn zones(&self) -> Option<&ZoneCooling> {
        self.zones.as_ref()
    }

    /// Sets the worker-thread count of the parallel physics tick.
    /// Results are bit-identical at any setting; this only changes
    /// wall-clock time. Defaults to [`crate::default_tick_threads`].
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.farm.set_threads(threads);
        self
    }

    /// The policy driving placement.
    pub fn scheduler_name(&self) -> &str {
        self.scheduler.name()
    }

    /// Runs the simulation over the trace's full horizon.
    pub fn run(self) -> SimulationResult {
        self.run_returning_servers().0
    }

    /// Runs the simulation and also returns the servers' final state —
    /// useful for post-mortem inspection (rack power balance, wax state)
    /// at the exact moment the trace ends.
    pub fn run_returning_servers(mut self) -> (SimulationResult, Vec<Server>) {
        self.start_run();
        while self.step() {}
        self.finish()
    }

    /// Total ticks in the trace horizon.
    pub fn total_ticks(&self) -> u64 {
        self.config.ticks_for(self.trace.horizon()) as u64
    }

    /// The next tick the run will execute (0 before anything has run;
    /// equals [`Simulation::total_ticks`] once the horizon is done).
    pub fn current_tick(&self) -> u64 {
        self.run.as_ref().map_or(0, |run| run.next_tick as u64)
    }

    /// Order-independent FNV-1a digest of the live cluster state (air
    /// temperatures, reported melt, free cores) — the same digest the
    /// flight-recorder replay checks, so a restored run can be compared
    /// tick-for-tick against the original.
    pub fn state_digest(&self) -> u64 {
        crate::replay::digest_index(&self.index)
    }

    /// Lazily initializes the run accumulators. Idempotent: a second
    /// call (or a call on a restored simulation, which arrives with its
    /// accumulators rebuilt) is a no-op — which also means telemetry
    /// must be attached before the run starts to take effect.
    fn start_run(&mut self) {
        if self.run.is_some() {
            return;
        }
        let ticks = self.config.ticks_for(self.trace.horizon());
        // Only ever grow the calendar: `resize_with` would truncate the
        // pre-filled future buckets of a restored simulation.
        if self.departures.len() < ticks {
            self.departures.resize_with(ticks, Vec::new);
        }
        let dt = self.config.tick;
        let num_servers = self.farm.len();
        let heatmap_rows = ticks.div_ceil(self.config.heatmap_stride.max(1));
        // Both heatmaps are preallocated in full and their rows written
        // in place on sample ticks — no per-tick row allocations.
        let row_interval = dt.get() * self.config.heatmap_stride as f64;
        let cores_per_server = self.farm.cores();
        let telemetry = self.telemetry.take().map(|config| {
            let tel = EngineTelemetry::new(
                config,
                num_servers,
                cores_per_server,
                ticks as u64,
                self.zones.as_ref(),
            );
            tel.emit_run_config(
                self.scheduler.name(),
                &self.config,
                &self.farm,
                ticks as u64,
            );
            tel
        });
        self.run = Some(RunState {
            ticks,
            next_tick: 0,
            cooling: CoolingLoadSeries::new(dt),
            electrical: CoolingLoadSeries::new(dt),
            avg_temp: Vec::with_capacity(ticks),
            hot_group_temp: Vec::with_capacity(ticks),
            hot_group_sizes: Vec::with_capacity(ticks),
            stored_energy: Vec::with_capacity(ticks),
            temp_heatmap: Heatmap {
                row_interval,
                rows: vec![vec![0.0; num_servers]; heatmap_rows],
            },
            melt_heatmap: Heatmap {
                row_interval,
                rows: vec![vec![0.0; num_servers]; heatmap_rows],
            },
            dropped_jobs: 0,
            placements: 0,
            telemetry,
        });
    }

    /// Executes one tick. Returns `false` (without running anything)
    /// once the horizon is exhausted. The sequence `while sim.step() {}`
    /// is bit-identical to the former monolithic run loop.
    pub fn step(&mut self) -> bool {
        self.start_run();
        let mut run = self.run.take().expect("start_run just installed the run");
        let stepped = if run.next_tick < run.ticks {
            self.execute_tick(&mut run);
            run.next_tick += 1;
            true
        } else {
            false
        };
        self.run = Some(run);
        stepped
    }

    /// Steps until the run reaches tick `tick` (exclusive next-tick
    /// bound) or the horizon, whichever comes first.
    pub fn run_until(&mut self, tick: u64) {
        while self.current_tick() < tick {
            if !self.step() {
                break;
            }
        }
    }

    /// Ends the run, returning the result recorded so far and the
    /// servers' final state. Called mid-horizon this yields a partial
    /// result: series hold one sample per executed tick and unreached
    /// heatmap rows stay zero.
    pub fn finish(mut self) -> (SimulationResult, Vec<Server>) {
        self.start_run();
        let run = self.run.take().expect("start_run just installed the run");
        let result = SimulationResult {
            scheduler_name: self.scheduler.name().to_owned(),
            cooling: run.cooling,
            electrical: run.electrical,
            avg_temp: run.avg_temp,
            hot_group_temp: run.hot_group_temp,
            hot_group_sizes: run.hot_group_sizes,
            stored_energy: run.stored_energy,
            temp_heatmap: run.temp_heatmap,
            melt_heatmap: run.melt_heatmap,
            dropped_jobs: run.dropped_jobs,
            placements: run.placements,
            tick: self.config.tick,
        };
        if let Some(tel) = run.telemetry {
            tel.finish(
                &result.scheduler_name,
                self.scheduler.counters(),
                result.placements,
                result.dropped_jobs,
                result.cooling.peak().get(),
                result.electrical.peak().get(),
            );
        }
        (result, self.farm.to_servers())
    }

    /// The body of one tick, operating on accumulators taken out of
    /// `self.run` (so the engine's own fields stay freely borrowable).
    fn execute_tick(&mut self, run: &mut RunState) {
        let t = run.next_tick;
        let dt = self.config.tick;
        let num_servers = self.farm.len();
        let heatmap_stride = self.config.heatmap_stride.max(1);
        let now = dt * t as f64;
        let now_hours = Hours::new(now.get() / 3600.0);

        // Phase laps are taken only when telemetry is attached; the
        // disabled path reads no clocks at all. The span tracer reuses
        // each lap's nanoseconds — phase spans add no timestamps on top
        // of the profiler's.
        let mut clock = run.telemetry.as_ref().map(|_| PhaseClock::start());
        if let Some(tr) = run.telemetry.as_mut().and_then(|tel| tel.tracer.as_mut()) {
            tr.begin_tick(t as u64);
        }
        macro_rules! lap {
            ($phase:ident) => {
                if let (Some(tel), Some(clock)) = (run.telemetry.as_mut(), clock.as_mut()) {
                    let ns = clock.lap();
                    tel.profiler.add_ns(TickPhase::$phase, ns);
                    if let Some(tr) = tel.tracer.as_mut() {
                        tr.phase(TickPhase::$phase, ns);
                    }
                }
            };
        }

        if self.config.inlet.is_time_varying() {
            for i in 0..num_servers {
                self.farm
                    .set_inlet(i, self.config.inlet.inlet_at(i, now_hours.get()));
            }
        }
        lap!(Inlet);
        // One SweepTiming covers both pool-driven sections of the
        // tick (departure drain and physics sweep); created only
        // when telemetry is attached.
        let mut sweep_timing = run.telemetry.as_ref().map(|_| SweepTiming::default());
        self.process_departures(t as u64, run.telemetry.as_mut(), sweep_timing.as_mut());
        lap!(Departures);
        self.scheduler.on_tick_indexed(&self.farm, &self.index, now);
        lap!(SchedulerTick);
        let placed_before = run.placements;
        let dropped_before = run.dropped_jobs;
        self.plan_and_place(
            t as u64,
            now_hours,
            &mut run.placements,
            &mut run.dropped_jobs,
            run.telemetry.as_mut(),
        );
        lap!(Placement);

        // Physics tick and metric accumulation in one sharded sweep
        // over the farm's arrays: per-shard partial sums (electrical,
        // heat into wax, temperature sums, stored energy) are folded
        // in shard order, the index's thermal columns and the
        // optional heatmap rows are written in place. The sweep is
        // deterministic at any thread count — see `farm`.
        let hot_size = self
            .scheduler
            .hot_group_size()
            .map(|size| size.clamp(1, num_servers));
        let sample_heatmaps = t.is_multiple_of(heatmap_stride);
        let (temp_row, melt_row) = if sample_heatmaps {
            let row = t / heatmap_stride;
            (
                Some(run.temp_heatmap.rows[row].as_mut_slice()),
                Some(run.melt_heatmap.rows[row].as_mut_slice()),
            )
        } else {
            (None, None)
        };
        let totals = self.farm.tick_physics_recorded(
            dt,
            hot_size.unwrap_or(0),
            &mut self.index,
            temp_row,
            melt_row,
            sweep_timing.as_mut(),
        );
        lap!(Physics);
        if let (Some(tel), Some(timing)) = (run.telemetry.as_mut(), sweep_timing) {
            tel.profiler.add_ns(TickPhase::PhysicsFold, timing.fold_ns);
            tel.profiler
                .add_ns(TickPhase::PoolBusy, timing.pool_busy_ns);
            tel.profiler
                .add_ns(TickPhase::PoolIdle, timing.pool_idle_ns);
        }
        // Zone CRAC integrators (observational): a serial server-order
        // pass over the power lane, then one plant step per zone. The
        // scheduler may observe the temperatures but built-in policies
        // keep placement independent of them.
        if let Some(zones) = self.zones.as_mut() {
            match run.telemetry.as_mut().and_then(|tel| tel.tracer.as_mut()) {
                Some(tr) => zones.step_traced(
                    self.farm.active_power_lane(),
                    self.farm.idle_w(),
                    dt.get(),
                    |z, ns, temp_c, duty| tr.zone(z as u32, ns, temp_c, duty),
                ),
                None => zones.step(self.farm.active_power_lane(), self.farm.idle_w(), dt.get()),
            }
            self.scheduler.observe_zones(zones.temperatures());
        }
        let mean_air_c = totals.temp_sum_c / num_servers as f64;
        run.cooling
            .push(Watts::new(totals.electrical_w - totals.into_wax_w));
        run.electrical.push(Watts::new(totals.electrical_w));
        run.avg_temp.push(Celsius::new(mean_air_c));
        run.stored_energy.push(Joules::new(totals.stored_energy_j));
        if let Some(size) = hot_size {
            run.hot_group_temp
                .push(Celsius::new(totals.hot_sum_c / size as f64));
            run.hot_group_sizes.push(size);
        }
        if let Some(tel) = run.telemetry.as_mut() {
            let tick_1based = t as u64 + 1;
            tel.record_tick(
                tick_1based,
                tick_1based as f64 * dt.get() / 3600.0,
                &self.index,
                mean_air_c,
                hot_size,
                run.placements - placed_before,
                run.dropped_jobs - dropped_before,
                self.scheduler.counters(),
                totals.electrical_w - totals.into_wax_w,
                self.zones.as_ref(),
            );
        }
        lap!(Record);
        if let (Some(tel), Some(clock)) = (run.telemetry.as_mut(), clock.as_ref()) {
            let total = clock.total();
            tel.profiler.add_tick(total);
            if let Some(tr) = tel.tracer.as_mut() {
                tr.end_tick(total.as_nanos() as u64);
            }
        }
    }

    /// Captures the complete engine state at the current tick boundary.
    ///
    /// The snapshot is self-describing: together with
    /// [`Simulation::restore_with`] (or the policy-aware
    /// `vmt_core::restore_simulation`) it rebuilds a simulation whose
    /// remaining ticks are bit-identical to this one's, at any thread
    /// count. Telemetry is observational and does not travel with the
    /// snapshot.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::NotSnapshottable`] when the trace has no
    /// [`TraceDescriptor`](vmt_workload::TraceDescriptor) or the
    /// scheduler has no [`SnapshotState`](crate::SnapshotState) kind
    /// (recording/replay wrappers, ad-hoc test policies).
    pub fn snapshot(&self) -> Result<Snapshot, SnapshotError> {
        let scheduler = self.scheduler.save_state()?;
        let trace = self
            .trace
            .descriptor()
            .ok_or(SnapshotError::NotSnapshottable("trace"))?;
        let mut occupancy = [0u64; 5];
        for (slot, &used) in occupancy.iter_mut().zip(&self.occupancy) {
            *slot = used as u64;
        }
        let departures = self
            .departures
            .iter()
            .enumerate()
            .filter(|(_, bucket)| !bucket.is_empty())
            .map(|(t, bucket)| {
                let entries = bucket.iter().map(|&(id, server)| (id.0, server)).collect();
                (t as u64, entries)
            })
            .collect();
        Ok(Snapshot {
            config: self.config.clone(),
            trace,
            scheduler,
            tick: self.current_tick(),
            farm: self.farm.state(),
            occupancy,
            departures,
            next_job_id: self.next_job_id,
            arrival_rng: self.arrival_rng.state(),
            planner_rng: self.planner.rng_state(),
            partial: self.partial_result(),
            zone_temps: self.zones.as_ref().map(|z| z.temperatures().to_vec()),
        })
    }

    /// The result accumulated so far, with heatmaps truncated to the
    /// rows actually written (so a snapshot carries no trailing zero
    /// rows whose count depends on the horizon).
    fn partial_result(&self) -> SimulationResult {
        let dt = self.config.tick;
        let scheduler_name = self.scheduler.name().to_owned();
        match &self.run {
            Some(run) => {
                let stride = self.config.heatmap_stride.max(1);
                let rows_written = run.next_tick.div_ceil(stride);
                let truncate = |map: &Heatmap| Heatmap {
                    row_interval: map.row_interval,
                    rows: map.rows[..rows_written.min(map.rows.len())].to_vec(),
                };
                SimulationResult {
                    scheduler_name,
                    cooling: run.cooling.clone(),
                    electrical: run.electrical.clone(),
                    avg_temp: run.avg_temp.clone(),
                    hot_group_temp: run.hot_group_temp.clone(),
                    hot_group_sizes: run.hot_group_sizes.clone(),
                    stored_energy: run.stored_energy.clone(),
                    temp_heatmap: truncate(&run.temp_heatmap),
                    melt_heatmap: truncate(&run.melt_heatmap),
                    dropped_jobs: run.dropped_jobs,
                    placements: run.placements,
                    tick: dt,
                }
            }
            None => SimulationResult {
                scheduler_name,
                cooling: CoolingLoadSeries::new(dt),
                electrical: CoolingLoadSeries::new(dt),
                avg_temp: Vec::new(),
                hot_group_temp: Vec::new(),
                hot_group_sizes: Vec::new(),
                stored_energy: Vec::new(),
                temp_heatmap: Heatmap::default(),
                melt_heatmap: Heatmap::default(),
                dropped_jobs: 0,
                placements: 0,
                tick: dt,
            },
        }
    }

    /// Rebuilds a simulation from a snapshot and a scheduler instance of
    /// the saved kind (any state; it is overwritten from the snapshot).
    ///
    /// This crate cannot name the concrete policies living in
    /// `vmt-core`, so the caller supplies the instance —
    /// `vmt_core::restore_simulation` wraps this with kind-tag dispatch.
    /// The restored run continues at [`Snapshot::tick`] and is
    /// bit-identical to the original from there on. It carries no
    /// telemetry.
    ///
    /// # Errors
    ///
    /// Any error from the scheduler's
    /// [`restore_state`](crate::SnapshotState::restore_state), or
    /// [`SnapshotError::Corrupt`] when the snapshot's arrays disagree
    /// with its own config (shape mismatches, out-of-range ticks,
    /// occupancy that does not match the farm).
    pub fn restore_with(
        snapshot: &Snapshot,
        mut scheduler: Box<dyn Scheduler>,
    ) -> Result<Self, SnapshotError> {
        scheduler.restore_state(&snapshot.scheduler)?;
        if let Some(spec) = &snapshot.config.topology {
            if !spec.is_valid() {
                return Err(SnapshotError::Corrupt(
                    "topology spec has zero counts or non-finite CRAC parameters".to_owned(),
                ));
            }
        }
        let mut sim = Simulation::new(snapshot.config.clone(), snapshot.trace.build(), scheduler);
        // A snapshot with no saved zone temperatures is either a
        // zoneless run or one written before zones existed — fresh
        // integrators at the setpoint are the defined meaning of both.
        if let Some(temps) = &snapshot.zone_temps {
            let applied = match sim.zones.as_mut() {
                Some(zones) => zones.apply_temperatures(temps),
                None => {
                    return Err(SnapshotError::Corrupt(
                        "snapshot carries zone temperatures but the config has no topology"
                            .to_owned(),
                    ));
                }
            };
            if !applied {
                return Err(SnapshotError::Corrupt(format!(
                    "snapshot carries {} zone temperatures, the topology has {}",
                    temps.len(),
                    sim.zones.as_ref().map_or(0, |z| z.temperatures().len())
                )));
            }
        }
        sim.farm.apply_state(&snapshot.farm)?;
        sim.index = ClusterIndex::new(&sim.farm);
        let ticks = sim.config.ticks_for(sim.trace.horizon());
        if snapshot.tick > ticks as u64 {
            return Err(SnapshotError::Corrupt(format!(
                "snapshot taken at tick {} but the trace horizon is {ticks} ticks",
                snapshot.tick
            )));
        }
        let tick = snapshot.tick as usize;
        for (slot, &used) in sim.occupancy.iter_mut().zip(&snapshot.occupancy) {
            *slot = usize::try_from(used)
                .map_err(|_| SnapshotError::Corrupt("occupancy overflows usize".to_owned()))?;
        }
        let occupancy_total: u64 = snapshot.occupancy.iter().sum();
        let farm_used: u64 = (0..sim.farm.len())
            .map(|i| u64::from(sim.farm.used_cores(i)))
            .sum();
        if occupancy_total != farm_used {
            return Err(SnapshotError::Corrupt(format!(
                "occupancy counts {occupancy_total} busy cores, the farm holds {farm_used}"
            )));
        }
        sim.departures.resize_with(ticks, Vec::new);
        let servers = sim.farm.len();
        for &(when, ref bucket) in &snapshot.departures {
            let slot = usize::try_from(when)
                .ok()
                .filter(|&w| w < ticks)
                .ok_or_else(|| {
                    SnapshotError::Corrupt(format!(
                        "departure bucket at tick {when} beyond the {ticks}-tick horizon"
                    ))
                })?;
            if let Some(&(_, server)) = bucket.iter().find(|&&(_, s)| s as usize >= servers) {
                return Err(SnapshotError::Corrupt(format!(
                    "departure names server {server} in a {servers}-server farm"
                )));
            }
            sim.departures[slot] = bucket
                .iter()
                .map(|&(id, server)| (JobId(id), server))
                .collect();
        }
        sim.next_job_id = snapshot.next_job_id;
        sim.arrival_rng = rand::rngs::SmallRng::from_state(snapshot.arrival_rng);
        sim.planner.set_rng_state(snapshot.planner_rng);

        let partial = &snapshot.partial;
        if partial.cooling.len() != tick
            || partial.electrical.len() != tick
            || partial.avg_temp.len() != tick
            || partial.stored_energy.len() != tick
        {
            return Err(SnapshotError::Corrupt(format!(
                "series lengths disagree with snapshot tick {tick}"
            )));
        }
        if partial.hot_group_temp.len() != partial.hot_group_sizes.len()
            || partial.hot_group_temp.len() > tick
        {
            return Err(SnapshotError::Corrupt(
                "hot-group series disagree with snapshot tick".to_owned(),
            ));
        }
        let stride = sim.config.heatmap_stride.max(1);
        let heatmap_rows = ticks.div_ceil(stride);
        let rows_written = tick.div_ceil(stride);
        let row_interval = sim.config.tick.get() * sim.config.heatmap_stride as f64;
        let expand = |map: &Heatmap| -> Result<Heatmap, SnapshotError> {
            if map.rows.len() != rows_written || map.rows.iter().any(|r| r.len() != servers) {
                return Err(SnapshotError::Corrupt(format!(
                    "heatmap shape disagrees with snapshot tick {tick}"
                )));
            }
            let mut rows = map.rows.clone();
            rows.resize_with(heatmap_rows, || vec![0.0; servers]);
            Ok(Heatmap { row_interval, rows })
        };
        sim.run = Some(RunState {
            ticks,
            next_tick: tick,
            cooling: partial.cooling.clone(),
            electrical: partial.electrical.clone(),
            avg_temp: partial.avg_temp.clone(),
            hot_group_temp: partial.hot_group_temp.clone(),
            hot_group_sizes: partial.hot_group_sizes.clone(),
            stored_energy: partial.stored_energy.clone(),
            temp_heatmap: expand(&partial.temp_heatmap)?,
            melt_heatmap: expand(&partial.melt_heatmap)?,
            dropped_jobs: partial.dropped_jobs,
            placements: partial.placements,
            telemetry: None,
        });
        Ok(sim)
    }

    /// Cheap in-memory copy of the running simulation: the fork and the
    /// original step on independently from the same state, bit-identical
    /// to each other (and to a snapshot/restore round trip) from this
    /// tick on. No serialization is involved. The fork starts without
    /// telemetry and with its own lazily created worker pool.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::NotSnapshottable`] when the scheduler does not
    /// implement [`Scheduler::clone_box`] or the trace has no
    /// descriptor.
    pub fn fork(&self) -> Result<Self, SnapshotError> {
        let scheduler = self
            .scheduler
            .clone_box()
            .ok_or(SnapshotError::NotSnapshottable("scheduler"))?;
        let trace = self
            .trace
            .descriptor()
            .ok_or(SnapshotError::NotSnapshottable("trace"))?
            .build();
        Ok(Self {
            config: self.config.clone(),
            trace,
            scheduler,
            farm: self.farm.clone(),
            planner: self.planner.clone(),
            occupancy: self.occupancy,
            departures: self.departures.clone(),
            next_job_id: self.next_job_id,
            arrival_rng: self.arrival_rng.clone(),
            index: self.index.clone(),
            // Scratch buffers are semantically empty between ticks; the
            // fork warms up its own.
            per_kind: std::array::from_fn(|_| Vec::new()),
            batch: Vec::new(),
            outcomes: Vec::new(),
            depart_shards: Vec::new(),
            bucket_pool: Vec::new(),
            zones: self.zones.clone(),
            telemetry: None,
            run: self.run.as_ref().map(RunState::clone_without_telemetry),
        })
    }

    /// Ends every job whose departure tick has arrived.
    ///
    /// Large buckets are partitioned by server shard and drained
    /// shard-by-shard — in ascending server order for slab locality on
    /// one thread, on the farm's persistent pool when more are
    /// configured. The partition is stable, so every server sees its
    /// departures in bucket order and results are bit-identical to the
    /// direct per-entry drain (which small buckets take).
    fn process_departures(
        &mut self,
        tick: u64,
        telemetry: Option<&mut EngineTelemetry>,
        timing: Option<&mut SweepTiming>,
    ) {
        let mut bucket = std::mem::take(&mut self.departures[tick as usize]);
        if bucket.len() >= PAR_DEPART_MIN {
            let num_shards = self.farm.len().div_ceil(SHARD);
            self.depart_shards.resize_with(num_shards, Vec::new);
            for shard in &mut self.depart_shards {
                shard.clear();
            }
            for &(job, server) in &bucket {
                self.depart_shards[server as usize / SHARD].push((job, server));
            }
            let ended = self.farm.end_jobs_sharded(
                &self.depart_shards,
                &mut self.index,
                &mut self.occupancy,
                timing,
            );
            debug_assert_eq!(ended as usize, bucket.len());
        } else {
            for &(job, server) in &bucket {
                let kind = self.farm.end_job(server as usize, job);
                self.occupancy[kind.index()] -= 1;
                self.index.record_end(server as usize);
            }
        }
        // Flight-ring records keep the original bucket order regardless
        // of which path drained the jobs.
        if let Some(tel) = telemetry.filter(|tel| tel.flight_armed()) {
            for &(job, server) in &bucket {
                tel.record_departure(tick, job.0, server);
            }
        }
        bucket.clear();
        if self.bucket_pool.len() < BUCKET_POOL_CAP {
            self.bucket_pool.push(bucket);
        }
    }

    /// Plans this tick's arrivals from the trace and places each job.
    fn plan_and_place(
        &mut self,
        tick: u64,
        now_hours: Hours,
        placements: &mut u64,
        dropped: &mut u64,
        telemetry: Option<&mut EngineTelemetry>,
    ) {
        let total_cores = self.config.total_cores();
        // Plan all workloads first, then interleave the batches so that
        // placement sees a realistic arrival mix — a long run of one
        // kind would let composition clump on whichever servers happen
        // to be preferred this tick. All staging buffers live on the
        // simulation and are recycled, so the steady-state hot loop
        // performs no per-tick allocations here.
        for (kind, queue) in WorkloadKind::ALL.into_iter().zip(self.per_kind.iter_mut()) {
            queue.clear();
            let target = self.trace.target_cores(kind, now_hours, total_cores);
            let current = self.occupancy[kind.index()];
            self.planner.plan_into(kind, target, current, queue);
        }
        // Jobs are materialized directly during the interleave (no
        // intermediate spec buffer), shuffled, then id-stamped in final
        // order — so ids are sequential in arrival order, exactly as a
        // spec-then-materialize pipeline would assign them.
        let mut batch = std::mem::take(&mut self.batch);
        batch.clear();
        batch.reserve(self.per_kind.iter().map(Vec::len).sum());
        let longest = self.per_kind.iter().map(Vec::len).max().unwrap_or(0);
        for position in 0..longest {
            for queue in &self.per_kind {
                if let Some(&spec) = queue.get(position) {
                    batch.push(Job::new(JobId(0), spec.kind, spec.duration));
                }
            }
        }
        // A strict cyclic interleave aliases with count-based policies
        // (e.g. round robin over a server count divisible by the number
        // of workloads would stripe kinds across servers); a seeded
        // shuffle models the real, unordered arrival stream. The RNG
        // draw sequence depends only on the batch length, so shuffling
        // jobs instead of specs leaves the arrival stream unchanged.
        batch.shuffle(&mut self.arrival_rng);
        for job in &mut batch {
            job.set_id(JobId(self.next_job_id));
            self.next_job_id += 1;
        }

        // Hand the whole batch to the scheduler in one call:
        // `place_batch`'s default body runs the identical per-job
        // decision sequence, but monomorphized per policy, so the whole
        // placement loop costs one dynamic dispatch per tick. With the
        // span tracer armed the traced variant runs instead, feeding
        // sampled decision detail through a probe — the decision
        // sequence itself is identical either way.
        let mut telemetry = telemetry;
        let mut outcomes = std::mem::take(&mut self.outcomes);
        outcomes.clear();
        outcomes.reserve(batch.len());
        match telemetry.as_deref_mut().and_then(|tel| tel.tracer.as_mut()) {
            Some(tracer) => {
                let mut probe = TraceProbe { tracer };
                self.scheduler.place_batch_traced(
                    &batch,
                    &mut self.farm,
                    &mut self.index,
                    &mut outcomes,
                    &mut probe,
                );
            }
            None => {
                self.scheduler
                    .place_batch(&batch, &mut self.farm, &mut self.index, &mut outcomes);
            }
        }
        debug_assert_eq!(outcomes.len(), batch.len());

        // Placement instants for sampled jobs: outcome, zone, and
        // departure horizon, emitted after the batch so every instant
        // reflects the final engine-visible decision.
        if let Some(tr) = telemetry.as_deref_mut().and_then(|tel| tel.tracer.as_mut()) {
            let layout = self.zones.as_ref().map(|z| z.layout());
            // Batch ids are consecutive (assigned above), so the
            // sampled offsets come from one arithmetic pass — no
            // per-job sampling check over tens of thousands of jobs.
            let first_id = batch.first().map_or(0, |job| job.id().0);
            for i in tr.sampled_offsets(first_id, batch.len()) {
                let (job, placed) = (&batch[i], outcomes[i]);
                let duration_ticks = (job.duration().get() / self.config.tick.get())
                    .round()
                    .max(1.0) as u32;
                let server = placed.map(|sid| sid.0 as u32);
                let zone = placed.and_then(|sid| layout.map(|l| l.zone_of(sid.0) as u32));
                tr.placement(
                    job.id().0,
                    job.kind().index() as u8,
                    server,
                    zone,
                    duration_ticks,
                );
            }
        }

        // Engine bookkeeping over the outcomes, in batch order. The
        // flight-record calls are compiled into a separate loop body so
        // the common unrecorded run carries no per-job telemetry branch.
        let flight = telemetry.filter(|tel| tel.flight_armed());
        if let Some(tel) = flight {
            for (job, placed) in batch.iter().zip(&outcomes) {
                match placed {
                    Some(sid) => {
                        self.occupancy[job.kind().index()] += 1;
                        let duration_ticks = (job.duration().get() / self.config.tick.get())
                            .round()
                            .max(1.0) as u64;
                        let when = (tick + duration_ticks) as usize;
                        if when < self.departures.len() {
                            let slot = &mut self.departures[when];
                            if slot.capacity() == 0 {
                                if let Some(spare) = self.bucket_pool.pop() {
                                    *slot = spare;
                                }
                            }
                            slot.push((job.id(), sid.0 as u32));
                        }
                        *placements += 1;
                        tel.record_placement(
                            tick,
                            job.id().0,
                            sid.0 as u32,
                            job.kind().index() as u8,
                            duration_ticks as u32,
                        );
                    }
                    None => {
                        *dropped += 1;
                        tel.record_drop(tick, job.id().0, job.kind().index() as u8);
                    }
                }
            }
        } else {
            for (job, placed) in batch.iter().zip(&outcomes) {
                match placed {
                    Some(sid) => {
                        self.occupancy[job.kind().index()] += 1;
                        let duration_ticks = (job.duration().get() / self.config.tick.get())
                            .round()
                            .max(1.0) as u64;
                        let when = (tick + duration_ticks) as usize;
                        if when < self.departures.len() {
                            let slot = &mut self.departures[when];
                            if slot.capacity() == 0 {
                                if let Some(spare) = self.bucket_pool.pop() {
                                    *slot = spare;
                                }
                            }
                            slot.push((job.id(), sid.0 as u32));
                        }
                        *placements += 1;
                    }
                    None => *dropped += 1,
                }
            }
        }
        self.batch = batch;
        self.outcomes = outcomes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::FirstFit;
    use vmt_workload::{DiurnalTrace, TraceConfig};

    fn small_run(servers: usize) -> SimulationResult {
        let mut trace_cfg = TraceConfig::paper_default();
        trace_cfg.horizon = Hours::new(6.0);
        Simulation::new(
            ClusterConfig::paper_default(servers),
            DiurnalTrace::new(trace_cfg),
            Box::new(FirstFit::new()),
        )
        .run()
    }

    #[test]
    fn runs_expected_tick_count() {
        let r = small_run(4);
        assert_eq!(r.cooling.len(), 6 * 60);
        assert_eq!(r.avg_temp.len(), 6 * 60);
        assert_eq!(r.temp_heatmap.len(), 6 * 60 / 5);
    }

    #[test]
    fn no_drops_at_paper_load_levels() {
        let r = small_run(4);
        assert_eq!(r.dropped_jobs, 0);
        assert!(r.placements > 0);
    }

    #[test]
    fn cooling_load_tracks_electrical_scale() {
        let r = small_run(4);
        // Rejected heat never exceeds electrical + max possible wax
        // release; sanity-band the peak between idle and nameplate.
        let peak = r.peak_cooling().get();
        assert!(peak > 4.0 * 100.0, "peak {peak}");
        assert!(peak < 4.0 * 520.0, "peak {peak}");
    }

    #[test]
    fn deterministic_runs() {
        let a = small_run(3);
        let b = small_run(3);
        assert_eq!(a.cooling, b.cooling);
        assert_eq!(a.placements, b.placements);
    }

    #[test]
    fn time_varying_inlet_is_applied() {
        let mut config = ClusterConfig::paper_default(3);
        config.inlet = vmt_thermal::InletModel::diurnal_ambient(
            vmt_units::Celsius::new(21.0),
            vmt_units::DegC::new(2.0),
            15.0,
        );
        let mut trace_cfg = TraceConfig::paper_default();
        trace_cfg.horizon = Hours::new(16.0);
        let (_, servers) = Simulation::new(
            config,
            DiurnalTrace::new(trace_cfg),
            Box::new(FirstFit::new()),
        )
        .run_returning_servers();
        // At the end of the run (hour 16, one tick past the 15:00
        // ambient peak) every server's inlet sits near the top of the
        // swing.
        for s in &servers {
            assert!(
                (s.inlet().get() - 22.93).abs() < 0.05,
                "inlet {} should track ambient",
                s.inlet()
            );
        }
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(6))]

            /// Engine bookkeeping invariant: across any short run, every
            /// placement is eventually matched by a departure or still
            /// running at the end, and the occupancy implied by the
            /// final electrical power is consistent with that.
            #[test]
            fn placements_balance_departures(
                servers in 2usize..8,
                horizon_h in 2.0f64..12.0,
                seed in 0u64..1000,
            ) {
                let mut config = ClusterConfig::paper_default(servers);
                config.seed = seed;
                let mut trace_cfg = TraceConfig::paper_default();
                trace_cfg.horizon = Hours::new(horizon_h);
                let (result, final_servers) = Simulation::new(
                    config,
                    DiurnalTrace::new(trace_cfg),
                    Box::new(FirstFit::new()),
                )
                .run_returning_servers();
                prop_assert_eq!(result.dropped_jobs, 0);
                let running: u32 = final_servers.iter().map(Server::used_cores).sum();
                prop_assert!(u64::from(running) <= result.placements);
                // Electrical floor: idle power of every server.
                let idle_floor = servers as f64 * 100.0;
                for w in result.electrical.samples() {
                    prop_assert!(w.get() >= idle_floor - 1e-6);
                    prop_assert!(w.get() <= servers as f64 * 500.0 + 1e-6);
                }
            }
        }
    }

    #[test]
    fn occupancy_is_conserved() {
        // Over a short run, placements = departures + still-running jobs;
        // indirectly validated by zero drops plus the engine not
        // panicking on end_job bookkeeping; spot-check electrical power
        // returns near idle at the trough.
        let mut trace_cfg = TraceConfig::paper_default();
        trace_cfg.horizon = Hours::new(10.0); // covers the hour-8 trough
        let r = Simulation::new(
            ClusterConfig::paper_default(4),
            DiurnalTrace::new(trace_cfg),
            Box::new(FirstFit::new()),
        )
        .run();
        // At the trough (hour 8) utilization ≈35%: electrical well below
        // the peak.
        let trough_tick = 8 * 60;
        let peak_tick = r.electrical.len() - 1; // hour 10 on the rise
        let _ = peak_tick;
        let trough = r.electrical.samples()[trough_tick].get();
        let peak = r.electrical.peak().get();
        assert!(trough < peak, "trough {trough} peak {peak}");
    }
}
