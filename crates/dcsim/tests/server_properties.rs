//! Property tests for [`Server`]'s physical invariants.
//!
//! Whatever the load, inlet temperature, or run length, a server's wax
//! bookkeeping must stay physical: melt fractions in `[0, 1]`, stored
//! latent energy non-negative, bounded by the pack's latent capacity,
//! and consistent with the melt fraction it reports.

use proptest::prelude::*;
use vmt_dcsim::{ClusterConfig, Server, ServerId};
use vmt_units::{Celsius, Seconds};
use vmt_workload::{Job, JobId, WorkloadKind};

const KINDS: [WorkloadKind; 5] = WorkloadKind::ALL;

fn loaded_server(config: &ClusterConfig, jobs: u32, kind_pick: usize) -> Server {
    let mut server = Server::from_config(ServerId(0), config);
    let kind = KINDS[kind_pick % KINDS.len()];
    for i in 0..jobs {
        server.start_job(&Job::new(JobId(u64::from(i)), kind, Seconds::new(3600.0)));
    }
    server
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Melt fraction and reported melt fraction stay in `[0, 1]`, stored
    /// latent energy stays within `[0, latent_capacity]`, and the stored
    /// energy always equals `melt_fraction × latent_capacity` — the
    /// conservation identity `Server::tick` must maintain no matter how
    /// the heat flows.
    #[test]
    fn wax_state_stays_physical_across_ticks(
        jobs in 0u32..=32,
        kind_pick in 0usize..5,
        inlet_c in 16.0f64..32.0,
        minutes in 1usize..360,
    ) {
        let mut config = ClusterConfig::paper_default(1);
        config.inlet = vmt_thermal::InletModel::uniform(Celsius::new(inlet_c));
        let wax = config.wax.clone().expect("paper default carries wax");
        let capacity = wax.sizing.latent_capacity_of(&wax.material).get();
        let mut server = loaded_server(&config, jobs, kind_pick);
        for _ in 0..minutes {
            let load = server.tick(Seconds::new(60.0));
            prop_assert!(load.rejected().get().is_finite());
            let melt = server.melt_fraction().get();
            let reported = server.reported_melt_fraction().get();
            let stored = server.stored_latent_energy().get();
            prop_assert!((0.0..=1.0).contains(&melt), "melt {melt}");
            prop_assert!((0.0..=1.0).contains(&reported), "reported {reported}");
            prop_assert!(stored >= 0.0, "stored {stored}");
            prop_assert!(stored <= capacity * (1.0 + 1e-9), "stored {stored} > capacity {capacity}");
            prop_assert!(
                (stored - melt * capacity).abs() <= capacity * 1e-9,
                "stored {stored} inconsistent with melt {melt} × capacity {capacity}"
            );
            prop_assert!(server.air_at_wax().get().is_finite());
        }
    }

    /// Once a drained server's air has fallen below the wax's melt
    /// temperature, `Server::tick` can only move latent energy *out* of
    /// the pack: stored energy must be non-increasing from then on.
    /// (Immediately after the drain the air still lags hot — the 300 s
    /// thermal time constant — so a brief continued melt is physical and
    /// exempt.)
    #[test]
    fn stored_energy_never_grows_below_the_melt_line(
        inlet_c in 16.0f64..30.0,
        minutes in 1usize..240,
    ) {
        let mut config = ClusterConfig::paper_default(1);
        config.inlet = vmt_thermal::InletModel::uniform(Celsius::new(inlet_c));
        // Melt some wax first under full load, then drain completely.
        let mut server = loaded_server(&config, 32, 1);
        for _ in 0..(12 * 60) {
            server.tick(Seconds::new(60.0));
        }
        for i in 0u64..32 {
            server.end_job(JobId(i));
        }
        let melt_temp = server.melt_temperature().expect("wax pack present");
        let mut previous = server.stored_latent_energy().get();
        for _ in 0..minutes {
            let below_before = server.air_at_wax() < melt_temp;
            server.tick(Seconds::new(60.0));
            let now = server.stored_latent_energy().get();
            if below_before {
                prop_assert!(
                    now <= previous * (1.0 + 1e-12) + 1e-9,
                    "stored energy rose {previous} -> {now} below the melt line"
                );
            }
            previous = now;
        }
    }
}
