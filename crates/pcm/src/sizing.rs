//! Wax sizing for one server.

use crate::{PcmError, PcmMaterial};
use vmt_units::{Joules, Kilograms, KilogramsPerCubicMeter, Liters};

/// Wax placement inside one server chassis.
///
/// The paper's CFD design-space exploration found that its 2U high
/// throughput server (Sun Fire X4470 layout, 4× Xeon E7-4809 v4) holds
/// **4.0 liters** of wax behind the CPU heat sinks, split across **four
/// aluminum containers**, without exceeding CPU thermal limits. Those are
/// the defaults here; the chassis limit is enforced at construction.
///
/// # Examples
///
/// ```
/// use vmt_pcm::ServerWaxConfig;
///
/// let config = ServerWaxConfig::default();
/// assert_eq!(config.volume().get(), 4.0);
/// assert_eq!(config.containers(), 4);
/// // 4.0 L of solid paraffin ≈ 3.48 kg.
/// assert!((config.mass().get() - 3.48).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ServerWaxConfig {
    volume: Liters,
    containers: u32,
    chassis_limit: Liters,
}

/// Paraffin solid density used for the default mass conversion (kg/m³).
const DEFAULT_DENSITY: f64 = 870.0;

impl ServerWaxConfig {
    /// The paper's CFD-derived chassis limit for the 2U test server.
    pub const CHASSIS_LIMIT: Liters = Liters::new(4.0);

    /// Creates a wax configuration.
    ///
    /// # Errors
    ///
    /// Returns [`PcmError::VolumeExceedsChassis`] if `volume` exceeds the
    /// chassis limit, and [`PcmError::NonPositiveProperty`] if `volume` is
    /// not strictly positive or `containers` is zero.
    pub fn new(volume: Liters, containers: u32) -> Result<Self, PcmError> {
        if !(volume.get() > 0.0 && volume.get().is_finite()) {
            return Err(PcmError::NonPositiveProperty {
                property: "volume",
                value: volume.get(),
            });
        }
        if containers == 0 {
            return Err(PcmError::NonPositiveProperty {
                property: "containers",
                value: 0.0,
            });
        }
        if volume > Self::CHASSIS_LIMIT {
            return Err(PcmError::VolumeExceedsChassis {
                requested_liters: volume.get(),
                max_liters: Self::CHASSIS_LIMIT.get(),
            });
        }
        Ok(Self {
            volume,
            containers,
            chassis_limit: Self::CHASSIS_LIMIT,
        })
    }

    /// Total wax volume in the server.
    pub fn volume(&self) -> Liters {
        self.volume
    }

    /// Number of aluminum containers the wax is split across.
    pub fn containers(&self) -> u32 {
        self.containers
    }

    /// Volume per container.
    pub fn volume_per_container(&self) -> Liters {
        self.volume / self.containers as f64
    }

    /// Wax mass assuming solid commercial paraffin (870 kg/m³).
    ///
    /// Use [`ServerWaxConfig::mass_of`] when the material differs.
    pub fn mass(&self) -> Kilograms {
        self.volume
            .mass_at(KilogramsPerCubicMeter::new(DEFAULT_DENSITY))
    }

    /// Wax mass for a specific material.
    pub fn mass_of(&self, material: &PcmMaterial) -> Kilograms {
        self.volume.mass_at(material.density_solid())
    }

    /// Latent storage capacity of this configuration for a material.
    pub fn latent_capacity_of(&self, material: &PcmMaterial) -> Joules {
        self.mass_of(material) * material.latent_heat()
    }
}

impl Default for ServerWaxConfig {
    /// The paper's deployment: 4.0 L across 4 containers.
    fn default() -> Self {
        Self::new(Liters::new(4.0), 4).expect("paper defaults are valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let c = ServerWaxConfig::default();
        assert_eq!(c.volume(), Liters::new(4.0));
        assert_eq!(c.containers(), 4);
        assert_eq!(c.volume_per_container(), Liters::new(1.0));
    }

    #[test]
    fn chassis_limit_enforced() {
        assert!(ServerWaxConfig::new(Liters::new(4.0), 4).is_ok());
        let err = ServerWaxConfig::new(Liters::new(4.1), 4).unwrap_err();
        assert!(matches!(err, PcmError::VolumeExceedsChassis { .. }));
    }

    #[test]
    fn invalid_inputs_rejected() {
        assert!(ServerWaxConfig::new(Liters::new(0.0), 4).is_err());
        assert!(ServerWaxConfig::new(Liters::new(-1.0), 4).is_err());
        assert!(ServerWaxConfig::new(Liters::new(2.0), 0).is_err());
    }

    #[test]
    fn latent_capacity_scales_with_volume() {
        let wax = PcmMaterial::deployed_paraffin();
        let full = ServerWaxConfig::default().latent_capacity_of(&wax);
        let half = ServerWaxConfig::new(Liters::new(2.0), 2)
            .unwrap()
            .latent_capacity_of(&wax);
        assert!((full.get() - 2.0 * half.get()).abs() < 1e-6);
        // ≈ 787 kJ per server for the paper configuration.
        assert!((full.to_megajoules() - 0.786).abs() < 0.01);
    }
}
