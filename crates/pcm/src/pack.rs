//! The melt state of a quantity of PCM inside one server.

use crate::PcmMaterial;
use vmt_units::{Celsius, Fraction, Joules, Kilograms};

/// A pack of phase change material with its current thermal state.
///
/// The state is tracked as a single *enthalpy* value relative to solid
/// material at 0 °C, which makes heat addition/removal a single addition
/// and lets temperature and melt fraction be derived consistently:
///
/// * below the melt point the pack is solid and warms sensibly
///   (`c_p,solid`);
/// * across the latent plateau the temperature is pinned at the melt point
///   while the melt fraction advances from 0 to 1;
/// * above the plateau the pack is liquid and warms sensibly
///   (`c_p,liquid`).
///
/// This is the classic enthalpy method for Stefan problems, collapsed to a
/// single lumped node — the same reduction the paper makes when it distills
/// its CFD model into per-server DCsim parameters.
///
/// # Examples
///
/// ```
/// use vmt_pcm::{PcmMaterial, WaxPack};
/// use vmt_units::{Celsius, Joules, Kilograms};
///
/// let mut pack = WaxPack::new(PcmMaterial::deployed_paraffin(), Kilograms::new(3.48), Celsius::new(25.0));
/// assert!(pack.melt_fraction().is_zero());
///
/// // Pump in more than enough heat to reach the plateau and half-melt.
/// let to_melt_start = pack.heat_to_reach(Celsius::new(35.7));
/// pack.add_heat(to_melt_start + pack.latent_capacity() * 0.5);
/// assert!((pack.melt_fraction().get() - 0.5).abs() < 1e-9);
/// assert_eq!(pack.temperature(), Celsius::new(35.7));
/// ```
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct WaxPack {
    material: PcmMaterial,
    mass: Kilograms,
    /// Enthalpy relative to solid material at 0 °C.
    enthalpy: Joules,
}

impl WaxPack {
    /// Creates a pack of `mass` of `material` equilibrated at `initial`
    /// temperature (fully solid if below the melt point, fully liquid if
    /// above).
    ///
    /// # Panics
    ///
    /// Panics if `mass` is not strictly positive.
    pub fn new(material: PcmMaterial, mass: Kilograms, initial: Celsius) -> Self {
        assert!(
            mass.get() > 0.0 && mass.get().is_finite(),
            "wax mass must be positive, got {mass}"
        );
        let mut pack = Self {
            material,
            mass,
            enthalpy: Joules::ZERO,
        };
        pack.set_temperature(initial);
        pack
    }

    /// The material in the pack.
    pub fn material(&self) -> &PcmMaterial {
        &self.material
    }

    /// Mass of PCM in the pack.
    pub fn mass(&self) -> Kilograms {
        self.mass
    }

    /// Current enthalpy relative to solid material at 0 °C.
    pub fn enthalpy(&self) -> Joules {
        self.enthalpy
    }

    /// Enthalpy at which melting begins (solid at the melt point).
    fn plateau_start(&self) -> Joules {
        self.material.specific_heat_solid().sensible_heat(
            self.mass,
            self.material.melt_temperature() - Celsius::new(0.0),
        )
    }

    /// Total latent storage capacity of the pack (`m · L`).
    pub fn latent_capacity(&self) -> Joules {
        self.mass * self.material.latent_heat()
    }

    /// Current temperature of the (lumped) pack.
    ///
    /// During the phase transition this is pinned at the material's melting
    /// temperature, which is exactly the "temperature held stable while the
    /// material melts" behavior TTS exploits.
    pub fn temperature(&self) -> Celsius {
        let start = self.plateau_start();
        let end = start + self.latent_capacity();
        if self.enthalpy <= start {
            Celsius::new(
                self.enthalpy.get() / (self.mass.get() * self.material.specific_heat_solid().get()),
            )
        } else if self.enthalpy >= end {
            let above = self.enthalpy - end;
            self.material.melt_temperature()
                + vmt_units::DegC::new(
                    above.get() / (self.mass.get() * self.material.specific_heat_liquid().get()),
                )
        } else {
            self.material.melt_temperature()
        }
    }

    /// Fraction of the pack's latent capacity currently melted.
    pub fn melt_fraction(&self) -> Fraction {
        let start = self.plateau_start();
        Fraction::saturating((self.enthalpy - start).get() / self.latent_capacity().get())
    }

    /// Latent energy currently stored (melted portion only).
    pub fn stored_latent_energy(&self) -> Joules {
        self.latent_capacity() * self.melt_fraction().get()
    }

    /// Adds (positive) or removes (negative) heat.
    pub fn add_heat(&mut self, heat: Joules) {
        debug_assert!(heat.is_finite(), "heat must be finite");
        self.enthalpy += heat;
    }

    /// Restores the enthalpy state directly (state transfer between this
    /// per-object pack and a kernel's raw enthalpy scalar).
    pub fn set_enthalpy(&mut self, enthalpy: Joules) {
        debug_assert!(enthalpy.is_finite(), "enthalpy must be finite");
        self.enthalpy = enthalpy;
    }

    /// Heat required to bring the pack from its current state to sensible
    /// equilibrium at `target` (not including any latent melting at the
    /// target temperature itself). Negative when the pack must cool.
    pub fn heat_to_reach(&self, target: Celsius) -> Joules {
        self.enthalpy_at(target) - self.enthalpy
    }

    /// Resets the pack to equilibrium at `temperature` (solid below the
    /// melt point, liquid above, unmelted at exactly the melt point).
    pub fn set_temperature(&mut self, temperature: Celsius) {
        self.enthalpy = self.enthalpy_at(temperature);
    }

    /// Forces the melt fraction, keeping the pack on the latent plateau.
    ///
    /// Intended for constructing test scenarios and estimator corrections.
    pub fn set_melt_fraction(&mut self, fraction: Fraction) {
        self.enthalpy = self.plateau_start() + self.latent_capacity() * fraction.get();
    }

    /// Enthalpy of this pack equilibrated at `temperature`.
    fn enthalpy_at(&self, temperature: Celsius) -> Joules {
        let melt = self.material.melt_temperature();
        if temperature <= melt {
            self.material
                .specific_heat_solid()
                .sensible_heat(self.mass, temperature - Celsius::new(0.0))
        } else {
            self.plateau_start()
                + self.latent_capacity()
                + self
                    .material
                    .specific_heat_liquid()
                    .sensible_heat(self.mass, temperature - melt)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn pack_at(temp_c: f64) -> WaxPack {
        WaxPack::new(
            PcmMaterial::deployed_paraffin(),
            Kilograms::new(3.48),
            Celsius::new(temp_c),
        )
    }

    #[test]
    fn initial_state_below_melt_is_solid() {
        let pack = pack_at(25.0);
        assert!(pack.melt_fraction().is_zero());
        assert!((pack.temperature().get() - 25.0).abs() < 1e-9);
    }

    #[test]
    fn initial_state_above_melt_is_liquid() {
        let pack = pack_at(40.0);
        assert!(pack.melt_fraction().is_one());
        assert!((pack.temperature().get() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn temperature_pinned_during_melt() {
        let mut pack = pack_at(35.7);
        pack.add_heat(pack.latent_capacity() * 0.3);
        assert_eq!(pack.temperature(), Celsius::new(35.7));
        assert!((pack.melt_fraction().get() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn latent_capacity_matches_paper_scale() {
        // 3.48 kg × 226 kJ/kg ≈ 787 kJ per server.
        let pack = pack_at(25.0);
        assert!((pack.latent_capacity().to_megajoules() - 0.78648).abs() < 1e-6);
    }

    #[test]
    fn heat_to_reach_is_signed() {
        let pack = pack_at(25.0);
        assert!(pack.heat_to_reach(Celsius::new(30.0)).get() > 0.0);
        assert!(pack.heat_to_reach(Celsius::new(20.0)).get() < 0.0);
        assert_eq!(pack.heat_to_reach(Celsius::new(25.0)).get(), 0.0);
    }

    #[test]
    fn melt_then_freeze_round_trip() {
        let mut pack = pack_at(30.0);
        let melt_heat = pack.heat_to_reach(Celsius::new(35.7)) + pack.latent_capacity();
        pack.add_heat(melt_heat);
        assert!(pack.melt_fraction().is_one());
        pack.add_heat(-melt_heat);
        assert!(pack.melt_fraction().is_zero());
        assert!((pack.temperature().get() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn stored_latent_energy_tracks_fraction() {
        let mut pack = pack_at(35.7);
        pack.set_melt_fraction(Fraction::saturating(0.25));
        assert!(
            (pack.stored_latent_energy().get() - pack.latent_capacity().get() * 0.25).abs() < 1e-6
        );
    }

    #[test]
    #[should_panic(expected = "wax mass must be positive")]
    fn zero_mass_rejected() {
        WaxPack::new(
            PcmMaterial::deployed_paraffin(),
            Kilograms::new(0.0),
            Celsius::new(25.0),
        );
    }

    proptest! {
        /// Enthalpy ↔ temperature is monotone: more heat never lowers the
        /// temperature, and never lowers the melt fraction.
        #[test]
        fn heating_is_monotone(start in 0.0f64..60.0, heat in 0.0f64..2e6) {
            let mut pack = pack_at(start);
            let t0 = pack.temperature();
            let f0 = pack.melt_fraction();
            pack.add_heat(Joules::new(heat));
            prop_assert!(pack.temperature() >= t0);
            prop_assert!(pack.melt_fraction() >= f0);
        }

        /// set_temperature/temperature round-trips away from the plateau.
        #[test]
        fn temperature_round_trip(temp in 0.0f64..70.0) {
            let pack = pack_at(temp);
            if (temp - 35.7).abs() > 1e-9 {
                prop_assert!((pack.temperature().get() - temp).abs() < 1e-9);
            }
        }

        /// Adding heat and removing the same heat restores the state
        /// exactly (the model has no hysteresis).
        #[test]
        fn energy_conservation(start in 0.0f64..60.0, heat in -1e6f64..1e6) {
            let mut pack = pack_at(start);
            let h0 = pack.enthalpy();
            pack.add_heat(Joules::new(heat));
            pack.add_heat(Joules::new(-heat));
            prop_assert!((pack.enthalpy() - h0).get().abs() < 1e-6);
        }

        /// Melt fraction is always a valid fraction.
        #[test]
        fn melt_fraction_in_bounds(start in -10.0f64..80.0, heat in -5e6f64..5e6) {
            let mut pack = pack_at(start.max(0.0));
            pack.add_heat(Joules::new(heat));
            let f = pack.melt_fraction().get();
            prop_assert!((0.0..=1.0).contains(&f));
        }
    }
}
