//! Melt-state transition classification for cluster observability.
//!
//! The simulator's telemetry layer wants discrete *events* ("server 17's
//! wax began melting at tick 412") out of the continuous melt fractions
//! the estimators report. This module owns that classification so the
//! threshold and its hysteresis-free semantics live next to the wax
//! models they describe, not in the engine.

/// Reported melt fraction at and above which a server counts as
/// "melted" for event purposes.
///
/// Deliberately at the half-way point rather than a policy's
/// near-saturation `wax_threshold` (≈0.98): events should mark when a
/// store is substantially charged, which is visible earlier and is
/// robust against estimator noise around full saturation.
pub const MELT_EVENT_THRESHOLD: f64 = 0.5;

/// Direction of a melt-threshold crossing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MeltDirection {
    /// The store crossed the threshold upward (charging).
    Melting,
    /// The store crossed the threshold downward (discharging/refrozen).
    Freezing,
}

/// Classifies one observation against the previous melted state:
/// returns the crossing direction when `fraction` moved across
/// `threshold` relative to `was_melted`, `None` while the state holds.
///
/// The comparison is `>=`, matching [`MELT_EVENT_THRESHOLD`]'s
/// "at and above" contract; NaN fractions never count as melted.
pub fn classify_melt_transition(
    was_melted: bool,
    fraction: f64,
    threshold: f64,
) -> Option<MeltDirection> {
    let melted = fraction >= threshold;
    match (was_melted, melted) {
        (false, true) => Some(MeltDirection::Melting),
        (true, false) => Some(MeltDirection::Freezing),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn upward_crossing_is_melting() {
        assert_eq!(
            classify_melt_transition(false, 0.6, MELT_EVENT_THRESHOLD),
            Some(MeltDirection::Melting)
        );
        // Exactly on the threshold counts as melted.
        assert_eq!(
            classify_melt_transition(false, MELT_EVENT_THRESHOLD, MELT_EVENT_THRESHOLD),
            Some(MeltDirection::Melting)
        );
    }

    #[test]
    fn downward_crossing_is_freezing() {
        assert_eq!(
            classify_melt_transition(true, 0.4, MELT_EVENT_THRESHOLD),
            Some(MeltDirection::Freezing)
        );
    }

    #[test]
    fn holding_state_yields_no_event() {
        assert_eq!(classify_melt_transition(true, 0.9, 0.5), None);
        assert_eq!(classify_melt_transition(false, 0.1, 0.5), None);
    }

    #[test]
    fn nan_never_counts_as_melted() {
        assert_eq!(classify_melt_transition(false, f64::NAN, 0.5), None);
        assert_eq!(
            classify_melt_transition(true, f64::NAN, 0.5),
            Some(MeltDirection::Freezing)
        );
    }
}
