//! A discretized (multi-shell) wax pack: the reference model behind the
//! lumped approximation.
//!
//! The paper reduces a CFD model to lumped per-server parameters; this
//! module keeps one more level of fidelity available inside the library.
//! The wax is split into `N` concentric shells between the heat-exchange
//! wall and the container core. The wall shell exchanges with the air
//! (`UA` split per unit area); neighboring shells conduct with a
//! conductance derived from the wax's own conductivity. Each shell is a
//! small enthalpy-method pack, so the melt front *emerges*: the wall
//! shell melts first, the liquid layer's extra thermal path slows the
//! shells behind it — the behavior the lumped model's optional
//! `interface taper` coefficient approximates with a single knob.
//!
//! Use [`ShellPack`] directly for validation studies (see the
//! `lumped_vs_discretized` test) or wherever per-server fidelity matters
//! more than simulation speed: stepping `N` shells costs `N×` the lumped
//! pack.

use crate::{PcmMaterial, WaxPack};
use vmt_units::{Celsius, Fraction, Joules, Kilograms, Seconds, Watts, WattsPerKelvin};

/// A wax pack discretized into conduction-coupled shells.
///
/// # Examples
///
/// ```
/// use vmt_pcm::{PcmMaterial, ShellPack};
/// use vmt_units::{Celsius, Kilograms, Seconds, WattsPerKelvin};
///
/// let mut pack = ShellPack::new(
///     PcmMaterial::deployed_paraffin(),
///     Kilograms::new(3.48),
///     Celsius::new(25.0),
///     8,
///     WattsPerKelvin::new(17.5),
/// );
/// // Hot air melts the wall shell first.
/// for _ in 0..120 {
///     pack.step(Celsius::new(42.0), Seconds::new(60.0));
/// }
/// assert!(pack.shell_melt_fraction(0).get() > pack.shell_melt_fraction(7).get());
/// ```
#[derive(Debug, Clone)]
pub struct ShellPack {
    shells: Vec<WaxPack>,
    /// Wall-to-first-shell conductance.
    wall_ua: WattsPerKelvin,
    /// Shell-to-shell conductance.
    inter_ua: WattsPerKelvin,
}

/// Paraffin thermal conductivity (W/m·K), low — the reason melt fronts
/// matter.
const PARAFFIN_K: f64 = 0.24;
/// Effective exchange area of the paper's four containers (m²).
const EXCHANGE_AREA_M2: f64 = 0.30;
/// Effective wax slab thickness (m): volume / area.
const SLAB_THICKNESS_M: f64 = 0.004 / EXCHANGE_AREA_M2;

impl ShellPack {
    /// Creates a pack of `mass` split into `shells` equal shells,
    /// equilibrated at `initial`, with `wall_ua` between the air and the
    /// wall shell.
    ///
    /// # Panics
    ///
    /// Panics if `shells` is zero or `mass` is not positive (the
    /// underlying [`WaxPack`] validates the rest).
    pub fn new(
        material: PcmMaterial,
        mass: Kilograms,
        initial: Celsius,
        shells: usize,
        wall_ua: WattsPerKelvin,
    ) -> Self {
        assert!(shells > 0, "at least one shell");
        let per_shell = mass / shells as f64;
        let packs = (0..shells)
            .map(|_| WaxPack::new(material.clone(), per_shell, initial))
            .collect();
        // Conduction between shell centers: k·A / Δx with Δx = one shell
        // thickness of the slab.
        let dx = SLAB_THICKNESS_M / shells as f64;
        let inter_ua = WattsPerKelvin::new(PARAFFIN_K * EXCHANGE_AREA_M2 / dx);
        Self {
            shells: packs,
            wall_ua,
            inter_ua,
        }
    }

    /// Number of shells.
    pub fn shells(&self) -> usize {
        self.shells.len()
    }

    /// Melt fraction of one shell (0 = wall, last = core).
    ///
    /// # Panics
    ///
    /// Panics if `shell` is out of range.
    pub fn shell_melt_fraction(&self, shell: usize) -> Fraction {
        self.shells[shell].melt_fraction()
    }

    /// Mass-weighted melt fraction of the whole pack.
    pub fn melt_fraction(&self) -> Fraction {
        let sum: f64 = self.shells.iter().map(|s| s.melt_fraction().get()).sum();
        Fraction::saturating(sum / self.shells.len() as f64)
    }

    /// Total enthalpy relative to solid at 0 °C.
    pub fn enthalpy(&self) -> Joules {
        self.shells.iter().map(WaxPack::enthalpy).sum()
    }

    /// Total latent energy currently stored.
    pub fn stored_latent_energy(&self) -> Joules {
        self.shells.iter().map(WaxPack::stored_latent_energy).sum()
    }

    /// Advances the pack by `dt` with the air at `air`, returning the
    /// average heat-flow rate into the pack (positive = absorbing).
    pub fn step(&mut self, air: Celsius, dt: Seconds) -> Watts {
        // Sub-step for stability of the explicit conduction update: the
        // smallest shell time constant bounds the step.
        let shell_capacity =
            self.shells[0].mass().get() * self.shells[0].material().specific_heat_solid().get();
        let fastest_ua = self.wall_ua.get().max(2.0 * self.inter_ua.get());
        let tau = shell_capacity / fastest_ua;
        let substeps = (dt.get() / (tau / 4.0)).ceil().max(1.0) as usize;
        let sub_dt = dt.get() / substeps as f64;

        let mut absorbed = 0.0;
        for _ in 0..substeps {
            // Heat flows computed from the start-of-substep temperatures.
            let temps: Vec<f64> = self.shells.iter().map(|s| s.temperature().get()).collect();
            // Air → wall shell.
            let q_wall = self.wall_ua.get() * (air.get() - temps[0]);
            self.shells[0].add_heat(Joules::new(q_wall * sub_dt));
            absorbed += q_wall * sub_dt;
            // Shell i → shell i+1 conduction.
            for i in 0..self.shells.len() - 1 {
                let q = self.inter_ua.get() * (temps[i] - temps[i + 1]);
                self.shells[i].add_heat(Joules::new(-q * sub_dt));
                self.shells[i + 1].add_heat(Joules::new(q * sub_dt));
            }
        }
        Watts::new(absorbed / dt.get())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HeatExchanger, ServerWaxConfig};

    fn pack(shells: usize) -> ShellPack {
        ShellPack::new(
            PcmMaterial::deployed_paraffin(),
            ServerWaxConfig::default().mass(),
            Celsius::new(25.0),
            shells,
            WattsPerKelvin::new(17.5),
        )
    }

    #[test]
    fn melt_front_moves_inward() {
        let mut p = pack(8);
        for _ in 0..180 {
            p.step(Celsius::new(42.0), Seconds::new(60.0));
        }
        // Monotone front: each shell at least as melted as the one
        // behind it.
        let fractions: Vec<f64> = (0..8).map(|i| p.shell_melt_fraction(i).get()).collect();
        for w in fractions.windows(2) {
            assert!(w[0] >= w[1] - 1e-9, "front not monotone: {fractions:?}");
        }
        assert!(
            fractions[0] > 0.5,
            "wall shell should be melting: {fractions:?}"
        );
    }

    #[test]
    fn energy_is_conserved() {
        let mut p = pack(6);
        let h0 = p.enthalpy();
        let mut absorbed = 0.0;
        for i in 0..240 {
            let air = if i < 120 { 42.0 } else { 24.0 };
            absorbed += p.step(Celsius::new(air), Seconds::new(60.0)).get() * 60.0;
        }
        let dh = (p.enthalpy() - h0).get();
        assert!(
            (dh - absorbed).abs() < 1.0,
            "conservation violated: Δh {dh:.1} vs absorbed {absorbed:.1}"
        );
    }

    #[test]
    fn discretization_shows_emergent_taper() {
        // The discretized pack's absorption falls off as the front
        // recedes, like the lumped model with a positive taper and
        // unlike the taper-free lumped model.
        let mass = ServerWaxConfig::default().mass();
        let mut shell = pack(8);
        let mut lumped = WaxPack::new(PcmMaterial::deployed_paraffin(), mass, Celsius::new(25.0));
        let hx = HeatExchanger::new(WattsPerKelvin::new(17.5));

        // Drive both to ~70% melt, then compare instantaneous absorption.
        let air = Celsius::new(42.0);
        while shell.melt_fraction().get() < 0.7 {
            shell.step(air, Seconds::new(60.0));
        }
        while lumped.melt_fraction().get() < 0.7 {
            hx.step(&mut lumped, air, Seconds::new(60.0));
        }
        let shell_rate = shell.step(air, Seconds::new(60.0)).get();
        let lumped_rate = hx
            .step(&mut lumped, air, Seconds::new(60.0))
            .heat_to_wax
            .get()
            / 60.0;
        assert!(
            shell_rate < lumped_rate * 0.9,
            "discretized rate {shell_rate:.1} W should taper below lumped {lumped_rate:.1} W"
        );
    }

    #[test]
    fn single_shell_matches_lumped_pack() {
        let mass = ServerWaxConfig::default().mass();
        let mut shell = pack(1);
        let mut lumped = WaxPack::new(PcmMaterial::deployed_paraffin(), mass, Celsius::new(25.0));
        let hx = HeatExchanger::new(WattsPerKelvin::new(17.5));
        for _ in 0..240 {
            shell.step(Celsius::new(40.0), Seconds::new(60.0));
            hx.step(&mut lumped, Celsius::new(40.0), Seconds::new(60.0));
        }
        let d = (shell.melt_fraction().get() - lumped.melt_fraction().get()).abs();
        assert!(
            d < 0.02,
            "single shell should track the lumped pack, Δ={d:.3}"
        );
    }

    #[test]
    fn refreezes_from_the_wall_inward() {
        let mut p = pack(6);
        // Melt fully, then cool.
        for _ in 0..(20 * 60) {
            p.step(Celsius::new(45.0), Seconds::new(60.0));
        }
        assert!(p.melt_fraction().get() > 0.95);
        for _ in 0..240 {
            p.step(Celsius::new(20.0), Seconds::new(60.0));
        }
        // The wall shell refreezes first.
        assert!(p.shell_melt_fraction(0) <= p.shell_melt_fraction(5));
        assert!(p.melt_fraction().get() < 0.95);
    }

    #[test]
    #[should_panic(expected = "at least one shell")]
    fn zero_shells_rejected() {
        ShellPack::new(
            PcmMaterial::deployed_paraffin(),
            Kilograms::new(1.0),
            Celsius::new(25.0),
            0,
            WattsPerKelvin::new(10.0),
        );
    }
}
