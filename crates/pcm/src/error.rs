//! Error type for PCM model construction and validation.

use core::fmt;
use vmt_units::Celsius;

/// Errors produced when constructing or configuring PCM models.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PcmError {
    /// Requested a commercial paraffin melting temperature outside the
    /// commercially available range (the paper's 35.7–60 °C window).
    MeltTemperatureUnavailable {
        /// The requested melting temperature.
        requested: Celsius,
        /// The lowest commercially available melting temperature.
        lo: Celsius,
        /// The highest commercially available melting temperature.
        hi: Celsius,
    },
    /// A material property that must be strictly positive was not.
    NonPositiveProperty {
        /// Name of the offending property.
        property: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// Requested more wax volume than the server chassis can hold.
    VolumeExceedsChassis {
        /// The requested volume in liters.
        requested_liters: f64,
        /// The maximum volume the chassis can hold in liters.
        max_liters: f64,
    },
}

impl fmt::Display for PcmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PcmError::MeltTemperatureUnavailable { requested, lo, hi } => write!(
                f,
                "melting temperature {requested:.1} is outside the commercial paraffin range \
                 [{lo:.1}, {hi:.1}]"
            ),
            PcmError::NonPositiveProperty { property, value } => {
                write!(
                    f,
                    "material property {property} must be positive, got {value}"
                )
            }
            PcmError::VolumeExceedsChassis {
                requested_liters,
                max_liters,
            } => write!(
                f,
                "requested wax volume {requested_liters} L exceeds the chassis limit of \
                 {max_liters} L"
            ),
        }
    }
}

impl std::error::Error for PcmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let err = PcmError::MeltTemperatureUnavailable {
            requested: Celsius::new(30.0),
            lo: Celsius::new(35.7),
            hi: Celsius::new(60.0),
        };
        assert!(err.to_string().contains("30.0"));
        assert!(err.to_string().contains("35.7"));

        let err = PcmError::NonPositiveProperty {
            property: "latent_heat",
            value: -1.0,
        };
        assert!(err.to_string().contains("latent_heat"));

        let err = PcmError::VolumeExceedsChassis {
            requested_liters: 9.0,
            max_liters: 4.0,
        };
        assert!(err.to_string().contains("9 L"));
    }
}
