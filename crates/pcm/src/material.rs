//! Thermophysical properties and procurement cost of phase change
//! materials.
//!
//! The paper's economics hinge on the difference between *commercial*
//! paraffin (≈ $1,000/ton, melting temperatures only available between
//! 35.7 °C and 60 °C) and molecularly pure *n-paraffin* (arbitrary melting
//! temperatures, but > $75,000/ton — cost prohibitive at datacenter scale).
//! VMT exists precisely because a datacenter stuck with the 35.7 °C floor
//! can *virtually* lower it via job placement instead of buying n-paraffin.

use crate::PcmError;
use vmt_units::{
    Celsius, Dollars, JoulesPerKg, JoulesPerKgKelvin, Kilograms, KilogramsPerCubicMeter,
};

/// Procurement class of a PCM, which determines cost and the available
/// melting-temperature range.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum MaterialClass {
    /// Commercial-grade paraffin wax: cheap, melting temperatures limited
    /// to the 35.7–60 °C window.
    CommercialParaffin,
    /// Molecularly pure n-paraffin: any melting temperature, but roughly
    /// 75× the cost of commercial wax.
    PureNParaffin,
    /// Water/ice — included for comparison with sensible/latent storage
    /// literature; not deployable behind CPU heat sinks.
    Water,
    /// A custom material supplied by the user.
    Custom,
}

impl core::fmt::Display for MaterialClass {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let name = match self {
            MaterialClass::CommercialParaffin => "commercial paraffin",
            MaterialClass::PureNParaffin => "pure n-paraffin",
            MaterialClass::Water => "water",
            MaterialClass::Custom => "custom",
        };
        f.write_str(name)
    }
}

/// A phase change material: melt point, latent heat, specific heats,
/// density, and procurement cost.
///
/// Construct via [`PcmMaterial::commercial_paraffin`],
/// [`PcmMaterial::n_paraffin`], [`PcmMaterial::water`], or
/// [`PcmMaterial::custom`].
///
/// # Examples
///
/// ```
/// use vmt_pcm::PcmMaterial;
/// use vmt_units::Celsius;
///
/// // The paper's deployed wax: the lowest commercially available melt point.
/// let wax = PcmMaterial::commercial_paraffin(Celsius::new(35.7)).unwrap();
/// assert_eq!(wax.melt_temperature(), Celsius::new(35.7));
///
/// // Anything below the commercial floor requires n-paraffin.
/// assert!(PcmMaterial::commercial_paraffin(Celsius::new(29.7)).is_err());
/// let pure = PcmMaterial::n_paraffin(Celsius::new(29.7)).unwrap();
/// assert!(pure.cost_per_ton() > wax.cost_per_ton());
/// ```
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PcmMaterial {
    name: String,
    class: MaterialClass,
    melt_temperature: Celsius,
    latent_heat: JoulesPerKg,
    specific_heat_solid: JoulesPerKgKelvin,
    specific_heat_liquid: JoulesPerKgKelvin,
    density_solid: KilogramsPerCubicMeter,
    cost_per_ton: Dollars,
}

/// Lowest commercially available paraffin melting temperature (°C).
pub(crate) const COMMERCIAL_MELT_LO_C: f64 = 35.7;
/// Highest commercially available paraffin melting temperature (°C).
pub(crate) const COMMERCIAL_MELT_HI_C: f64 = 60.0;

/// Paraffin latent heat of fusion (J/kg), mid-range for commercial grades.
const PARAFFIN_LATENT_J_PER_KG: f64 = 226_000.0;
/// Paraffin solid specific heat (J/kg·K).
const PARAFFIN_CP_SOLID: f64 = 2_100.0;
/// Paraffin liquid specific heat (J/kg·K).
const PARAFFIN_CP_LIQUID: f64 = 2_400.0;
/// Paraffin solid density (kg/m³).
const PARAFFIN_DENSITY_SOLID: f64 = 870.0;
/// Commercial paraffin cost (USD per metric ton), per the paper.
const PARAFFIN_COST_PER_TON: f64 = 1_000.0;
/// Pure n-paraffin cost (USD per metric ton), per the paper ("in excess of
/// $75,000 per ton").
const N_PARAFFIN_COST_PER_TON: f64 = 75_000.0;

impl PcmMaterial {
    /// Commercial-grade paraffin with the given melting temperature.
    ///
    /// # Errors
    ///
    /// Returns [`PcmError::MeltTemperatureUnavailable`] if `melt` lies
    /// outside the commercially available 35.7–60 °C window.
    pub fn commercial_paraffin(melt: Celsius) -> Result<Self, PcmError> {
        if !(COMMERCIAL_MELT_LO_C..=COMMERCIAL_MELT_HI_C).contains(&melt.get()) {
            return Err(PcmError::MeltTemperatureUnavailable {
                requested: melt,
                lo: Celsius::new(COMMERCIAL_MELT_LO_C),
                hi: Celsius::new(COMMERCIAL_MELT_HI_C),
            });
        }
        Ok(Self {
            name: format!("commercial paraffin ({:.1})", melt),
            class: MaterialClass::CommercialParaffin,
            melt_temperature: melt,
            latent_heat: JoulesPerKg::new(PARAFFIN_LATENT_J_PER_KG),
            specific_heat_solid: JoulesPerKgKelvin::new(PARAFFIN_CP_SOLID),
            specific_heat_liquid: JoulesPerKgKelvin::new(PARAFFIN_CP_LIQUID),
            density_solid: KilogramsPerCubicMeter::new(PARAFFIN_DENSITY_SOLID),
            cost_per_ton: Dollars::new(PARAFFIN_COST_PER_TON),
        })
    }

    /// The paper's deployed wax: commercial paraffin at the lowest
    /// commercially available melting temperature, 35.7 °C.
    pub fn deployed_paraffin() -> Self {
        Self::commercial_paraffin(Celsius::new(COMMERCIAL_MELT_LO_C))
            .expect("35.7 °C is within the commercial range")
    }

    /// Molecularly pure n-paraffin with an arbitrary melting temperature
    /// (10–70 °C), at n-paraffin prices.
    ///
    /// # Errors
    ///
    /// Returns [`PcmError::MeltTemperatureUnavailable`] for melting
    /// temperatures outside the physically sensible 10–70 °C alkane range.
    pub fn n_paraffin(melt: Celsius) -> Result<Self, PcmError> {
        if !(10.0..=70.0).contains(&melt.get()) {
            return Err(PcmError::MeltTemperatureUnavailable {
                requested: melt,
                lo: Celsius::new(10.0),
                hi: Celsius::new(70.0),
            });
        }
        Ok(Self {
            name: format!("pure n-paraffin ({:.1})", melt),
            class: MaterialClass::PureNParaffin,
            melt_temperature: melt,
            latent_heat: JoulesPerKg::new(PARAFFIN_LATENT_J_PER_KG),
            specific_heat_solid: JoulesPerKgKelvin::new(PARAFFIN_CP_SOLID),
            specific_heat_liquid: JoulesPerKgKelvin::new(PARAFFIN_CP_LIQUID),
            density_solid: KilogramsPerCubicMeter::new(PARAFFIN_DENSITY_SOLID),
            cost_per_ton: Dollars::new(N_PARAFFIN_COST_PER_TON),
        })
    }

    /// Water/ice, for comparison with sensible/latent-storage literature.
    pub fn water() -> Self {
        Self {
            name: "water".to_owned(),
            class: MaterialClass::Water,
            melt_temperature: Celsius::new(0.0),
            latent_heat: JoulesPerKg::new(334_000.0),
            specific_heat_solid: JoulesPerKgKelvin::new(2_108.0),
            specific_heat_liquid: JoulesPerKgKelvin::new(4_186.0),
            density_solid: KilogramsPerCubicMeter::new(917.0),
            cost_per_ton: Dollars::new(1.0),
        }
    }

    /// A fully custom material.
    ///
    /// # Errors
    ///
    /// Returns [`PcmError::NonPositiveProperty`] if any of the latent heat,
    /// specific heats, density, or cost is not strictly positive.
    #[allow(clippy::too_many_arguments)]
    pub fn custom(
        name: impl Into<String>,
        melt: Celsius,
        latent_heat: JoulesPerKg,
        specific_heat_solid: JoulesPerKgKelvin,
        specific_heat_liquid: JoulesPerKgKelvin,
        density_solid: KilogramsPerCubicMeter,
        cost_per_ton: Dollars,
    ) -> Result<Self, PcmError> {
        fn positive(property: &'static str, value: f64) -> Result<(), PcmError> {
            if value > 0.0 && value.is_finite() {
                Ok(())
            } else {
                Err(PcmError::NonPositiveProperty { property, value })
            }
        }
        positive("latent_heat", latent_heat.get())?;
        positive("specific_heat_solid", specific_heat_solid.get())?;
        positive("specific_heat_liquid", specific_heat_liquid.get())?;
        positive("density_solid", density_solid.get())?;
        positive("cost_per_ton", cost_per_ton.get())?;
        Ok(Self {
            name: name.into(),
            class: MaterialClass::Custom,
            melt_temperature: melt,
            latent_heat,
            specific_heat_solid,
            specific_heat_liquid,
            density_solid,
            cost_per_ton,
        })
    }

    /// Returns a copy of this material with a scaled latent heat of fusion.
    ///
    /// Table II of the paper derives the GV → VMT mapping by "modifying the
    /// wax heat of fusion to match the available thermal energy storage in
    /// the hot group"; this method is that knob.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not strictly positive and finite.
    pub fn with_latent_heat_scaled(&self, factor: f64) -> Self {
        assert!(
            factor > 0.0 && factor.is_finite(),
            "latent heat scale factor must be positive and finite, got {factor}"
        );
        Self {
            latent_heat: self.latent_heat * factor,
            ..self.clone()
        }
    }

    /// Returns a copy of this material with a different melting
    /// temperature, preserving every other property.
    ///
    /// Used by the Table II equivalence search, which sweeps a *physical*
    /// melting temperature to find the one that matches VMT's behavior.
    pub fn with_melt_temperature(&self, melt: Celsius) -> Self {
        Self {
            melt_temperature: melt,
            ..self.clone()
        }
    }

    /// Human-readable material name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Procurement class.
    pub fn class(&self) -> MaterialClass {
        self.class
    }

    /// Melting (phase transition) temperature.
    pub fn melt_temperature(&self) -> Celsius {
        self.melt_temperature
    }

    /// Latent heat of fusion.
    pub fn latent_heat(&self) -> JoulesPerKg {
        self.latent_heat
    }

    /// Specific heat of the solid phase.
    pub fn specific_heat_solid(&self) -> JoulesPerKgKelvin {
        self.specific_heat_solid
    }

    /// Specific heat of the liquid phase.
    pub fn specific_heat_liquid(&self) -> JoulesPerKgKelvin {
        self.specific_heat_liquid
    }

    /// Density of the solid phase (packs are filled with solid wax).
    pub fn density_solid(&self) -> KilogramsPerCubicMeter {
        self.density_solid
    }

    /// Procurement cost per metric ton.
    pub fn cost_per_ton(&self) -> Dollars {
        self.cost_per_ton
    }

    /// A small catalog of representative commercial paraffin grades
    /// (named after their nominal melting temperatures), spanning the
    /// commercially available window the paper describes.
    ///
    /// # Examples
    ///
    /// ```
    /// use vmt_pcm::PcmMaterial;
    ///
    /// let catalog = PcmMaterial::commercial_catalog();
    /// assert!(catalog.len() >= 5);
    /// // Grades are sorted by melting temperature, coolest first.
    /// assert!(catalog.windows(2).all(|w| {
    ///     w[0].melt_temperature() <= w[1].melt_temperature()
    /// }));
    /// ```
    pub fn commercial_catalog() -> Vec<Self> {
        [35.7, 38.0, 42.0, 46.0, 50.0, 55.0, 60.0]
            .into_iter()
            .map(|melt| {
                Self::commercial_paraffin(Celsius::new(melt))
                    .expect("catalog grades are within the commercial window")
            })
            .collect()
    }

    /// The coolest commercial grade whose melting temperature is at or
    /// above `minimum` — the procurement question TTS deployments
    /// actually ask ("what is the lowest melt point I can buy that still
    /// clears my off-hours temperature?").
    pub fn coolest_commercial_at_least(minimum: Celsius) -> Option<Self> {
        Self::commercial_catalog()
            .into_iter()
            .find(|m| m.melt_temperature() >= minimum)
    }

    /// Procurement cost for a given mass.
    ///
    /// # Examples
    ///
    /// ```
    /// use vmt_pcm::PcmMaterial;
    /// use vmt_units::Kilograms;
    ///
    /// let wax = PcmMaterial::deployed_paraffin();
    /// // 3.48 kg/server × $1000/ton ≈ $3.48/server — "less than 0.5% of
    /// // the purchase cost per server".
    /// let per_server = wax.cost_for(Kilograms::new(3.48));
    /// assert!((per_server.get() - 3.48).abs() < 1e-9);
    /// ```
    pub fn cost_for(&self, mass: Kilograms) -> Dollars {
        self.cost_per_ton * mass.to_tons()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commercial_range_is_enforced() {
        assert!(PcmMaterial::commercial_paraffin(Celsius::new(35.7)).is_ok());
        assert!(PcmMaterial::commercial_paraffin(Celsius::new(60.0)).is_ok());
        assert!(PcmMaterial::commercial_paraffin(Celsius::new(35.6)).is_err());
        assert!(PcmMaterial::commercial_paraffin(Celsius::new(60.1)).is_err());
    }

    #[test]
    fn deployed_paraffin_matches_paper() {
        let wax = PcmMaterial::deployed_paraffin();
        assert_eq!(wax.melt_temperature(), Celsius::new(35.7));
        assert_eq!(wax.class(), MaterialClass::CommercialParaffin);
        assert_eq!(wax.cost_per_ton(), Dollars::new(1000.0));
    }

    #[test]
    fn n_paraffin_reaches_below_commercial_floor() {
        let pure = PcmMaterial::n_paraffin(Celsius::new(29.7)).unwrap();
        assert_eq!(pure.melt_temperature(), Celsius::new(29.7));
        assert_eq!(pure.cost_per_ton(), Dollars::new(75_000.0));
        assert!(PcmMaterial::n_paraffin(Celsius::new(5.0)).is_err());
    }

    #[test]
    fn custom_rejects_non_positive_properties() {
        let err = PcmMaterial::custom(
            "bad",
            Celsius::new(40.0),
            JoulesPerKg::new(0.0),
            JoulesPerKgKelvin::new(2000.0),
            JoulesPerKgKelvin::new(2000.0),
            KilogramsPerCubicMeter::new(900.0),
            Dollars::new(100.0),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            PcmError::NonPositiveProperty {
                property: "latent_heat",
                ..
            }
        ));
    }

    #[test]
    fn latent_heat_scaling() {
        let wax = PcmMaterial::deployed_paraffin();
        let scaled = wax.with_latent_heat_scaled(0.5);
        assert!((scaled.latent_heat().get() - wax.latent_heat().get() * 0.5).abs() < 1e-9);
        assert_eq!(scaled.melt_temperature(), wax.melt_temperature());
    }

    #[test]
    #[should_panic(expected = "scale factor must be positive")]
    fn latent_heat_scaling_rejects_zero() {
        PcmMaterial::deployed_paraffin().with_latent_heat_scaled(0.0);
    }

    #[test]
    fn melt_temperature_override() {
        let wax = PcmMaterial::deployed_paraffin();
        let moved = wax.with_melt_temperature(Celsius::new(30.7));
        assert_eq!(moved.melt_temperature(), Celsius::new(30.7));
        assert_eq!(moved.latent_heat(), wax.latent_heat());
    }

    #[test]
    fn water_properties() {
        let water = PcmMaterial::water();
        assert_eq!(water.melt_temperature(), Celsius::new(0.0));
        assert!(water.latent_heat().get() > 300_000.0);
    }

    #[test]
    fn class_display() {
        assert_eq!(
            MaterialClass::CommercialParaffin.to_string(),
            "commercial paraffin"
        );
        assert_eq!(MaterialClass::PureNParaffin.to_string(), "pure n-paraffin");
    }

    #[test]
    fn catalog_spans_the_commercial_window() {
        let catalog = PcmMaterial::commercial_catalog();
        assert_eq!(
            catalog.first().unwrap().melt_temperature(),
            Celsius::new(35.7)
        );
        assert_eq!(
            catalog.last().unwrap().melt_temperature(),
            Celsius::new(60.0)
        );
        assert!(catalog
            .iter()
            .all(|m| m.class() == MaterialClass::CommercialParaffin));
    }

    #[test]
    fn coolest_grade_selection() {
        let m = PcmMaterial::coolest_commercial_at_least(Celsius::new(40.0)).unwrap();
        assert_eq!(m.melt_temperature(), Celsius::new(42.0));
        assert!(PcmMaterial::coolest_commercial_at_least(Celsius::new(61.0)).is_none());
        // The paper's deployment is the catalog's floor.
        let floor = PcmMaterial::coolest_commercial_at_least(Celsius::new(0.0)).unwrap();
        assert_eq!(floor.melt_temperature(), Celsius::new(35.7));
    }

    #[test]
    fn mass_cost() {
        let wax = PcmMaterial::deployed_paraffin();
        let dc_cost = wax.cost_for(Kilograms::new(3.48 * 50_000.0));
        // Waxing all 50k servers of the 25 MW datacenter ≈ $174k.
        assert!((dc_cost.get() - 174_000.0).abs() < 1.0);
    }
}
