//! Plain-value wax kernels: the enthalpy-method pack state collapsed to
//! raw `f64`s.
//!
//! [`crate::HeatExchanger::step`] delegates here, and the
//! structure-of-arrays farm sweep in `vmt_dcsim` calls the same kernel
//! over a contiguous enthalpy array — one implementation of the physics,
//! so the per-object and vectorized paths cannot drift apart. Every
//! expression mirrors the unit-typed code operation for operation, which
//! keeps results bit-identical between the two call sites.

use crate::PcmMaterial;
use vmt_units::{Celsius, Kilograms, WattsPerKelvin};

/// Precomputed constants of one wax-pack design (material, mass,
/// exchanger), shared by every server that carries the same pack.
///
/// The per-server state is a single enthalpy scalar (J, relative to
/// solid material at 0 °C); temperature and melt fraction are derived on
/// demand exactly as [`crate::WaxPack`] derives them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WaxKernel {
    /// Enthalpy at which melting begins (solid at the melt point).
    plateau_start_j: f64,
    /// Total latent storage capacity `m · L`.
    latent_capacity_j: f64,
    /// Solid-phase heat capacity `m · c_p,solid`.
    mass_cs: f64,
    /// Liquid-phase heat capacity `m · c_p,liquid`.
    mass_cl: f64,
    /// Melting temperature (°C).
    melt_c: f64,
    /// Exchanger conductance (W/K).
    ua_w_per_k: f64,
    /// Phase-interface taper coefficient `b`.
    taper: f64,
    /// Binding sensible heat capacity `m · min(c_s, c_l)` for sub-step
    /// sizing.
    min_heat_capacity: f64,
}

impl WaxKernel {
    /// Builds the kernel for a pack of `mass` of `material` behind an
    /// exchanger with conductance `ua` and interface taper `taper`.
    pub fn new(material: &PcmMaterial, mass: Kilograms, ua: WattsPerKelvin, taper: f64) -> Self {
        let plateau_start_j = material
            .specific_heat_solid()
            .sensible_heat(mass, material.melt_temperature() - Celsius::new(0.0))
            .get();
        let latent_capacity_j = (mass * material.latent_heat()).get();
        Self {
            plateau_start_j,
            latent_capacity_j,
            mass_cs: mass.get() * material.specific_heat_solid().get(),
            mass_cl: mass.get() * material.specific_heat_liquid().get(),
            melt_c: material.melt_temperature().get(),
            ua_w_per_k: ua.get(),
            taper,
            min_heat_capacity: mass.get()
                * material
                    .specific_heat_solid()
                    .get()
                    .min(material.specific_heat_liquid().get()),
        }
    }

    /// Total latent storage capacity of the pack (J).
    #[inline]
    pub fn latent_capacity_j(&self) -> f64 {
        self.latent_capacity_j
    }

    /// Lumped pack temperature (°C) at an enthalpy.
    #[inline]
    pub fn temperature(&self, enthalpy_j: f64) -> f64 {
        let start = self.plateau_start_j;
        let end = start + self.latent_capacity_j;
        if enthalpy_j <= start {
            enthalpy_j / self.mass_cs
        } else if enthalpy_j >= end {
            self.melt_c + (enthalpy_j - end) / self.mass_cl
        } else {
            self.melt_c
        }
    }

    /// Melt fraction in `[0, 1]` at an enthalpy (saturating, NaN → 0 —
    /// the same rule as `Fraction::saturating`).
    #[inline]
    pub fn melt_fraction(&self, enthalpy_j: f64) -> f64 {
        let raw = (enthalpy_j - self.plateau_start_j) / self.latent_capacity_j;
        if raw.is_nan() {
            0.0
        } else {
            raw.clamp(0.0, 1.0)
        }
    }

    /// True when the exchanger carries no phase-interface taper — the
    /// paper's deployment (`b = 0`), and the condition under which
    /// [`WaxKernel::exchange_step_untapered`] is exactly one sub-step of
    /// [`WaxKernel::exchange`]: `ua / (1 + 0 · receded)` is `ua` for
    /// every finite recession, so the tapered divide can be dropped
    /// without moving a single bit.
    #[inline]
    pub fn is_untapered(&self) -> bool {
        self.taper == 0.0
    }

    /// Branch-light form of [`WaxKernel::temperature`]: both phase arms
    /// are always computed and the result selected, so the fused farm
    /// sweep's inner loop carries no data-dependent branches and
    /// auto-vectorizes. Bit-identical to `temperature` — the arms are
    /// the same expressions (divisions included, never reciprocal
    /// multiplies) and the predicates are tested in the same order.
    #[inline]
    pub fn temperature_selected(&self, enthalpy_j: f64) -> f64 {
        let start = self.plateau_start_j;
        let end = start + self.latent_capacity_j;
        let solid = enthalpy_j / self.mass_cs;
        let liquid = self.melt_c + (enthalpy_j - end) / self.mass_cl;
        let upper = if enthalpy_j >= end {
            liquid
        } else {
            self.melt_c
        };
        if enthalpy_j <= start {
            solid
        } else {
            upper
        }
    }

    /// One sub-step of the air-to-wax exchange for an untapered
    /// exchanger ([`WaxKernel::is_untapered`]). Returns the new enthalpy
    /// and the heat moved (J). Bit-identical to
    /// `exchange(enthalpy, air, 1, sub_dt_s)` when `taper == 0`; the
    /// fused farm sweep takes this path on the paper's one-substep,
    /// zero-taper tick and falls back to [`WaxKernel::exchange`]
    /// otherwise.
    #[inline]
    pub fn exchange_step_untapered(
        &self,
        enthalpy_j: f64,
        air_c: f64,
        sub_dt_s: f64,
    ) -> (f64, f64) {
        debug_assert!(self.is_untapered());
        let delta = air_c - self.temperature_selected(enthalpy_j);
        let q = self.ua_w_per_k * delta * sub_dt_s;
        (enthalpy_j + q, q)
    }

    /// Sub-step count and sub-step length for a tick of `dt_s` seconds,
    /// keeping each explicit sub-step below a quarter of the pack's
    /// sensible time constant `τ = m·c_p / UA`.
    #[inline]
    pub fn substeps(&self, dt_s: f64) -> (usize, f64) {
        let tau = self.min_heat_capacity / self.ua_w_per_k;
        let substeps = (dt_s / (tau / 4.0)).ceil().max(1.0) as usize;
        (substeps, dt_s / substeps as f64)
    }

    /// Sub-stepped air-to-wax exchange over one tick. Returns the new
    /// enthalpy and the total heat moved into the wax (J, negative while
    /// the wax releases heat back into the air).
    ///
    /// `substeps`/`sub_dt_s` come from [`WaxKernel::substeps`]; a farm
    /// sweep computes them once per tick since `dt` is shared.
    #[inline]
    pub fn exchange(
        &self,
        mut enthalpy_j: f64,
        air_c: f64,
        substeps: usize,
        sub_dt_s: f64,
    ) -> (f64, f64) {
        let mut total = 0.0;
        for _ in 0..substeps {
            let delta = air_c - self.temperature(enthalpy_j);
            let fraction = self.melt_fraction(enthalpy_j);
            let receded = if delta > 0.0 {
                fraction
            } else {
                1.0 - fraction
            };
            let ua = self.ua_w_per_k / (1.0 + self.taper * receded);
            let q = ua * delta * sub_dt_s;
            enthalpy_j += q;
            total += q;
        }
        (enthalpy_j, total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WaxPack;

    fn kernel() -> WaxKernel {
        WaxKernel::new(
            &PcmMaterial::deployed_paraffin(),
            Kilograms::new(3.48),
            WattsPerKelvin::new(15.0),
            0.0,
        )
    }

    fn pack_at(temp_c: f64) -> WaxPack {
        WaxPack::new(
            PcmMaterial::deployed_paraffin(),
            Kilograms::new(3.48),
            Celsius::new(temp_c),
        )
    }

    #[test]
    fn derivations_match_pack() {
        let k = kernel();
        for temp in [10.0, 25.0, 35.7, 40.0, 55.0] {
            let pack = pack_at(temp);
            let h = pack.enthalpy().get();
            assert_eq!(k.temperature(h), pack.temperature().get(), "temp at {temp}");
            assert_eq!(
                k.melt_fraction(h),
                pack.melt_fraction().get(),
                "melt at {temp}"
            );
        }
    }

    #[test]
    fn plateau_pins_temperature() {
        let k = kernel();
        let mut pack = pack_at(35.7);
        pack.set_melt_fraction(vmt_units::Fraction::saturating(0.5));
        assert_eq!(k.temperature(pack.enthalpy().get()), 35.7);
        assert!((k.melt_fraction(pack.enthalpy().get()) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn selected_temperature_matches_branchy_form() {
        let k = kernel();
        // Sweep enthalpies across solid, plateau edges, and liquid.
        for i in 0..2000 {
            let h = -50_000.0 + i as f64 * 400.0;
            assert_eq!(k.temperature_selected(h), k.temperature(h), "h = {h}");
        }
    }

    #[test]
    fn untapered_step_matches_general_exchange() {
        let k = kernel();
        assert!(k.is_untapered());
        for i in 0..500 {
            let h = -20_000.0 + i as f64 * 1500.0;
            for air in [5.0, 22.0, 35.7, 36.0, 60.0] {
                assert_eq!(
                    k.exchange_step_untapered(h, air, 60.0),
                    k.exchange(h, air, 1, 60.0),
                    "h = {h}, air = {air}"
                );
            }
        }
    }

    #[test]
    fn tapered_kernel_reports_itself() {
        let k = WaxKernel::new(
            &PcmMaterial::deployed_paraffin(),
            Kilograms::new(3.48),
            WattsPerKelvin::new(15.0),
            0.3,
        );
        assert!(!k.is_untapered());
    }

    #[test]
    fn substep_sizing_matches_tau_quarter_rule() {
        let k = kernel();
        // τ = 3.48·2100/15 ≈ 487 s → a 60 s tick fits one sub-step.
        let (n, sub) = k.substeps(60.0);
        assert_eq!(n, 1);
        assert_eq!(sub, 60.0);
        // A 2-hour step must subdivide.
        let (n, sub) = k.substeps(7200.0);
        assert!(n > 1);
        assert_eq!(sub, 7200.0 / n as f64);
    }
}
