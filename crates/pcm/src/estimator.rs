//! The lightweight per-server wax-state model.
//!
//! VMT-WA needs to know how melted each server's wax is, but the wax has no
//! internal instrumentation. The paper (and its reference \[24\]) runs a
//! small model on every server: a temperature sensor on the exterior of the
//! wax container says when melting/freezing starts, and a lookup table
//! driven by the existing CPU power/temperature sensors integrates the
//! melt fraction between those anchor points, reporting to the cluster
//! scheduler once per minute.
//!
//! [`WaxStateEstimator`] reproduces that design: it quantizes its sensor
//! inputs (real sensors are coarse), looks up the melt rate in a
//! precomputed table instead of evaluating the physics, and snaps to
//! known-solid/known-liquid states when the container temperature says the
//! wax cannot be on the plateau.

use crate::{HeatExchanger, WaxPack};
use vmt_units::{Celsius, Fraction, Seconds, Watts};

/// One sensor sample fed to the estimator.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SensorReading {
    /// Air temperature at the wax container exterior.
    pub container_air: Celsius,
    /// Total CPU power draw of the server (used only as a plausibility
    /// signal here; kept because real deployments fuse both sensors).
    pub cpu_power: Watts,
}

/// A lookup-table wax-state estimator.
///
/// # Examples
///
/// ```
/// use vmt_pcm::{PcmMaterial, SensorReading, ServerWaxConfig, WaxStateEstimator};
/// use vmt_units::{Celsius, Seconds, Watts, WattsPerKelvin};
///
/// let mut est = WaxStateEstimator::new(
///     PcmMaterial::deployed_paraffin(),
///     ServerWaxConfig::default().mass(),
///     WattsPerKelvin::new(15.0),
/// );
/// // An hour of 40 °C air melts a few percent of the pack.
/// for _ in 0..60 {
///     est.update(
///         SensorReading { container_air: Celsius::new(40.0), cpu_power: Watts::new(300.0) },
///         Seconds::new(60.0),
///     );
/// }
/// assert!(est.melt_fraction().get() > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct WaxStateEstimator {
    /// Melt-rate lookup table: fraction/second for each quantized ΔT
    /// bucket from `DELTA_MIN` to `DELTA_MAX` in steps of `DELTA_STEP`.
    rate_table: Vec<f64>,
    melt_temperature: Celsius,
    /// Estimated wax temperature while off the plateau (sensible phase),
    /// integrated with the same table resolution.
    sensible_rate_per_watt: f64,
    ua_w_per_k: f64,
    /// Phase-interface taper coefficient `b` mirrored from the physical
    /// exchanger (see [`crate::HeatExchanger::with_taper`]).
    taper: f64,
    estimate_temp: Celsius,
    estimate_fraction: Fraction,
}

/// Coldest ΔT bucket (container air − wax), kelvin.
const DELTA_MIN: f64 = -25.0;
/// Hottest ΔT bucket, kelvin.
const DELTA_MAX: f64 = 25.0;
/// ΔT quantization, kelvin (matches a cheap 0.5 °C sensor).
const DELTA_STEP: f64 = 0.5;
/// Temperature sensor quantization, °C.
const SENSOR_QUANTUM: f64 = 0.5;

impl WaxStateEstimator {
    /// Builds the estimator (and its lookup table) for a wax pack with the
    /// given material, mass, and exchanger conductance.
    ///
    /// # Panics
    ///
    /// Panics if `mass` or `ua` is not strictly positive.
    pub fn new(
        material: crate::PcmMaterial,
        mass: vmt_units::Kilograms,
        ua: vmt_units::WattsPerKelvin,
    ) -> Self {
        assert!(mass.get() > 0.0, "mass must be positive");
        assert!(ua.get() > 0.0, "UA must be positive");
        let latent_capacity = (mass * material.latent_heat()).get();
        let buckets = ((DELTA_MAX - DELTA_MIN) / DELTA_STEP).round() as usize + 1;
        let rate_table = (0..buckets)
            .map(|i| {
                let delta = DELTA_MIN + i as f64 * DELTA_STEP;
                ua.get() * delta / latent_capacity
            })
            .collect();
        let sensible_heat_capacity = mass.get() * material.specific_heat_solid().get();
        Self {
            rate_table,
            melt_temperature: material.melt_temperature(),
            sensible_rate_per_watt: 1.0 / sensible_heat_capacity,
            ua_w_per_k: ua.get(),
            taper: 0.0,
            estimate_temp: material.melt_temperature(),
            estimate_fraction: Fraction::ZERO,
        }
    }

    /// Mirrors the physical exchanger's interface-taper coefficient so
    /// the estimate tracks the tapered melt rate.
    #[must_use]
    pub fn with_taper(mut self, taper: f64) -> Self {
        assert!(
            taper >= 0.0 && taper.is_finite(),
            "taper must be non-negative"
        );
        self.taper = taper;
        self
    }

    /// Resets the estimate to a known state (e.g. after maintenance).
    pub fn reset(&mut self, temperature: Celsius, fraction: Fraction) {
        self.estimate_temp = temperature;
        self.estimate_fraction = fraction;
    }

    /// Current melt-fraction estimate.
    pub fn melt_fraction(&self) -> Fraction {
        self.estimate_fraction
    }

    /// Current wax-temperature estimate.
    pub fn temperature(&self) -> Celsius {
        self.estimate_temp
    }

    /// Ingests one sensor sample covering `dt` and advances the estimate.
    pub fn update(&mut self, reading: SensorReading, dt: Seconds) {
        let (temp_c, fraction) = self.step_state(
            self.estimate_temp.get(),
            self.estimate_fraction.get(),
            reading.container_air.get(),
            dt.get(),
        );
        self.estimate_temp = Celsius::new(temp_c);
        self.estimate_fraction = Fraction::saturating(fraction);
    }

    /// Plain-value form of [`WaxStateEstimator::update`]: advances an
    /// externally held `(temperature °C, melt fraction)` estimate by one
    /// sensor sample and returns the new pair.
    ///
    /// This is the kernel the structure-of-arrays farm sweep runs over
    /// contiguous state arrays, sharing one estimator (and its lookup
    /// table) across every server with the same pack design. The
    /// returned fraction is always in `[0, 1]`.
    pub fn step_state(
        &self,
        temp_c: f64,
        fraction: f64,
        container_air_c: f64,
        dt_s: f64,
    ) -> (f64, f64) {
        let melt = self.melt_temperature.get();
        let air = (container_air_c / SENSOR_QUANTUM).round() * SENSOR_QUANTUM;
        let mut temp_c = temp_c;
        let mut fraction = fraction;
        let on_plateau = fraction != 0.0 || temp_c >= melt;

        if on_plateau || fraction > 0.0 {
            temp_c = temp_c.min(melt);
        }

        if temp_c >= melt || fraction > 0.0 {
            // Plateau: advance the melt fraction via the lookup table.
            let delta = air - melt;
            let f0 = fraction;
            let receded = if delta > 0.0 { f0 } else { 1.0 - f0 };
            let rate = self.lookup(delta) / (1.0 + self.taper * receded);
            let f = f0 + rate * dt_s;
            if f < 0.0 {
                // Fully frozen: drop off the plateau and resume sensible
                // cooling from the melt temperature.
                fraction = 0.0;
                temp_c = melt - 1e-6;
            } else {
                fraction = if f.is_nan() { 0.0 } else { f.clamp(0.0, 1.0) };
                temp_c = melt;
            }
        } else {
            // Sensible phase: integrate the wax temperature toward the air.
            let q = self.ua_w_per_k * (air - temp_c);
            let dtemp = q * self.sensible_rate_per_watt * dt_s;
            let next = temp_c + dtemp;
            // Never integrate past the air temperature.
            temp_c = if temp_c <= air {
                next.min(air)
            } else {
                next.max(air)
            };
            if temp_c >= melt {
                temp_c = melt;
            }
        }

        // Anchor corrections from the container sensor: if the air has
        // been below the melt point and our estimate says barely melted,
        // freezing has begun; the sensor cannot distinguish more than
        // this, so only hard anchors are applied.
        if air < melt - 10.0 {
            // Far below melt: the plateau cannot be sustained.
            if fraction < 0.02 {
                fraction = 0.0;
            }
        }
        (temp_c, fraction)
    }

    /// Looks up the melt rate (fraction/s) for a ΔT, clamping to the
    /// table's range.
    fn lookup(&self, delta_k: f64) -> f64 {
        let idx = ((delta_k - DELTA_MIN) / DELTA_STEP).round();
        let idx = idx.clamp(0.0, (self.rate_table.len() - 1) as f64) as usize;
        self.rate_table[idx]
    }
}

/// Runs ground truth and estimator side by side for validation studies,
/// returning the final absolute melt-fraction error.
///
/// Drives `pack` through `air_series` with `exchanger` (the physical
/// truth) while feeding the same, sensor-quantized readings to
/// `estimator`, then reports how far the estimator's final melt fraction
/// is from reality.
pub fn estimation_error(
    pack: &mut WaxPack,
    exchanger: &HeatExchanger,
    estimator: &mut WaxStateEstimator,
    air_series: impl Iterator<Item = Celsius>,
    dt: Seconds,
) -> f64 {
    for air in air_series {
        exchanger.step(pack, air, dt);
        estimator.update(
            SensorReading {
                container_air: air,
                cpu_power: Watts::ZERO,
            },
            dt,
        );
    }
    (pack.melt_fraction().get() - estimator.melt_fraction().get()).abs()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PcmMaterial, ServerWaxConfig};
    use vmt_units::WattsPerKelvin;

    fn setup() -> (WaxPack, HeatExchanger, WaxStateEstimator) {
        let material = PcmMaterial::deployed_paraffin();
        let mass = ServerWaxConfig::default().mass();
        let pack = WaxPack::new(material.clone(), mass, Celsius::new(25.0));
        let hx = HeatExchanger::new(WattsPerKelvin::new(15.0));
        let mut est = WaxStateEstimator::new(material, mass, WattsPerKelvin::new(15.0));
        est.reset(Celsius::new(25.0), Fraction::ZERO);
        (pack, hx, est)
    }

    #[test]
    fn tracks_constant_hot_air() {
        let (mut pack, hx, mut est) = setup();
        let air = std::iter::repeat_n(Celsius::new(41.0), 480);
        let err = estimation_error(&mut pack, &hx, &mut est, air, Seconds::new(60.0));
        assert!(err < 0.05, "estimation error {err}");
        assert!(est.melt_fraction().get() > 0.5);
    }

    #[test]
    fn tracks_melt_then_freeze_cycle() {
        let (mut pack, hx, mut est) = setup();
        // 6 h hot, 6 h cool.
        let air = (0..720).map(|i| {
            if i < 360 {
                Celsius::new(42.0)
            } else {
                Celsius::new(26.0)
            }
        });
        let err = estimation_error(&mut pack, &hx, &mut est, air, Seconds::new(60.0));
        assert!(err < 0.05, "estimation error {err}");
    }

    #[test]
    fn tracks_diurnal_sinusoid() {
        let (mut pack, hx, mut est) = setup();
        // 48 h sinusoid peaking at 40 °C.
        let air = (0..2880).map(|i| {
            let phase = i as f64 / 1440.0 * std::f64::consts::TAU;
            Celsius::new(33.0 + 7.0 * (phase - std::f64::consts::FRAC_PI_2).sin())
        });
        let err = estimation_error(&mut pack, &hx, &mut est, air, Seconds::new(60.0));
        assert!(err < 0.08, "estimation error {err}");
    }

    #[test]
    fn estimate_stays_in_bounds() {
        let (_, _, mut est) = setup();
        for i in 0..5000 {
            let air = Celsius::new(20.0 + (i % 40) as f64);
            est.update(
                SensorReading {
                    container_air: air,
                    cpu_power: Watts::new(250.0),
                },
                Seconds::new(60.0),
            );
            let f = est.melt_fraction().get();
            assert!((0.0..=1.0).contains(&f));
        }
    }

    #[test]
    fn reset_applies() {
        let (_, _, mut est) = setup();
        est.reset(Celsius::new(35.7), Fraction::saturating(0.4));
        assert!((est.melt_fraction().get() - 0.4).abs() < 1e-12);
        assert_eq!(est.temperature(), Celsius::new(35.7));
    }

    #[test]
    fn quantization_is_half_degree() {
        let quantize = |c: f64| (c / SENSOR_QUANTUM).round() * SENSOR_QUANTUM;
        assert_eq!(quantize(35.74), 35.5);
        assert_eq!(quantize(35.76), 36.0);
    }
}
