//! Phase change material (PCM) thermal-storage models for datacenter
//! servers.
//!
//! This crate is the wax substrate of the VMT reproduction (Skach et al.,
//! ISCA 2018). It models the commercial paraffin wax that Thermal Time
//! Shifting (TTS) places behind the CPU heat sinks of a server:
//!
//! * [`PcmMaterial`] — thermophysical properties and procurement cost of a
//!   phase change material (commercial paraffin grades, molecularly pure
//!   n-paraffin, water/ice for comparison).
//! * [`WaxPack`] — the melt state of a quantity of PCM inside one server,
//!   tracked by enthalpy so that sensible heating (solid and liquid) and
//!   the latent plateau are handled uniformly.
//! * [`HeatExchanger`] — finite-rate `Q̇ = UA·ΔT` coupling between the
//!   server's air stream and the wax, integrated with sub-stepping so the
//!   model stays stable at the simulator's one-minute tick.
//! * [`WaxStateEstimator`] — the lightweight per-server wax-state model the
//!   paper runs on every server (its reference \[24\]): a lookup-table
//!   integrator driven by quantized power/temperature sensor readings.
//! * [`ServerWaxConfig`] — wax sizing for one server (the paper's 4.0 L in
//!   four aluminum containers).
//! * [`ShellPack`] — a discretized multi-shell reference model in which
//!   the melt front (and the absorption taper it causes) *emerges* from
//!   conduction, used to validate the lumped pack.
//!
//! # Examples
//!
//! Melt a pack of the paper's 35.7 °C commercial paraffin with hot air:
//!
//! ```
//! # fn main() -> Result<(), vmt_pcm::PcmError> {
//! use vmt_pcm::{HeatExchanger, PcmMaterial, ServerWaxConfig, WaxPack};
//! use vmt_units::{Celsius, Seconds, WattsPerKelvin};
//!
//! let material = PcmMaterial::commercial_paraffin(Celsius::new(35.7))?;
//! let mut pack = WaxPack::new(material, ServerWaxConfig::default().mass(), Celsius::new(25.0));
//! let exchanger = HeatExchanger::new(WattsPerKelvin::new(15.0));
//!
//! // Two hours of 40 °C air: the wax warms to the melt point and melts.
//! for _ in 0..120 {
//!     exchanger.step(&mut pack, Celsius::new(40.0), Seconds::new(60.0));
//! }
//! assert!(pack.melt_fraction().get() > 0.0);
//! assert_eq!(pack.temperature(), Celsius::new(35.7));
//! # Ok(())
//! # }
//! ```

mod discretized;
mod error;
mod estimator;
mod exchange;
pub mod kernel;
mod material;
mod pack;
mod sizing;
mod transitions;

pub use discretized::ShellPack;
pub use error::PcmError;
pub use estimator::{estimation_error, SensorReading, WaxStateEstimator};
pub use exchange::{ExchangeStep, HeatExchanger};
pub use kernel::WaxKernel;
pub use material::{MaterialClass, PcmMaterial};
pub use pack::WaxPack;
pub use sizing::ServerWaxConfig;
pub use transitions::{classify_melt_transition, MeltDirection, MELT_EVENT_THRESHOLD};
