//! Finite-rate heat exchange between a server's air stream and its wax
//! pack.

use crate::WaxPack;
use vmt_units::{Celsius, Joules, Seconds, Watts, WattsPerKelvin};

/// Result of one exchange step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExchangeStep {
    /// Heat moved from the air into the wax over the step (negative when
    /// the wax released heat back into the air, i.e. while freezing).
    pub heat_to_wax: Joules,
    /// Average heat-flow rate over the step (positive into the wax).
    pub average_power: Watts,
}

impl ExchangeStep {
    /// A step in which no heat moved.
    pub const NONE: Self = Self {
        heat_to_wax: Joules::ZERO,
        average_power: Watts::ZERO,
    };
}

/// An air-to-wax heat exchanger characterized by a single `UA` conductance.
///
/// The paper's aluminum wax containers present a fixed surface area to the
/// air stream behind the CPUs; lumping convection and conduction into one
/// `UA` value gives the standard reduced-order exchanger model
/// `Q̇ = UA · (T_air − T_wax)`.
///
/// Integration uses sub-stepping: the explicit update is only accurate when
/// the step is small relative to the wax's sensible time constant
/// `τ = m·c_p / UA`, so [`HeatExchanger::step`] internally subdivides the
/// requested step to keep each sub-step below `τ/4`. At the simulator's
/// one-minute tick and the calibrated `UA ≈ 15 W/K` (τ ≈ 8 min) this uses a
/// single sub-step; the sub-stepping matters for coarse ticks and
/// sensitivity sweeps.
///
/// # Examples
///
/// ```
/// use vmt_pcm::{HeatExchanger, PcmMaterial, WaxPack};
/// use vmt_units::{Celsius, Kilograms, Seconds, WattsPerKelvin};
///
/// let mut pack = WaxPack::new(PcmMaterial::deployed_paraffin(), Kilograms::new(3.48), Celsius::new(34.0));
/// let hx = HeatExchanger::new(WattsPerKelvin::new(15.0));
/// let step = hx.step(&mut pack, Celsius::new(39.0), Seconds::new(60.0));
/// assert!(step.heat_to_wax.get() > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct HeatExchanger {
    ua: WattsPerKelvin,
    taper: f64,
}

impl HeatExchanger {
    /// Creates an ideal exchanger (no phase-interface taper) with the
    /// given `UA` conductance.
    ///
    /// # Panics
    ///
    /// Panics if `ua` is not strictly positive and finite.
    pub fn new(ua: WattsPerKelvin) -> Self {
        Self::with_taper(ua, 0.0)
    }

    /// Creates an exchanger whose conductance tapers as the phase
    /// interface recedes.
    ///
    /// In a real wax container the melt front moves away from the heat
    /// exchange surface: while melting, a growing liquid layer separates
    /// the air-side wall from the remaining solid; while freezing, a
    /// growing solid crust does. Both add thermal resistance, so the
    /// effective conductance is `UA / (1 + b·x)` where `x` is the
    /// receded-phase thickness fraction (the melt fraction while
    /// melting, its complement while freezing). This is the standard
    /// reduced-order treatment of the Stefan interface and is what makes
    /// a pack's absorption *taper off* near full melt instead of
    /// stopping as a step.
    ///
    /// # Panics
    ///
    /// Panics if `ua` is not strictly positive and finite, or `taper` is
    /// negative or non-finite.
    pub fn with_taper(ua: WattsPerKelvin, taper: f64) -> Self {
        assert!(
            ua.get() > 0.0 && ua.get().is_finite(),
            "UA must be positive and finite, got {ua}"
        );
        assert!(
            taper >= 0.0 && taper.is_finite(),
            "taper must be non-negative and finite, got {taper}"
        );
        Self { ua, taper }
    }

    /// The exchanger's (un-tapered) `UA` conductance.
    pub fn ua(&self) -> WattsPerKelvin {
        self.ua
    }

    /// The interface-taper coefficient `b`.
    pub fn taper(&self) -> f64 {
        self.taper
    }

    /// Advances the wax state by `dt` with the air at `air_temp`,
    /// returning the heat moved.
    ///
    /// Positive `heat_to_wax` means the wax absorbed heat from the air
    /// (reducing the heat the cooling system must remove *now*); negative
    /// means the wax released stored heat back into the air stream
    /// (typically at night, while refreezing).
    ///
    /// Delegates to [`crate::WaxKernel`] — the same sub-stepped update
    /// the farm sweep applies to raw enthalpy arrays.
    pub fn step(&self, pack: &mut WaxPack, air_temp: Celsius, dt: Seconds) -> ExchangeStep {
        debug_assert!(dt.get() > 0.0, "dt must be positive");
        let kernel = crate::WaxKernel::new(pack.material(), pack.mass(), self.ua, self.taper);
        let (substeps, sub_dt_s) = kernel.substeps(dt.get());
        let (enthalpy, total) =
            kernel.exchange(pack.enthalpy().get(), air_temp.get(), substeps, sub_dt_s);
        pack.set_enthalpy(Joules::new(enthalpy));
        let total = Joules::new(total);
        ExchangeStep {
            heat_to_wax: total,
            average_power: total / dt,
        }
    }

    /// Steady-state heat-flow rate at a given air/wax temperature pair
    /// (no state change).
    pub fn flow(&self, air_temp: Celsius, wax_temp: Celsius) -> Watts {
        self.ua * (air_temp - wax_temp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PcmMaterial;
    use proptest::prelude::*;
    use vmt_units::Kilograms;

    fn pack_at(temp_c: f64) -> WaxPack {
        WaxPack::new(
            PcmMaterial::deployed_paraffin(),
            Kilograms::new(3.48),
            Celsius::new(temp_c),
        )
    }

    fn hx() -> HeatExchanger {
        HeatExchanger::new(WattsPerKelvin::new(15.0))
    }

    #[test]
    fn hot_air_melts_wax() {
        let mut pack = pack_at(25.0);
        // 8 hours of 40 °C air at UA=15: plateau ΔT=4.3 K → ~64 W → melts
        // most of the ~787 kJ latent capacity.
        for _ in 0..480 {
            hx().step(&mut pack, Celsius::new(40.0), Seconds::new(60.0));
        }
        assert!(
            pack.melt_fraction().get() > 0.9,
            "melt fraction {}",
            pack.melt_fraction()
        );
    }

    #[test]
    fn cool_air_freezes_wax_and_releases_heat() {
        let mut pack = pack_at(35.7);
        pack.set_melt_fraction(vmt_units::Fraction::ONE);
        let step = hx().step(&mut pack, Celsius::new(25.0), Seconds::new(3600.0));
        assert!(step.heat_to_wax.get() < 0.0);
        assert!(pack.melt_fraction().get() < 1.0);
    }

    #[test]
    fn no_flow_at_equilibrium() {
        let mut pack = pack_at(30.0);
        let step = hx().step(&mut pack, Celsius::new(30.0), Seconds::new(60.0));
        assert_eq!(step, ExchangeStep::NONE);
    }

    #[test]
    fn wax_never_overshoots_air_temperature() {
        let mut pack = pack_at(20.0);
        // Very long step relative to τ: without sub-stepping this would
        // oscillate/overshoot; with it the wax asymptotes to the air temp.
        hx().step(&mut pack, Celsius::new(30.0), Seconds::new(7200.0));
        assert!(pack.temperature() <= Celsius::new(30.0) + vmt_units::DegC::new(1e-9));
        assert!(pack.temperature().get() > 29.0);
    }

    #[test]
    fn flow_is_linear_in_delta() {
        let h = hx();
        let q1 = h.flow(Celsius::new(40.0), Celsius::new(35.7));
        let q2 = h.flow(Celsius::new(44.3), Celsius::new(35.7));
        assert!((q2.get() - 2.0 * q1.get()).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "UA must be positive")]
    fn non_positive_ua_rejected() {
        HeatExchanger::new(WattsPerKelvin::new(-1.0));
    }

    proptest! {
        /// Energy moved into the wax equals the wax's enthalpy change
        /// (the exchanger neither creates nor destroys heat).
        #[test]
        fn exchange_conserves_energy(
            wax0 in 20.0f64..50.0,
            air in 15.0f64..55.0,
            dt in 1.0f64..7200.0,
        ) {
            let mut pack = pack_at(wax0);
            let h0 = pack.enthalpy();
            let step = hx().step(&mut pack, Celsius::new(air), Seconds::new(dt));
            prop_assert!(((pack.enthalpy() - h0) - step.heat_to_wax).get().abs() < 1e-6);
        }

        /// The wax temperature always moves toward the air temperature and
        /// never crosses it within a step.
        #[test]
        fn no_overshoot(
            wax0 in 20.0f64..50.0,
            air in 15.0f64..55.0,
            dt in 1.0f64..7200.0,
        ) {
            let mut pack = pack_at(wax0);
            let before = pack.temperature();
            hx().step(&mut pack, Celsius::new(air), Seconds::new(dt));
            let after = pack.temperature();
            let air = Celsius::new(air);
            if before <= air {
                prop_assert!(after >= before - vmt_units::DegC::new(1e-9));
                prop_assert!(after <= air + vmt_units::DegC::new(1e-9));
            } else {
                prop_assert!(after <= before + vmt_units::DegC::new(1e-9));
                prop_assert!(after >= air - vmt_units::DegC::new(1e-9));
            }
        }
    }
}
