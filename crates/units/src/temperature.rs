//! Absolute temperature ([`Celsius`]) and temperature difference ([`DegC`]).
//!
//! Keeping the two distinct prevents the classic modeling bug of adding two
//! absolute temperatures: only `Celsius ± DegC` and `Celsius − Celsius` are
//! defined.

use crate::linear_quantity;

linear_quantity!(
    /// A temperature *difference* in kelvin / degrees Celsius.
    ///
    /// Produced by subtracting two [`Celsius`] values; scales linearly.
    DegC,
    "K"
);

/// An absolute temperature on the Celsius scale.
///
/// # Examples
///
/// ```
/// use vmt_units::{Celsius, DegC};
///
/// let melt = Celsius::new(35.7);
/// let air = Celsius::new(38.9);
/// assert!(((air - melt).get() - 3.2).abs() < 1e-12);
/// assert_eq!(melt + DegC::new(1.0), Celsius::new(36.7));
/// ```
#[derive(
    Debug, Default, Clone, Copy, PartialEq, PartialOrd, serde::Serialize, serde::Deserialize,
)]
#[serde(transparent)]
pub struct Celsius(f64);

impl Celsius {
    /// Wraps a temperature expressed in degrees Celsius.
    #[inline]
    pub const fn new(value: f64) -> Self {
        Self(value)
    }

    /// Returns the temperature in degrees Celsius.
    #[inline]
    pub const fn get(self) -> f64 {
        self.0
    }

    /// Returns the temperature in kelvin.
    #[inline]
    pub fn kelvin(self) -> f64 {
        self.0 + 273.15
    }

    /// Returns the warmer of two temperatures.
    #[inline]
    pub fn max(self, other: Self) -> Self {
        Self(self.0.max(other.0))
    }

    /// Returns the cooler of two temperatures.
    #[inline]
    pub fn min(self, other: Self) -> Self {
        Self(self.0.min(other.0))
    }

    /// Clamps the temperature into `[lo, hi]`.
    #[inline]
    pub fn clamp(self, lo: Self, hi: Self) -> Self {
        Self(self.0.clamp(lo.0, hi.0))
    }

    /// True when the underlying value is finite (not NaN/∞).
    #[inline]
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }
}

impl core::ops::Sub for Celsius {
    type Output = DegC;
    #[inline]
    fn sub(self, rhs: Self) -> DegC {
        DegC::new(self.0 - rhs.0)
    }
}

impl core::ops::Add<DegC> for Celsius {
    type Output = Celsius;
    #[inline]
    fn add(self, rhs: DegC) -> Celsius {
        Celsius(self.0 + rhs.get())
    }
}

impl core::ops::AddAssign<DegC> for Celsius {
    #[inline]
    fn add_assign(&mut self, rhs: DegC) {
        self.0 += rhs.get();
    }
}

impl core::ops::Sub<DegC> for Celsius {
    type Output = Celsius;
    #[inline]
    fn sub(self, rhs: DegC) -> Celsius {
        Celsius(self.0 - rhs.get())
    }
}

impl core::ops::SubAssign<DegC> for Celsius {
    #[inline]
    fn sub_assign(&mut self, rhs: DegC) {
        self.0 -= rhs.get();
    }
}

impl core::fmt::Display for Celsius {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        if let Some(prec) = f.precision() {
            write!(f, "{:.*} °C", prec, self.0)
        } else {
            write!(f, "{} °C", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn difference_and_offset_round_trip() {
        let a = Celsius::new(40.0);
        let b = Celsius::new(22.5);
        let d = a - b;
        assert_eq!(b + d, a);
        assert_eq!(a - d, b);
    }

    #[test]
    fn kelvin_conversion() {
        assert!((Celsius::new(0.0).kelvin() - 273.15).abs() < 1e-12);
        assert!((Celsius::new(35.7).kelvin() - 308.85).abs() < 1e-12);
    }

    #[test]
    fn ordering() {
        assert!(Celsius::new(35.7) < Celsius::new(38.0));
        assert_eq!(
            Celsius::new(30.0).max(Celsius::new(31.0)),
            Celsius::new(31.0)
        );
        assert_eq!(
            Celsius::new(30.0).min(Celsius::new(31.0)),
            Celsius::new(30.0)
        );
    }

    #[test]
    fn compound_assignment() {
        let mut t = Celsius::new(20.0);
        t += DegC::new(5.0);
        t -= DegC::new(2.5);
        assert_eq!(t, Celsius::new(22.5));
    }

    #[test]
    fn display() {
        assert_eq!(format!("{:.1}", Celsius::new(35.71)), "35.7 °C");
    }
}
