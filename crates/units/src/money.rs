//! Monetary quantity ([`Dollars`]) used by the TCO model.

use crate::linear_quantity;

linear_quantity!(
    /// US dollars.
    Dollars,
    "USD"
);

impl Dollars {
    /// Formats with thousands separators, e.g. `$2,690,000`.
    ///
    /// Rounds to the nearest whole dollar; intended for report output, not
    /// accounting.
    pub fn display_rounded(self) -> String {
        let negative = self.get() < 0.0;
        let cents = self.get().abs().round() as u64;
        let digits = cents.to_string();
        let mut grouped = String::with_capacity(digits.len() + digits.len() / 3 + 2);
        for (i, ch) in digits.chars().enumerate() {
            if i > 0 && (digits.len() - i).is_multiple_of(3) {
                grouped.push(',');
            }
            grouped.push(ch);
        }
        if negative {
            format!("-${grouped}")
        } else {
            format!("${grouped}")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grouping() {
        assert_eq!(Dollars::new(2_690_000.0).display_rounded(), "$2,690,000");
        assert_eq!(Dollars::new(999.4).display_rounded(), "$999");
        assert_eq!(Dollars::new(1000.0).display_rounded(), "$1,000");
        assert_eq!(Dollars::new(0.0).display_rounded(), "$0");
        assert_eq!(Dollars::new(-1234.0).display_rounded(), "-$1,234");
    }
}
