//! A validated dimensionless fraction in `[0, 1]`.

use core::fmt;

/// A dimensionless value guaranteed to lie in `[0, 1]`.
///
/// Used for wax melt fraction, server utilization, trace load level, and
/// similar quantities where a value outside `[0, 1]` indicates a modeling
/// bug rather than valid data.
///
/// # Examples
///
/// ```
/// use vmt_units::Fraction;
///
/// let melted = Fraction::new(0.98).unwrap();
/// assert!(melted >= Fraction::new(0.95).unwrap());
/// assert_eq!(Fraction::saturating(1.7), Fraction::ONE);
/// ```
#[derive(
    Debug, Default, Clone, Copy, PartialEq, PartialOrd, serde::Serialize, serde::Deserialize,
)]
#[serde(transparent)]
pub struct Fraction(f64);

/// Error returned by [`Fraction::new`] when the input lies outside `[0, 1]`
/// or is not finite.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FractionRangeError(f64);

impl fmt::Display for FractionRangeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "value {} is not a fraction in [0, 1]", self.0)
    }
}

impl std::error::Error for FractionRangeError {}

impl Fraction {
    /// The fraction 0.
    pub const ZERO: Self = Self(0.0);
    /// The fraction 1.
    pub const ONE: Self = Self(1.0);

    /// Creates a fraction, rejecting values outside `[0, 1]` and non-finite
    /// values.
    ///
    /// # Errors
    ///
    /// Returns [`FractionRangeError`] if `value` is NaN, infinite, negative,
    /// or greater than one.
    pub fn new(value: f64) -> Result<Self, FractionRangeError> {
        if value.is_finite() && (0.0..=1.0).contains(&value) {
            Ok(Self(value))
        } else {
            Err(FractionRangeError(value))
        }
    }

    /// Creates a fraction by clamping into `[0, 1]` (NaN becomes 0).
    #[inline]
    pub fn saturating(value: f64) -> Self {
        if value.is_nan() {
            Self(0.0)
        } else {
            Self(value.clamp(0.0, 1.0))
        }
    }

    /// Returns the raw value.
    #[inline]
    pub const fn get(self) -> f64 {
        self.0
    }

    /// The complementary fraction `1 − self`.
    #[inline]
    pub fn complement(self) -> Self {
        Self(1.0 - self.0)
    }

    /// True when the fraction is exactly zero.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }

    /// True when the fraction is exactly one.
    #[inline]
    pub fn is_one(self) -> bool {
        self.0 == 1.0
    }
}

impl fmt::Display for Fraction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let prec = f.precision().unwrap_or(1);
        write!(f, "{:.*}%", prec, self.0 * 100.0)
    }
}

impl TryFrom<f64> for Fraction {
    type Error = FractionRangeError;
    fn try_from(value: f64) -> Result<Self, Self::Error> {
        Self::new(value)
    }
}

impl From<Fraction> for f64 {
    fn from(value: Fraction) -> Self {
        value.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_in_range() {
        assert_eq!(Fraction::new(0.0).unwrap(), Fraction::ZERO);
        assert_eq!(Fraction::new(1.0).unwrap(), Fraction::ONE);
        assert!((Fraction::new(0.98).unwrap().get() - 0.98).abs() < 1e-15);
    }

    #[test]
    fn rejects_out_of_range() {
        assert!(Fraction::new(-0.001).is_err());
        assert!(Fraction::new(1.001).is_err());
        assert!(Fraction::new(f64::NAN).is_err());
        assert!(Fraction::new(f64::INFINITY).is_err());
    }

    #[test]
    fn saturating_clamps() {
        assert_eq!(Fraction::saturating(-3.0), Fraction::ZERO);
        assert_eq!(Fraction::saturating(2.0), Fraction::ONE);
        assert_eq!(Fraction::saturating(f64::NAN), Fraction::ZERO);
        assert_eq!(Fraction::saturating(0.5).get(), 0.5);
    }

    #[test]
    fn complement() {
        assert!((Fraction::saturating(0.3).complement().get() - 0.7).abs() < 1e-15);
    }

    #[test]
    fn display_as_percent() {
        assert_eq!(format!("{}", Fraction::saturating(0.128)), "12.8%");
        assert_eq!(format!("{:.0}", Fraction::saturating(0.95)), "95%");
    }

    #[test]
    fn error_display() {
        let err = Fraction::new(1.5).unwrap_err();
        assert_eq!(err.to_string(), "value 1.5 is not a fraction in [0, 1]");
    }
}
