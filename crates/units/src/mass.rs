//! Mass and volume quantities: [`Kilograms`], [`Liters`], and density
//! ([`KilogramsPerCubicMeter`]).

use crate::linear_quantity;

linear_quantity!(
    /// Mass in kilograms.
    Kilograms,
    "kg"
);

linear_quantity!(
    /// Volume in liters.
    Liters,
    "L"
);

linear_quantity!(
    /// Density in kilograms per cubic meter.
    KilogramsPerCubicMeter,
    "kg/m³"
);

impl Liters {
    /// Converts to cubic meters.
    #[inline]
    pub fn to_cubic_meters(self) -> f64 {
        self.get() / 1000.0
    }

    /// Mass of this volume at the given density.
    ///
    /// # Examples
    ///
    /// ```
    /// use vmt_units::{Kilograms, KilogramsPerCubicMeter, Liters};
    ///
    /// // 4.0 L of solid paraffin at 870 kg/m³ ≈ 3.48 kg.
    /// let mass = Liters::new(4.0).mass_at(KilogramsPerCubicMeter::new(870.0));
    /// assert!((mass.get() - 3.48).abs() < 1e-12);
    /// ```
    #[inline]
    pub fn mass_at(self, density: KilogramsPerCubicMeter) -> Kilograms {
        Kilograms::new(self.to_cubic_meters() * density.get())
    }
}

impl Kilograms {
    /// Converts to metric tons.
    #[inline]
    pub fn to_tons(self) -> f64 {
        self.get() / 1000.0
    }

    /// Volume this mass occupies at the given density.
    #[inline]
    pub fn volume_at(self, density: KilogramsPerCubicMeter) -> Liters {
        Liters::new(self.get() / density.get() * 1000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volume_mass_round_trip() {
        let density = KilogramsPerCubicMeter::new(870.0);
        let volume = Liters::new(4.0);
        let mass = volume.mass_at(density);
        let back = mass.volume_at(density);
        assert!((back.get() - volume.get()).abs() < 1e-12);
    }

    #[test]
    fn tons() {
        assert!((Kilograms::new(3480.0).to_tons() - 3.48).abs() < 1e-12);
    }

    #[test]
    fn cubic_meters() {
        assert!((Liters::new(250.0).to_cubic_meters() - 0.25).abs() < 1e-12);
    }
}
