//! Simulation time quantities: [`Seconds`], [`Minutes`], [`Hours`].
//!
//! The simulator's native clock is [`Seconds`]; the coarser units exist for
//! configuration ergonomics (traces are diurnal, wax-model updates are
//! per-minute) and convert explicitly.

use crate::linear_quantity;

linear_quantity!(
    /// A duration (or simulation timestamp) in seconds.
    Seconds,
    "s"
);

linear_quantity!(
    /// A duration in minutes.
    Minutes,
    "min"
);

linear_quantity!(
    /// A duration in hours.
    Hours,
    "h"
);

impl Seconds {
    /// Converts to minutes.
    #[inline]
    pub fn to_minutes(self) -> Minutes {
        Minutes::new(self.get() / 60.0)
    }

    /// Converts to hours.
    #[inline]
    pub fn to_hours(self) -> Hours {
        Hours::new(self.get() / 3600.0)
    }
}

impl Minutes {
    /// Converts to seconds.
    #[inline]
    pub fn to_seconds(self) -> Seconds {
        Seconds::new(self.get() * 60.0)
    }

    /// Converts to hours.
    #[inline]
    pub fn to_hours(self) -> Hours {
        Hours::new(self.get() / 60.0)
    }
}

impl Hours {
    /// Converts to seconds.
    #[inline]
    pub fn to_seconds(self) -> Seconds {
        Seconds::new(self.get() * 3600.0)
    }

    /// Converts to minutes.
    #[inline]
    pub fn to_minutes(self) -> Minutes {
        Minutes::new(self.get() * 60.0)
    }
}

impl From<Minutes> for Seconds {
    fn from(value: Minutes) -> Self {
        value.to_seconds()
    }
}

impl From<Hours> for Seconds {
    fn from(value: Hours) -> Self {
        value.to_seconds()
    }
}

impl From<Hours> for Minutes {
    fn from(value: Hours) -> Self {
        value.to_minutes()
    }
}

impl From<core::time::Duration> for Seconds {
    fn from(value: core::time::Duration) -> Self {
        Seconds::new(value.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(Hours::new(2.0).to_seconds(), Seconds::new(7200.0));
        assert_eq!(Seconds::new(7200.0).to_hours(), Hours::new(2.0));
        assert_eq!(Minutes::new(90.0).to_hours(), Hours::new(1.5));
        assert_eq!(Hours::new(1.5).to_minutes(), Minutes::new(90.0));
        assert_eq!(Seconds::new(120.0).to_minutes(), Minutes::new(2.0));
    }

    #[test]
    fn from_std_duration() {
        let d = core::time::Duration::from_millis(1500);
        assert_eq!(Seconds::from(d), Seconds::new(1.5));
    }

    #[test]
    fn from_impls() {
        assert_eq!(Seconds::from(Minutes::new(3.0)), Seconds::new(180.0));
        assert_eq!(Seconds::from(Hours::new(1.0)), Seconds::new(3600.0));
        assert_eq!(Minutes::from(Hours::new(0.5)), Minutes::new(30.0));
    }
}
