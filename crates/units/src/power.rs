//! Power quantities: [`Watts`], [`Kilowatts`], [`Megawatts`], and the
//! thermal conductance [`WattsPerKelvin`].

use crate::{linear_quantity, DegC, Joules, Seconds};

linear_quantity!(
    /// Power in watts.
    Watts,
    "W"
);

linear_quantity!(
    /// Power in kilowatts.
    Kilowatts,
    "kW"
);

linear_quantity!(
    /// Power in megawatts.
    Megawatts,
    "MW"
);

linear_quantity!(
    /// A thermal conductance (`UA` value) in watts per kelvin.
    ///
    /// Multiplying by a temperature difference yields a heat flow:
    /// `Q̇ = UA · ΔT`.
    WattsPerKelvin,
    "W/K"
);

impl Watts {
    /// Converts to kilowatts.
    #[inline]
    pub fn to_kilowatts(self) -> Kilowatts {
        Kilowatts::new(self.get() / 1e3)
    }

    /// Converts to megawatts.
    #[inline]
    pub fn to_megawatts(self) -> Megawatts {
        Megawatts::new(self.get() / 1e6)
    }
}

impl Kilowatts {
    /// Converts to watts.
    #[inline]
    pub fn to_watts(self) -> Watts {
        Watts::new(self.get() * 1e3)
    }

    /// Converts to megawatts.
    #[inline]
    pub fn to_megawatts(self) -> Megawatts {
        Megawatts::new(self.get() / 1e3)
    }
}

impl Megawatts {
    /// Converts to watts.
    #[inline]
    pub fn to_watts(self) -> Watts {
        Watts::new(self.get() * 1e6)
    }

    /// Converts to kilowatts.
    #[inline]
    pub fn to_kilowatts(self) -> Kilowatts {
        Kilowatts::new(self.get() * 1e3)
    }
}

impl From<Kilowatts> for Watts {
    fn from(value: Kilowatts) -> Self {
        value.to_watts()
    }
}

impl From<Megawatts> for Watts {
    fn from(value: Megawatts) -> Self {
        value.to_watts()
    }
}

impl From<Watts> for Kilowatts {
    fn from(value: Watts) -> Self {
        value.to_kilowatts()
    }
}

impl From<Watts> for Megawatts {
    fn from(value: Watts) -> Self {
        value.to_megawatts()
    }
}

impl core::ops::Mul<Seconds> for Watts {
    type Output = Joules;
    /// Power sustained for a duration is an energy: `E = P · t`.
    #[inline]
    fn mul(self, rhs: Seconds) -> Joules {
        Joules::new(self.get() * rhs.get())
    }
}

impl core::ops::Mul<Watts> for Seconds {
    type Output = Joules;
    #[inline]
    fn mul(self, rhs: Watts) -> Joules {
        rhs * self
    }
}

impl core::ops::Mul<DegC> for WattsPerKelvin {
    type Output = Watts;
    /// Conductance × temperature difference is a heat flow: `Q̇ = UA · ΔT`.
    #[inline]
    fn mul(self, rhs: DegC) -> Watts {
        Watts::new(self.get() * rhs.get())
    }
}

impl core::ops::Mul<WattsPerKelvin> for DegC {
    type Output = Watts;
    #[inline]
    fn mul(self, rhs: WattsPerKelvin) -> Watts {
        rhs * self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_conversions_round_trip() {
        let p = Watts::new(250_000.0);
        assert_eq!(p.to_kilowatts(), Kilowatts::new(250.0));
        assert_eq!(p.to_megawatts(), Megawatts::new(0.25));
        assert_eq!(p.to_kilowatts().to_watts(), p);
        assert_eq!(
            Megawatts::new(25.0).to_kilowatts(),
            Kilowatts::new(25_000.0)
        );
    }

    #[test]
    fn power_times_time_is_energy() {
        let e = Watts::new(500.0) * Seconds::new(3600.0);
        assert_eq!(e, Joules::new(1_800_000.0));
        assert_eq!(Seconds::new(3600.0) * Watts::new(500.0), e);
    }

    #[test]
    fn conductance_times_delta_is_heat_flow() {
        let ua = WattsPerKelvin::new(15.0);
        let q = ua * DegC::new(3.2);
        assert!((q.get() - 48.0).abs() < 1e-12);
        assert_eq!(DegC::new(3.2) * ua, q);
    }

    #[test]
    fn from_impls() {
        assert_eq!(Watts::from(Kilowatts::new(1.5)), Watts::new(1500.0));
        assert_eq!(Megawatts::from(Watts::new(2e6)), Megawatts::new(2.0));
    }
}
