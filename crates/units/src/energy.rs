//! Energy ([`Joules`]) and the specific-energy quantities used by the PCM
//! model: latent heat ([`JoulesPerKg`]) and specific heat
//! ([`JoulesPerKgKelvin`]).

use crate::{linear_quantity, DegC, Kilograms, Seconds, Watts};

linear_quantity!(
    /// Energy in joules.
    Joules,
    "J"
);

linear_quantity!(
    /// Specific (per-mass) energy in joules per kilogram — e.g. a latent
    /// heat of fusion.
    JoulesPerKg,
    "J/kg"
);

linear_quantity!(
    /// Specific heat capacity in joules per kilogram-kelvin.
    JoulesPerKgKelvin,
    "J/(kg·K)"
);

impl Joules {
    /// Converts to kilowatt-hours.
    #[inline]
    pub fn to_kilowatt_hours(self) -> f64 {
        self.get() / 3.6e6
    }

    /// Converts to megajoules.
    #[inline]
    pub fn to_megajoules(self) -> f64 {
        self.get() / 1e6
    }

    /// Average power when this energy is spread over a duration.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `duration` is zero.
    #[inline]
    pub fn over(self, duration: Seconds) -> Watts {
        debug_assert!(duration.get() != 0.0, "duration must be non-zero");
        Watts::new(self.get() / duration.get())
    }
}

impl core::ops::Div<Seconds> for Joules {
    type Output = Watts;
    /// Energy per time is power.
    #[inline]
    fn div(self, rhs: Seconds) -> Watts {
        Watts::new(self.get() / rhs.get())
    }
}

impl core::ops::Div<Watts> for Joules {
    type Output = Seconds;
    /// How long a power level takes to accumulate this energy.
    #[inline]
    fn div(self, rhs: Watts) -> Seconds {
        Seconds::new(self.get() / rhs.get())
    }
}

impl core::ops::Mul<Kilograms> for JoulesPerKg {
    type Output = Joules;
    /// Latent heat × mass is an energy.
    #[inline]
    fn mul(self, rhs: Kilograms) -> Joules {
        Joules::new(self.get() * rhs.get())
    }
}

impl core::ops::Mul<JoulesPerKg> for Kilograms {
    type Output = Joules;
    #[inline]
    fn mul(self, rhs: JoulesPerKg) -> Joules {
        rhs * self
    }
}

impl JoulesPerKgKelvin {
    /// Sensible heat for warming `mass` by `delta`: `E = m · c_p · ΔT`.
    #[inline]
    pub fn sensible_heat(self, mass: Kilograms, delta: DegC) -> Joules {
        Joules::new(self.get() * mass.get() * delta.get())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_time_power_relations() {
        let e = Joules::new(7200.0);
        assert_eq!(e / Seconds::new(3600.0), Watts::new(2.0));
        assert_eq!(e / Watts::new(2.0), Seconds::new(3600.0));
        assert_eq!(e.over(Seconds::new(60.0)), Watts::new(120.0));
    }

    #[test]
    fn kwh_conversion() {
        assert!((Joules::new(3.6e6).to_kilowatt_hours() - 1.0).abs() < 1e-12);
        assert!((Joules::new(7.87e5).to_megajoules() - 0.787).abs() < 1e-12);
    }

    #[test]
    fn latent_heat_times_mass() {
        let latent = JoulesPerKg::new(226_000.0);
        let mass = Kilograms::new(3.48);
        let e = latent * mass;
        assert!((e.get() - 786_480.0).abs() < 1e-6);
        assert_eq!(mass * latent, e);
    }

    #[test]
    fn sensible_heat() {
        let cp = JoulesPerKgKelvin::new(2100.0);
        let e = cp.sensible_heat(Kilograms::new(2.0), DegC::new(5.0));
        assert_eq!(e, Joules::new(21_000.0));
    }
}
