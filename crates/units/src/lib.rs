//! Physical quantity newtypes shared by the VMT simulator workspace.
//!
//! Every quantity that crosses a crate boundary in the simulator — a
//! temperature, a power draw, an amount of stored heat — is wrapped in a
//! newtype so that the compiler rejects unit confusion (e.g. passing a
//! power where an energy is expected, or a temperature *difference* where
//! an absolute temperature is expected).
//!
//! The types are thin wrappers around `f64` with the arithmetic that is
//! physically meaningful:
//!
//! * [`Celsius`] − [`Celsius`] → [`DegC`] (a temperature difference)
//! * [`Watts`] × [`Seconds`] → [`Joules`]
//! * [`Joules`] ÷ [`Seconds`] → [`Watts`]
//! * [`WattsPerKelvin`] × [`DegC`] → [`Watts`] (conductance × ΔT)
//! * [`Kilograms`] × [`JoulesPerKg`] → [`Joules`] (mass × latent heat)
//!
//! # Examples
//!
//! ```
//! use vmt_units::{Celsius, Joules, Seconds, Watts};
//!
//! let inlet = Celsius::new(22.0);
//! let exhaust = Celsius::new(38.5);
//! let rise = exhaust - inlet;
//! assert!((rise.get() - 16.5).abs() < 1e-12);
//!
//! let heat: Joules = Watts::new(250.0) * Seconds::new(60.0);
//! assert_eq!(heat, Joules::new(15_000.0));
//! ```

mod energy;
mod fraction;
mod mass;
mod money;
mod power;
mod temperature;
mod time;

pub use energy::{Joules, JoulesPerKg, JoulesPerKgKelvin};
pub use fraction::{Fraction, FractionRangeError};
pub use mass::{Kilograms, KilogramsPerCubicMeter, Liters};
pub use money::Dollars;
pub use power::{Kilowatts, Megawatts, Watts, WattsPerKelvin};
pub use temperature::{Celsius, DegC};
pub use time::{Hours, Minutes, Seconds};

/// Implements the linear-quantity boilerplate (ordering, arithmetic with
/// itself and with bare `f64` scale factors) for a `f64` newtype.
macro_rules! linear_quantity {
    ($(#[$meta:meta])* $name:ident, $unit:literal) => {
        $(#[$meta])*
        #[derive(Debug, Default, Clone, Copy, PartialEq, PartialOrd, serde::Serialize, serde::Deserialize)]
        #[serde(transparent)]
        pub struct $name(f64);

        impl $name {
            /// Wraps a raw value expressed in the unit named by the type.
            #[inline]
            pub const fn new(value: f64) -> Self {
                Self(value)
            }

            /// A zero quantity.
            pub const ZERO: Self = Self(0.0);

            /// Returns the raw value in the unit named by the type.
            #[inline]
            pub const fn get(self) -> f64 {
                self.0
            }

            /// Returns the absolute value.
            #[inline]
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }

            /// Returns the larger of two quantities.
            #[inline]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Returns the smaller of two quantities.
            #[inline]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// Clamps the quantity into `[lo, hi]`.
            #[inline]
            pub fn clamp(self, lo: Self, hi: Self) -> Self {
                Self(self.0.clamp(lo.0, hi.0))
            }

            /// True when the underlying value is finite (not NaN/∞).
            #[inline]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }
        }

        impl core::ops::Add for $name {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl core::ops::AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl core::ops::Sub for $name {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl core::ops::SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl core::ops::Neg for $name {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl core::ops::Mul<f64> for $name {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl core::ops::Mul<$name> for f64 {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl core::ops::Div<f64> for $name {
            type Output = Self;
            #[inline]
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl core::ops::Div<$name> for $name {
            /// Dividing two like quantities yields a dimensionless ratio.
            type Output = f64;
            #[inline]
            fn div(self, rhs: $name) -> f64 {
                self.0 / rhs.0
            }
        }

        impl core::iter::Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|v| v.0).sum())
            }
        }

        impl<'a> core::iter::Sum<&'a $name> for $name {
            fn sum<I: Iterator<Item = &'a Self>>(iter: I) -> Self {
                Self(iter.map(|v| v.0).sum())
            }
        }

        impl core::fmt::Display for $name {
            fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
                if let Some(prec) = f.precision() {
                    write!(f, "{:.*} {}", prec, self.0, $unit)
                } else {
                    write!(f, "{} {}", self.0, $unit)
                }
            }
        }
    };
}

pub(crate) use linear_quantity;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_unit() {
        assert_eq!(format!("{}", Watts::new(250.0)), "250 W");
        assert_eq!(format!("{:.1}", Joules::new(1.25)), "1.2 J");
    }

    #[test]
    fn sum_over_iterator() {
        let total: Watts = [Watts::new(1.0), Watts::new(2.5)].iter().sum();
        assert_eq!(total, Watts::new(3.5));
    }

    #[test]
    fn ratio_of_like_quantities_is_dimensionless() {
        let ratio = Joules::new(50.0) / Joules::new(200.0);
        assert!((ratio - 0.25).abs() < 1e-12);
    }
}
