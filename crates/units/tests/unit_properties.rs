//! Property tests for the unit newtypes: arithmetic round-trips, no NaN
//! from finite inputs, exact serde round-trips.

use proptest::prelude::*;
use vmt_units::{Celsius, DegC, Fraction, Hours, Joules, Minutes, Seconds, Watts};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Temperature arithmetic round-trips: adding and subtracting the
    /// same delta returns within one ULP-scale epsilon, and finite
    /// inputs never produce NaN.
    #[test]
    fn temperature_add_sub_round_trips(c in -50.0f64..120.0, d in -40.0f64..40.0) {
        let base = Celsius::new(c);
        let delta = DegC::new(d);
        let back = (base + delta) - delta;
        prop_assert!(back.get().is_finite());
        prop_assert!((back.get() - c).abs() <= 1e-9 * (1.0 + c.abs()), "{c} vs {back}");
        prop_assert!((base + delta).get().is_finite());
        prop_assert!(((base + delta) - base).get().is_finite());
    }

    /// Time conversions round-trip across all three units.
    #[test]
    fn time_conversions_round_trip(s in 1e-3f64..1e7) {
        let seconds = Seconds::new(s);
        let via_minutes = seconds.to_minutes().to_seconds().get();
        let via_hours = seconds.to_hours().to_seconds().get();
        let via_both = Hours::new(s / 3600.0).to_minutes().to_seconds().get();
        prop_assert!((via_minutes - s).abs() <= 1e-9 * s);
        prop_assert!((via_hours - s).abs() <= 1e-9 * s);
        prop_assert!((via_both - s).abs() <= 1e-6 * s);
        prop_assert!(Minutes::new(s).to_hours().get().is_finite());
    }

    /// Energy over time round-trips with power: `(P × t) / t = P` and
    /// `(P × t) / P = t`, NaN-free for positive finite inputs.
    #[test]
    fn power_energy_round_trips(p in 1e-3f64..1e7, t in 1e-3f64..1e6) {
        let power = Watts::new(p);
        let dt = Seconds::new(t);
        let energy: Joules = power * dt;
        prop_assert!(energy.get().is_finite());
        let p_back = energy.over(dt).get();
        let t_back = (energy / power).get();
        prop_assert!((p_back - p).abs() <= 1e-9 * p, "{p} vs {p_back}");
        prop_assert!((t_back - t).abs() <= 1e-9 * t, "{t} vs {t_back}");
    }

    /// `Fraction::saturating` always lands in `[0, 1]` and never emits
    /// NaN for non-NaN input, however extreme.
    #[test]
    fn fraction_saturating_stays_in_range(x in -1e12f64..1e12) {
        let f = Fraction::saturating(x);
        prop_assert!((0.0..=1.0).contains(&f.get()), "{x} -> {}", f.get());
        let c = f.complement();
        prop_assert!((0.0..=1.0).contains(&c.get()));
        prop_assert!((f.get() + c.get() - 1.0).abs() <= 1e-12);
    }

    /// Unit newtypes survive a JSON round-trip *exactly* — the
    /// `float_roundtrip` contract the sweep-result files rely on.
    #[test]
    fn serde_round_trip_is_exact(x in -1e9f64..1e9) {
        let w = Watts::new(x);
        let json = serde_json::to_string(&w).expect("serializes");
        let back: Watts = serde_json::from_str(&json).expect("deserializes");
        prop_assert_eq!(back.get().to_bits(), x.to_bits());
        let c = Celsius::new(x);
        let back: Celsius = serde_json::from_str(&serde_json::to_string(&c).unwrap()).unwrap();
        prop_assert_eq!(back.get().to_bits(), x.to_bits());
    }
}
