//! Quick balancer microbenchmark: `cargo run --release -p vmt-core
//! --example balancer_bench [n] [prefetch]`. Emulates the engine's
//! placement loop — hot/cold balancer mix plus farm/index bookkeeping —
//! the dominant per-job cost of the VMT policies at 100k servers, then
//! isolates the two tournament primitives (argmin selection via
//! `place_indexed`, key update via `account_external_indexed`) for the
//! flat and zone-sharded layouts side by side.

use std::time::Instant;
use vmt_core::{BalancerLayout, ThermalBalancer};
use vmt_dcsim::{ClusterConfig, ClusterIndex, ServerFarm};
use vmt_units::Seconds;
use vmt_workload::{Job, JobId, WorkloadKind};

/// Per-layout primitive costs: the selection path (`place_indexed` —
/// root argmin, winner key bump, path replay to the root) and the pure
/// update path (`account_external_indexed` — key bump and path replay,
/// no selection). Free cores never drop (no jobs are started), so
/// neither loop exhausts the tree; keys only drift upward, which is the
/// steady-state shape of a mid-tick balancer anyway.
fn layout_micro(n: usize, layout: BalancerLayout, label: &str) {
    let config = ClusterConfig::paper_default(n);
    let farm = ServerFarm::from_config(&config);
    let index = ClusterIndex::new(&farm);
    let iters = (n * 4).max(1 << 16);
    let mut best_argmin = f64::INFINITY;
    let mut best_update = f64::INFINITY;
    for _ in 0..4 {
        let mut b = ThermalBalancer::new();
        b.set_layout(layout);
        b.rebuild(0..n, &farm);
        let t0 = Instant::now();
        let mut picked = 0u64;
        for _ in 0..iters {
            picked += b.place_indexed(&index, 7.6).is_some() as u64;
        }
        best_argmin = best_argmin.min(t0.elapsed().as_nanos() as f64 / picked.max(1) as f64);

        let mut b = ThermalBalancer::new();
        b.set_layout(layout);
        b.rebuild(0..n, &farm);
        let mut rng = 0xDEAD_BEEFu64;
        let t0 = Instant::now();
        for _ in 0..iters {
            rng = rng
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            b.account_external_indexed(((rng >> 33) as usize) % n, 7.6, &index);
        }
        best_update = best_update.min(t0.elapsed().as_nanos() as f64 / iters as f64);
    }
    println!(
        "{label:>5} ({} zones): {best_argmin:.1} ns/argmin, {best_update:.1} ns/update",
        {
            let mut b = ThermalBalancer::new();
            b.set_layout(layout);
            b.rebuild(0..n, &farm);
            b.zone_count()
        }
    );
}

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(100_000);
    let prefetch = std::env::args().nth(2).is_some_and(|s| s == "prefetch");
    let config = ClusterConfig::paper_default(n);
    let hot_size = n * 22 / 100;
    let rounds = 6;
    let per_round = n * 4;
    let mut best = f64::INFINITY;
    for _ in 0..rounds {
        let mut farm = ServerFarm::from_config(&config);
        let mut index = ClusterIndex::new(&farm);
        let mut hot = ThermalBalancer::new();
        let mut cold = ThermalBalancer::new();
        hot.rebuild(0..hot_size, &farm);
        cold.rebuild(hot_size..n, &farm);
        let mut rng = 0x9E37_79B9u64;
        let t0 = Instant::now();
        let mut placed = 0u64;
        for j in 0..per_round {
            rng = rng
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let is_hot = (rng >> 33) % 5 < 3;
            let b = if is_hot { &mut hot } else { &mut cold };
            if let Some(idx) = b.place_indexed(&index, 7.6) {
                farm.start_job(
                    idx,
                    &Job::new(
                        JobId(j as u64),
                        WorkloadKind::WebSearch,
                        Seconds::new(300.0),
                    ),
                );
                index.record_start(idx);
                placed += 1;
            }
            if prefetch {
                let b = if is_hot { &hot } else { &cold };
                if let Some(next) = b.peek() {
                    farm.prefetch_server(next);
                    index.prefetch_server(next);
                    b.prefetch_member(next);
                }
            }
        }
        let ns = t0.elapsed().as_nanos() as f64 / placed.max(1) as f64;
        best = best.min(ns);
        println!("placed {placed} at {ns:.1} ns/place");
    }
    println!("best: {best:.1} ns/place over {n} servers (prefetch={prefetch})");

    // The layout comparison: same leaves, same keys, flat tournament vs
    // zone-sharded slabs. A serial global argmin hops zones on every
    // placement, so the zoned layout gets no slab locality and its
    // replicated mid levels run colder than flat's shared upper levels
    // — flat wins this micro at every scale tried (hence Auto = flat).
    println!("tournament primitives at {n} leaves:");
    layout_micro(n, BalancerLayout::Flat, "flat");
    layout_micro(n, BalancerLayout::Zoned { span: 4096 }, "zoned");
}
