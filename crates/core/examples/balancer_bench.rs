//! Quick balancer microbenchmark: `cargo run --release -p vmt-core
//! --example balancer_bench [n] [prefetch]`. Emulates the engine's
//! placement loop — hot/cold balancer mix plus farm/index bookkeeping —
//! the dominant per-job cost of the VMT policies at 100k servers.

use std::time::Instant;
use vmt_core::ThermalBalancer;
use vmt_dcsim::{ClusterConfig, ClusterIndex, ServerFarm};
use vmt_units::Seconds;
use vmt_workload::{Job, JobId, WorkloadKind};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(100_000);
    let prefetch = std::env::args().nth(2).is_some_and(|s| s == "prefetch");
    let config = ClusterConfig::paper_default(n);
    let hot_size = n * 22 / 100;
    let rounds = 6;
    let per_round = n * 4;
    let mut best = f64::INFINITY;
    for _ in 0..rounds {
        let mut farm = ServerFarm::from_config(&config);
        let mut index = ClusterIndex::new(&farm);
        let mut hot = ThermalBalancer::new();
        let mut cold = ThermalBalancer::new();
        hot.rebuild(0..hot_size, &farm);
        cold.rebuild(hot_size..n, &farm);
        let mut rng = 0x9E37_79B9u64;
        let t0 = Instant::now();
        let mut placed = 0u64;
        for j in 0..per_round {
            rng = rng
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let is_hot = (rng >> 33) % 5 < 3;
            let b = if is_hot { &mut hot } else { &mut cold };
            if let Some(idx) = b.place_indexed(&index, 7.6) {
                farm.start_job(
                    idx,
                    &Job::new(
                        JobId(j as u64),
                        WorkloadKind::WebSearch,
                        Seconds::new(300.0),
                    ),
                );
                index.record_start(idx);
                placed += 1;
            }
            if prefetch {
                let b = if is_hot { &hot } else { &cold };
                if let Some(next) = b.peek() {
                    farm.prefetch_server(next);
                    index.prefetch_server(next);
                    b.prefetch_member(next);
                }
            }
        }
        let ns = t0.elapsed().as_nanos() as f64 / placed.max(1) as f64;
        best = best.min(ns);
        println!("placed {placed} at {ns:.1} ns/place");
    }
    println!("best: {best:.1} ns/place over {n} servers (prefetch={prefetch})");
}
