//! Quick scaling probe: `cargo run --release -p vmt-core --example
//! quick_scale [servers] [threads] [hours] [passes]`. Times the
//! vmt-wa paper scenario exactly like the bench's scaling rows
//! (run to the horizon, then finish), printing each pass and the best.

use std::time::Instant;
use vmt_core::{GroupingValue, VmtConfig, VmtWa};
use vmt_dcsim::{ClusterConfig, Simulation};
use vmt_units::Hours;
use vmt_workload::{DiurnalTrace, TraceConfig};

fn arg<T: std::str::FromStr>(i: usize, default: T) -> T {
    std::env::args()
        .nth(i)
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let servers: usize = arg(1, 10_000);
    let threads: usize = arg(2, 1);
    let hours: f64 = arg(3, 48.0);
    let passes: usize = arg(4, 2);
    let mut cluster = ClusterConfig::paper_default(servers);
    if servers >= 100_000 {
        cluster.heatmap_stride = 60;
    }
    let mut trace_config = TraceConfig::paper_default();
    trace_config.horizon = Hours::new(hours);
    let trace = DiurnalTrace::new(trace_config);
    let ticks = cluster.ticks_for(trace.horizon()) as u64;
    let mut best = f64::INFINITY;
    for _ in 0..passes {
        let vmt = VmtConfig::new(GroupingValue::new(22.0), &cluster);
        let scheduler = Box::new(VmtWa::new(vmt));
        let mut sim =
            Simulation::new(cluster.clone(), trace.clone(), scheduler).with_threads(threads);
        let t0 = Instant::now();
        sim.run_until(ticks);
        let (result, _) = sim.finish();
        let elapsed = t0.elapsed().as_secs_f64();
        best = best.min(elapsed);
        println!(
            "{servers} x{threads} ({hours} h): {elapsed:.1}s, {} placements",
            result.placements
        );
    }
    println!("best: {best:.1}s");
}
