//! Policy selection by name/kind — convenience for experiments and CLIs.

use crate::{CoolestFirst, GroupingValue, RoundRobin, VmtConfig, VmtTa, VmtWa};
use vmt_dcsim::{ClusterConfig, Scheduler};

/// The four placement policies of the paper's evaluation, as data.
///
/// # Examples
///
/// ```
/// use vmt_core::PolicyKind;
/// use vmt_dcsim::ClusterConfig;
///
/// let cluster = ClusterConfig::paper_default(100);
/// let scheduler = PolicyKind::VmtTa { gv: 22.0 }.build(&cluster);
/// assert_eq!(scheduler.name(), "vmt-ta");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum PolicyKind {
    /// Prior TTS work's baseline.
    RoundRobin,
    /// Thermal-aware load balancer baseline.
    CoolestFirst,
    /// VMT with thermal-aware placement at a grouping value.
    VmtTa {
        /// The grouping value.
        gv: f64,
    },
    /// VMT with wax-aware placement at a grouping value and wax
    /// threshold.
    VmtWa {
        /// The grouping value.
        gv: f64,
        /// The wax threshold (fraction melted that counts as "full").
        wax_threshold: f64,
    },
    /// Day-over-day self-tuning VMT-WA (beyond the paper, §V-C remark).
    AdaptiveGv {
        /// The starting grouping value.
        start_gv: f64,
    },
    /// Wax-preserving VMT that engages at an hour-of-day (beyond the
    /// paper, §III remark on raising the melting temperature).
    Preserve {
        /// The grouping value used once engaged.
        gv: f64,
        /// Hour-of-day at which VMT engages.
        engage_hour: f64,
    },
}

impl PolicyKind {
    /// The paper's default wax-aware configuration at a GV.
    pub fn vmt_wa(gv: f64) -> Self {
        PolicyKind::VmtWa {
            gv,
            wax_threshold: 0.98,
        }
    }

    /// Instantiates the scheduler for a cluster.
    ///
    /// # Panics
    ///
    /// Panics if a VMT policy is requested for a cluster without wax.
    pub fn build(self, cluster: &ClusterConfig) -> Box<dyn Scheduler> {
        match self {
            PolicyKind::RoundRobin => Box::new(RoundRobin::new()),
            PolicyKind::CoolestFirst => Box::new(CoolestFirst::new()),
            PolicyKind::VmtTa { gv } => {
                Box::new(VmtTa::new(VmtConfig::new(GroupingValue::new(gv), cluster)))
            }
            PolicyKind::VmtWa { gv, wax_threshold } => Box::new(VmtWa::new(
                VmtConfig::new(GroupingValue::new(gv), cluster).with_wax_threshold(wax_threshold),
            )),
            PolicyKind::AdaptiveGv { start_gv } => Box::new(crate::AdaptiveGv::new(
                VmtConfig::new(GroupingValue::new(start_gv), cluster),
                ((start_gv - 8.0).max(10.0), start_gv + 8.0),
            )),
            PolicyKind::Preserve { gv, engage_hour } => Box::new(crate::VmtPreserve::new(
                VmtConfig::new(GroupingValue::new(gv), cluster),
                vmt_units::Hours::new(engage_hour),
            )),
        }
    }

    /// Every name [`PolicyKind::parse`] accepts, in display order.
    pub const NAMES: [&'static str; 6] = [
        "round-robin",
        "coolest-first",
        "vmt-ta",
        "vmt-wa",
        "adaptive-gv",
        "vmt-preserve",
    ];

    /// Parses a policy by its scheduler name (see [`PolicyKind::NAMES`]),
    /// applying `gv` where the policy takes a grouping value. Unknown
    /// names produce an error message that lists the valid choices —
    /// CLI callers surface it verbatim as the usage error.
    pub fn parse(name: &str, gv: f64) -> Result<Self, String> {
        match name {
            "round-robin" => Ok(PolicyKind::RoundRobin),
            "coolest-first" => Ok(PolicyKind::CoolestFirst),
            "vmt-ta" => Ok(PolicyKind::VmtTa { gv }),
            "vmt-wa" => Ok(PolicyKind::vmt_wa(gv)),
            "adaptive-gv" => Ok(PolicyKind::AdaptiveGv { start_gv: gv }),
            "vmt-preserve" => Ok(PolicyKind::Preserve {
                gv,
                engage_hour: 16.0,
            }),
            _ => Err(format!(
                "unknown policy `{name}` (valid policies: {})",
                Self::NAMES.join(", ")
            )),
        }
    }

    /// Short display label (used in experiment tables).
    pub fn label(self) -> String {
        match self {
            PolicyKind::RoundRobin => "Round Robin".to_owned(),
            PolicyKind::CoolestFirst => "Coolest First".to_owned(),
            PolicyKind::VmtTa { gv } => format!("VMT-TA GV={gv}"),
            PolicyKind::VmtWa { gv, .. } => format!("VMT-WA GV={gv}"),
            PolicyKind::AdaptiveGv { start_gv } => format!("Adaptive GV from {start_gv}"),
            PolicyKind::Preserve { gv, engage_hour } => {
                format!("VMT-Preserve GV={gv} @{engage_hour}h")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_all_policies() {
        let cluster = ClusterConfig::paper_default(10);
        for (kind, name) in [
            (PolicyKind::RoundRobin, "round-robin"),
            (PolicyKind::CoolestFirst, "coolest-first"),
            (PolicyKind::VmtTa { gv: 22.0 }, "vmt-ta"),
            (PolicyKind::vmt_wa(22.0), "vmt-wa"),
            (PolicyKind::AdaptiveGv { start_gv: 22.0 }, "adaptive-gv"),
            (
                PolicyKind::Preserve {
                    gv: 22.0,
                    engage_hour: 16.0,
                },
                "vmt-preserve",
            ),
        ] {
            assert_eq!(kind.build(&cluster).name(), name);
        }
    }

    #[test]
    fn parses_scheduler_names() {
        assert_eq!(
            PolicyKind::parse("vmt-wa", 22.0),
            Ok(PolicyKind::vmt_wa(22.0))
        );
        assert_eq!(
            PolicyKind::parse("vmt-ta", 18.0),
            Ok(PolicyKind::VmtTa { gv: 18.0 })
        );
        assert_eq!(
            PolicyKind::parse("round-robin", 0.0),
            Ok(PolicyKind::RoundRobin)
        );
        // Every advertised name parses, and its built scheduler answers
        // to the same name.
        let cluster = ClusterConfig::paper_default(10);
        for name in PolicyKind::NAMES {
            let kind = PolicyKind::parse(name, 22.0).expect("advertised name parses");
            assert_eq!(kind.build(&cluster).name(), name);
        }
        // The unknown-name error names every valid policy.
        let err = PolicyKind::parse("no-such-policy", 22.0).unwrap_err();
        assert!(err.contains("no-such-policy"), "got: {err}");
        for name in PolicyKind::NAMES {
            assert!(err.contains(name), "error must list `{name}`: {err}");
        }
    }

    #[test]
    fn labels() {
        assert_eq!(PolicyKind::VmtTa { gv: 22.0 }.label(), "VMT-TA GV=22");
        assert_eq!(PolicyKind::RoundRobin.label(), "Round Robin");
    }

    #[test]
    #[should_panic(expected = "requires a wax deployment")]
    fn vmt_requires_wax() {
        PolicyKind::VmtTa { gv: 22.0 }.build(&ClusterConfig::without_wax(5));
    }
}
