//! Day-over-day grouping-value adaptation.
//!
//! The paper's §V-C observes that "in a scenario where the operators can
//! predict load accurately day to day, they can actually change the GV to
//! the optimal value each day". [`AdaptiveGv`] automates that operator:
//! it runs VMT-WA, watches how each day's peak went, and nudges the
//! grouping value for the next day:
//!
//! * the hot group **saturated and had to grow** → the group was too
//!   small and hot for the day's load → raise the GV;
//! * a **substantial share of the wax never melted** → the group was too
//!   large and cool → lower the GV;
//! * otherwise hold.
//!
//! Because a GV change re-partitions the cluster, the switch happens at
//! the dead of night (minimum utilization), when the wax is refrozen and
//! groups are thermally indistinguishable.

use crate::vmt_wa::VmtWaState;
use crate::{GroupingValue, VmtConfig, VmtWa};
use vmt_dcsim::{SavedState, Scheduler, ServerFarm, ServerId, SnapshotError, SnapshotState};
use vmt_units::Seconds;
use vmt_workload::Job;

/// GV adjustment applied per day, in GV units.
const GV_STEP: f64 = 1.0;
/// Peak-window mean melt below which the group counts as under-used.
/// Deliberately low: the controller corrects gross mis-tuning and holds
/// when roughly right — day-to-day load variation must not shake it off
/// the optimum.
const UNDERUSED_MELT: f64 = 0.5;
/// Consecutive days a signal must persist before the GV moves.
const SIGNAL_STREAK_DAYS: u32 = 2;
/// Peak-window mean melt above which the group counts as exhausted
/// early (the whole group's wax full while the peak is still on).
const EXHAUSTED_MELT: f64 = 0.93;
/// Cluster utilization above which the day's "peak window" is measured.
const PEAK_WINDOW_UTILIZATION: f64 = 0.82;
/// Hour of day at which the GV may be switched.
const SWITCH_HOUR: f64 = 5.0;

/// A self-tuning wrapper around [`VmtWa`].
///
/// # Examples
///
/// ```
/// use vmt_core::{AdaptiveGv, GroupingValue, VmtConfig};
/// use vmt_dcsim::{ClusterConfig, Scheduler};
///
/// let cluster = ClusterConfig::paper_default(100);
/// let policy = AdaptiveGv::new(
///     VmtConfig::new(GroupingValue::new(18.0), &cluster),
///     (14.0, 30.0),
/// );
/// assert_eq!(policy.name(), "adaptive-gv");
/// assert_eq!(policy.gv(), 18.0);
/// ```
#[derive(Debug, Clone)]
pub struct AdaptiveGv {
    inner: VmtWa,
    config: VmtConfig,
    gv: f64,
    bounds: (f64, f64),
    /// Whether the peak window saw the group's wax exhausted early.
    saturated_today: bool,
    /// Highest peak-window mean reported melt observed today.
    peak_mean_melt: f64,
    /// Whether any peak-window sample was observed today.
    saw_peak_today: bool,
    /// Day index of the last switch decision.
    last_switch_day: i64,
    /// Consecutive days the current signal direction persisted
    /// (+ = exhausted, − = under-used).
    signal_streak: i32,
    /// History of `(day, gv)` decisions, for inspection.
    history: Vec<(i64, f64)>,
}

impl AdaptiveGv {
    /// Creates the policy starting from `config.gv`, clamping future
    /// adjustments to `bounds`.
    ///
    /// # Panics
    ///
    /// Panics if the bounds are inverted or do not contain the starting
    /// GV.
    pub fn new(config: VmtConfig, bounds: (f64, f64)) -> Self {
        let gv = config.gv.get();
        assert!(
            bounds.0 < bounds.1 && (bounds.0..=bounds.1).contains(&gv),
            "bounds {bounds:?} must contain the starting GV {gv}"
        );
        Self {
            inner: VmtWa::new(config),
            config,
            gv,
            bounds,
            saturated_today: false,
            peak_mean_melt: 0.0,
            saw_peak_today: false,
            last_switch_day: -1,
            signal_streak: 0,
            history: vec![(0, gv)],
        }
    }

    /// The currently active grouping value.
    pub fn gv(&self) -> f64 {
        self.gv
    }

    /// The `(day, gv)` decision history.
    pub fn history(&self) -> &[(i64, f64)] {
        &self.history
    }

    /// Observes the cluster each tick and applies the daily adjustment.
    fn observe(&mut self, farm: &ServerFarm, now: Seconds) {
        let n = farm.len();
        let used: u32 = (0..n).map(|i| farm.used_cores(i)).sum();
        let total: u32 = (0..n).map(|_| farm.cores()).sum();
        let utilization = f64::from(used) / f64::from(total);

        if utilization >= PEAK_WINDOW_UTILIZATION {
            // Judge the *base* (Equation-1) group: organic growth adds
            // unmelted servers that would mask the exhaustion signal.
            let hot = self.config.hot_group_size(n).clamp(1, n);
            let mean_melt = (0..hot)
                .map(|i| farm.reported_melt_fraction(i).get())
                .sum::<f64>()
                / hot as f64;
            self.peak_mean_melt = self.peak_mean_melt.max(mean_melt);
            self.saw_peak_today = true;
            if mean_melt >= EXHAUSTED_MELT {
                // The whole group filled while the peak was still on.
                self.saturated_today = true;
            }
        }

        // Switch at the nightly low point, once per day, after at least
        // one observed peak.
        let hours = now.get() / 3600.0;
        let day = (hours / 24.0).floor() as i64;
        let hour_of_day = hours.rem_euclid(24.0);
        let in_switch_window = (SWITCH_HOUR..SWITCH_HOUR + 0.1).contains(&hour_of_day);
        if in_switch_window && day > self.last_switch_day && self.saw_peak_today {
            // Damping: a signal must persist for consecutive days before
            // the GV moves, so one unusual day cannot shake the
            // controller off a good setting.
            self.signal_streak = if self.saturated_today {
                (self.signal_streak.max(0)) + 1
            } else if self.peak_mean_melt < UNDERUSED_MELT {
                (self.signal_streak.min(0)) - 1
            } else {
                0
            };
            let next_gv = if self.signal_streak >= SIGNAL_STREAK_DAYS as i32 {
                (self.gv + GV_STEP).min(self.bounds.1)
            } else if self.signal_streak <= -(SIGNAL_STREAK_DAYS as i32) {
                (self.gv - GV_STEP).max(self.bounds.0)
            } else {
                self.gv
            };
            if next_gv != self.gv {
                self.signal_streak = 0;
                self.gv = next_gv;
                let mut config = self.config;
                config.gv = GroupingValue::new(next_gv);
                self.config = config;
                let prior = self.inner.counters().unwrap_or_default();
                self.inner = VmtWa::new(config);
                self.inner.adopt_counters(prior);
            }
            self.history.push((day, self.gv));
            self.last_switch_day = day;
            self.saturated_today = false;
            self.peak_mean_melt = 0.0;
            self.saw_peak_today = false;
        }
    }
}

/// Cross-tick state of [`AdaptiveGv`]: the wrapped [`VmtWa`]'s state
/// plus the controller's own day-over-day bookkeeping.
#[derive(Debug, serde::Serialize, serde::Deserialize)]
struct AdaptiveGvState {
    inner: VmtWaState,
    config: VmtConfig,
    gv: f64,
    bounds: (f64, f64),
    saturated_today: bool,
    peak_mean_melt: f64,
    saw_peak_today: bool,
    last_switch_day: i64,
    signal_streak: i32,
    history: Vec<(i64, f64)>,
}

impl SnapshotState for AdaptiveGv {
    fn state_kind(&self) -> Option<&'static str> {
        Some("adaptive-gv")
    }

    fn save_state(&self) -> Result<SavedState, SnapshotError> {
        Ok(SavedState::new(
            "adaptive-gv",
            &AdaptiveGvState {
                inner: self.inner.to_state(),
                config: self.config,
                gv: self.gv,
                bounds: self.bounds,
                saturated_today: self.saturated_today,
                peak_mean_melt: self.peak_mean_melt,
                saw_peak_today: self.saw_peak_today,
                last_switch_day: self.last_switch_day,
                signal_streak: self.signal_streak,
                history: self.history.clone(),
            },
        ))
    }

    fn restore_state(&mut self, saved: &SavedState) -> Result<(), SnapshotError> {
        let state: AdaptiveGvState = saved.decode("adaptive-gv")?;
        // `AdaptiveGv::new` panics on bad bounds; a snapshot is external
        // input, so report corruption instead.
        let (lo, hi) = state.bounds;
        if !(lo < hi && (lo..=hi).contains(&state.gv)) {
            return Err(SnapshotError::Corrupt(format!(
                "adaptive-gv bounds ({lo}, {hi}) do not contain GV {}",
                state.gv
            )));
        }
        *self = Self {
            inner: VmtWa::from_state(&state.inner),
            config: state.config,
            gv: state.gv,
            bounds: state.bounds,
            saturated_today: state.saturated_today,
            peak_mean_melt: state.peak_mean_melt,
            saw_peak_today: state.saw_peak_today,
            last_switch_day: state.last_switch_day,
            signal_streak: state.signal_streak,
            history: state.history,
        };
        Ok(())
    }
}

impl Scheduler for AdaptiveGv {
    fn name(&self) -> &str {
        "adaptive-gv"
    }

    fn clone_box(&self) -> Option<Box<dyn Scheduler>> {
        Some(Box::new(self.clone()))
    }

    fn on_tick(&mut self, farm: &ServerFarm, now: Seconds) {
        self.observe(farm, now);
        self.inner.on_tick(farm, now);
    }

    fn place(&mut self, job: &Job, farm: &ServerFarm) -> Option<ServerId> {
        self.inner.place(job, farm)
    }

    fn hot_group_size(&self) -> Option<usize> {
        self.inner.hot_group_size()
    }

    fn counters(&self) -> Option<vmt_telemetry::SchedulerCounters> {
        self.inner.counters()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmt_dcsim::{ClusterConfig, Simulation};
    use vmt_units::Hours;
    use vmt_workload::{DiurnalTrace, TraceConfig};

    fn four_day_trace() -> DiurnalTrace {
        let mut config = TraceConfig::paper_default();
        config.horizon = Hours::new(96.0);
        config.day_scale = vec![1.0, 0.99, 1.0, 0.99];
        DiurnalTrace::new(config)
    }

    fn run_adaptive(
        start_gv: f64,
        servers: usize,
    ) -> (vmt_dcsim::SimulationResult, Vec<(i64, f64)>) {
        // The history lives inside the scheduler, which the simulation
        // consumes; track it through a probe wrapper.
        #[derive(Debug)]
        struct Probe {
            inner: AdaptiveGv,
            sink: std::sync::Arc<std::sync::Mutex<Vec<(i64, f64)>>>,
        }
        // Test-only wrapper; never checkpointed.
        impl SnapshotState for Probe {}
        impl Scheduler for Probe {
            fn name(&self) -> &str {
                self.inner.name()
            }
            fn on_tick(&mut self, farm: &ServerFarm, now: Seconds) {
                self.inner.on_tick(farm, now);
                *self.sink.lock().expect("probe lock") = self.inner.history().to_vec();
            }
            fn place(&mut self, job: &Job, farm: &ServerFarm) -> Option<ServerId> {
                self.inner.place(job, farm)
            }
            fn hot_group_size(&self) -> Option<usize> {
                self.inner.hot_group_size()
            }
        }
        let cluster = ClusterConfig::paper_default(servers);
        let sink = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        let probe = Probe {
            inner: AdaptiveGv::new(
                VmtConfig::new(GroupingValue::new(start_gv), &cluster),
                (14.0, 30.0),
            ),
            sink: sink.clone(),
        };
        let result = Simulation::new(cluster, four_day_trace(), Box::new(probe)).run();
        let history = sink.lock().expect("probe lock").clone();
        (result, history)
    }

    #[test]
    fn walks_up_from_an_undersized_group() {
        // GV=19 melts out daily; the controller should raise the GV over
        // the four days.
        let (_, history) = run_adaptive(19.0, 50);
        let final_gv = history.last().expect("history non-empty").1;
        assert!(final_gv > 19.0, "GV should rise, history {history:?}");
    }

    #[test]
    fn walks_down_from_an_oversized_group() {
        // GV=28's group is too cool to melt much; the controller should
        // lower it.
        let (_, history) = run_adaptive(28.0, 50);
        let final_gv = history.last().expect("history non-empty").1;
        assert!(final_gv < 28.0, "GV should fall, history {history:?}");
    }

    #[test]
    fn holds_near_the_optimum() {
        let (_, history) = run_adaptive(22.0, 50);
        let final_gv = history.last().expect("history non-empty").1;
        assert!(
            (20.0..=24.0).contains(&final_gv),
            "GV should stay near 22, history {history:?}"
        );
    }

    #[test]
    fn adaptation_beats_a_bad_fixed_gv() {
        let (adaptive, _) = run_adaptive(19.0, 50);
        let cluster = ClusterConfig::paper_default(50);
        let fixed = Simulation::new(
            cluster.clone(),
            four_day_trace(),
            crate::PolicyKind::vmt_wa(19.0).build(&cluster),
        )
        .run();
        let baseline = Simulation::new(
            cluster.clone(),
            four_day_trace(),
            crate::PolicyKind::RoundRobin.build(&cluster),
        )
        .run();
        let adaptive_red = adaptive.compare_peak(&baseline).reduction_percent();
        let fixed_red = fixed.compare_peak(&baseline).reduction_percent();
        // Peak reduction is measured on the worst day, which for the
        // mis-tuned start is day one for both; but adaptation must not
        // be worse, and its *later* days improve.
        assert!(
            adaptive_red >= fixed_red - 0.5,
            "adaptive {adaptive_red:.1}% vs fixed {fixed_red:.1}%"
        );
    }

    #[test]
    #[should_panic(expected = "bounds")]
    fn bounds_must_contain_start() {
        let cluster = ClusterConfig::paper_default(10);
        AdaptiveGv::new(
            VmtConfig::new(GroupingValue::new(22.0), &cluster),
            (24.0, 30.0),
        );
    }
}
