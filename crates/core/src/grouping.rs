//! The Grouping Value and hot/cold group sizing (the paper's Equations 1
//! and 2).

use vmt_dcsim::ClusterConfig;
use vmt_units::Celsius;

/// The user-set Grouping Value (GV).
///
/// The GV is the single tuning knob of VMT. It is *not* a temperature —
/// the paper is explicit that the GV→VMT mapping is configuration-specific
/// and must be derived empirically (its Table II; our `table2`
/// experiment) — but it is expressed on a temperature-like scale so that
/// `GV / PMT` is a sensible ratio:
///
/// ```text
/// hot_group_size = GV / PMT × num_servers        (Equation 1)
/// cold_group_size = num_servers − hot_group_size (Equation 2)
/// ```
///
/// Lower GV → smaller, hotter hot group (melts faster, exhausts sooner);
/// higher GV → larger, cooler hot group (may never fully melt).
///
/// # Examples
///
/// ```
/// use vmt_core::GroupingValue;
/// use vmt_units::Celsius;
///
/// let gv = GroupingValue::new(22.0);
/// // The paper's headline configuration: GV=22, PMT=35.7 °C, 1000
/// // servers → a 616-server hot group.
/// assert_eq!(gv.hot_group_size(Celsius::new(35.7), 1000), 616);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, serde::Serialize, serde::Deserialize)]
pub struct GroupingValue(f64);

impl GroupingValue {
    /// Wraps a grouping value.
    ///
    /// # Panics
    ///
    /// Panics if `value` is not strictly positive and finite.
    pub fn new(value: f64) -> Self {
        assert!(
            value > 0.0 && value.is_finite(),
            "grouping value must be positive and finite, got {value}"
        );
        Self(value)
    }

    /// The raw value.
    pub fn get(self) -> f64 {
        self.0
    }

    /// Equation 1: the hot-group size for a physical melting temperature
    /// and cluster size, clamped to `[1, num_servers]`.
    ///
    /// # Panics
    ///
    /// Panics if `pmt` is not positive or `num_servers` is zero.
    pub fn hot_group_size(self, pmt: Celsius, num_servers: usize) -> usize {
        assert!(pmt.get() > 0.0, "PMT must be positive, got {pmt}");
        assert!(num_servers > 0, "cluster must have servers");
        let raw = (self.0 / pmt.get() * num_servers as f64).round() as usize;
        raw.clamp(1, num_servers)
    }

    /// Equation 2: the cold-group size.
    pub fn cold_group_size(self, pmt: Celsius, num_servers: usize) -> usize {
        num_servers - self.hot_group_size(pmt, num_servers)
    }
}

impl core::fmt::Display for GroupingValue {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "GV={}", self.0)
    }
}

/// Everything a VMT policy needs to know about its deployment.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct VmtConfig {
    /// The grouping value.
    pub gv: GroupingValue,
    /// The deployed wax's physical melting temperature.
    pub pmt: Celsius,
    /// Melt fraction above which a server counts as "fully melted"
    /// (VMT-WA's Wax Threshold; the paper fixes 0.98).
    pub wax_threshold: f64,
}

impl VmtConfig {
    /// Builds a config from a GV and the cluster it will run on, taking
    /// the PMT from the cluster's wax deployment.
    ///
    /// # Panics
    ///
    /// Panics if the cluster has no wax deployed — VMT without wax is
    /// meaningless.
    pub fn new(gv: GroupingValue, cluster: &ClusterConfig) -> Self {
        let wax = cluster
            .wax
            .as_ref()
            .expect("VMT requires a wax deployment in the cluster config");
        Self {
            gv,
            pmt: wax.material.melt_temperature(),
            wax_threshold: 0.98,
        }
    }

    /// Overrides the wax threshold (Figure 17's sweep).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < threshold ≤ 1`.
    #[must_use]
    pub fn with_wax_threshold(mut self, threshold: f64) -> Self {
        assert!(
            threshold > 0.0 && threshold <= 1.0,
            "wax threshold must be in (0, 1], got {threshold}"
        );
        self.wax_threshold = threshold;
        self
    }

    /// Equation 1 applied to a concrete cluster size.
    pub fn hot_group_size(&self, num_servers: usize) -> usize {
        self.gv.hot_group_size(self.pmt, num_servers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_headline_sizes() {
        let pmt = Celsius::new(35.7);
        assert_eq!(GroupingValue::new(22.0).hot_group_size(pmt, 1000), 616);
        assert_eq!(GroupingValue::new(20.0).hot_group_size(pmt, 1000), 560);
        assert_eq!(GroupingValue::new(24.0).hot_group_size(pmt, 1000), 672);
        assert_eq!(GroupingValue::new(22.0).cold_group_size(pmt, 1000), 384);
    }

    #[test]
    fn clamps_to_cluster() {
        let pmt = Celsius::new(35.7);
        // GV above the PMT would exceed the cluster; clamp to all servers.
        assert_eq!(GroupingValue::new(40.0).hot_group_size(pmt, 100), 100);
        // Tiny GV still yields at least one hot server.
        assert_eq!(GroupingValue::new(0.01).hot_group_size(pmt, 100), 1);
    }

    #[test]
    fn config_takes_pmt_from_cluster() {
        let cluster = ClusterConfig::paper_default(100);
        let cfg = VmtConfig::new(GroupingValue::new(22.0), &cluster);
        assert_eq!(cfg.pmt, Celsius::new(35.7));
        assert_eq!(cfg.wax_threshold, 0.98);
        assert_eq!(cfg.hot_group_size(100), 62);
    }

    #[test]
    #[should_panic(expected = "requires a wax deployment")]
    fn config_requires_wax() {
        let cluster = ClusterConfig::without_wax(10);
        VmtConfig::new(GroupingValue::new(22.0), &cluster);
    }

    #[test]
    fn threshold_override_validated() {
        let cluster = ClusterConfig::paper_default(10);
        let cfg = VmtConfig::new(GroupingValue::new(22.0), &cluster).with_wax_threshold(0.9);
        assert_eq!(cfg.wax_threshold, 0.9);
    }

    #[test]
    #[should_panic(expected = "wax threshold must be in")]
    fn zero_threshold_rejected() {
        let cluster = ClusterConfig::paper_default(10);
        let _ = VmtConfig::new(GroupingValue::new(22.0), &cluster).with_wax_threshold(0.0);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn non_positive_gv_rejected() {
        GroupingValue::new(0.0);
    }

    proptest! {
        /// Group sizes always partition the cluster.
        #[test]
        fn groups_partition(gv in 0.1f64..50.0, n in 1usize..2000) {
            let g = GroupingValue::new(gv);
            let pmt = Celsius::new(35.7);
            prop_assert_eq!(g.hot_group_size(pmt, n) + g.cold_group_size(pmt, n), n);
        }

        /// Hot-group size is monotone in GV.
        #[test]
        fn monotone_in_gv(gv in 0.1f64..49.0, n in 1usize..2000) {
            let pmt = Celsius::new(35.7);
            let a = GroupingValue::new(gv).hot_group_size(pmt, n);
            let b = GroupingValue::new(gv + 1.0).hot_group_size(pmt, n);
            prop_assert!(b >= a);
        }
    }
}
