//! Virtual Melting Temperature (VMT): thermal-aware and wax-aware job
//! placement for PCM-enabled datacenters.
//!
//! This crate implements the contribution of *"Virtual Melting
//! Temperature: Managing Server Load to Minimize Cooling Overhead with
//! Phase Change Materials"* (Skach et al., ISCA 2018). A datacenter whose
//! servers carry paraffin wax can only benefit from Thermal Time Shifting
//! if server temperatures cross the wax's physical melting temperature
//! (PMT); many workload mixes never get there. VMT deliberately
//! *unbalances* placement — concentrating thermally hot jobs on a subset
//! of servers (the **hot group**) — so that subset exceeds the PMT and
//! melts wax even though the cluster average cannot, emulating a wax with
//! a lower, *virtual* melting temperature.
//!
//! Four [`Scheduler`] policies are provided:
//!
//! * [`RoundRobin`] — the baseline used by prior TTS work.
//! * [`CoolestFirst`] — a thermal-aware load *balancer* (tight temperature
//!   distribution, still no melting).
//! * [`VmtTa`] — VMT with thermal-aware placement: static hot/cold groups
//!   sized by the [`GroupingValue`] (Equation 1), hot jobs to the hot
//!   group.
//! * [`VmtWa`] — VMT with wax-aware placement: additionally watches each
//!   server's reported melt state and grows the hot group when wax
//!   saturates, keeping melted servers warm while steering new heat to
//!   unmelted wax.
//!
//! # Examples
//!
//! Reproduce the paper's headline configuration on a small cluster:
//!
//! ```
//! use vmt_core::{GroupingValue, VmtConfig, VmtTa};
//! use vmt_dcsim::{ClusterConfig, Simulation};
//! use vmt_workload::{DiurnalTrace, TraceConfig};
//!
//! let cluster = ClusterConfig::paper_default(20);
//! let vmt = VmtConfig::new(GroupingValue::new(22.0), &cluster);
//! let sim = Simulation::new(
//!     cluster,
//!     DiurnalTrace::new(TraceConfig::paper_default()),
//!     Box::new(VmtTa::new(vmt)),
//! );
//! let result = sim.run();
//! assert!(result.max_melt_fraction() > 0.0);
//! ```
//!
//! [`Scheduler`]: vmt_dcsim::Scheduler

mod adaptive;
mod balance;
mod coolest_first;
mod grouping;
mod policy;
mod reference;
mod round_robin;
mod snapshot;
mod vmt_preserve;
mod vmt_ta;
mod vmt_wa;

pub use adaptive::AdaptiveGv;
pub use balance::{BalancerLayout, ThermalBalancer};
pub use coolest_first::CoolestFirst;
pub use grouping::{GroupingValue, VmtConfig};
pub use policy::PolicyKind;
pub use reference::{NaiveBalancer, NaiveCoolestFirst, NaiveVmtTa, NaiveVmtWa};
pub use round_robin::RoundRobin;
pub use snapshot::{restore_simulation, scheduler_from_saved};
pub use vmt_preserve::VmtPreserve;
pub use vmt_ta::VmtTa;
pub use vmt_wa::{VmtWa, WaTuning};
