//! Naive-scan reference schedulers for differential testing.
//!
//! The production policies ([`crate::CoolestFirst`], [`crate::VmtTa`],
//! [`crate::VmtWa`]) run on two fast paths: a [`ThermalBalancer`] heap
//! that picks the coolest member in O(log n), and the engine's
//! [`ClusterIndex`] flat arrays with per-tick scan cursors. This module
//! retains the *specification* those optimizations must honor: the same
//! policies written the obvious way — a full linear argmin over the
//! member set for every placement, every flag and core count read
//! straight from the server structs.
//!
//! The references share the key arithmetic ([`balance::fresh_key`],
//! [`balance::bump`]) with the optimized balancer, so they compute
//! byte-identical placement keys; the argmin tie-break (lowest server id
//! among equal keys) also matches the heap's `(key, idx)` ordering.
//! `tests/differential.rs` runs full simulations under both and asserts
//! the entire [`SimulationResult`]s — every cooling sample, heatmap cell,
//! and placement count — are equal. Each reference reports the *same*
//! [`Scheduler::name`] as its optimized twin because the name is part of
//! the result being compared.
//!
//! [`ThermalBalancer`]: crate::ThermalBalancer
//! [`ClusterIndex`]: vmt_dcsim::ClusterIndex
//! [`SimulationResult`]: vmt_dcsim::SimulationResult

use crate::balance;
use crate::grouping::VmtConfig;
use crate::vmt_wa::{
    WaTuning, KEEP_WARM_MARGIN_K, KEEP_WARM_MIN_UTILIZATION, REFREEZE_FRACTION,
    SHRINK_MAX_UTILIZATION,
};
use vmt_dcsim::{Scheduler, ServerFarm, ServerId};
use vmt_units::Celsius;
use vmt_workload::{Job, VmtClass};

/// [`crate::ThermalBalancer`] re-specified as a linear scan: every
/// placement walks the whole member set and picks the minimum
/// `(key, server id)` among members with a free core.
#[derive(Debug, Clone, Default)]
pub struct NaiveBalancer {
    /// `member[idx]` — whether server `idx` currently belongs to the set.
    member: Vec<bool>,
    /// Balancing key per server id; meaningful only for members.
    projected: Vec<f64>,
    kelvin_per_watt: f64,
}

impl NaiveBalancer {
    /// Creates an empty balancer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuilds the balancer over `members` (server ids).
    pub fn rebuild(&mut self, members: impl IntoIterator<Item = usize>, farm: &ServerFarm) {
        self.rebuild_biased(members.into_iter().map(|idx| (idx, 0.0)), farm);
    }

    /// Rebuilds over `(member, extra_bias_kelvin)` pairs.
    pub fn rebuild_biased(
        &mut self,
        members: impl IntoIterator<Item = (usize, f64)>,
        farm: &ServerFarm,
    ) {
        self.member.clear();
        self.member.resize(farm.len(), false);
        self.projected.resize(farm.len(), 0.0);
        self.kelvin_per_watt = balance::kelvin_per_watt(farm);
        for (idx, extra) in members {
            self.member[idx] = true;
            self.projected[idx] = balance::fresh_key(idx, extra, self.kelvin_per_watt, farm);
        }
    }

    /// Adds a member mid-tick.
    pub fn add_member(&mut self, idx: usize, farm: &ServerFarm) {
        self.member[idx] = true;
        self.projected[idx] = balance::fresh_key(idx, 0.0, self.kelvin_per_watt, farm);
    }

    /// Full-scan placement: O(members) per job.
    // The index-based loop is the point: this is the seed's scan kept
    // verbatim as the executable specification.
    #[allow(clippy::needless_range_loop)]
    pub fn place(&mut self, farm: &ServerFarm, core_power_w: f64) -> Option<usize> {
        let mut best: Option<(u64, usize)> = None;
        for idx in 0..self.member.len() {
            if !self.member[idx] || farm.free_cores(idx) == 0 {
                continue;
            }
            let key = balance::order_bits(self.projected[idx]);
            // Strict `<` on (key, idx): ascending scan keeps the lowest
            // id among equal keys, matching the heap's pop order.
            if best.is_none_or(|b| (key, idx) < b) {
                best = Some((key, idx));
            }
        }
        let (_, idx) = best?;
        self.projected[idx] += balance::bump(core_power_w, self.kelvin_per_watt);
        Some(idx)
    }

    /// Accounts for a placement made outside the balancer.
    pub fn account_external(&mut self, idx: usize, core_power_w: f64, _farm: &ServerFarm) {
        if idx >= self.projected.len() {
            return;
        }
        self.projected[idx] += balance::bump(core_power_w, self.kelvin_per_watt);
    }
}

/// [`crate::CoolestFirst`] with a full argmin scan per placement.
#[derive(Debug, Clone, Default)]
pub struct NaiveCoolestFirst {
    balancer: NaiveBalancer,
    initialized: bool,
}

impl NaiveCoolestFirst {
    /// Creates the policy.
    pub fn new() -> Self {
        Self::default()
    }
}

// The references are differential-test twins, never checkpointed: the
// default `SnapshotState` reports them as not snapshottable.
impl vmt_dcsim::SnapshotState for NaiveCoolestFirst {}

impl Scheduler for NaiveCoolestFirst {
    fn name(&self) -> &str {
        "coolest-first"
    }

    fn on_tick(&mut self, farm: &ServerFarm, _now: vmt_units::Seconds) {
        self.balancer.rebuild(0..farm.len(), farm);
        self.initialized = true;
    }

    fn place(&mut self, job: &Job, farm: &ServerFarm) -> Option<ServerId> {
        if !self.initialized {
            self.balancer.rebuild(0..farm.len(), farm);
            self.initialized = true;
        }
        self.balancer
            .place(farm, job.core_power().get())
            .map(ServerId)
    }
}

/// [`crate::VmtTa`] with full argmin scans per placement.
#[derive(Debug, Clone)]
pub struct NaiveVmtTa {
    config: VmtConfig,
    hot_size: usize,
    hot: NaiveBalancer,
    cold: NaiveBalancer,
    initialized: bool,
}

impl NaiveVmtTa {
    /// Creates the policy.
    pub fn new(config: VmtConfig) -> Self {
        Self {
            config,
            hot_size: 0,
            hot: NaiveBalancer::new(),
            cold: NaiveBalancer::new(),
            initialized: false,
        }
    }

    fn refresh(&mut self, farm: &ServerFarm) {
        if self.hot_size == 0 {
            self.hot_size = self.config.hot_group_size(farm.len());
        }
        self.hot.rebuild(0..self.hot_size, farm);
        self.cold.rebuild(self.hot_size..farm.len(), farm);
        self.initialized = true;
    }
}

impl vmt_dcsim::SnapshotState for NaiveVmtTa {}

impl Scheduler for NaiveVmtTa {
    fn name(&self) -> &str {
        "vmt-ta"
    }

    fn on_tick(&mut self, farm: &ServerFarm, _now: vmt_units::Seconds) {
        self.refresh(farm);
    }

    fn place(&mut self, job: &Job, farm: &ServerFarm) -> Option<ServerId> {
        if !self.initialized {
            self.refresh(farm);
        }
        let power = job.core_power().get();
        let idx = match job.kind().vmt_class() {
            VmtClass::Hot => self
                .hot
                .place(farm, power)
                .or_else(|| self.cold.place(farm, power)),
            VmtClass::Cold => self
                .cold
                .place(farm, power)
                .or_else(|| self.hot.place(farm, power)),
        };
        idx.map(ServerId)
    }

    fn hot_group_size(&self) -> Option<usize> {
        Some(self.hot_size.max(1))
    }
}

/// [`crate::VmtWa`] with full rescans everywhere: flags and utilization
/// recomputed from the server structs each tick, every fallback a fresh
/// `0..hot_size` scan, every balanced placement a full argmin.
#[derive(Debug, Clone)]
pub struct NaiveVmtWa {
    config: VmtConfig,
    tuning: WaTuning,
    base_hot: usize,
    hot_size: usize,
    keep_warm: Vec<usize>,
    hot: NaiveBalancer,
    cold: NaiveBalancer,
    melted: Vec<bool>,
    below_melt: Vec<bool>,
}

impl NaiveVmtWa {
    /// Creates the policy.
    pub fn new(config: VmtConfig) -> Self {
        Self::with_tuning(config, WaTuning::default())
    }

    /// Creates the policy with explicit saturation-reaction tuning.
    pub fn with_tuning(config: VmtConfig, tuning: WaTuning) -> Self {
        Self {
            config,
            tuning,
            base_hot: 0,
            hot_size: 0,
            keep_warm: Vec::new(),
            hot: NaiveBalancer::new(),
            cold: NaiveBalancer::new(),
            melted: Vec::new(),
            below_melt: Vec::new(),
        }
    }

    fn projected_temp(farm: &ServerFarm, idx: usize) -> Celsius {
        farm.inlet(idx)
            + vmt_units::DegC::new(farm.power(idx).get() / farm.air().capacity_rate().get())
    }

    fn warm_line(&self) -> Celsius {
        self.config.pmt + vmt_units::DegC::new(KEEP_WARM_MARGIN_K)
    }

    fn refresh(&mut self, farm: &ServerFarm) {
        let n = farm.len();
        if self.base_hot == 0 {
            self.base_hot = self.config.hot_group_size(n);
            self.hot_size = self.base_hot;
        }
        self.melted.clear();
        self.below_melt.clear();
        for i in 0..n {
            self.melted
                .push(farm.reported_melt_fraction(i).get() >= self.config.wax_threshold);
            self.below_melt.push(farm.air_at_wax(i) < self.config.pmt);
        }
        let used: u32 = (0..n).map(|i| farm.used_cores(i)).sum();
        let total: u32 = (0..n).map(|_| farm.cores()).sum();
        let utilization = f64::from(used) / f64::from(total);
        let near_peak = utilization >= KEEP_WARM_MIN_UTILIZATION;
        while utilization < SHRINK_MAX_UTILIZATION && self.hot_size > self.base_hot {
            let idx = self.hot_size - 1;
            let refrozen =
                farm.reported_melt_fraction(idx).get() < REFREEZE_FRACTION && self.below_melt[idx];
            if refrozen {
                self.hot_size -= 1;
            } else {
                break;
            }
        }
        if near_peak && self.tuning.count_growth_per_tick > 0 {
            let melted_count = self.melted[..self.hot_size].iter().filter(|&&m| m).count();
            let target = (self.base_hot + melted_count).clamp(self.hot_size, n);
            self.hot_size = target.min(self.hot_size + self.tuning.count_growth_per_tick);
        }
        let warm_line = self.warm_line();
        self.keep_warm.clear();
        let mut members = Vec::with_capacity(self.hot_size);
        #[allow(clippy::needless_range_loop)] // indices double as balancer keys
        for idx in 0..self.hot_size {
            if near_peak && self.melted[idx] {
                if self.tuning.keep_warm && Self::projected_temp(farm, idx) < warm_line {
                    self.keep_warm.push(idx);
                }
                members.push((idx, self.tuning.melted_penalty_k));
            } else {
                members.push((idx, 0.0));
            }
        }
        self.hot.rebuild_biased(members, farm);
        self.cold.rebuild(self.hot_size..n, farm);
    }

    fn place_hot(&mut self, farm: &ServerFarm, core_power_w: f64) -> Option<ServerId> {
        let n = farm.len();
        while let Some(&idx) = self.keep_warm.last() {
            if farm.free_cores(idx) > 0 && Self::projected_temp(farm, idx) < self.warm_line() {
                self.hot.account_external(idx, core_power_w, farm);
                return Some(ServerId(idx));
            }
            self.keep_warm.pop();
        }
        if let Some(idx) = self.hot.place(farm, core_power_w) {
            return Some(ServerId(idx));
        }
        while self.hot_size < n {
            let idx = self.hot_size;
            self.hot_size += 1;
            self.hot.add_member(idx, farm);
            if let Some(found) = self.hot.place(farm, core_power_w) {
                return Some(ServerId(found));
            }
        }
        (0..n)
            .find(|&i| !self.melted[i] && farm.free_cores(i) > 0)
            .or_else(|| (0..n).find(|&i| farm.free_cores(i) > 0))
            .map(ServerId)
    }

    fn place_cold(&mut self, farm: &ServerFarm, core_power_w: f64) -> Option<ServerId> {
        if let Some(idx) = self.cold.place(farm, core_power_w) {
            return Some(ServerId(idx));
        }
        (0..self.hot_size)
            .find(|&i| self.melted[i] && !self.below_melt[i] && farm.free_cores(i) > 0)
            .or_else(|| (0..self.hot_size).find(|&i| farm.free_cores(i) > 0))
            .map(ServerId)
    }
}

impl vmt_dcsim::SnapshotState for NaiveVmtWa {}

impl Scheduler for NaiveVmtWa {
    fn name(&self) -> &str {
        "vmt-wa"
    }

    fn on_tick(&mut self, farm: &ServerFarm, _now: vmt_units::Seconds) {
        self.refresh(farm);
    }

    fn place(&mut self, job: &Job, farm: &ServerFarm) -> Option<ServerId> {
        if self.melted.len() != farm.len() {
            self.refresh(farm);
        }
        match job.kind().vmt_class() {
            VmtClass::Hot => self.place_hot(farm, job.core_power().get()),
            VmtClass::Cold => self.place_cold(farm, job.core_power().get()),
        }
    }

    fn hot_group_size(&self) -> Option<usize> {
        Some(self.hot_size.max(self.base_hot).max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GroupingValue;
    use vmt_dcsim::ClusterConfig;
    use vmt_units::Seconds;
    use vmt_workload::{JobId, WorkloadKind};

    fn farm(n: usize) -> ServerFarm {
        ServerFarm::from_config(&ClusterConfig::paper_default(n))
    }

    fn job(id: u64, kind: WorkloadKind) -> Job {
        Job::new(JobId(id), kind, Seconds::new(300.0))
    }

    #[test]
    fn naive_balancer_matches_heap_balancer_placement_for_placement() {
        // Same members, same placement stream → identical choices.
        let list = farm(8);
        let mut naive = NaiveBalancer::new();
        let mut fast = crate::ThermalBalancer::new();
        naive.rebuild(0..8, &list);
        fast.rebuild(0..8, &list);
        for _ in 0..200 {
            assert_eq!(naive.place(&list, 7.6), fast.place(&list, 7.6));
        }
    }

    #[test]
    fn naive_policies_report_twin_names() {
        let cluster = ClusterConfig::paper_default(10);
        let vmt = VmtConfig::new(GroupingValue::new(22.0), &cluster);
        assert_eq!(NaiveCoolestFirst::new().name(), "coolest-first");
        assert_eq!(NaiveVmtTa::new(vmt).name(), "vmt-ta");
        assert_eq!(NaiveVmtWa::new(vmt).name(), "vmt-wa");
    }

    #[test]
    fn naive_coolest_first_places_on_the_cooler_server() {
        let mut list = farm(2);
        for i in 0..16 {
            list.start_job(0, &job(100 + i, WorkloadKind::Clustering));
        }
        let mut cf = NaiveCoolestFirst::new();
        cf.on_tick(&list, Seconds::ZERO);
        assert_eq!(
            cf.place(&job(0, WorkloadKind::WebSearch), &list),
            Some(ServerId(1))
        );
    }
}
