//! Rebuilding schedulers — and whole simulations — from saved state.
//!
//! A [`Snapshot`] is self-describing: its scheduler field carries a
//! kind tag plus the policy's serialized cross-tick state. This module
//! owns the kind registry — [`scheduler_from_saved`] maps a tag back to
//! a concrete policy instance — and the one-call restore path,
//! [`restore_simulation`], that the CLI's `resume` subcommand and the
//! test harnesses use.

use crate::{
    AdaptiveGv, CoolestFirst, GroupingValue, RoundRobin, VmtConfig, VmtPreserve, VmtTa, VmtWa,
};
use vmt_dcsim::{FirstFit, SavedState, Scheduler, Simulation, Snapshot, SnapshotError};
use vmt_units::{Celsius, Hours};

/// A throwaway configuration for placeholder instances: every field is
/// immediately overwritten by `restore_state`, so the values only need
/// to satisfy the constructors' invariants.
fn placeholder_config() -> VmtConfig {
    VmtConfig {
        gv: GroupingValue::new(20.0),
        pmt: Celsius::new(28.0),
        wax_threshold: 0.98,
    }
}

/// Rebuilds a boxed scheduler from a [`SavedState`]'s kind tag.
///
/// Every checkpointable policy in the workspace is registered here; a
/// tag from a newer (or foreign) snapshot yields
/// [`SnapshotError::UnknownKind`] rather than a panic.
///
/// # Examples
///
/// ```
/// use vmt_core::{scheduler_from_saved, RoundRobin};
/// use vmt_dcsim::SnapshotState;
///
/// let saved = RoundRobin::new().save_state().unwrap();
/// let rebuilt = scheduler_from_saved(&saved).unwrap();
/// assert_eq!(rebuilt.name(), "round-robin");
/// ```
pub fn scheduler_from_saved(saved: &SavedState) -> Result<Box<dyn Scheduler>, SnapshotError> {
    let mut scheduler: Box<dyn Scheduler> = match saved.kind.as_str() {
        "round-robin" => Box::new(RoundRobin::new()),
        "coolest-first" => Box::new(CoolestFirst::new()),
        "vmt-ta" => Box::new(VmtTa::new(placeholder_config())),
        "vmt-wa" => Box::new(VmtWa::new(placeholder_config())),
        "adaptive-gv" => Box::new(AdaptiveGv::new(placeholder_config(), (12.0, 28.0))),
        "vmt-preserve" => Box::new(VmtPreserve::new(placeholder_config(), Hours::new(16.0))),
        "first-fit" => Box::new(FirstFit::new()),
        other => return Err(SnapshotError::UnknownKind(other.to_owned())),
    };
    scheduler.restore_state(saved)?;
    Ok(scheduler)
}

/// Restores a full simulation from a snapshot, resolving the scheduler
/// through [`scheduler_from_saved`].
///
/// The returned simulation stands exactly at the snapshot's tick; step
/// it with [`Simulation::step`] or run it out with
/// [`Simulation::run_until`] and `finish`.
pub fn restore_simulation(snapshot: &Snapshot) -> Result<Simulation, SnapshotError> {
    Simulation::restore_with(snapshot, scheduler_from_saved(&snapshot.scheduler)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PolicyKind;
    use vmt_dcsim::ClusterConfig;

    #[test]
    fn every_policy_kind_round_trips() {
        let cluster = ClusterConfig::paper_default(10);
        for name in PolicyKind::NAMES {
            let kind = PolicyKind::parse(name, 22.0).expect("advertised name parses");
            let built = kind.build(&cluster);
            let saved = built.save_state().expect("policy saves");
            assert_eq!(saved.kind, name);
            let rebuilt = scheduler_from_saved(&saved).expect("policy rebuilds");
            assert_eq!(rebuilt.name(), name);
            // A second save of the rebuilt instance reproduces the image.
            let resaved = rebuilt.save_state().expect("rebuilt policy saves");
            assert_eq!(
                serde_json::to_string(&saved).unwrap(),
                serde_json::to_string(&resaved).unwrap(),
            );
        }
    }

    #[test]
    fn unknown_kind_is_a_typed_error() {
        let saved = SavedState {
            kind: "quantum-annealer".to_owned(),
            state: serde::Value::Null,
        };
        match scheduler_from_saved(&saved) {
            Err(SnapshotError::UnknownKind(kind)) => assert_eq!(kind, "quantum-annealer"),
            Ok(s) => panic!("unexpectedly built `{}`", s.name()),
            Err(other) => panic!("expected UnknownKind, got {other}"),
        }
    }

    #[test]
    fn corrupt_adaptive_bounds_are_rejected() {
        let cluster = ClusterConfig::paper_default(10);
        let saved = PolicyKind::AdaptiveGv { start_gv: 22.0 }
            .build(&cluster)
            .save_state()
            .unwrap();
        // Invert the bounds in the serialized image.
        let json = serde_json::to_string(&saved).unwrap();
        let broken = json.replace("\"bounds\":[14", "\"bounds\":[140");
        assert_ne!(json, broken, "the bounds field must be present");
        let tampered: SavedState = serde_json::from_str(&broken).unwrap();
        match scheduler_from_saved(&tampered) {
            Err(SnapshotError::Corrupt(msg)) => assert!(msg.contains("bounds"), "{msg}"),
            Ok(s) => panic!("unexpectedly built `{}`", s.name()),
            Err(other) => panic!("expected Corrupt, got {other}"),
        }
    }
}
