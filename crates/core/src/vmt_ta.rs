//! VMT with thermal-aware job placement (VMT-TA, paper §III-A).

use crate::balance::ThermalBalancer;
use crate::grouping::VmtConfig;
use vmt_dcsim::{
    ClusterIndex, SavedState, Scheduler, ServerFarm, ServerId, SnapshotError, SnapshotState,
};
use vmt_telemetry::SchedulerCounters;
use vmt_workload::{Job, VmtClass};

/// VMT-TA: static hot/cold groups, hot jobs concentrated in the hot
/// group.
///
/// The cluster is split by Equation 1 into a hot group (server ids
/// `0..hot_size`) and a cold group (the rest). Hot-classified jobs
/// (Table I) go to the hot group, cold jobs to the cold group; within
/// each group jobs are "distributed evenly among the servers", realized
/// as temperature balancing ([`ThermalBalancer`]) so that uneven inlet
/// temperatures are compensated rather than amplified. If a job's home
/// group is full it spills into the other group — the paper's overflow
/// rule — so VMT-TA only fails to place a job when the whole cluster is
/// out of cores.
///
/// # Examples
///
/// ```
/// use vmt_core::{GroupingValue, VmtConfig, VmtTa};
/// use vmt_dcsim::{ClusterConfig, Scheduler};
///
/// let cluster = ClusterConfig::paper_default(1000);
/// let ta = VmtTa::new(VmtConfig::new(GroupingValue::new(22.0), &cluster));
/// assert_eq!(ta.name(), "vmt-ta");
/// ```
#[derive(Debug, Clone)]
pub struct VmtTa {
    config: VmtConfig,
    /// Hot-group size; resolved from the cluster on the first tick.
    hot_size: usize,
    hot: ThermalBalancer,
    cold: ThermalBalancer,
    initialized: bool,
    counters: SchedulerCounters,
}

impl VmtTa {
    /// Creates the policy.
    pub fn new(config: VmtConfig) -> Self {
        Self {
            config,
            hot_size: 0,
            hot: ThermalBalancer::new(),
            cold: ThermalBalancer::new(),
            initialized: false,
            counters: SchedulerCounters::default(),
        }
    }

    /// The policy's configuration.
    pub fn config(&self) -> &VmtConfig {
        &self.config
    }

    /// Books a placement ladder's outcome: which group the job landed
    /// in, and whether it spilled out of its home group.
    fn count_placement(&mut self, home_is_hot: bool, in_hot: Option<bool>) {
        let Some(in_hot) = in_hot else { return };
        self.counters.placements += 1;
        if in_hot {
            self.counters.hot_placements += 1;
        } else {
            self.counters.cold_placements += 1;
        }
        if in_hot != home_is_hot {
            self.counters.spills += 1;
        }
    }

    fn refresh(&mut self, farm: &ServerFarm) {
        if self.hot_size == 0 {
            self.hot_size = self.config.hot_group_size(farm.len());
        }
        self.hot.rebuild(0..self.hot_size, farm);
        self.cold.rebuild(self.hot_size..farm.len(), farm);
        self.initialized = true;
    }

    /// The cross-tick state image (also nested in
    /// [`VmtPreserve`](crate::VmtPreserve)'s own state).
    pub(crate) fn to_state(&self) -> VmtTaState {
        VmtTaState {
            config: self.config,
            hot_size: self.hot_size,
            counters: self.counters,
        }
    }

    /// Rebuilds an instance from a state image. Balancers start empty
    /// and are re-derived from the farm in the next tick refresh, before
    /// any placement.
    pub(crate) fn from_state(state: &VmtTaState) -> Self {
        let mut ta = Self::new(state.config);
        ta.hot_size = state.hot_size;
        ta.counters = state.counters;
        ta
    }
}

/// Cross-tick state of [`VmtTa`]: the configuration, the resolved
/// hot-group size, and the cumulative counters. Balancer heaps are
/// per-tick derived state and deliberately absent.
#[derive(Debug, serde::Serialize, serde::Deserialize)]
pub(crate) struct VmtTaState {
    pub(crate) config: VmtConfig,
    pub(crate) hot_size: usize,
    pub(crate) counters: SchedulerCounters,
}

impl SnapshotState for VmtTa {
    fn state_kind(&self) -> Option<&'static str> {
        Some("vmt-ta")
    }

    fn save_state(&self) -> Result<SavedState, SnapshotError> {
        Ok(SavedState::new("vmt-ta", &self.to_state()))
    }

    fn restore_state(&mut self, saved: &SavedState) -> Result<(), SnapshotError> {
        let state: VmtTaState = saved.decode("vmt-ta")?;
        *self = Self::from_state(&state);
        Ok(())
    }
}

impl Scheduler for VmtTa {
    fn name(&self) -> &str {
        "vmt-ta"
    }

    fn clone_box(&self) -> Option<Box<dyn Scheduler>> {
        Some(Box::new(self.clone()))
    }

    fn on_tick(&mut self, farm: &ServerFarm, _now: vmt_units::Seconds) {
        self.refresh(farm);
    }

    fn place(&mut self, job: &Job, farm: &ServerFarm) -> Option<ServerId> {
        if !self.initialized {
            self.refresh(farm);
        }
        let power = job.core_power().get();
        // Home group first; spill into the other group when full.
        let home_is_hot = job.kind().vmt_class() == VmtClass::Hot;
        let placed = if home_is_hot {
            self.hot
                .place(farm, power)
                .map(|i| (i, true))
                .or_else(|| self.cold.place(farm, power).map(|i| (i, false)))
        } else {
            self.cold
                .place(farm, power)
                .map(|i| (i, false))
                .or_else(|| self.hot.place(farm, power).map(|i| (i, true)))
        };
        self.count_placement(home_is_hot, placed.map(|(_, in_hot)| in_hot));
        placed.map(|(i, _)| ServerId(i))
    }

    fn place_indexed(
        &mut self,
        job: &Job,
        farm: &ServerFarm,
        index: &ClusterIndex,
    ) -> Option<ServerId> {
        if !self.initialized {
            self.refresh(farm);
        }
        let power = job.core_power().get();
        // Same home-group-then-spill ladder as `place`, with free cores
        // probed from the engine's flat index.
        let home_is_hot = job.kind().vmt_class() == VmtClass::Hot;
        let placed = if home_is_hot {
            self.hot
                .place_indexed(index, power)
                .map(|i| (i, true))
                .or_else(|| self.cold.place_indexed(index, power).map(|i| (i, false)))
        } else {
            self.cold
                .place_indexed(index, power)
                .map(|i| (i, false))
                .or_else(|| self.hot.place_indexed(index, power).map(|i| (i, true)))
        };
        self.count_placement(home_is_hot, placed.map(|(_, in_hot)| in_hot));
        placed.map(|(i, _)| ServerId(i))
    }

    fn place_batch(
        &mut self,
        jobs: &[Job],
        farm: &mut ServerFarm,
        index: &mut ClusterIndex,
        out: &mut Vec<Option<ServerId>>,
    ) {
        if !self.initialized {
            self.refresh(farm);
        }
        // Software-pipelined batch placement: commit this job's
        // bookkeeping while the predicted next winner's farm row, index
        // entry, and balancer path are pulled in. The home balancer's
        // root only moves when a placement lands there, so the
        // prediction holds across the batch; spills re-read the other
        // group's root anyway. Prime both groups' current winners
        // before the loop.
        for b in [&self.hot, &self.cold] {
            if let Some(first) = b.peek() {
                farm.prefetch_server(first);
                index.prefetch_server(first);
                b.prefetch_member(first);
            }
        }
        for job in jobs {
            let power = job.core_power().get();
            let home_is_hot = job.kind().vmt_class() == VmtClass::Hot;
            let placed = if home_is_hot {
                self.hot
                    .place_indexed(index, power)
                    .map(|i| (i, true))
                    .or_else(|| self.cold.place_indexed(index, power).map(|i| (i, false)))
            } else {
                self.cold
                    .place_indexed(index, power)
                    .map(|i| (i, false))
                    .or_else(|| self.hot.place_indexed(index, power).map(|i| (i, true)))
            };
            self.count_placement(home_is_hot, placed.map(|(_, in_hot)| in_hot));
            if let Some((idx, _)) = placed {
                farm.start_job(idx, job);
                index.record_start(idx);
            }
            out.push(placed.map(|(i, _)| ServerId(i)));
            // Hint the group that just placed — its root winner is the
            // one that moved (a spilled job updated the other group).
            let balancer = match placed {
                Some((_, true)) => &self.hot,
                Some((_, false)) => &self.cold,
                None => continue,
            };
            if let Some(next) = balancer.peek() {
                farm.prefetch_server(next);
                index.prefetch_server(next);
                balancer.prefetch_member(next);
            }
        }
    }

    fn hot_group_size(&self) -> Option<usize> {
        Some(self.hot_size.max(1))
    }

    fn counters(&self) -> Option<SchedulerCounters> {
        Some(self.counters)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GroupingValue;
    use vmt_dcsim::ClusterConfig;
    use vmt_units::Seconds;
    use vmt_workload::{JobId, WorkloadKind};

    fn setup(n: usize, gv: f64) -> (ServerFarm, VmtTa) {
        let config = ClusterConfig::paper_default(n);
        let farm = ServerFarm::from_config(&config);
        let mut ta = VmtTa::new(VmtConfig::new(GroupingValue::new(gv), &config));
        ta.refresh(&farm);
        (farm, ta)
    }

    fn job(id: u64, kind: WorkloadKind) -> Job {
        Job::new(JobId(id), kind, Seconds::new(300.0))
    }

    #[test]
    fn group_sizing_matches_equation_one() {
        let (_, ta) = setup(100, 22.0);
        assert_eq!(ta.hot_group_size(), Some(62));
    }

    #[test]
    fn hot_jobs_go_to_hot_group_cold_to_cold() {
        let (mut farm, mut ta) = setup(10, 22.0);
        let hot = ta.hot_group_size().unwrap();
        for i in 0..20 {
            let sid = ta.place(&job(i, WorkloadKind::Clustering), &farm).unwrap();
            assert!(sid.0 < hot, "hot job landed on {sid}");
            farm.start_job(sid.0, &job(1000 + i, WorkloadKind::Clustering));
        }
        for i in 0..20 {
            let sid = ta
                .place(&job(100 + i, WorkloadKind::DataCaching), &farm)
                .unwrap();
            assert!(sid.0 >= hot, "cold job landed on {sid}");
            farm.start_job(sid.0, &job(2000 + i, WorkloadKind::DataCaching));
        }
    }

    #[test]
    fn distributes_evenly_within_group() {
        let (mut farm, mut ta) = setup(10, 22.0);
        let hot = ta.hot_group_size().unwrap();
        let mut counts = vec![0usize; 10];
        for i in 0..(hot as u64 * 3) {
            let sid = ta.place(&job(i, WorkloadKind::WebSearch), &farm).unwrap();
            counts[sid.0] += 1;
            farm.start_job(sid.0, &job(5000 + i, WorkloadKind::WebSearch));
        }
        let total: usize = counts[..hot].iter().sum();
        assert_eq!(total, hot * 3);
        for idx in 0..hot {
            // The static anti-synchronization bias allows a ±1 skew.
            assert!((2..=4).contains(&counts[idx]), "server {idx}: {counts:?}");
        }
    }

    #[test]
    fn spills_when_home_group_full() {
        let (mut farm, mut ta) = setup(4, 22.0);
        let hot = ta.hot_group_size().unwrap();
        assert_eq!(hot, 2);
        for s in 0..hot {
            for c in 0..32 {
                farm.start_job(s, &job((s * 100 + c) as u64, WorkloadKind::WebSearch));
            }
        }
        // Rebuild so the balancer sees the filled hot group.
        ta.refresh(&farm);
        let sid = ta
            .place(&job(9999, WorkloadKind::WebSearch), &farm)
            .unwrap();
        assert!(
            sid.0 >= hot,
            "expected spill into the cold group, got {sid}"
        );
    }

    #[test]
    fn none_when_cluster_full() {
        let (mut farm, mut ta) = setup(2, 22.0);
        for s in 0..2 {
            for c in 0..32 {
                farm.start_job(s, &job((s * 100 + c) as u64, WorkloadKind::VirusScan));
            }
        }
        ta.refresh(&farm);
        assert_eq!(ta.place(&job(9999, WorkloadKind::WebSearch), &farm), None);
    }

    #[test]
    fn compensates_uneven_inlets_within_group() {
        // With a 2 °C inlet spread, the warmest hot-group server gets
        // the least load.
        let mut config = ClusterConfig::paper_default(6);
        config.inlet = vmt_thermal::InletModel::normal(
            vmt_units::Celsius::new(22.0),
            vmt_units::DegC::new(2.0),
            9,
        );
        let mut farm = ServerFarm::from_config(&config);
        let mut ta = VmtTa::new(VmtConfig::new(GroupingValue::new(22.0), &config));
        ta.refresh(&farm);
        let hot = ta.hot_group_size().unwrap();
        let mut counts = vec![0usize; 6];
        for i in 0..((hot * 8) as u64) {
            let sid = ta.place(&job(i, WorkloadKind::WebSearch), &farm).unwrap();
            counts[sid.0] += 1;
            farm.start_job(sid.0, &job(5000 + i, WorkloadKind::WebSearch));
        }
        let warmest = (0..hot)
            .max_by(|&a, &b| farm.inlet(a).partial_cmp(&farm.inlet(b)).unwrap())
            .unwrap();
        let coolest = (0..hot)
            .min_by(|&a, &b| farm.inlet(a).partial_cmp(&farm.inlet(b)).unwrap())
            .unwrap();
        assert!(
            counts[warmest] < counts[coolest],
            "warmest {warmest} got {counts:?}"
        );
    }
}
