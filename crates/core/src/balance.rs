//! Projected-temperature load balancing within a set of servers.

use vmt_dcsim::{ClusterIndex, ServerFarm};

/// Children per tournament-tree node.
///
/// Eight `u64` keys are exactly one 64-byte cache line, so picking a
/// node's winner is a single-line linear scan. The wider fan-out also
/// flattens the tree: 1000 servers need 4 scan levels instead of the 10
/// pointer-hops of a binary tree, and the internal levels together hold
/// ~1/7th of the leaf count, keeping the whole structure cache-resident.
const FANOUT: usize = 8;

/// Default leaves per zone slab when `VMT_BALANCER_LAYOUT=zoned` names
/// no span: `8^4`, so a zone is exactly four full tournament levels
/// with zero padding waste (`4096 + 512 + 64 + 8 = 4680` slots
/// ≈ 36.6 KB of keys — two zones fit in a 256 KB L2 with room to
/// spare).
const ZONE_SPAN: usize = 4096;

/// Memory layout of a [`ThermalBalancer`]'s tournament tree.
///
/// The layout is a pure performance choice: every layout computes the
/// exact same `(key, idx)` argmin (pinned by the zoned-vs-flat tests
/// below and the differential suites), so it can be switched freely —
/// per balancer via [`ThermalBalancer::set_layout`] or process-wide via
/// the `VMT_BALANCER_LAYOUT` environment variable (`flat`, `zoned`, or
/// `zoned:<span>` with a power-of-8 span) — without ever perturbing
/// placement streams, digests, or snapshots.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum BalancerLayout {
    /// The flat tree, unless `VMT_BALANCER_LAYOUT` overrides it.
    ///
    /// Flat measured fastest at every scale tried (10k–1M leaves,
    /// single-threaded): a global argmin's path refreshes hop zones
    /// freely, so the zoned layout gets no slab locality, while its
    /// per-zone mid levels are replicated copies that stay colder than
    /// the flat tree's shared upper levels (~4% slower placement at
    /// 100k, ~14% slower argmin at 1M). The zoned layout is kept as a
    /// correctness-pinned, selectable representation — its per-zone
    /// slabs are the shape a future parallel placement path would
    /// shard over — not as the default.
    #[default]
    Auto,
    /// One flat tournament tree over all leaves (the pre-zoning
    /// layout).
    Flat,
    /// Zone-sharded: per-zone trees over `span`-leaf slabs plus a
    /// top-level leader tournament. `span` must be a power of 8.
    Zoned {
        /// Leaves per zone; a power of 8 (8, 64, 512, 4096, …).
        span: usize,
    },
}

impl BalancerLayout {
    /// The process-wide override from `VMT_BALANCER_LAYOUT`, or `Auto`
    /// when unset or unparseable. Read (deliberately uncached) at every
    /// tree resize: the layout never affects results, so a mid-run
    /// change is benign.
    fn from_env() -> Self {
        match std::env::var("VMT_BALANCER_LAYOUT") {
            Ok(v) if v == "flat" => Self::Flat,
            Ok(v) if v == "zoned" => Self::Zoned { span: ZONE_SPAN },
            Ok(v) => match v
                .strip_prefix("zoned:")
                .and_then(|s| s.parse::<usize>().ok())
            {
                Some(span) if is_power_of_eight(span) => Self::Zoned { span },
                _ => Self::Auto,
            },
            Err(_) => Self::Auto,
        }
    }
}

/// True for 8, 64, 512, 4096, … — the valid zone spans (each zone must
/// be a whole number of full [`FANOUT`]-ary levels).
fn is_power_of_eight(n: usize) -> bool {
    n >= FANOUT && n.is_power_of_two() && n.trailing_zeros().is_multiple_of(3)
}

/// Balances placements across a set of servers by *projected
/// steady-state temperature*.
///
/// Each member's key starts at the steady-state temperature its current
/// power draw is heading toward (`inlet + P/(ṁ·c_p)`); every placement
/// bumps the chosen member's key by the temperature rise one more core
/// of that power will eventually produce. Placing on the minimum key
/// therefore equalizes *temperatures*, not job counts — which is what
/// "distribute jobs evenly" has to mean once server inlet temperatures
/// vary (a server fed 2 °C warmer air gets proportionally less load).
///
/// Used by [`crate::CoolestFirst`] over the whole cluster and by the VMT
/// policies within each group.
///
/// Internally a [`FANOUT`]-ary tournament tree over the server ids:
/// leaf `i` holds member `i`'s current key as a raw `f64`
/// (`f64::INFINITY` for non-members and members out of cores), and each
/// internal node the `min (key, idx)` winner of its `FANOUT` children.
/// A placement reads the root winner and refreshes one leaf-to-root
/// path — each level a left-to-right scan of one contiguous child
/// group, so "first strict minimum wins" is exactly the `(key, idx)`
/// tie-break. The path refresh stops early at the first node whose
/// `(key, winner)` comes out unchanged, since every ancestor above it
/// is then already consistent. The winner is a pure function of the
/// current key set, so placement order is identical to a full argmin
/// scan's (see the naive references and `tests/differential.rs`).
///
/// Two memory layouts compute that tree ([`BalancerLayout`]):
///
/// * **Flat** (the default) — every level is one contiguous padded
///   array, leaves first, root last. The leaf and first internal
///   levels fall out of L2 at 100k+ leaves, but the upper levels are
///   shared by every path and stay hot, and the placement loop's
///   [`ThermalBalancer::prefetch_member`] hints cover the cold lines.
/// * **Zone-sharded** — leaves are split into contiguous `span`-leaf
///   zones (ascending server ids, so zone winners inherit the global
///   leftmost-on-tie rule), each zone's full tree packed into one
///   contiguous slab; a small leader tournament over the zone roots is
///   appended *last*, so `key.last()`/`win.last()` remain the global
///   root in both layouts, and the `win[]` column stores *global* leaf
///   ids everywhere so the winner needs no per-layout translation.
///   Measured *slower* than flat for the engine's serial placement
///   stream (see [`BalancerLayout::Auto`]) and therefore opt-in; it is
///   the representation a parallel placement path would shard over,
///   and the layout-differential tests pin it decision-for-decision to
///   the flat tree so it stays a pure memory-layout choice.
#[derive(Debug, Clone, Default)]
pub struct ThermalBalancer {
    /// Node keys for every conceptual level. Keys are finite projected
    /// temperatures stored as raw `f64` — `<` orders them exactly and
    /// `f64::INFINITY` is the retired/padding sentinel, so no
    /// total-order bit encoding is needed on the hot path. Slots past a
    /// level's real node count pad it to a multiple of [`FANOUT`] and
    /// stay `f64::INFINITY` forever. Empty until the first rebuild.
    ///
    /// A live leaf *is* its member's projected temperature — key and
    /// projection were historically separate arrays whose live entries
    /// were always bit-equal, so merging them dropped one random
    /// 800 KB-array touch from every placement at 100k servers. A
    /// member whose leaf is retired (out of cores) has no projection on
    /// record, which is sound: every reader either just placed on the
    /// member (leaf live) or has checked it still has free cores —
    /// within a tick free cores only shrink, so a retired leaf can
    /// never pass that check.
    key: Vec<f64>,
    /// Winning *global* leaf index per node, same storage layout as
    /// `key`; leaf-level entries are unused (a leaf's winner is
    /// itself), the last entry is the overall winner.
    win: Vec<u32>,
    /// Conceptual (padded) node count per level, leaves first, root
    /// (always 1) last. Shared by both layouts; `level_nodes[l - 1] /
    /// FANOUT` is the number of *real* parents at level `l`. Empty
    /// until the first rebuild — the "needs resize" sentinel.
    level_nodes: Vec<usize>,
    /// Number of levels stored inside the per-zone slabs (0 in the flat
    /// layout, `log8(span)` when zoned — the zone-root level itself
    /// lives in the leader area as the leader's leaf level, so a zone
    /// root has exactly one storage slot).
    zone_levels: usize,
    /// Leaves per zone (0 in the flat layout).
    span: usize,
    /// Total slots per zone slab (0 in the flat layout).
    slab: usize,
    /// Start offset of each in-slab level *within* a zone slab.
    zslab_off: Vec<usize>,
    /// Zone count (1 in the flat layout).
    zones: usize,
    /// Absolute start offset of each leader-area level inside
    /// `key`/`win`. In the flat layout this is the whole tree (the
    /// "leader" tree over all leaves); when zoned it sits after the
    /// zone slabs, its leaf level holding the zone roots.
    leader_off: Vec<usize>,
    /// Leaf count the tree was laid out for (the farm size).
    leaves: usize,
    /// Layout request; resolved against the farm size (and the
    /// `VMT_BALANCER_LAYOUT` override) at resize time.
    layout: BalancerLayout,
    /// Memoized [`static_bias`] per server id, so per-tick rebuilds pay
    /// one table read instead of a hash mix per member.
    bias: Vec<f64>,
    /// Inverse of the air stream's capacity rate (K/W).
    kelvin_per_watt: f64,
}

/// Occupancy penalty added to the balancing key per used core (kelvin).
///
/// Pure temperature keys have a failure mode at high utilization: a
/// low-power (cold) job barely moves the projection, so the momentarily
/// coolest server swallows an entire batch of cold jobs until its cores
/// run out — after which hot jobs have nowhere to go but the remaining
/// (hot) servers, and the cluster bifurcates. A small per-core penalty
/// makes the key "temperature plus a whiff of occupancy", spreading
/// same-temperature placements across members while leaving real
/// temperature differences (≥ a few tenths of a kelvin) decisive.
const CORE_PENALTY_K: f64 = 0.05;

/// Amplitude of the static per-server key bias (kelvin).
///
/// Perfect balancing has a second failure mode: every member of a group
/// melts its wax at exactly the same time, so the whole group saturates
/// in one tick and the cluster's absorption collapses as a step. Real
/// servers are never bit-identical — component tolerances and airflow
/// give each a slightly different thermal operating point — which
/// staggers saturation. A deterministic ±0.4 K bias derived from the
/// server id reproduces that spread.
const STATIC_BIAS_K: f64 = 0.4;

/// Deterministic per-server bias in `[-STATIC_BIAS_K, +STATIC_BIAS_K]`.
pub(crate) fn static_bias(idx: usize) -> f64 {
    // splitmix64 of the index → uniform in [0,1).
    let mut z = (idx as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    ((z % 10_000) as f64 / 10_000.0 - 0.5) * 2.0 * STATIC_BIAS_K
}

/// Orders f64 values as u64 keys (standard sign-flip trick; total order
/// for all non-NaN values). The tree stores raw `f64` keys; this stays
/// as the naive reference scan's key encoding (`crate::reference`).
pub(crate) fn order_bits(value: f64) -> u64 {
    let bits = value.to_bits();
    if value >= 0.0 {
        bits | 0x8000_0000_0000_0000
    } else {
        !bits
    }
}

/// Inverse of the air stream's capacity rate (K/W) — uniform across the
/// farm, as the fleet is homogeneous in the paper's configuration.
pub(crate) fn kelvin_per_watt(farm: &ServerFarm) -> f64 {
    if farm.is_empty() {
        1.0
    } else {
        1.0 / farm.air().capacity_rate().get()
    }
}

/// The balancing key a member starts the tick with: projected
/// steady-state temperature plus occupancy penalty, anti-synchronization
/// bias, and any caller-supplied extra bias.
///
/// Shared between [`ThermalBalancer`] and the naive-scan reference
/// schedulers (`crate::reference`) so both compute byte-identical keys —
/// the differential tests compare full `SimulationResult`s, so even a
/// one-ULP divergence from reassociated arithmetic would show up.
pub(crate) fn fresh_key(idx: usize, extra: f64, kpw: f64, farm: &ServerFarm) -> f64 {
    fresh_key_biased(idx, extra, kpw, farm, static_bias(idx))
}

/// [`fresh_key`] with the static bias supplied by the caller (the
/// balancer's memoized table). The summation order matches [`fresh_key`]
/// term for term, so both paths produce byte-identical keys.
#[inline]
fn fresh_key_biased(idx: usize, extra: f64, kpw: f64, farm: &ServerFarm, bias: f64) -> f64 {
    farm.inlet(idx).get()
        + farm.power(idx).get() * kpw
        + f64::from(farm.used_cores(idx)) * CORE_PENALTY_K
        + bias
        + extra
}

/// Key increase from placing one job drawing `core_power_w` — shared with
/// the naive references for the same reason as [`fresh_key`].
pub(crate) fn bump(core_power_w: f64, kpw: f64) -> f64 {
    core_power_w * kpw + CORE_PENALTY_K
}

impl ThermalBalancer {
    /// Creates an empty balancer with the [`BalancerLayout::Auto`]
    /// layout.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests a tree layout; applied at the next rebuild. Purely a
    /// memory-layout choice — the argmin sequence is identical under
    /// every layout — so this exists for benchmarks and the
    /// layout-differential tests, not for tuning results.
    pub fn set_layout(&mut self, layout: BalancerLayout) {
        self.layout = layout;
        // Force a resize on the next rebuild.
        self.level_nodes = Vec::new();
    }

    /// Zone count of the current tree (1 under the flat layout).
    /// Diagnostic only.
    pub fn zone_count(&self) -> usize {
        self.zones.max(1)
    }

    /// The zone span the requested layout resolves to, or `None` for
    /// the flat layout.
    fn resolved_span(&self) -> Option<usize> {
        let requested = match self.layout {
            BalancerLayout::Auto => BalancerLayout::from_env(),
            other => other,
        };
        match requested {
            BalancerLayout::Flat | BalancerLayout::Auto => None,
            BalancerLayout::Zoned { span } => Some(span),
        }
    }

    /// Total conceptual level count, leaves through root.
    #[inline]
    fn levels(&self) -> usize {
        self.zone_levels + self.leader_off.len()
    }

    /// Storage slot of the node at conceptual position `pos` of
    /// conceptual level `lvl`.
    ///
    /// Conceptual positions are layout-independent: the level-`lvl`
    /// ancestor of leaf `i` sits at position `i / FANOUT^lvl`, exactly
    /// the flat tree's numbering. In-slab levels map a position to
    /// `(zone, within-zone)` by shifting (a zone holds `span >>
    /// (3·lvl)` nodes at level `lvl`, always a power of 8), leader
    /// levels are stored contiguously. A [`FANOUT`]-aligned group is
    /// contiguous in storage at every level — in-slab per-zone node
    /// counts are powers of 8 ≥ [`FANOUT`], so a group never straddles
    /// a zone boundary.
    #[inline]
    fn node_slot(&self, lvl: usize, pos: usize) -> usize {
        if lvl >= self.zone_levels {
            return self.leader_off[lvl - self.zone_levels] + pos;
        }
        let bits = 3 * (self.zone_levels - lvl);
        let zone = pos >> bits;
        let within = pos & ((1usize << bits) - 1);
        zone * self.slab + self.zslab_off[lvl] + within
    }

    /// Storage slot of member `idx`'s leaf. Specialized from
    /// [`ThermalBalancer::node_slot`]: the flat tree stores leaves at
    /// the very front (`leader_off[0] == 0`) and a zone slab stores its
    /// leaves first (`zslab_off[0] == 0`), so neither offset table is
    /// consulted on this per-placement path.
    #[inline]
    fn leaf_slot(&self, idx: usize) -> usize {
        if self.zone_levels == 0 {
            idx
        } else {
            (idx / self.span) * self.slab + (idx & (self.span - 1))
        }
    }

    /// Re-sizes the tree for a farm of `n` servers: resolves the
    /// layout, computes the padded level structure, and memoizes the
    /// static-bias table.
    fn resize(&mut self, n: usize) {
        self.leaves = n;
        self.bias = (0..n).map(static_bias).collect();
        // Pad every level to a multiple of FANOUT so each node's child
        // scan is one full, aligned group; the final level is the root.
        let flat_sizes = |leaves: usize| {
            let mut sizes = vec![leaves.max(1).next_multiple_of(FANOUT)];
            while *sizes.last().expect("non-empty") > FANOUT {
                sizes.push((sizes.last().expect("non-empty") / FANOUT).next_multiple_of(FANOUT));
            }
            sizes.push(1);
            sizes
        };
        match self.resolved_span() {
            None => {
                // Flat: the "leader" tree spans all leaves directly.
                self.zone_levels = 0;
                self.span = 0;
                self.slab = 0;
                self.zslab_off = Vec::new();
                self.zones = 1;
                let sizes = flat_sizes(n);
                let mut off = 0;
                self.leader_off = sizes
                    .iter()
                    .map(|&s| {
                        let o = off;
                        off += s;
                        o
                    })
                    .collect();
                self.level_nodes = sizes;
                self.key = vec![f64::INFINITY; off];
                self.win = vec![0; off];
            }
            Some(span) => {
                debug_assert!(is_power_of_eight(span), "zone span must be a power of 8");
                let zones = n.div_ceil(span).max(1);
                let zone_levels = (span.trailing_zeros() / 3) as usize;
                self.zone_levels = zone_levels;
                self.span = span;
                self.zones = zones;
                // In-slab levels: span, span/8, …, FANOUT — each zone's
                // root is *not* stored in the slab, it is the leader
                // tree's leaf for that zone.
                let mut off = 0;
                self.zslab_off = (0..zone_levels)
                    .map(|l| {
                        let o = off;
                        off += span >> (3 * l);
                        o
                    })
                    .collect();
                self.slab = off;
                let leader_sizes = flat_sizes(zones);
                let mut abs = zones * self.slab;
                self.leader_off = leader_sizes
                    .iter()
                    .map(|&s| {
                        let o = abs;
                        abs += s;
                        o
                    })
                    .collect();
                self.level_nodes = (0..zone_levels)
                    .map(|l| zones * (span >> (3 * l)))
                    .chain(leader_sizes)
                    .collect();
                // Padding slots hold f64::INFINITY from day one and are
                // never rewritten (rebuilds only touch real leaves and
                // real parents), so they can never win a scan.
                self.key = vec![f64::INFINITY; abs];
                self.win = vec![0; abs];
            }
        }
    }

    /// Rebuilds the balancer over `members` (server ids) for the current
    /// tick.
    pub fn rebuild(&mut self, members: impl IntoIterator<Item = usize>, farm: &ServerFarm) {
        self.rebuild_biased(members.into_iter().map(|idx| (idx, 0.0)), farm);
    }

    /// Rebuilds over `(member, extra_bias_kelvin)` pairs. A positive bias
    /// makes a member systematically less attractive, shifting its
    /// equilibrium share of the load down without ever removing it —
    /// VMT-WA uses this to bleed load off saturated servers gradually.
    pub fn rebuild_biased(
        &mut self,
        members: impl IntoIterator<Item = (usize, f64)>,
        farm: &ServerFarm,
    ) {
        let n = farm.len();
        if self.leaves != n || self.level_nodes.is_empty() {
            self.resize(n);
        }
        self.kelvin_per_watt = kelvin_per_watt(farm);
        if self.zone_levels == 0 {
            self.key[..self.level_nodes[0]].fill(f64::INFINITY);
        } else {
            for z in 0..self.zones {
                let start = z * self.slab;
                self.key[start..start + self.span].fill(f64::INFINITY);
            }
        }
        for (idx, extra) in members {
            if farm.free_cores(idx) > 0 {
                let slot = self.leaf_slot(idx);
                self.key[slot] =
                    fresh_key_biased(idx, extra, self.kelvin_per_watt, farm, self.bias[idx]);
            }
        }
        self.rebuild_internal();
    }

    /// Bottom-up rebuild of every internal node, O(leaves / 7).
    fn rebuild_internal(&mut self) {
        for lvl in 1..self.levels() {
            // Real parents only: padded slots at `lvl` (e.g. leader
            // leaves past the last zone) keep their INFINITY sentinel.
            let parents = self.level_nodes[lvl - 1] / FANOUT;
            for pos in 0..parents {
                let (bk, bw) = self.scan_group(lvl - 1, pos * FANOUT);
                let slot = self.node_slot(lvl, pos);
                self.key[slot] = bk;
                self.win[slot] = bw;
            }
        }
    }

    /// Winner of the [`FANOUT`]-aligned group of conceptual level `lvl`
    /// starting at conceptual position `base`.
    #[inline]
    fn scan_group(&self, lvl: usize, base: usize) -> (f64, u32) {
        let slot = self.node_slot(lvl, base);
        if lvl == 0 {
            self.scan_leaves(slot, base as u32)
        } else {
            self.scan_nodes(slot)
        }
    }

    /// Winner of the leaf group stored at `slot_base`, whose first
    /// member is global leaf `leaf_base`: a leaf's winner is its own
    /// index, so the `win` column is not consulted.
    #[inline]
    fn scan_leaves(&self, slot_base: usize, leaf_base: u32) -> (f64, u32) {
        let g: [f64; FANOUT] = self.key[slot_base..slot_base + FANOUT]
            .try_into()
            .expect("full group");
        // Pairwise tree reduction: three select levels instead of a
        // seven-deep compare chain, and branchless (winner position is
        // data-dependent, so a branch would mispredict constantly).
        // Strict `<` keeps the leftmost winner on ties at every level,
        // which composes to the global leftmost — the `(key, idx)`
        // tie-break.
        let sel = |a: (f64, u32), b: (f64, u32)| if b.0 < a.0 { b } else { a };
        let q0 = sel((g[0], 0), (g[1], 1));
        let q1 = sel((g[2], 2), (g[3], 3));
        let q2 = sel((g[4], 4), (g[5], 5));
        let q3 = sel((g[6], 6), (g[7], 7));
        let (bk, t) = sel(sel(q0, q1), sel(q2, q3));
        (bk, leaf_base + t)
    }

    /// Winner of the internal-node group stored at `slot_base`. The
    /// `win` column holds global leaf ids at every internal level (zone
    /// and leader alike), so the winner propagates without translation.
    #[inline]
    fn scan_nodes(&self, slot_base: usize) -> (f64, u32) {
        let g: [f64; FANOUT] = self.key[slot_base..slot_base + FANOUT]
            .try_into()
            .expect("full group");
        let sel = |a: (f64, u32), b: (f64, u32)| if b.0 < a.0 { b } else { a };
        let q0 = sel((g[0], 0), (g[1], 1));
        let q1 = sel((g[2], 2), (g[3], 3));
        let q2 = sel((g[4], 4), (g[5], 5));
        let q3 = sel((g[6], 6), (g[7], 7));
        let (bk, t) = sel(sel(q0, q1), sel(q2, q3));
        (bk, self.win[slot_base + t as usize])
    }

    /// Adds a member mid-tick (VMT-WA's hot-group growth).
    pub fn add_member(&mut self, idx: usize, farm: &ServerFarm) {
        if farm.free_cores(idx) > 0 {
            let slot = self.leaf_slot(idx);
            self.key[slot] = fresh_key_biased(idx, 0.0, self.kelvin_per_watt, farm, self.bias[idx]);
            self.refresh_path(idx);
        }
    }

    /// Re-evaluates the winners on the path from leaf `idx` to the
    /// root, stopping at the first node whose `(key, winner)` comes out
    /// unchanged — everything above is then already consistent. Under
    /// the zoned layout the first `zone_levels` steps stay inside one
    /// zone slab and the rest walk the (cache-resident) leader levels;
    /// an unchanged zone root short-circuits the leader walk entirely.
    #[inline]
    fn refresh_path(&mut self, idx: usize) {
        // Dispatch once per refresh instead of mapping slots through
        // [`ThermalBalancer::node_slot`] at every level: the generic
        // mapping's layout branch and offset-table loads, twice per
        // level on this path, measurably slowed 100k-scale placement
        // (~18% on the placement phase) versus the specialized walks.
        if self.zone_levels == 0 {
            self.refresh_path_flat(idx);
        } else {
            self.refresh_path_zoned(idx);
        }
    }

    /// [`ThermalBalancer::refresh_path`] for the flat layout: every
    /// level is one contiguous array at `leader_off[lvl]`, so a parent
    /// slot is a single add.
    fn refresh_path_flat(&mut self, idx: usize) {
        let levels = self.leader_off.len();
        let mut group = idx / FANOUT;
        let (mut bk, mut bw) = self.scan_leaves(group * FANOUT, (group * FANOUT) as u32);
        for lvl in 1..levels {
            let parent = self.leader_off[lvl] + group;
            if self.key[parent] == bk && self.win[parent] == bw {
                return;
            }
            self.key[parent] = bk;
            self.win[parent] = bw;
            if lvl + 1 == levels {
                return;
            }
            group /= FANOUT;
            let base = self.leader_off[lvl] + group * FANOUT;
            (bk, bw) = self.scan_nodes(base);
        }
    }

    /// [`ThermalBalancer::refresh_path`] for the zoned layout: the
    /// zone's slab base is computed once and the in-slab walk indexes
    /// off it; the zone root and everything above is a flat walk over
    /// the leader tree with the zone index playing the leaf index.
    fn refresh_path_zoned(&mut self, idx: usize) {
        let zone_base = (idx / self.span) * self.slab;
        let mut within = idx & (self.span - 1);
        let (mut bk, mut bw) = self.scan_leaves(
            zone_base + (within & !(FANOUT - 1)),
            (idx & !(FANOUT - 1)) as u32,
        );
        for lvl in 1..self.zone_levels {
            within /= FANOUT;
            let parent = zone_base + self.zslab_off[lvl] + within;
            if self.key[parent] == bk && self.win[parent] == bw {
                return;
            }
            self.key[parent] = bk;
            self.win[parent] = bw;
            // A zone root always exists above the slab, so the group
            // scan feeding the next level is never skipped here.
            (bk, bw) = self.scan_nodes(parent - (within & (FANOUT - 1)));
        }
        let levels = self.leader_off.len();
        let mut group = idx / self.span;
        for lvl in 0..levels {
            let parent = self.leader_off[lvl] + group;
            if self.key[parent] == bk && self.win[parent] == bw {
                return;
            }
            self.key[parent] = bk;
            self.win[parent] = bw;
            if lvl + 1 == levels {
                return;
            }
            group /= FANOUT;
            let base = self.leader_off[lvl] + group * FANOUT;
            (bk, bw) = self.scan_nodes(base);
        }
    }

    /// Places one job drawing `core_power_w` on the coolest-projected
    /// member with a free core, or returns `None` when every member is
    /// full. `free` reports a member's currently free cores; the winner
    /// is the member minimizing `(key, idx)` among those with a live
    /// leaf, which is exactly the members still holding a free core —
    /// a leaf is retired (set to `f64::INFINITY`) the moment its last core is
    /// consumed, and the `free` re-check below catches cores taken by
    /// fallback paths that bypass the balancer.
    fn place_by(&mut self, free: impl Fn(usize) -> u32, core_power_w: f64) -> Option<usize> {
        loop {
            let &root_key = self.key.last()?;
            if root_key == f64::INFINITY {
                return None;
            }
            let idx = *self.win.last().expect("win matches key") as usize;
            let slot = self.leaf_slot(idx);
            if free(idx) == 0 {
                // A fallback path consumed this member's cores behind the
                // balancer's back; retire the leaf and look again.
                self.key[slot] = f64::INFINITY;
                self.refresh_path(idx);
                continue;
            }
            let bumped = self.key[slot] + bump(core_power_w, self.kelvin_per_watt);
            // One core is consumed by this placement; stay in the tree
            // only if capacity remains afterwards.
            self.key[slot] = if free(idx) > 1 { bumped } else { f64::INFINITY };
            self.refresh_path(idx);
            return Some(idx);
        }
    }

    /// [`ThermalBalancer::place_by`] reading free cores from the farm.
    pub fn place(&mut self, farm: &ServerFarm, core_power_w: f64) -> Option<usize> {
        self.place_by(|idx| farm.free_cores(idx), core_power_w)
    }

    /// [`ThermalBalancer::place_by`] reading free cores from the engine's
    /// [`ClusterIndex`] — a flat array probe instead of chasing through
    /// `Server`'s substructures, for the indexed scheduler fast path.
    pub fn place_indexed(&mut self, index: &ClusterIndex, core_power_w: f64) -> Option<usize> {
        let free = index.free_cores();
        self.place_by(|idx| free[idx], core_power_w)
    }

    /// Accounts for a placement made *outside* the balancer (e.g.
    /// VMT-WA's keep-warm priority path), so the member's projection
    /// stays truthful for subsequent balanced placements.
    pub fn account_external(&mut self, idx: usize, core_power_w: f64, farm: &ServerFarm) {
        self.account_external_by(idx, core_power_w, farm.free_cores(idx));
    }

    /// [`ThermalBalancer::account_external`] with free cores read from the
    /// engine's [`ClusterIndex`].
    pub fn account_external_indexed(
        &mut self,
        idx: usize,
        core_power_w: f64,
        index: &ClusterIndex,
    ) {
        self.account_external_by(idx, core_power_w, index.free_cores()[idx]);
    }

    fn account_external_by(&mut self, idx: usize, core_power_w: f64, free: u32) {
        if idx >= self.leaves {
            return;
        }
        let slot = self.leaf_slot(idx);
        // The caller verified `free > 0`, so the leaf is live and its
        // key is the member's current projection.
        let bumped = self.key[slot] + bump(core_power_w, self.kelvin_per_watt);
        // The pending external placement consumes one core; the member
        // stays placeable only if capacity remains afterwards.
        self.key[slot] = if free > 1 { bumped } else { f64::INFINITY };
        self.refresh_path(idx);
    }

    /// True when no member can take another job this tick.
    pub fn is_exhausted(&self) -> bool {
        self.key.last().is_none_or(|&k| k == f64::INFINITY)
    }

    /// The member the next [`ThermalBalancer::place`] will pick, if any
    /// — the tree's current root winner. Purely observational: the next
    /// placement re-reads the root itself, so a caller using this as a
    /// prefetch target never perturbs the decision sequence. The
    /// prediction can be wrong when an out-of-band path (keep-warm,
    /// fallback retirement) runs first; a wrong hint costs one wasted
    /// cache fill and nothing else.
    pub fn peek(&self) -> Option<usize> {
        let &root = self.key.last()?;
        if root == f64::INFINITY {
            return None;
        }
        Some(*self.win.last().expect("win matches key") as usize)
    }

    /// The `k` members with the lowest current keys, best first —
    /// the tournament the next placement would run, made visible for
    /// decision tracing.
    ///
    /// Purely observational (no tree mutation) and cheap: a best-first
    /// descent from the root expands only nodes that can still beat the
    /// `k`-th emitted leaf — O(k · FANOUT · depth) node reads instead
    /// of an O(leaves) scan, which matters when a traced run asks for
    /// candidates on every sampled job of a 10k-server tick. Ties are
    /// broken toward the leftmost descendant leaf, matching the tree's
    /// own leftmost-winner rule, so the first entry is exactly
    /// [`ThermalBalancer::peek`]'s prediction.
    pub fn top_candidates(&self, k: usize) -> Vec<(usize, f64)> {
        let mut out = Vec::new();
        self.top_candidates_into(k, &mut out);
        out
    }

    /// [`ThermalBalancer::top_candidates`] into a caller-owned buffer,
    /// so a traced placement loop can reuse one scratch allocation
    /// across every sampled job of a batch.
    pub fn top_candidates_into(&self, k: usize, out: &mut Vec<(usize, f64)>) {
        out.clear();
        let Some(&root_key) = self.key.last() else {
            return;
        };
        if k == 0 || root_key == f64::INFINITY {
            return;
        }
        let top = self.levels() - 1;
        // Lazy tournament extraction, leaning on the `win` cache: a
        // pool entry is a *concrete leaf* — some subtree's cached
        // winner — plus the level its subtree hung off an emitted
        // winner's path, which is all that's needed to expand the
        // rest of that subtree later. Emitting the pool minimum and
        // expanding only the 7 per-level losers along the emitted
        // leaf's path visits ~`k · (FANOUT-1) · depth` node keys with
        // *address-independent* group reads (every group on a path is
        // computable from the leaf index alone, so the walk is hinted
        // up front) — against a best-first descent whose every level
        // is a dependent cache miss. This runs per sampled job on
        // traced runs, where that latency chain once dominated the
        // whole tracing overhead.
        //
        // The walk is over *conceptual* levels, so it is layout-blind:
        // under the zoned layout a path's low levels resolve into one
        // zone slab and the high levels into the leader area, and the
        // leader-level siblings of an emitted leaf are whole other
        // zones — still disjoint subtrees with cached winners, so the
        // pool-capping argument below is unchanged.
        //
        // Pool order is the packed `(order_bits(key), leaf)` in one
        // `u128`, so a single integer compare decides both the key
        // order and the leftmost (lowest-id) tie-break — identical to
        // the tree's own `(key, idx)` winner rule. Capping the pool at
        // `k` is sound because pool subtrees are disjoint and an entry
        // is its subtree's *best* leaf: each of `k` better-or-equal
        // entries guarantees one leaf that beats every leaf of the
        // dropped entry's subtree.
        let root_leaf = *self.win.last().expect("win matches key") as usize;
        let mut pool: Vec<(u128, f64, u8)> = Vec::with_capacity(k.min(64) + 1);
        pool.push((
            (order_bits(root_key) as u128) << 64 | root_leaf as u128,
            root_key,
            top as u8,
        ));
        while out.len() < k && !pool.is_empty() {
            let (sort, key, lvl) = pool.remove(0);
            let leaf = (sort & u64::MAX as u128) as usize;
            out.push((leaf, key));
            if out.len() >= k {
                break;
            }
            // The rest of the emitted entry's subtree, exactly: at
            // each level below where it hung off, the emitted leaf's
            // path crosses one node; that node's `FANOUT - 1` losing
            // siblings partition the remaining leaves into disjoint
            // subtrees, and each sibling's own winner is cached.
            // Scan top-down: a high-level sibling's key is a whole
            // subtree's minimum — the strongest competitors live
            // there — so visiting those first tightens the pre-reject
            // threshold for the (far more numerous) low-level visits,
            // and leaves the rest of the walk as prefetch distance
            // for the hints issued when such a sibling is inserted.
            // The final pool is order-independent (a running top-k),
            // so this changes cost, never results.
            let mut path = [0usize; 21];
            let mut pos = leaf;
            for slot in path.iter_mut().take(lvl as usize) {
                *slot = pos;
                pos /= FANOUT;
            }
            for l in (0..lvl as usize).rev() {
                let pos = path[l];
                let group = (pos / FANOUT) * FANOUT;
                let group_slot = self.node_slot(l, group);
                for node in group..group + FANOUT {
                    if node == pos {
                        continue;
                    }
                    let node_key = self.key[group_slot + (node - group)];
                    if node_key == f64::INFINITY {
                        continue;
                    }
                    let bits = order_bits(node_key);
                    // Cheap pre-reject on the key bits alone before
                    // touching `win`; ties fall through to the full
                    // packed compare.
                    if pool.len() >= k {
                        let (worst, _, _) = *pool.last().expect("nonempty");
                        if (bits as u128) << 64 > worst {
                            continue;
                        }
                    }
                    let node_leaf = if l == 0 {
                        node
                    } else {
                        self.win[group_slot + (node - group)] as usize
                    };
                    let sort = (bits as u128) << 64 | node_leaf as u128;
                    let at = pool.partition_point(|&(e, _, _)| e < sort);
                    if at < k {
                        if pool.len() == k {
                            pool.pop();
                        }
                        // Hint the inserted entry's own winner path now
                        // — the rest of this walk runs before it can be
                        // popped, which is exactly the distance a
                        // prefetch needs. (The first emission's path is
                        // the tree's winner path, already hot from the
                        // placement loop's `prefetch_member` hints.)
                        #[cfg(target_arch = "x86_64")]
                        if l > 0 {
                            use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
                            let mut group = node_leaf / FANOUT;
                            for pl in 0..l {
                                let base = self.node_slot(pl, group * FANOUT);
                                // SAFETY: `base` addresses a full padded
                                // group inside `key`/`win` (layout
                                // invariant above); prefetch never
                                // faults architecturally.
                                unsafe {
                                    _mm_prefetch::<_MM_HINT_T0>(self.key.as_ptr().add(base).cast());
                                    _mm_prefetch::<_MM_HINT_T0>(self.win.as_ptr().add(base).cast());
                                }
                                group /= FANOUT;
                            }
                        }
                        pool.insert(at, (sort, node_key, l as u8));
                    }
                }
            }
        }
    }

    /// Hints the CPU to pull member `idx`'s leaf-to-root tree path
    /// toward L1. At 100k servers the leaf and first internal levels
    /// are far out of L2, and `place` otherwise eats their miss latency
    /// on the critical path; every group address on the path is
    /// computable from `idx` alone, so the whole walk can be hinted
    /// ahead of time. Architecturally a no-op, so hinting a *predicted*
    /// winner is always sound. Under the zoned layout the path spans
    /// one zone slab plus the leader levels — fewer distinct lines, so
    /// the hint is cheaper *and* more likely to stick.
    #[inline]
    pub fn prefetch_member(&self, idx: usize) {
        #[cfg(target_arch = "x86_64")]
        if idx < self.leaves {
            use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
            // `refresh_path` scans the FANOUT-aligned group holding the
            // current node at every level; all indices are in bounds
            // because each level is padded to a FANOUT multiple. The
            // flat layout skips the generic slot mapping — this runs
            // once per placement, so its address arithmetic is on the
            // issuing loop's critical path even though the fills are
            // not.
            if self.zone_levels == 0 {
                let mut group = idx / FANOUT;
                for lvl in 0..self.leader_off.len() - 1 {
                    let base = self.leader_off[lvl] + group * FANOUT;
                    // SAFETY: `base` addresses a full padded group
                    // inside `key` (layout invariant above); prefetch
                    // never faults architecturally.
                    unsafe {
                        _mm_prefetch::<_MM_HINT_T0>(self.key.as_ptr().add(base).cast());
                    }
                    group /= FANOUT;
                }
            } else {
                let mut group = idx / FANOUT;
                for lvl in 0..self.levels().saturating_sub(1) {
                    let base = self.node_slot(lvl, group * FANOUT);
                    // SAFETY: as above.
                    unsafe {
                        _mm_prefetch::<_MM_HINT_T0>(self.key.as_ptr().add(base).cast());
                    }
                    group /= FANOUT;
                }
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        let _ = idx;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmt_dcsim::ClusterConfig;
    use vmt_thermal::InletModel;
    use vmt_units::{Celsius, DegC, Seconds};
    use vmt_workload::{Job, JobId, WorkloadKind};

    fn farm(n: usize, inlet: InletModel) -> ServerFarm {
        let mut config = ClusterConfig::paper_default(n);
        config.inlet = inlet;
        ServerFarm::from_config(&config)
    }

    #[test]
    fn order_bits_is_monotone() {
        let values = [-5.0, -0.5, 0.0, 0.5, 22.0, 35.7, 50.0];
        for pair in values.windows(2) {
            assert!(order_bits(pair[0]) < order_bits(pair[1]), "{pair:?}");
        }
    }

    #[test]
    fn equal_servers_get_equal_shares() {
        let farm = farm(4, InletModel::uniform(Celsius::new(22.0)));
        let mut b = ThermalBalancer::new();
        b.rebuild(0..4, &farm);
        let mut counts = [0usize; 4];
        for _ in 0..40 {
            counts[b.place(&farm, 7.6).unwrap()] += 1;
        }
        // The static anti-synchronization bias allows a ±1 skew.
        assert_eq!(counts.iter().sum::<usize>(), 40);
        assert!(counts.iter().all(|&c| (9..=11).contains(&c)), "{counts:?}");
    }

    #[test]
    fn warmer_inlet_gets_less_load() {
        // Server 0 breathes hotter air; the balancer compensates with
        // fewer jobs.
        let farm = farm(2, InletModel::normal(Celsius::new(22.0), DegC::new(2.0), 3));
        let hot_idx = if farm.inlet(0) > farm.inlet(1) { 0 } else { 1 };
        let mut b = ThermalBalancer::new();
        b.rebuild(0..2, &farm);
        let mut counts = [0usize; 2];
        for _ in 0..30 {
            counts[b.place(&farm, 6.0).unwrap()] += 1;
        }
        assert!(
            counts[hot_idx] < counts[1 - hot_idx],
            "hot server got {counts:?}"
        );
    }

    #[test]
    fn top_candidates_matches_a_sorted_leaf_scan() {
        // 67 servers: more than one tree level, with padding.
        let farm = farm(
            67,
            InletModel::normal(Celsius::new(22.0), DegC::new(2.0), 9),
        );
        for layout in [BalancerLayout::Flat, BalancerLayout::Zoned { span: 8 }] {
            let mut b = ThermalBalancer::new();
            b.set_layout(layout);
            b.rebuild(0..67, &farm);
            let kpw = kelvin_per_watt(&farm);
            let mut expect: Vec<(usize, f64)> = (0..67)
                .map(|i| (i, fresh_key(i, 0.0, kpw, &farm)))
                .collect();
            expect.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)));
            for k in [0, 1, 4, 67, 80] {
                let got = b.top_candidates(k);
                assert_eq!(got, expect[..k.min(67)], "{layout:?} k={k}");
            }
            // The best candidate is exactly the peeked next winner.
            assert_eq!(b.top_candidates(1)[0].0, b.peek().unwrap());
        }
    }

    // Warm-cache microbench for the top-k tournament — the hot path of
    // the tracer's per-sampled-job candidate snapshot. Not a correctness
    // test; run explicitly with
    // `cargo test --release -p vmt-core prof_top -- --ignored --nocapture`.
    #[test]
    #[ignore]
    fn prof_top_candidates() {
        let farm = farm(
            10_000,
            InletModel::normal(Celsius::new(22.0), DegC::new(2.0), 9),
        );
        let mut b = ThermalBalancer::new();
        b.rebuild(0..10_000, &farm);
        let mut out = Vec::new();
        let mut sink = 0.0f64;
        let t0 = std::time::Instant::now();
        for _ in 0..1_000_000 {
            b.top_candidates_into(4, &mut out);
            sink += out[0].1;
        }
        let dt = t0.elapsed();
        println!(
            "warm top_candidates(4): {:.0} ns/call (sink {sink})",
            dt.as_nanos() as f64 / 1e6
        );
    }

    #[test]
    fn top_candidates_skips_retired_members() {
        let mut f = farm(3, InletModel::uniform(Celsius::new(22.0)));
        for i in 0..32 {
            f.start_job(
                1,
                &Job::new(JobId(i), WorkloadKind::VirusScan, Seconds::new(60.0)),
            );
        }
        let mut b = ThermalBalancer::new();
        // A full member's leaf stays `INFINITY` through the rebuild, so
        // candidates never name it and the list stays sorted best-first.
        b.rebuild(0..3, &f);
        let got = b.top_candidates(4);
        assert_eq!(got.len(), 2);
        assert!(got.iter().all(|&(idx, key)| idx != 1 && key.is_finite()));
        assert!(got[0].1 <= got[1].1, "{got:?}");
    }

    #[test]
    fn respects_membership() {
        let farm = farm(4, InletModel::uniform(Celsius::new(22.0)));
        let mut b = ThermalBalancer::new();
        b.rebuild([1, 3], &farm);
        for _ in 0..20 {
            let idx = b.place(&farm, 5.0).unwrap();
            assert!(idx == 1 || idx == 3);
        }
    }

    #[test]
    fn full_members_are_skipped_until_exhausted() {
        let mut farm = farm(1, InletModel::uniform(Celsius::new(22.0)));
        for i in 0..31 {
            farm.start_job(
                0,
                &Job::new(JobId(i), WorkloadKind::VirusScan, Seconds::new(60.0)),
            );
        }
        let mut b = ThermalBalancer::new();
        b.rebuild(0..1, &farm);
        assert_eq!(b.place(&farm, 5.0), Some(0));
        // The single core was consumed; the balancer reports exhaustion.
        assert_eq!(b.place(&farm, 5.0), None);
        assert!(b.is_exhausted());
    }

    #[test]
    fn add_member_mid_tick() {
        let farm = farm(2, InletModel::uniform(Celsius::new(22.0)));
        let mut b = ThermalBalancer::new();
        b.rebuild(0..1, &farm);
        b.add_member(1, &farm);
        let mut seen = [false; 2];
        for _ in 0..4 {
            seen[b.place(&farm, 6.0).unwrap()] = true;
        }
        assert_eq!(seen, [true, true]);
    }

    /// The tree's winner must equal a naive argmin over the member keys
    /// at every step of a long placement burst, across sizes that
    /// exercise every padding shape (n ≤ FANOUT, exact multiples, one
    /// past a level boundary) — under the flat layout and under zoned
    /// layouts whose spans put those sizes at every shard edge
    /// (partial last zones, single-zone degenerate trees).
    #[test]
    fn matches_naive_argmin_across_sizes() {
        let layouts = [
            BalancerLayout::Flat,
            BalancerLayout::Zoned { span: 8 },
            BalancerLayout::Zoned { span: 64 },
            BalancerLayout::Zoned { span: 512 },
        ];
        for n in [1, 7, 8, 9, 63, 64, 65, 300, 511, 513] {
            let farm = farm(n, InletModel::normal(Celsius::new(22.0), DegC::new(1.5), 7));
            for layout in layouts {
                let mut b = ThermalBalancer::new();
                b.set_layout(layout);
                b.rebuild(0..n, &farm);
                let kpw = kelvin_per_watt(&farm);
                let mut naive: Vec<f64> = (0..n).map(|i| fresh_key(i, 0.0, kpw, &farm)).collect();
                let mut naive_free: Vec<u32> = (0..n).map(|i| farm.free_cores(i)).collect();
                for step in 0..(n * 8) {
                    let expect = naive
                        .iter()
                        .enumerate()
                        .filter(|&(i, _)| naive_free[i] > 0)
                        .min_by(|a, b| a.1.partial_cmp(b.1).expect("no NaN keys"))
                        .map(|(i, _)| i);
                    // The balancer reads free cores through the same mutable
                    // view the naive model updates.
                    let free = naive_free.clone();
                    let got = b.place_by(|i| free[i], 6.0);
                    assert_eq!(got, expect, "{layout:?} n={n} step={step}");
                    if let Some(i) = got {
                        naive[i] += bump(6.0, kpw);
                        naive_free[i] -= 1;
                    }
                }
            }
        }
    }

    /// Zone-sharded and flat trees must agree decision-for-decision
    /// through a full exhaustion burst at the exact zone counts the
    /// issue pins (1, 2, 7, 64) with farm sizes not divisible by the
    /// zone count, plus mid-burst membership growth.
    #[test]
    fn zoned_layouts_match_flat_at_shard_edges() {
        // (target zones, span, n): n = zones*span - 3 gives a partial
        // last zone and n not divisible by the zone count.
        let cases = [
            (1, 8, 5),
            (2, 8, 13),
            (7, 8, 53),
            (64, 8, 509),
            (7, 64, 445),
        ];
        for (zones, span, n) in cases {
            let farm = farm(n, InletModel::normal(Celsius::new(22.0), DegC::new(2.0), 5));
            let mut flat = ThermalBalancer::new();
            flat.set_layout(BalancerLayout::Flat);
            let mut zoned = ThermalBalancer::new();
            zoned.set_layout(BalancerLayout::Zoned { span });
            // Leave one member out so add_member exercises the zoned
            // mid-tick path too.
            flat.rebuild(0..n - 1, &farm);
            zoned.rebuild(0..n - 1, &farm);
            assert_eq!(zoned.zone_count(), zones, "span {span} n {n}");
            let mut free: Vec<u32> = (0..n).map(|i| farm.free_cores(i)).collect();
            let mut grew = false;
            loop {
                assert_eq!(flat.peek(), zoned.peek(), "zones {zones} n {n}");
                let f = free.clone();
                let a = flat.place_by(|i| f[i], 6.0);
                let b = zoned.place_by(|i| f[i], 6.0);
                assert_eq!(a, b, "zones {zones} n {n}");
                match a {
                    Some(i) => free[i] -= 1,
                    None if !grew => {
                        grew = true;
                        flat.add_member(n - 1, &farm);
                        zoned.add_member(n - 1, &farm);
                    }
                    None => break,
                }
            }
            assert!(flat.is_exhausted() && zoned.is_exhausted());
        }
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]
            /// Zone-sharded argmin ≡ flat tournament ≡ sorted-leaf
            /// reference, over random farm sizes (hitting partial and
            /// exact zone boundaries for every span), random inlet
            /// seeds, and every valid small span. The sorted-leaf
            /// reference re-sorts after every placement, so the whole
            /// `(key, idx)` tie-break order is pinned, not just the
            /// first winner.
            #[test]
            fn zoned_equals_flat_equals_sorted_leaves(
                n in 1usize..600,
                span_pick in 0usize..3,
                inlet_seed in 0u64..1_000,
                burst in 1usize..48,
            ) {
                let span = [8usize, 64, 512][span_pick];
                let farm = farm(
                    n,
                    InletModel::normal(Celsius::new(22.0), DegC::new(2.0), inlet_seed),
                );
                let kpw = kelvin_per_watt(&farm);
                let mut flat = ThermalBalancer::new();
                flat.set_layout(BalancerLayout::Flat);
                flat.rebuild(0..n, &farm);
                let mut zoned = ThermalBalancer::new();
                zoned.set_layout(BalancerLayout::Zoned { span });
                zoned.rebuild(0..n, &farm);
                prop_assert_eq!(zoned.zone_count(), n.div_ceil(span).max(1));
                let mut keys: Vec<f64> =
                    (0..n).map(|i| fresh_key(i, 0.0, kpw, &farm)).collect();
                let mut free: Vec<u32> = (0..n).map(|i| farm.free_cores(i)).collect();
                for _ in 0..burst.min(n * 4) {
                    // Sorted-leaf reference: strict (key, idx) minimum
                    // over members with a free core.
                    let expect = keys
                        .iter()
                        .enumerate()
                        .filter(|&(i, _)| free[i] > 0)
                        .min_by(|a, b| {
                            order_bits(*a.1)
                                .cmp(&order_bits(*b.1))
                                .then(a.0.cmp(&b.0))
                        })
                        .map(|(i, _)| i);
                    let f = free.clone();
                    let a = flat.place_by(|i| f[i], 6.0);
                    let b = zoned.place_by(|i| f[i], 6.0);
                    prop_assert_eq!(a, expect);
                    prop_assert_eq!(b, expect);
                    // Top-k agreement between the layouts as well.
                    prop_assert_eq!(flat.top_candidates(4), zoned.top_candidates(4));
                    match expect {
                        Some(i) => {
                            keys[i] += bump(6.0, kpw);
                            free[i] -= 1;
                        }
                        None => break,
                    }
                }
            }
        }
    }
}
