//! Projected-temperature load balancing within a set of servers.

use vmt_dcsim::{ClusterIndex, ServerFarm};

/// Balances placements across a set of servers by *projected
/// steady-state temperature*.
///
/// Each member's key starts at the steady-state temperature its current
/// power draw is heading toward (`inlet + P/(ṁ·c_p)`); every placement
/// bumps the chosen member's key by the temperature rise one more core
/// of that power will eventually produce. Placing on the minimum key
/// therefore equalizes *temperatures*, not job counts — which is what
/// "distribute jobs evenly" has to mean once server inlet temperatures
/// vary (a server fed 2 °C warmer air gets proportionally less load).
///
/// Used by [`crate::CoolestFirst`] over the whole cluster and by the VMT
/// policies within each group.
///
/// Internally a flat tournament tree over the server ids: each leaf
/// holds a member's current key as total-order bits (`u64::MAX` for
/// non-members and members out of cores), each internal node the leaf
/// winning `min (key, idx)` of its subtree. A placement reads the root
/// and refreshes one root-to-leaf path — O(log n) like the former
/// binary heap, but over contiguous arrays with no stale entries to
/// skip, which is what the placement-burst benchmarks actually measure.
/// The winner is a pure function of the current key set, so placement
/// order is identical to the heap's (and to the naive references' full
/// argmin scans — see `tests/differential.rs`).
#[derive(Debug, Clone, Default)]
pub struct ThermalBalancer {
    /// Node keys, length `2·stride`: `wkey[stride + i]` is leaf `i`'s
    /// current key (`u64::MAX` for non-members and members without a
    /// free core), and `wkey[p]` for `p < stride` is the winning key of
    /// the subtree rooted at `p` (children `2p`, `2p+1`). Empty until
    /// the first rebuild.
    wkey: Vec<u64>,
    /// Winning leaf index per node, same layout as `wkey`; `win[1]` is
    /// the overall winner. Every leaf of a node's left subtree has a
    /// smaller id than every leaf of its right subtree, so "pick left on
    /// equal keys" is exactly the `(key, idx)` tie-break — one u64
    /// compare decides a node.
    win: Vec<u32>,
    /// Leaf count of the tree (power of two, ≥ the farm size).
    stride: usize,
    /// Projected temperature per server id (°C); only members' entries
    /// are meaningful.
    projected: Vec<f64>,
    /// Inverse of the air stream's capacity rate (K/W).
    kelvin_per_watt: f64,
}

/// Occupancy penalty added to the balancing key per used core (kelvin).
///
/// Pure temperature keys have a failure mode at high utilization: a
/// low-power (cold) job barely moves the projection, so the momentarily
/// coolest server swallows an entire batch of cold jobs until its cores
/// run out — after which hot jobs have nowhere to go but the remaining
/// (hot) servers, and the cluster bifurcates. A small per-core penalty
/// makes the key "temperature plus a whiff of occupancy", spreading
/// same-temperature placements across members while leaving real
/// temperature differences (≥ a few tenths of a kelvin) decisive.
const CORE_PENALTY_K: f64 = 0.05;

/// Amplitude of the static per-server key bias (kelvin).
///
/// Perfect balancing has a second failure mode: every member of a group
/// melts its wax at exactly the same time, so the whole group saturates
/// in one tick and the cluster's absorption collapses as a step. Real
/// servers are never bit-identical — component tolerances and airflow
/// give each a slightly different thermal operating point — which
/// staggers saturation. A deterministic ±0.4 K bias derived from the
/// server id reproduces that spread.
const STATIC_BIAS_K: f64 = 0.4;

/// Deterministic per-server bias in `[-STATIC_BIAS_K, +STATIC_BIAS_K]`.
pub(crate) fn static_bias(idx: usize) -> f64 {
    // splitmix64 of the index → uniform in [0,1).
    let mut z = (idx as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    ((z % 10_000) as f64 / 10_000.0 - 0.5) * 2.0 * STATIC_BIAS_K
}

/// Orders f64 values as u64 keys (standard sign-flip trick; total order
/// for all non-NaN values).
pub(crate) fn order_bits(value: f64) -> u64 {
    let bits = value.to_bits();
    if value >= 0.0 {
        bits | 0x8000_0000_0000_0000
    } else {
        !bits
    }
}

/// Inverse of the air stream's capacity rate (K/W) — uniform across the
/// farm, as the fleet is homogeneous in the paper's configuration.
pub(crate) fn kelvin_per_watt(farm: &ServerFarm) -> f64 {
    if farm.is_empty() {
        1.0
    } else {
        1.0 / farm.air().capacity_rate().get()
    }
}

/// The balancing key a member starts the tick with: projected
/// steady-state temperature plus occupancy penalty, anti-synchronization
/// bias, and any caller-supplied extra bias.
///
/// Shared between [`ThermalBalancer`] and the naive-scan reference
/// schedulers (`crate::reference`) so both compute byte-identical keys —
/// the differential tests compare full `SimulationResult`s, so even a
/// one-ULP divergence from reassociated arithmetic would show up.
pub(crate) fn fresh_key(idx: usize, extra: f64, kpw: f64, farm: &ServerFarm) -> f64 {
    farm.inlet(idx).get()
        + farm.power(idx).get() * kpw
        + f64::from(farm.used_cores(idx)) * CORE_PENALTY_K
        + static_bias(idx)
        + extra
}

/// Key increase from placing one job drawing `core_power_w` — shared with
/// the naive references for the same reason as [`fresh_key`].
pub(crate) fn bump(core_power_w: f64, kpw: f64) -> f64 {
    core_power_w * kpw + CORE_PENALTY_K
}

impl ThermalBalancer {
    /// Creates an empty balancer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuilds the balancer over `members` (server ids) for the current
    /// tick.
    pub fn rebuild(&mut self, members: impl IntoIterator<Item = usize>, farm: &ServerFarm) {
        self.rebuild_biased(members.into_iter().map(|idx| (idx, 0.0)), farm);
    }

    /// Rebuilds over `(member, extra_bias_kelvin)` pairs. A positive bias
    /// makes a member systematically less attractive, shifting its
    /// equilibrium share of the load down without ever removing it —
    /// VMT-WA uses this to bleed load off saturated servers gradually.
    pub fn rebuild_biased(
        &mut self,
        members: impl IntoIterator<Item = (usize, f64)>,
        farm: &ServerFarm,
    ) {
        let n = farm.len();
        if self.projected.len() != n {
            self.projected = vec![0.0; n];
            self.stride = n.next_power_of_two().max(1);
            self.wkey = vec![u64::MAX; 2 * self.stride];
            self.win = vec![0; 2 * self.stride];
            for i in 0..self.stride {
                self.win[self.stride + i] = i as u32;
            }
        }
        self.kelvin_per_watt = kelvin_per_watt(farm);
        self.wkey[self.stride..].fill(u64::MAX);
        for (idx, extra) in members {
            self.projected[idx] = fresh_key(idx, extra, self.kelvin_per_watt, farm);
            if farm.free_cores(idx) > 0 {
                self.wkey[self.stride + idx] = order_bits(self.projected[idx]);
            }
        }
        // Bottom-up rebuild of every internal node, O(leaves).
        for p in (1..self.stride).rev() {
            let side = usize::from(self.wkey[2 * p] > self.wkey[2 * p + 1]);
            self.wkey[p] = self.wkey[2 * p + side];
            self.win[p] = self.win[2 * p + side];
        }
    }

    /// Adds a member mid-tick (VMT-WA's hot-group growth).
    pub fn add_member(&mut self, idx: usize, farm: &ServerFarm) {
        self.projected[idx] = fresh_key(idx, 0.0, self.kelvin_per_watt, farm);
        if farm.free_cores(idx) > 0 {
            self.wkey[self.stride + idx] = order_bits(self.projected[idx]);
            self.refresh_path(idx);
        }
    }

    /// Re-evaluates the winners on the path from leaf `idx` to the root.
    #[inline]
    fn refresh_path(&mut self, idx: usize) {
        let mut p = (self.stride + idx) >> 1;
        while p >= 1 {
            let side = usize::from(self.wkey[2 * p] > self.wkey[2 * p + 1]);
            self.wkey[p] = self.wkey[2 * p + side];
            self.win[p] = self.win[2 * p + side];
            p >>= 1;
        }
    }

    /// Places one job drawing `core_power_w` on the coolest-projected
    /// member with a free core, or returns `None` when every member is
    /// full. `free` reports a member's currently free cores; the winner
    /// is the member minimizing `(key, idx)` among those with a live
    /// leaf, which is exactly the members still holding a free core —
    /// a leaf is retired (set to `u64::MAX`) the moment its last core is
    /// consumed, and the `free` re-check below catches cores taken by
    /// fallback paths that bypass the balancer.
    fn place_by(&mut self, free: impl Fn(usize) -> u32, core_power_w: f64) -> Option<usize> {
        loop {
            if self.win.is_empty() || self.wkey[1] == u64::MAX {
                return None;
            }
            let idx = self.win[1] as usize;
            if free(idx) == 0 {
                // A fallback path consumed this member's cores behind the
                // balancer's back; retire the leaf and look again.
                self.wkey[self.stride + idx] = u64::MAX;
                self.refresh_path(idx);
                continue;
            }
            self.projected[idx] += bump(core_power_w, self.kelvin_per_watt);
            // One core is consumed by this placement; stay in the tree
            // only if capacity remains afterwards.
            self.wkey[self.stride + idx] = if free(idx) > 1 {
                order_bits(self.projected[idx])
            } else {
                u64::MAX
            };
            self.refresh_path(idx);
            return Some(idx);
        }
    }

    /// [`ThermalBalancer::place_by`] reading free cores from the farm.
    pub fn place(&mut self, farm: &ServerFarm, core_power_w: f64) -> Option<usize> {
        self.place_by(|idx| farm.free_cores(idx), core_power_w)
    }

    /// [`ThermalBalancer::place_by`] reading free cores from the engine's
    /// [`ClusterIndex`] — a flat array probe instead of chasing through
    /// `Server`'s substructures, for the indexed scheduler fast path.
    pub fn place_indexed(&mut self, index: &ClusterIndex, core_power_w: f64) -> Option<usize> {
        let free = index.free_cores();
        self.place_by(|idx| free[idx], core_power_w)
    }

    /// Accounts for a placement made *outside* the balancer (e.g.
    /// VMT-WA's keep-warm priority path), so the member's projection
    /// stays truthful for subsequent balanced placements.
    pub fn account_external(&mut self, idx: usize, core_power_w: f64, farm: &ServerFarm) {
        self.account_external_by(idx, core_power_w, farm.free_cores(idx));
    }

    /// [`ThermalBalancer::account_external`] with free cores read from the
    /// engine's [`ClusterIndex`].
    pub fn account_external_indexed(
        &mut self,
        idx: usize,
        core_power_w: f64,
        index: &ClusterIndex,
    ) {
        self.account_external_by(idx, core_power_w, index.free_cores()[idx]);
    }

    fn account_external_by(&mut self, idx: usize, core_power_w: f64, free: u32) {
        if idx >= self.projected.len() {
            return;
        }
        self.projected[idx] += bump(core_power_w, self.kelvin_per_watt);
        // The pending external placement consumes one core; the member
        // stays placeable only if capacity remains afterwards.
        self.wkey[self.stride + idx] = if free > 1 {
            order_bits(self.projected[idx])
        } else {
            u64::MAX
        };
        self.refresh_path(idx);
    }

    /// True when no member can take another job this tick.
    pub fn is_exhausted(&self) -> bool {
        self.win.is_empty() || self.wkey[1] == u64::MAX
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmt_dcsim::ClusterConfig;
    use vmt_thermal::InletModel;
    use vmt_units::{Celsius, DegC, Seconds};
    use vmt_workload::{Job, JobId, WorkloadKind};

    fn farm(n: usize, inlet: InletModel) -> ServerFarm {
        let mut config = ClusterConfig::paper_default(n);
        config.inlet = inlet;
        ServerFarm::from_config(&config)
    }

    #[test]
    fn order_bits_is_monotone() {
        let values = [-5.0, -0.5, 0.0, 0.5, 22.0, 35.7, 50.0];
        for pair in values.windows(2) {
            assert!(order_bits(pair[0]) < order_bits(pair[1]), "{pair:?}");
        }
    }

    #[test]
    fn equal_servers_get_equal_shares() {
        let farm = farm(4, InletModel::uniform(Celsius::new(22.0)));
        let mut b = ThermalBalancer::new();
        b.rebuild(0..4, &farm);
        let mut counts = [0usize; 4];
        for _ in 0..40 {
            counts[b.place(&farm, 7.6).unwrap()] += 1;
        }
        // The static anti-synchronization bias allows a ±1 skew.
        assert_eq!(counts.iter().sum::<usize>(), 40);
        assert!(counts.iter().all(|&c| (9..=11).contains(&c)), "{counts:?}");
    }

    #[test]
    fn warmer_inlet_gets_less_load() {
        // Server 0 breathes hotter air; the balancer compensates with
        // fewer jobs.
        let farm = farm(2, InletModel::normal(Celsius::new(22.0), DegC::new(2.0), 3));
        let hot_idx = if farm.inlet(0) > farm.inlet(1) { 0 } else { 1 };
        let mut b = ThermalBalancer::new();
        b.rebuild(0..2, &farm);
        let mut counts = [0usize; 2];
        for _ in 0..30 {
            counts[b.place(&farm, 6.0).unwrap()] += 1;
        }
        assert!(
            counts[hot_idx] < counts[1 - hot_idx],
            "hot server got {counts:?}"
        );
    }

    #[test]
    fn respects_membership() {
        let farm = farm(4, InletModel::uniform(Celsius::new(22.0)));
        let mut b = ThermalBalancer::new();
        b.rebuild([1, 3], &farm);
        for _ in 0..20 {
            let idx = b.place(&farm, 5.0).unwrap();
            assert!(idx == 1 || idx == 3);
        }
    }

    #[test]
    fn full_members_are_skipped_until_exhausted() {
        let mut farm = farm(1, InletModel::uniform(Celsius::new(22.0)));
        for i in 0..31 {
            farm.start_job(
                0,
                &Job::new(JobId(i), WorkloadKind::VirusScan, Seconds::new(60.0)),
            );
        }
        let mut b = ThermalBalancer::new();
        b.rebuild(0..1, &farm);
        assert_eq!(b.place(&farm, 5.0), Some(0));
        // The single core was consumed; the balancer reports exhaustion.
        assert_eq!(b.place(&farm, 5.0), None);
        assert!(b.is_exhausted());
    }

    #[test]
    fn add_member_mid_tick() {
        let farm = farm(2, InletModel::uniform(Celsius::new(22.0)));
        let mut b = ThermalBalancer::new();
        b.rebuild(0..1, &farm);
        b.add_member(1, &farm);
        let mut seen = [false; 2];
        for _ in 0..4 {
            seen[b.place(&farm, 6.0).unwrap()] = true;
        }
        assert_eq!(seen, [true, true]);
    }
}
