//! The round-robin baseline (prior TTS work's scheduler).

use vmt_dcsim::{Scheduler, Server, ServerId};
use vmt_workload::Job;

/// Round-robin placement: each job goes to the next server in id order
/// with a free core, wrapping around.
///
/// This is the baseline the original TTS paper evaluated with. It spreads
/// load (and therefore heat) evenly, which is exactly why it cannot melt
/// wax in the mixes VMT targets: every server converges to the cluster
/// *average* thermal profile, and the average sits below the melt point.
#[derive(Debug, Clone, Default)]
pub struct RoundRobin {
    cursor: usize,
}

impl RoundRobin {
    /// Creates the policy.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Scheduler for RoundRobin {
    fn name(&self) -> &str {
        "round-robin"
    }

    fn place(&mut self, _job: &Job, servers: &[Server]) -> Option<ServerId> {
        let n = servers.len();
        for offset in 0..n {
            let idx = (self.cursor + offset) % n;
            if servers[idx].free_cores() > 0 {
                self.cursor = (idx + 1) % n;
                return Some(ServerId(idx));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmt_dcsim::ClusterConfig;
    use vmt_units::Seconds;
    use vmt_workload::{JobId, WorkloadKind};

    fn servers(n: usize) -> Vec<Server> {
        let config = ClusterConfig::paper_default(n);
        (0..n)
            .map(|i| Server::from_config(ServerId(i), &config))
            .collect()
    }

    fn job(id: u64) -> Job {
        Job::new(JobId(id), WorkloadKind::WebSearch, Seconds::new(300.0))
    }

    #[test]
    fn cycles_through_servers() {
        let mut servers = servers(3);
        let mut rr = RoundRobin::new();
        for (i, expect) in [0, 1, 2, 0, 1].into_iter().enumerate() {
            let sid = rr.place(&job(i as u64), &servers).unwrap();
            assert_eq!(sid, ServerId(expect));
            servers[sid.0].start_job(&job(1000 + i as u64));
        }
    }

    #[test]
    fn skips_full_servers() {
        let mut servers = servers(2);
        for i in 0..32 {
            servers[0].start_job(&job(100 + i));
        }
        let mut rr = RoundRobin::new();
        assert_eq!(rr.place(&job(0), &servers), Some(ServerId(1)));
    }

    #[test]
    fn none_when_cluster_full() {
        let mut servers = servers(1);
        for i in 0..32 {
            servers[0].start_job(&job(i));
        }
        let mut rr = RoundRobin::new();
        assert_eq!(rr.place(&job(99), &servers), None);
    }

    #[test]
    fn no_hot_group() {
        assert!(RoundRobin::new().hot_group_size().is_none());
    }
}
