//! The round-robin baseline (prior TTS work's scheduler).

use vmt_dcsim::{SavedState, Scheduler, ServerFarm, ServerId, SnapshotError, SnapshotState};
use vmt_telemetry::SchedulerCounters;
use vmt_workload::Job;

/// Round-robin placement: each job goes to the next server in id order
/// with a free core, wrapping around.
///
/// This is the baseline the original TTS paper evaluated with. It spreads
/// load (and therefore heat) evenly, which is exactly why it cannot melt
/// wax in the mixes VMT targets: every server converges to the cluster
/// *average* thermal profile, and the average sits below the melt point.
#[derive(Debug, Clone, Default)]
pub struct RoundRobin {
    cursor: usize,
    counters: SchedulerCounters,
}

impl RoundRobin {
    /// Creates the policy.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Cross-tick state of [`RoundRobin`]: the wrap-around cursor and the
/// cumulative counters.
#[derive(Debug, serde::Serialize, serde::Deserialize)]
struct RoundRobinState {
    cursor: usize,
    counters: SchedulerCounters,
}

impl SnapshotState for RoundRobin {
    fn state_kind(&self) -> Option<&'static str> {
        Some("round-robin")
    }

    fn save_state(&self) -> Result<SavedState, SnapshotError> {
        Ok(SavedState::new(
            "round-robin",
            &RoundRobinState {
                cursor: self.cursor,
                counters: self.counters,
            },
        ))
    }

    fn restore_state(&mut self, saved: &SavedState) -> Result<(), SnapshotError> {
        let state: RoundRobinState = saved.decode("round-robin")?;
        self.cursor = state.cursor;
        self.counters = state.counters;
        Ok(())
    }
}

impl Scheduler for RoundRobin {
    fn name(&self) -> &str {
        "round-robin"
    }

    fn clone_box(&self) -> Option<Box<dyn Scheduler>> {
        Some(Box::new(self.clone()))
    }

    fn place(&mut self, _job: &Job, farm: &ServerFarm) -> Option<ServerId> {
        let n = farm.len();
        for offset in 0..n {
            let idx = (self.cursor + offset) % n;
            if farm.free_cores(idx) > 0 {
                self.cursor = (idx + 1) % n;
                self.counters.placements += 1;
                return Some(ServerId(idx));
            }
        }
        None
    }

    fn counters(&self) -> Option<SchedulerCounters> {
        Some(self.counters)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmt_dcsim::ClusterConfig;
    use vmt_units::Seconds;
    use vmt_workload::{JobId, WorkloadKind};

    fn farm(n: usize) -> ServerFarm {
        ServerFarm::from_config(&ClusterConfig::paper_default(n))
    }

    fn job(id: u64) -> Job {
        Job::new(JobId(id), WorkloadKind::WebSearch, Seconds::new(300.0))
    }

    #[test]
    fn cycles_through_servers() {
        let mut farm = farm(3);
        let mut rr = RoundRobin::new();
        for (i, expect) in [0, 1, 2, 0, 1].into_iter().enumerate() {
            let sid = rr.place(&job(i as u64), &farm).unwrap();
            assert_eq!(sid, ServerId(expect));
            farm.start_job(sid.0, &job(1000 + i as u64));
        }
    }

    #[test]
    fn skips_full_servers() {
        let mut farm = farm(2);
        for i in 0..32 {
            farm.start_job(0, &job(100 + i));
        }
        let mut rr = RoundRobin::new();
        assert_eq!(rr.place(&job(0), &farm), Some(ServerId(1)));
    }

    #[test]
    fn none_when_cluster_full() {
        let mut farm = farm(1);
        for i in 0..32 {
            farm.start_job(0, &job(i));
        }
        let mut rr = RoundRobin::new();
        assert_eq!(rr.place(&job(99), &farm), None);
    }

    #[test]
    fn no_hot_group() {
        assert!(RoundRobin::new().hot_group_size().is_none());
    }
}
