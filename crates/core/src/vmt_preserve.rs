//! VMT-Preserve: *raising* the virtual melting temperature.
//!
//! The paper notes (§III) that VMT "can also raise the melting
//! temperature by locating hot jobs in a subset of servers with already
//! melted wax, preserving wax in anticipation of a very hot peak",
//! though its evaluation focuses on lowering. This policy implements the
//! raising direction for the scenario that motivates it: a secondary
//! load bump (say a late-morning batch window) arrives *before* the
//! day's real peak, and melting wax on the bump would leave the battery
//! half-empty when it matters.
//!
//! Until the operator-supplied `engage_at` hour, the policy preserves:
//!
//! * hot jobs go first to servers whose wax is **already melted**
//!   (sacrificed — heating them further wastes nothing);
//! * any remainder is spread across the *whole* cluster like a
//!   coolest-first balancer, which keeps every unmelted server below the
//!   melt line — the wax behaves as if its melting point were higher.
//!
//! From `engage_at` on, the policy is exactly [`VmtTa`].
//!
//! Preserving pays off only when the anticipated peak is the tallest
//! load of the day: the shoulder the policy declines to shave runs at
//! its unshaved cooling level, so a shoulder taller than the shaved
//! evening peak would itself become the binding peak. Operators should
//! engage preservation only against forecasts that clear that bar.

use crate::balance::ThermalBalancer;
use crate::grouping::VmtConfig;
use crate::vmt_ta::VmtTaState;
use crate::VmtTa;
use vmt_dcsim::{SavedState, Scheduler, ServerFarm, ServerId, SnapshotError, SnapshotState};
use vmt_units::{Hours, Seconds};
use vmt_workload::{Job, VmtClass};

/// Reported melt fraction above which a server counts as sacrificed
/// (already molten; more heat there preserves wax elsewhere).
const SACRIFICED_MELT: f64 = 0.5;

/// A time-gated VMT that preserves wax until an anticipated peak.
///
/// # Examples
///
/// ```
/// use vmt_core::{GroupingValue, VmtConfig, VmtPreserve};
/// use vmt_dcsim::{ClusterConfig, Scheduler};
/// use vmt_units::Hours;
///
/// let cluster = ClusterConfig::paper_default(100);
/// let policy = VmtPreserve::new(
///     VmtConfig::new(GroupingValue::new(22.0), &cluster),
///     Hours::new(14.0),
/// );
/// assert_eq!(policy.name(), "vmt-preserve");
/// ```
#[derive(Debug, Clone)]
pub struct VmtPreserve {
    inner: VmtTa,
    engage_at: Hours,
    /// Balancer over sacrificed (already-melted) servers.
    sacrificed: ThermalBalancer,
    /// Balancer over the whole cluster for the preserving spread.
    spread: ThermalBalancer,
    preserving: bool,
    initialized: bool,
}

impl VmtPreserve {
    /// Creates the policy; it preserves until `engage_at` (hour-of-day,
    /// applied daily) and runs VMT-TA afterwards.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ engage_at < 24`.
    pub fn new(config: VmtConfig, engage_at: Hours) -> Self {
        assert!(
            (0.0..24.0).contains(&engage_at.get()),
            "engage hour must be within a day, got {engage_at}"
        );
        Self {
            inner: VmtTa::new(config),
            engage_at,
            sacrificed: ThermalBalancer::new(),
            spread: ThermalBalancer::new(),
            preserving: true,
            initialized: false,
        }
    }

    /// Whether the policy is currently in its preserving phase.
    pub fn is_preserving(&self) -> bool {
        self.preserving
    }

    fn refresh(&mut self, farm: &ServerFarm, now: Seconds) {
        let hour_of_day = (now.get() / 3600.0).rem_euclid(24.0);
        self.preserving = hour_of_day < self.engage_at.get();
        if self.preserving {
            let sacrificed: Vec<usize> = (0..farm.len())
                .filter(|&i| farm.reported_melt_fraction(i).get() >= SACRIFICED_MELT)
                .collect();
            self.sacrificed.rebuild(sacrificed, farm);
            self.spread.rebuild(0..farm.len(), farm);
        }
        self.initialized = true;
    }
}

/// Cross-tick state of [`VmtPreserve`]: the wrapped [`VmtTa`]'s state
/// and the engage hour. `preserving` is recomputed from the hour of day
/// at every refresh, and the balancers are rebuilt from the farm, so
/// neither travels.
#[derive(Debug, serde::Serialize, serde::Deserialize)]
struct VmtPreserveState {
    inner: VmtTaState,
    engage_at: Hours,
}

impl SnapshotState for VmtPreserve {
    fn state_kind(&self) -> Option<&'static str> {
        Some("vmt-preserve")
    }

    fn save_state(&self) -> Result<SavedState, SnapshotError> {
        Ok(SavedState::new(
            "vmt-preserve",
            &VmtPreserveState {
                inner: self.inner.to_state(),
                engage_at: self.engage_at,
            },
        ))
    }

    fn restore_state(&mut self, saved: &SavedState) -> Result<(), SnapshotError> {
        let state: VmtPreserveState = saved.decode("vmt-preserve")?;
        // `VmtPreserve::new` panics on a bad engage hour; a snapshot is
        // external input, so report corruption instead.
        if !(0.0..24.0).contains(&state.engage_at.get()) {
            return Err(SnapshotError::Corrupt(format!(
                "vmt-preserve engage hour {} outside a day",
                state.engage_at
            )));
        }
        *self = Self {
            inner: VmtTa::from_state(&state.inner),
            engage_at: state.engage_at,
            sacrificed: ThermalBalancer::new(),
            spread: ThermalBalancer::new(),
            preserving: true,
            initialized: false,
        };
        Ok(())
    }
}

impl Scheduler for VmtPreserve {
    fn name(&self) -> &str {
        "vmt-preserve"
    }

    fn clone_box(&self) -> Option<Box<dyn Scheduler>> {
        Some(Box::new(self.clone()))
    }

    fn on_tick(&mut self, farm: &ServerFarm, now: Seconds) {
        self.refresh(farm, now);
        self.inner.on_tick(farm, now);
    }

    fn place(&mut self, job: &Job, farm: &ServerFarm) -> Option<ServerId> {
        if !self.initialized {
            self.refresh(farm, Seconds::ZERO);
        }
        if !self.preserving {
            return self.inner.place(job, farm);
        }
        let power = job.core_power().get();
        match job.kind().vmt_class() {
            // Hot heat goes to already-molten servers first, then spreads
            // so thin that nothing new melts.
            VmtClass::Hot => self
                .sacrificed
                .place(farm, power)
                .or_else(|| self.spread.place(farm, power))
                .map(ServerId),
            VmtClass::Cold => self.spread.place(farm, power).map(ServerId),
        }
    }

    fn hot_group_size(&self) -> Option<usize> {
        self.inner.hot_group_size()
    }

    fn counters(&self) -> Option<vmt_telemetry::SchedulerCounters> {
        self.inner.counters()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GroupingValue, PolicyKind};
    use vmt_dcsim::{ClusterConfig, Simulation};
    use vmt_workload::{DiurnalTrace, SecondPeak, TraceConfig};

    /// The motivating trace: a late-morning bump before the evening
    /// peak.
    fn bumped_trace() -> DiurnalTrace {
        let mut config = TraceConfig::paper_default();
        // A hot afternoon shoulder running straight into the evening
        // peak: plain VMT melts through the shoulder and exhausts its
        // wax before the plateau ends.
        config.second_peak = Some(SecondPeak {
            hour: 14.5,
            utilization: 0.95,
            width_hours: 3.5,
        });
        DiurnalTrace::new(config)
    }

    fn run(policy: Box<dyn Scheduler>, servers: usize) -> vmt_dcsim::SimulationResult {
        Simulation::new(
            ClusterConfig::paper_default(servers),
            bumped_trace(),
            policy,
        )
        .run()
    }

    #[test]
    fn preserving_avoids_the_morning_melt() {
        let cluster = ClusterConfig::paper_default(50);
        let config = VmtConfig::new(GroupingValue::new(22.0), &cluster);
        let preserve = run(Box::new(VmtPreserve::new(config, Hours::new(16.0))), 50);
        let plain = run(PolicyKind::VmtTa { gv: 22.0 }.build(&cluster), 50);
        // Mid-bump, plain VMT has melted wax; preserve has not.
        let noon = (15 * 60 + 30) / 5; // heatmap rows every 5 ticks
        let melted = |r: &vmt_dcsim::SimulationResult| -> f64 {
            r.melt_heatmap.rows[noon].iter().sum::<f64>()
        };
        assert!(
            melted(&plain) > 1.0,
            "plain VMT should melt on the bump: {}",
            melted(&plain)
        );
        assert!(
            melted(&preserve) < melted(&plain) * 0.2,
            "preserve melted {} vs plain {}",
            melted(&preserve),
            melted(&plain)
        );
    }

    /// The preserved battery outlasts plain VMT's through the evening
    /// plateau: at its final hours plain VMT has exhausted the wax it
    /// spent on the shoulder and its cooling load rebounds, while
    /// preserve holds the cap.
    #[test]
    fn preserving_outlasts_the_evening_plateau() {
        let cluster = ClusterConfig::paper_default(50);
        let plain = run(PolicyKind::VmtTa { gv: 22.0 }.build(&cluster), 50);
        let config = VmtConfig::new(GroupingValue::new(22.0), &cluster);
        let preserve = run(Box::new(VmtPreserve::new(config, Hours::new(16.0))), 50);
        // Mean cooling over the plateau's final stretch (20.5–21.5 h).
        let late = |r: &vmt_dcsim::SimulationResult| -> f64 {
            let from = (20.5 * 60.0) as usize;
            let to = (21.5 * 60.0) as usize;
            r.cooling.samples()[from..to]
                .iter()
                .map(|w| w.get())
                .sum::<f64>()
                / (to - from) as f64
        };
        let plain_late = late(&plain);
        let preserve_late = late(&preserve);
        assert!(
            preserve_late < plain_late * 0.96,
            "preserve late-plateau {preserve_late:.0} W should undercut plain {plain_late:.0} W"
        );
        // And preserve enters the evening with a fuller battery.
        let evening = (17 * 60) / 5;
        let melted_at = |r: &vmt_dcsim::SimulationResult| -> f64 {
            r.melt_heatmap.rows[evening].iter().sum::<f64>()
        };
        assert!(melted_at(&preserve) < melted_at(&plain) * 0.3);
    }

    #[test]
    fn engages_as_plain_vmt_after_the_gate() {
        // Without a morning bump, preserve-then-engage matches VMT-TA's
        // peak result (both melt only at the real peak).
        let cluster = ClusterConfig::paper_default(50);
        let trace = DiurnalTrace::new(TraceConfig::paper_default());
        let config = VmtConfig::new(GroupingValue::new(22.0), &cluster);
        let preserve = Simulation::new(
            cluster.clone(),
            trace.clone(),
            Box::new(VmtPreserve::new(config, Hours::new(14.0))),
        )
        .run();
        let plain = Simulation::new(
            cluster.clone(),
            trace,
            PolicyKind::VmtTa { gv: 22.0 }.build(&cluster),
        )
        .run();
        let d = (preserve.peak_cooling().get() - plain.peak_cooling().get()).abs();
        assert!(
            d < 0.02 * plain.peak_cooling().get(),
            "peaks should match: Δ={d:.0} W"
        );
    }

    #[test]
    #[should_panic(expected = "engage hour")]
    fn engage_hour_validated() {
        let cluster = ClusterConfig::paper_default(10);
        VmtPreserve::new(
            VmtConfig::new(GroupingValue::new(22.0), &cluster),
            Hours::new(24.0),
        );
    }
}
