//! The coolest-first baseline: a thermal-aware load *balancer*.

use crate::balance::ThermalBalancer;
use vmt_dcsim::{
    ClusterIndex, SavedState, Scheduler, ServerFarm, ServerId, SnapshotError, SnapshotState,
};
use vmt_telemetry::SchedulerCounters;
use vmt_units::Seconds;
use vmt_workload::Job;

/// Coolest-first placement: each job goes to the server with the most
/// thermal headroom.
///
/// Implemented with a [`ThermalBalancer`] over the whole cluster:
/// projections start from each server's steady-state temperature and are
/// bumped per placement, which is what a production coolest-first
/// balancer with a power model does. The result is the tight temperature
/// distribution of the paper's Figure 10 — and, like round robin, no
/// melted wax, because equalized temperatures sit at the cluster average
/// and the average never crosses the melt line.
#[derive(Debug, Clone, Default)]
pub struct CoolestFirst {
    balancer: ThermalBalancer,
    initialized: bool,
    counters: SchedulerCounters,
}

impl CoolestFirst {
    /// Creates the policy.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Cross-tick state of [`CoolestFirst`]: just the counters — the
/// balancer heap is rebuilt from the farm in every tick refresh, so a
/// restored instance re-derives it before its first placement.
#[derive(Debug, serde::Serialize, serde::Deserialize)]
struct CoolestFirstState {
    counters: SchedulerCounters,
}

impl SnapshotState for CoolestFirst {
    fn state_kind(&self) -> Option<&'static str> {
        Some("coolest-first")
    }

    fn save_state(&self) -> Result<SavedState, SnapshotError> {
        Ok(SavedState::new(
            "coolest-first",
            &CoolestFirstState {
                counters: self.counters,
            },
        ))
    }

    fn restore_state(&mut self, saved: &SavedState) -> Result<(), SnapshotError> {
        let state: CoolestFirstState = saved.decode("coolest-first")?;
        self.balancer = ThermalBalancer::new();
        self.initialized = false;
        self.counters = state.counters;
        Ok(())
    }
}

impl Scheduler for CoolestFirst {
    fn name(&self) -> &str {
        "coolest-first"
    }

    fn clone_box(&self) -> Option<Box<dyn Scheduler>> {
        Some(Box::new(self.clone()))
    }

    fn on_tick(&mut self, farm: &ServerFarm, _now: Seconds) {
        self.balancer.rebuild(0..farm.len(), farm);
        self.initialized = true;
    }

    fn place(&mut self, job: &Job, farm: &ServerFarm) -> Option<ServerId> {
        if !self.initialized {
            self.balancer.rebuild(0..farm.len(), farm);
            self.initialized = true;
        }
        let placed = self.balancer.place(farm, job.core_power().get());
        self.counters.placements += u64::from(placed.is_some());
        placed.map(ServerId)
    }

    fn place_indexed(
        &mut self,
        job: &Job,
        farm: &ServerFarm,
        index: &ClusterIndex,
    ) -> Option<ServerId> {
        if !self.initialized {
            self.balancer.rebuild(0..farm.len(), farm);
            self.initialized = true;
        }
        // The balancer's heap is the ordered index: it persists across
        // ticks (buffers recycled by `rebuild`) and placements pop/push
        // it in O(log n) with free cores probed from the flat
        // `ClusterIndex` array rather than the server structs.
        let placed = self.balancer.place_indexed(index, job.core_power().get());
        self.counters.placements += u64::from(placed.is_some());
        placed.map(ServerId)
    }

    fn place_batch(
        &mut self,
        jobs: &[Job],
        farm: &mut ServerFarm,
        index: &mut ClusterIndex,
        out: &mut Vec<Option<ServerId>>,
    ) {
        if !self.initialized {
            self.balancer.rebuild(0..farm.len(), farm);
            self.initialized = true;
        }
        // Software-pipelined batch placement: while this job's
        // bookkeeping commits, the *predicted* next winner's farm row,
        // index entry, and balancer path are already being pulled in —
        // the balancer's root winner only changes when a placement
        // lands, so the prediction is almost always right and a miss
        // costs one wasted cache fill. Prime the first iteration's
        // winner before the loop.
        if let Some(first) = self.balancer.peek() {
            farm.prefetch_server(first);
            index.prefetch_server(first);
            self.balancer.prefetch_member(first);
        }
        for job in jobs {
            let placed = self.balancer.place_indexed(index, job.core_power().get());
            self.counters.placements += u64::from(placed.is_some());
            if let Some(idx) = placed {
                farm.start_job(idx, job);
                index.record_start(idx);
            }
            out.push(placed.map(ServerId));
            if let Some(next) = self.balancer.peek() {
                farm.prefetch_server(next);
                index.prefetch_server(next);
                self.balancer.prefetch_member(next);
            }
        }
    }

    fn counters(&self) -> Option<SchedulerCounters> {
        Some(self.counters)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmt_dcsim::ClusterConfig;
    use vmt_workload::{JobId, WorkloadKind};

    fn farm(n: usize) -> ServerFarm {
        ServerFarm::from_config(&ClusterConfig::paper_default(n))
    }

    fn job(id: u64, kind: WorkloadKind) -> Job {
        Job::new(JobId(id), kind, Seconds::new(300.0))
    }

    #[test]
    fn picks_the_cooler_server() {
        let mut farm = farm(2);
        // Load server 0; its projected steady temperature rises.
        for i in 0..16 {
            farm.start_job(0, &job(100 + i, WorkloadKind::Clustering));
        }
        let mut cf = CoolestFirst::new();
        cf.on_tick(&farm, Seconds::ZERO);
        assert_eq!(
            cf.place(&job(0, WorkloadKind::WebSearch), &farm),
            Some(ServerId(1))
        );
    }

    #[test]
    fn spreads_burst_across_equally_cool_servers() {
        let farm = farm(4);
        let mut cf = CoolestFirst::new();
        cf.on_tick(&farm, Seconds::ZERO);
        let mut counts = [0usize; 4];
        for i in 0..40 {
            let sid = cf
                .place(&job(i, WorkloadKind::VideoEncoding), &farm)
                .unwrap();
            counts[sid.0] += 1;
        }
        // The static anti-synchronization bias allows a ±1 skew.
        assert_eq!(counts.iter().sum::<usize>(), 40);
        assert!(counts.iter().all(|&c| (9..=11).contains(&c)), "{counts:?}");
    }

    #[test]
    fn none_when_cluster_full() {
        let mut farm = farm(1);
        for i in 0..32 {
            farm.start_job(0, &job(i, WorkloadKind::VirusScan));
        }
        let mut cf = CoolestFirst::new();
        cf.on_tick(&farm, Seconds::ZERO);
        assert_eq!(cf.place(&job(99, WorkloadKind::WebSearch), &farm), None);
        assert!(cf.hot_group_size().is_none());
    }
}
