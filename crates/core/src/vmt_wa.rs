//! VMT with wax-aware job placement (VMT-WA, paper §III-B).

use crate::grouping::VmtConfig;
use vmt_dcsim::{
    ClusterIndex, DecisionCandidate, DecisionDetail, PlacementProbe, SavedState, Scheduler,
    ServerFarm, ServerId, SnapshotError, SnapshotState,
};
use vmt_telemetry::{SchedulerCounters, DECISION_TOP_K};
use vmt_units::{Celsius, Seconds};
use vmt_workload::{Job, VmtClass};

/// Margin above the melting temperature at which a melted server counts
/// as "warm enough": keep-warm placement tops a melted server up only
/// until its projected steady-state temperature clears this line, so it
/// receives "just enough load to keep the wax melted" and no more.
pub(crate) const KEEP_WARM_MARGIN_K: f64 = 0.5;

/// Reported melt fraction below which a trailing hot-group server counts
/// as refrozen and may be returned to the cold group (off-peak shrink).
pub(crate) const REFREEZE_FRACTION: f64 = 0.05;

/// Cluster utilization above which the wax-aware machinery (keep-warm,
/// saturation penalties, hot-group growth) engages. Measured at the
/// start of a tick, after departures and before arrivals, so the
/// threshold sits ≈12% below the plateau's nominal occupancy. The paper's VMT-WA
/// acts only "if all of the wax melts before the end of the load peak" —
/// there is peak left to shave. When wax saturates on the peak's falling
/// edge instead, the correct reaction is none: behave exactly like
/// VMT-TA and let thermal time shifting release the heat into the
/// growing cooling headroom.
pub(crate) const KEEP_WARM_MIN_UTILIZATION: f64 = 0.82;

/// Cluster utilization below which the hot group may shrink back toward
/// its Equation-1 base. Deliberately below the keep-warm threshold so a
/// dusk-time utilization wobble cannot dump dozens of still-warm servers
/// back into the cold group while the load is still high.
pub(crate) const SHRINK_MAX_UTILIZATION: f64 = 0.60;

/// Optional aggressiveness knobs for [`VmtWa`]'s saturation reaction.
///
/// The default tuning reacts to saturation with two mechanisms that can
/// only help: the keep-warm safety net (top up a cooling melted server
/// before it releases stored heat) and growth when the hot group runs
/// out of cores. Two further mechanisms redirect load away from
/// saturated servers *proactively*; on clusters running near their
/// computational capacity they can displace more load than the cold
/// group has room for and end up releasing stored heat into the peak,
/// so they default off. The `ablations` experiment quantifies each.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct WaTuning {
    /// Top up melted servers that are about to dip below the melt line.
    pub keep_warm: bool,
    /// Balancer key penalty (kelvin) on saturated servers: bleeds load
    /// toward unmelted servers gradually. 0 disables.
    pub melted_penalty_k: f64,
    /// Servers added to the hot group per tick from the paper's
    /// "base + melted count" rule. 0 disables (growth then happens only
    /// when the group is computationally full).
    pub count_growth_per_tick: usize,
}

impl Default for WaTuning {
    fn default() -> Self {
        Self {
            keep_warm: true,
            melted_penalty_k: 0.0,
            count_growth_per_tick: 0,
        }
    }
}

/// VMT-WA: VMT-TA plus wax-state feedback.
///
/// Starts from the same Equation-1 hot group as [`crate::VmtTa`] but
/// watches every server's *reported* melt state (the on-server estimator,
/// not ground truth) and adapts:
///
/// * **Keep-warm first.** A fully melted server whose projected
///   steady-state temperature has fallen below the melt line is topped up
///   with hot jobs before anything else — cooling a melted server would
///   release its stored heat back into the peak. Topping up stops as soon
///   as the server's projected temperature clears the melt line plus a
///   small margin, so melted servers hold "just enough load to keep the
///   wax melted".
/// * **Melt new wax second.** Remaining hot jobs round-robin across the
///   hot group's unmelted servers.
/// * **Grow on saturation.** When no hot-group server qualifies (all
///   melted and warm), the hot group grows into the cold group one server
///   at a time; the excess load concentrates on each newly added server
///   in turn, melting its wax at full rate — the paper's "moves the
///   additional load to the newly added server".
/// * **Never shrink during the peak.** Servers leave the hot group only
///   after their wax has refrozen (trailing servers, off-peak); pulling a
///   molten server into the cold group would dump its stored energy into
///   the cooling load.
///
/// Cold jobs go to the cold group; when it is full they prefer hot-group
/// servers that are already melted *and* above the melting temperature
/// (minimal thermal impact), then any remaining server. The paper notes
/// this ladder "will only fail to schedule a job in the case where a
/// thermally unconstrained datacenter would also run out of computational
/// space".
#[derive(Debug, Clone)]
pub struct VmtWa {
    config: VmtConfig,
    tuning: WaTuning,
    base_hot: usize,
    hot_size: usize,
    /// Melted hot-group servers currently below the keep-warm line, in
    /// need of topping up (rebuilt per tick, consumed during placement).
    keep_warm: Vec<usize>,
    /// Temperature balancer over the hot group (saturated members carry
    /// a key penalty; grown servers are appended).
    hot: crate::balance::ThermalBalancer,
    /// Temperature balancer over the cold group.
    cold: crate::balance::ThermalBalancer,
    /// Per-server "reported melt ≥ threshold" flags, refreshed per tick.
    melted: Vec<bool>,
    /// The previous tick's `melted` flags (swapped in during refresh) —
    /// the diff is the wax-crossing count the telemetry summary reports.
    prev_melted: Vec<bool>,
    /// Cumulative decision counters (always on; deterministic).
    counters: SchedulerCounters,
    /// Per-server "air below melt temperature" flags, refreshed per tick.
    below_melt: Vec<bool>,
    /// Scratch for the hot balancer's `(member, bias)` list, recycled
    /// across ticks so refresh allocates nothing in steady state.
    members: Vec<(usize, f64)>,
    /// Resume points for the fallback scans in `place_hot_indexed` /
    /// `place_cold_indexed`, reset each tick. Within a tick free cores
    /// only shrink and the wax flags are frozen, so once an index fails a
    /// fallback predicate it fails it for the rest of the tick — each
    /// scan can resume where the previous one stopped instead of
    /// rescanning `0..hot_size` per job.
    cursor_hot_unmelted: usize,
    cursor_hot_any: usize,
    cursor_cold_melted_warm: usize,
    cursor_cold_any: usize,
}

impl VmtWa {
    /// Creates the policy.
    pub fn new(config: VmtConfig) -> Self {
        Self::with_tuning(config, WaTuning::default())
    }

    /// Creates the policy with explicit saturation-reaction tuning.
    pub fn with_tuning(config: VmtConfig, tuning: WaTuning) -> Self {
        Self {
            config,
            tuning,
            base_hot: 0,
            hot_size: 0,
            keep_warm: Vec::new(),
            hot: crate::balance::ThermalBalancer::new(),
            cold: crate::balance::ThermalBalancer::new(),
            melted: Vec::new(),
            prev_melted: Vec::new(),
            counters: SchedulerCounters::default(),
            below_melt: Vec::new(),
            members: Vec::new(),
            cursor_hot_unmelted: 0,
            cursor_hot_any: 0,
            cursor_cold_melted_warm: 0,
            cursor_cold_any: 0,
        }
    }

    /// The policy's configuration.
    pub fn config(&self) -> &VmtConfig {
        &self.config
    }

    /// Seeds the decision counters from a predecessor instance so that
    /// wrappers which rebuild their inner policy mid-run (adaptive GV
    /// retuning) report run-cumulative counts.
    pub(crate) fn adopt_counters(&mut self, counters: SchedulerCounters) {
        self.counters = counters;
    }

    /// Steady-state air temperature server `idx` is heading toward at
    /// its current (intra-tick) power draw.
    fn projected_temp(farm: &ServerFarm, idx: usize) -> Celsius {
        farm.inlet(idx)
            + vmt_units::DegC::new(farm.power(idx).get() / farm.air().capacity_rate().get())
    }

    /// The temperature a melted server must project to count as warm.
    fn warm_line(&self) -> Celsius {
        self.config.pmt + vmt_units::DegC::new(KEEP_WARM_MARGIN_K)
    }

    /// Refreshes per-tick state: wax flags, group shrink, placement
    /// lists. Reads everything through the farm's accessors — the
    /// reference (index-free) path.
    fn refresh(&mut self, farm: &ServerFarm) {
        std::mem::swap(&mut self.prev_melted, &mut self.melted);
        self.melted.clear();
        self.below_melt.clear();
        for i in 0..farm.len() {
            self.melted
                .push(farm.reported_melt_fraction(i).get() >= self.config.wax_threshold);
            self.below_melt.push(farm.air_at_wax(i) < self.config.pmt);
        }
        let used: u32 = (0..farm.len()).map(|i| farm.used_cores(i)).sum();
        let total: u32 = (0..farm.len()).map(|_| farm.cores()).sum();
        let utilization = f64::from(used) / f64::from(total);
        self.refresh_groups(farm, utilization, None);
    }

    /// [`VmtWa::refresh`] with the wax flags and cluster utilization read
    /// from the engine's [`ClusterIndex`]: two contiguous f64 slices and
    /// an O(1) utilization, instead of an O(n·cores) core-count sum and a
    /// pointer chase through every server's wax substructures. The values
    /// are bit-identical to what the accessors would return, so both
    /// refresh paths compute the same flags and groups.
    fn refresh_indexed_impl(&mut self, farm: &ServerFarm, index: &ClusterIndex) {
        std::mem::swap(&mut self.prev_melted, &mut self.melted);
        self.melted.clear();
        self.below_melt.clear();
        let pmt = self.config.pmt.get();
        for (&melt, &air) in index.reported_melt().iter().zip(index.air_c()) {
            self.melted.push(melt >= self.config.wax_threshold);
            self.below_melt.push(air < pmt);
        }
        self.refresh_groups(farm, index.utilization(), Some(index));
    }

    /// Shared tail of the two refresh paths: shrink/grow the hot group,
    /// rebuild the keep-warm list and both balancers, reset the fallback
    /// cursors.
    fn refresh_groups(
        &mut self,
        farm: &ServerFarm,
        utilization: f64,
        index: Option<&ClusterIndex>,
    ) {
        let n = farm.len();
        if self.base_hot == 0 {
            self.base_hot = self.config.hot_group_size(n);
            self.hot_size = self.base_hot;
        }
        // Wax-crossing census: how many servers' reported melt state
        // flipped (either direction) since the previous refresh.
        if self.prev_melted.len() == self.melted.len() {
            self.counters.wax_crossings += self
                .prev_melted
                .iter()
                .zip(&self.melted)
                .filter(|(was, is)| was != is)
                .count() as u64;
        }
        // Keep-warm (and the no-shrink rule) only make sense near the
        // peak: off-peak the wax is supposed to refreeze and release its
        // heat into the cooling system's idle headroom.
        let near_peak = utilization >= KEEP_WARM_MIN_UTILIZATION;
        // Off-peak shrink: release trailing servers whose wax refroze.
        // Never during the peak — "we do not transition servers from the
        // hot group to the cold group during the peak".
        while utilization < SHRINK_MAX_UTILIZATION && self.hot_size > self.base_hot {
            let idx = self.hot_size - 1;
            let report = match index {
                Some(ix) => ix.reported_melt()[idx],
                None => farm.reported_melt_fraction(idx).get(),
            };
            let refrozen = report < REFREEZE_FRACTION && self.below_melt[idx];
            if refrozen {
                self.hot_size -= 1;
                self.counters.hot_group_shrink += 1;
            } else {
                break;
            }
        }
        // Grow by the saturated count ("the scheduler restarts from the
        // minimum hot group size and adds servers in order"). Growth is
        // gentle because grown servers merely become the coolest members
        // of the balancer and attract the churned load over minutes.
        if near_peak && self.tuning.count_growth_per_tick > 0 {
            let melted_count = self.melted[..self.hot_size].iter().filter(|&&m| m).count();
            let target = (self.base_hot + melted_count).clamp(self.hot_size, n);
            let before = self.hot_size;
            self.hot_size = target.min(self.hot_size + self.tuning.count_growth_per_tick);
            self.counters.hot_group_growth += (self.hot_size - before) as u64;
        }
        let warm_line = self.warm_line();
        self.keep_warm.clear();
        self.members.clear();
        self.members.reserve(self.hot_size);
        #[allow(clippy::needless_range_loop)] // indices double as balancer keys
        for idx in 0..self.hot_size {
            if near_peak && self.melted[idx] {
                // Safety net: a saturated server about to dip below the
                // melt line gets topped up with priority.
                if self.tuning.keep_warm && Self::projected_temp(farm, idx) < warm_line {
                    self.keep_warm.push(idx);
                }
                self.members.push((idx, self.tuning.melted_penalty_k));
            } else {
                // Off-peak, melted servers take hot jobs like anyone else
                // (VMT-TA behavior); the trough load is too light to keep
                // them above the melt line, so the wax refreezes anyway.
                self.members.push((idx, 0.0));
            }
        }
        self.hot.rebuild_biased(self.members.iter().copied(), farm);
        self.cold.rebuild(self.hot_size..n, farm);
        self.cursor_hot_unmelted = 0;
        self.cursor_hot_any = 0;
        self.cursor_cold_melted_warm = 0;
        self.cursor_cold_any = 0;
    }

    fn place_hot(&mut self, farm: &ServerFarm, core_power_w: f64) -> Option<ServerId> {
        let n = farm.len();
        // 1. Keep-warm: top up melted servers that are about to dip below
        //    the melt line. Placing here both prevents heat release and
        //    frees the rest of the load for unmelted wax.
        while let Some(&idx) = self.keep_warm.last() {
            if farm.free_cores(idx) > 0 && Self::projected_temp(farm, idx) < self.warm_line() {
                // Keep the balancer's projection truthful about this
                // out-of-band placement.
                self.hot.account_external(idx, core_power_w, farm);
                self.counters.keep_warm += 1;
                return Some(ServerId(idx));
            }
            // Topped up (or full): done with this server for the tick.
            self.keep_warm.pop();
        }
        // 2. Temperature-balanced placement across the hot group
        //    (saturated members carry a key penalty, so new wax melts
        //    preferentially without abandoning molten servers).
        if let Some(idx) = self.hot.place(farm, core_power_w) {
            return Some(ServerId(idx));
        }
        // 3. The whole group is out of cores: grow one server at a time;
        //    the next cold-group server has unmelted wax by construction.
        while self.hot_size < n {
            let idx = self.hot_size;
            self.hot_size += 1;
            self.counters.hot_group_growth += 1;
            self.hot.add_member(idx, farm);
            if let Some(found) = self.hot.place(farm, core_power_w) {
                return Some(ServerId(found));
            }
        }
        // 4. Corner case: the whole cluster is the hot group. Any server
        //    below the melted threshold, then any server at all.
        (0..n)
            .find(|&i| !self.melted[i] && farm.free_cores(i) > 0)
            .or_else(|| (0..n).find(|&i| farm.free_cores(i) > 0))
            .map(ServerId)
    }

    fn place_cold(&mut self, farm: &ServerFarm, core_power_w: f64) -> Option<ServerId> {
        // 1. The cold group, temperature balanced.
        if let Some(idx) = self.cold.place(farm, core_power_w) {
            return Some(ServerId(idx));
        }
        // 2. A hot-group server already melted and above the melting
        //    temperature — placing a cold job there has minimal thermal
        //    impact.
        (0..self.hot_size)
            .find(|&i| self.melted[i] && !self.below_melt[i] && farm.free_cores(i) > 0)
            // 3. Any remaining hot-group server.
            .or_else(|| (0..self.hot_size).find(|&i| farm.free_cores(i) > 0))
            .map(ServerId)
    }

    /// [`VmtWa::place_hot`] on the engine's index: the same four-rung
    /// ladder, with free cores probed from the flat index array and the
    /// rung-4 linear fallbacks resuming from per-tick cursors instead of
    /// rescanning from zero for every job. Returns the decision and the
    /// static label of the rung that made it (the labels the trace
    /// `explain` workflow surfaces); the label costs nothing — it is a
    /// `&'static str` picked on paths the ladder already takes.
    fn place_hot_explained(
        &mut self,
        farm: &ServerFarm,
        index: &ClusterIndex,
        core_power_w: f64,
    ) -> (Option<ServerId>, &'static str) {
        let n = farm.len();
        // 1. Keep-warm.
        while let Some(&idx) = self.keep_warm.last() {
            if index.free_cores()[idx] > 0 && Self::projected_temp(farm, idx) < self.warm_line() {
                self.hot.account_external_indexed(idx, core_power_w, index);
                self.counters.keep_warm += 1;
                return (Some(ServerId(idx)), "keep-warm");
            }
            self.keep_warm.pop();
        }
        // 2. Temperature-balanced placement across the hot group.
        if let Some(idx) = self.hot.place_indexed(index, core_power_w) {
            return (Some(ServerId(idx)), "hot-balancer");
        }
        // 3. Grow one server at a time.
        while self.hot_size < n {
            let idx = self.hot_size;
            self.hot_size += 1;
            self.counters.hot_group_growth += 1;
            self.hot.add_member(idx, farm);
            if let Some(found) = self.hot.place_indexed(index, core_power_w) {
                return (Some(ServerId(found)), "hot-grow");
            }
        }
        // 4. Whole-cluster fallbacks, cursor-resumed: a cursor only skips
        //    indices that already failed the predicate this tick, and
        //    both failure causes (melted flag set, no free cores) are
        //    permanent until the next refresh.
        let free = index.free_cores();
        let mut cursor = self.cursor_hot_unmelted;
        while cursor < n && (self.melted[cursor] || free[cursor] == 0) {
            cursor += 1;
        }
        self.cursor_hot_unmelted = cursor;
        if cursor < n {
            return (Some(ServerId(cursor)), "hot-fallback-unmelted");
        }
        let mut cursor = self.cursor_hot_any;
        while cursor < n && free[cursor] == 0 {
            cursor += 1;
        }
        self.cursor_hot_any = cursor;
        match cursor < n {
            true => (Some(ServerId(cursor)), "hot-fallback-any"),
            false => (None, "hot-exhausted"),
        }
    }

    fn place_hot_indexed(
        &mut self,
        farm: &ServerFarm,
        index: &ClusterIndex,
        core_power_w: f64,
    ) -> Option<ServerId> {
        self.place_hot_explained(farm, index, core_power_w).0
    }

    /// [`VmtWa::place_cold`] on the engine's index; see
    /// [`VmtWa::place_hot_explained`] for the cursor argument and the
    /// rung labels.
    fn place_cold_explained(
        &mut self,
        index: &ClusterIndex,
        core_power_w: f64,
    ) -> (Option<ServerId>, &'static str) {
        // 1. The cold group, temperature balanced.
        if let Some(idx) = self.cold.place_indexed(index, core_power_w) {
            return (Some(ServerId(idx)), "cold-balancer");
        }
        // 2. Melted-and-warm hot-group servers, cursor-resumed.
        let free = index.free_cores();
        let mut cursor = self.cursor_cold_melted_warm;
        while cursor < self.hot_size
            && !(self.melted[cursor] && !self.below_melt[cursor] && free[cursor] > 0)
        {
            cursor += 1;
        }
        self.cursor_cold_melted_warm = cursor;
        if cursor < self.hot_size {
            return (Some(ServerId(cursor)), "cold-spill-melted-warm");
        }
        // 3. Any remaining hot-group server.
        let mut cursor = self.cursor_cold_any;
        while cursor < self.hot_size && free[cursor] == 0 {
            cursor += 1;
        }
        self.cursor_cold_any = cursor;
        match cursor < self.hot_size {
            true => (Some(ServerId(cursor)), "cold-spill-any"),
            false => (None, "cold-exhausted"),
        }
    }

    fn place_cold_indexed(&mut self, index: &ClusterIndex, core_power_w: f64) -> Option<ServerId> {
        self.place_cold_explained(index, core_power_w).0
    }

    /// The shared tight inner loop of [`VmtWa::place_batch`] and the
    /// unsampled runs of `place_batch_traced`: the refresh and initial
    /// prefetch priming are the callers' job. Kept free of any sampling
    /// or detail branches — this loop runs for every job the cluster
    /// places, tens of thousands per tick at scale.
    #[inline]
    fn place_span(
        &mut self,
        jobs: &[Job],
        farm: &mut ServerFarm,
        index: &mut ClusterIndex,
        out: &mut Vec<Option<ServerId>>,
    ) {
        for job in jobs {
            let class = job.kind().vmt_class();
            let placed = match class {
                VmtClass::Hot => self.place_hot_indexed(farm, index, job.core_power().get()),
                VmtClass::Cold => self.place_cold_indexed(index, job.core_power().get()),
            };
            self.count_placement(class, placed);
            if let Some(sid) = placed {
                farm.start_job(sid.0, job);
                index.record_start(sid.0);
            }
            out.push(placed);
            // The balancer this job went through has a fresh root
            // winner; hint it now so its lanes arrive by the time the
            // next same-class job reads them.
            let balancer = match class {
                VmtClass::Hot => &self.hot,
                VmtClass::Cold => &self.cold,
            };
            if let Some(next) = balancer.peek() {
                farm.prefetch_server(next);
                index.prefetch_server(next);
                balancer.prefetch_member(next);
            }
        }
    }

    /// The cross-tick state image (also nested in
    /// [`AdaptiveGv`](crate::AdaptiveGv)'s own state).
    ///
    /// Only genuinely cross-tick fields are captured. The `melted` flags
    /// travel because the next refresh swaps them into `prev_melted` for
    /// the wax-crossing census; everything else (keep-warm list,
    /// balancers, `below_melt`, fallback cursors) is rebuilt by that
    /// refresh before any placement, so a restored instance behaves
    /// bit-identically to the continuous run from the next tick on.
    pub(crate) fn to_state(&self) -> VmtWaState {
        VmtWaState {
            config: self.config,
            tuning: self.tuning,
            base_hot: self.base_hot,
            hot_size: self.hot_size,
            melted: self.melted.clone(),
            counters: self.counters,
        }
    }

    /// Rebuilds an instance from a state image; see
    /// [`VmtWa::to_state`] for what is re-derived instead of restored.
    pub(crate) fn from_state(state: &VmtWaState) -> Self {
        let mut wa = Self::with_tuning(state.config, state.tuning);
        wa.base_hot = state.base_hot;
        wa.hot_size = state.hot_size;
        wa.melted = state.melted.clone();
        wa.counters = state.counters;
        wa
    }

    /// Books a successful placement: group routing plus cold-job spills
    /// into the hot group. Hot jobs cannot spill — the group grows to
    /// absorb them — so a placement below `hot_size` is "hot routed".
    fn count_placement(&mut self, class: VmtClass, placed: Option<ServerId>) {
        let Some(sid) = placed else { return };
        self.counters.placements += 1;
        if sid.0 < self.hot_size {
            self.counters.hot_placements += 1;
            if class == VmtClass::Cold {
                self.counters.spills += 1;
            }
        } else {
            self.counters.cold_placements += 1;
        }
    }
}

/// Cross-tick state of [`VmtWa`]: configuration, tuning, the resolved
/// group sizes, the per-server melt flags, and the cumulative counters.
/// Balancers, keep-warm list, and fallback cursors are per-tick derived
/// state and deliberately absent.
#[derive(Debug, serde::Serialize, serde::Deserialize)]
pub(crate) struct VmtWaState {
    pub(crate) config: VmtConfig,
    pub(crate) tuning: WaTuning,
    pub(crate) base_hot: usize,
    pub(crate) hot_size: usize,
    pub(crate) melted: Vec<bool>,
    pub(crate) counters: SchedulerCounters,
}

impl SnapshotState for VmtWa {
    fn state_kind(&self) -> Option<&'static str> {
        Some("vmt-wa")
    }

    fn save_state(&self) -> Result<SavedState, SnapshotError> {
        Ok(SavedState::new("vmt-wa", &self.to_state()))
    }

    fn restore_state(&mut self, saved: &SavedState) -> Result<(), SnapshotError> {
        let state: VmtWaState = saved.decode("vmt-wa")?;
        *self = Self::from_state(&state);
        Ok(())
    }
}

impl Scheduler for VmtWa {
    fn name(&self) -> &str {
        "vmt-wa"
    }

    fn clone_box(&self) -> Option<Box<dyn Scheduler>> {
        Some(Box::new(self.clone()))
    }

    fn on_tick(&mut self, farm: &ServerFarm, _now: Seconds) {
        self.refresh(farm);
    }

    fn place(&mut self, job: &Job, farm: &ServerFarm) -> Option<ServerId> {
        if self.melted.len() != farm.len() {
            self.refresh(farm);
        }
        let class = job.kind().vmt_class();
        let placed = match class {
            VmtClass::Hot => self.place_hot(farm, job.core_power().get()),
            VmtClass::Cold => self.place_cold(farm, job.core_power().get()),
        };
        self.count_placement(class, placed);
        placed
    }

    fn on_tick_indexed(&mut self, farm: &ServerFarm, index: &ClusterIndex, _now: Seconds) {
        self.refresh_indexed_impl(farm, index);
    }

    fn place_indexed(
        &mut self,
        job: &Job,
        farm: &ServerFarm,
        index: &ClusterIndex,
    ) -> Option<ServerId> {
        if self.melted.len() != farm.len() {
            self.refresh_indexed_impl(farm, index);
        }
        let class = job.kind().vmt_class();
        let placed = match class {
            VmtClass::Hot => self.place_hot_indexed(farm, index, job.core_power().get()),
            VmtClass::Cold => self.place_cold_indexed(index, job.core_power().get()),
        };
        self.count_placement(class, placed);
        placed
    }

    /// The default batch loop with predicted-winner prefetching woven
    /// in. The decision sequence is exactly `place_indexed` per job —
    /// prefetching is architecturally invisible — but after each
    /// placement the touched balancer already knows its next root
    /// winner, so that server's slab row, free-core entry, and tree
    /// lanes are hinted toward L1 while the current job's bookkeeping
    /// still runs. Placement is a pointer-chase (tree walk → winner id →
    /// slab row) whose latency otherwise serializes per job; at 100k
    /// servers the hint overlaps the next job's misses with the current
    /// job's work. A wrong prediction (keep-warm priority, growth, a
    /// fallback rung) costs one wasted cache fill and nothing else.
    fn place_batch(
        &mut self,
        jobs: &[Job],
        farm: &mut ServerFarm,
        index: &mut ClusterIndex,
        out: &mut Vec<Option<ServerId>>,
    ) {
        if self.melted.len() != farm.len() {
            self.refresh_indexed_impl(farm, index);
        }
        // Prime both groups' predicted winners before the first job.
        for balancer in [&self.hot, &self.cold] {
            if let Some(next) = balancer.peek() {
                farm.prefetch_server(next);
                index.prefetch_server(next);
                balancer.prefetch_member(next);
            }
        }
        self.place_span(jobs, farm, index, out);
    }

    /// [`VmtWa::place_batch`] with per-job decision detail for sampled
    /// jobs. The decision sequence is exactly `place_batch`'s — the
    /// prefetch hints included — because everything the probe receives
    /// is read-only: the candidate list is snapshotted from the class's
    /// balancer *before* the placement mutates it (so it shows the
    /// tournament the job actually entered), and the rung label falls
    /// out of the ladder for free.
    ///
    /// The batch is split around the sampled jobs (asked of the probe
    /// once, up front): unsampled runs go through the same tight
    /// [`VmtWa::place_span`] loop as `place_batch`, so tracing at an
    /// untraced density costs the 99%-unsampled majority of jobs
    /// nothing — no per-job sampling check, no detail branches.
    fn place_batch_traced(
        &mut self,
        jobs: &[Job],
        farm: &mut ServerFarm,
        index: &mut ClusterIndex,
        out: &mut Vec<Option<ServerId>>,
        probe: &mut dyn PlacementProbe,
    ) {
        if self.melted.len() != farm.len() {
            self.refresh_indexed_impl(farm, index);
        }
        for balancer in [&self.hot, &self.cold] {
            if let Some(next) = balancer.peek() {
                farm.prefetch_server(next);
                index.prefetch_server(next);
                balancer.prefetch_member(next);
            }
        }
        let mut sampled = Vec::new();
        probe.sampled_indices(jobs, &mut sampled);
        let mut cand_scratch: Vec<(usize, f64)> = Vec::new();
        let mut start = 0;
        for &at in &sampled {
            self.place_span(&jobs[start..at], farm, index, out);
            start = at + 1;
            let job = &jobs[at];
            let class = job.kind().vmt_class();
            let candidates: Vec<DecisionCandidate> = {
                let balancer = match class {
                    VmtClass::Hot => &self.hot,
                    VmtClass::Cold => &self.cold,
                };
                balancer.top_candidates_into(DECISION_TOP_K, &mut cand_scratch);
                cand_scratch
                    .iter()
                    .map(|&(idx, key)| DecisionCandidate {
                        server: idx as u32,
                        key,
                    })
                    .collect()
            };
            let (placed, rung) = match class {
                VmtClass::Hot => self.place_hot_explained(farm, index, job.core_power().get()),
                VmtClass::Cold => self.place_cold_explained(index, job.core_power().get()),
            };
            self.count_placement(class, placed);
            if let Some(sid) = placed {
                farm.start_job(sid.0, job);
                index.record_start(sid.0);
            }
            out.push(placed);
            let chosen = placed.map(|sid| sid.0 as u32);
            // The winning key is the chosen server's pre-placement
            // tournament key; priority/cursor rungs (and a winner
            // outside the snapshot's top-k) report none.
            let winning_key = chosen.and_then(|c| {
                candidates
                    .iter()
                    .find(|cand| cand.server == c)
                    .map(|cand| cand.key)
            });
            probe.decision(
                job,
                DecisionDetail {
                    rung,
                    chosen,
                    winning_key,
                    candidates,
                },
            );
            let balancer = match class {
                VmtClass::Hot => &self.hot,
                VmtClass::Cold => &self.cold,
            };
            if let Some(next) = balancer.peek() {
                farm.prefetch_server(next);
                index.prefetch_server(next);
                balancer.prefetch_member(next);
            }
        }
        self.place_span(&jobs[start..], farm, index, out);
    }

    fn hot_group_size(&self) -> Option<usize> {
        Some(self.hot_size.max(self.base_hot).max(1))
    }

    fn counters(&self) -> Option<SchedulerCounters> {
        Some(self.counters)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GroupingValue;
    use vmt_dcsim::ClusterConfig;
    use vmt_workload::{JobId, WorkloadKind};

    fn setup(n: usize, gv: f64) -> (ServerFarm, VmtWa) {
        let config = ClusterConfig::paper_default(n);
        let farm = ServerFarm::from_config(&config);
        let mut wa = VmtWa::new(VmtConfig::new(GroupingValue::new(gv), &config));
        wa.refresh(&farm);
        (farm, wa)
    }

    fn setup_with_threshold(n: usize, gv: f64, threshold: f64) -> (ServerFarm, VmtWa) {
        let config = ClusterConfig::paper_default(n);
        let farm = ServerFarm::from_config(&config);
        let mut wa = VmtWa::new(
            VmtConfig::new(GroupingValue::new(gv), &config).with_wax_threshold(threshold),
        );
        wa.refresh(&farm);
        (farm, wa)
    }

    fn job(id: u64, kind: WorkloadKind) -> Job {
        Job::new(JobId(id), kind, Seconds::new(300.0))
    }

    /// Saturates the first `count` servers with hot load and ticks until
    /// their wax (and estimators) report fully melted.
    fn melt_servers(farm: &mut ServerFarm, count: usize) {
        for s in 0..count {
            for c in 0..32 {
                farm.start_job(s, &job((s * 100 + c) as u64, WorkloadKind::VideoEncoding));
            }
        }
        for _ in 0..(24 * 60) {
            farm.tick_physics(Seconds::new(60.0));
        }
    }

    #[test]
    fn starts_at_equation_one_size() {
        let (_, wa) = setup(100, 22.0);
        assert_eq!(wa.hot_group_size(), Some(62));
    }

    #[test]
    fn behaves_like_ta_while_unmelted() {
        let (mut farm, mut wa) = setup(10, 22.0);
        let hot = wa.hot_group_size().unwrap();
        for i in 0..12 {
            let sid = wa.place(&job(i, WorkloadKind::Clustering), &farm).unwrap();
            assert!(sid.0 < hot);
            farm.start_job(sid.0, &job(1000 + i, WorkloadKind::Clustering));
        }
        for i in 0..12 {
            let sid = wa
                .place(&job(100 + i, WorkloadKind::DataCaching), &farm)
                .unwrap();
            assert!(sid.0 >= hot);
            farm.start_job(sid.0, &job(2000 + i, WorkloadKind::DataCaching));
        }
    }

    #[test]
    fn grows_hot_group_when_wax_saturates() {
        let (mut farm, mut wa) = setup(6, 22.0);
        let base = wa.hot_group_size().unwrap();
        assert_eq!(base, 4);
        melt_servers(&mut farm, base);
        wa.refresh(&farm);
        // Melted servers are still fully loaded (above the warm line), so
        // an arriving hot job saturates the group and grows it.
        let sid = wa
            .place(&job(9000, WorkloadKind::WebSearch), &farm)
            .unwrap();
        assert!(
            sid.0 >= base,
            "expected placement on an added server, got {sid}"
        );
        assert!(wa.hot_group_size().unwrap() > base);
    }

    /// Fills the cold group with enough cold jobs that the cluster is
    /// "near peak" (≥75% utilized), activating keep-warm.
    fn load_cold_group(farm: &mut ServerFarm, fills: &[(usize, u64)]) {
        for &(s, cores) in fills {
            for c in 0..cores {
                farm.start_job(
                    s,
                    &job(90_000 + s as u64 * 100 + c, WorkloadKind::DataCaching),
                );
            }
        }
    }

    /// Shared scenario for the keep-warm tests: an 8-server cluster
    /// (hot group = 5) where servers 0–3 are fully melted and loaded,
    /// server 4 is unmelted with headroom, server 0 has been partially
    /// drained and cooled below the melt line, and the cold group is
    /// loaded enough that the cluster is near peak (≥88% utilized).
    fn keep_warm_scenario() -> (ServerFarm, VmtWa) {
        let (mut farm, mut wa) = setup_with_threshold(8, 22.0, 0.85);
        assert_eq!(wa.hot_group_size(), Some(5));
        // Servers 0-3: full hot load, melted.
        for s in 0..4 {
            for c in 0..32 {
                farm.start_job(s, &job((s * 100 + c) as u64, WorkloadKind::VideoEncoding));
            }
        }
        // Server 4: light mixed load — stays below the melt line.
        for c in 0..12 {
            farm.start_job(4, &job((400 + c) as u64, WorkloadKind::VideoEncoding));
        }
        for c in 12..24 {
            farm.start_job(4, &job((400 + c) as u64, WorkloadKind::DataCaching));
        }
        for _ in 0..(24 * 60) {
            farm.tick_physics(Seconds::new(60.0));
        }
        // Drain server 0 to 12 jobs and let it cool below the melt line.
        for c in 0..20 {
            farm.end_job(0, JobId(c));
        }
        for _ in 0..20 {
            farm.tick_physics(Seconds::new(60.0));
        }
        // Cold group load brings the cluster near peak.
        load_cold_group(&mut farm, &[(5, 32), (6, 32), (7, 32)]);
        wa.refresh(&farm);
        assert!(farm.air_at_wax(0) < Celsius::new(35.7));
        assert!(farm.reported_melt_fraction(0).get() >= 0.85);
        (farm, wa)
    }

    #[test]
    fn keep_warm_takes_priority_when_melted_servers_cool() {
        let (farm, mut wa) = keep_warm_scenario();
        // The next hot job must go to server 0 to keep its wax molten.
        let sid = wa
            .place(&job(9000, WorkloadKind::WebSearch), &farm)
            .unwrap();
        assert_eq!(sid, ServerId(0));
    }

    #[test]
    fn keep_warm_stops_at_just_enough_load() {
        let (mut farm, mut wa) = keep_warm_scenario();
        // Feed hot jobs; count how many go to server 0 before the policy
        // decides it is warm enough and routes the rest to the unmelted
        // server 4.
        let mut to_zero = 0;
        for i in 0..16 {
            let sid = wa
                .place(&job(9000 + i, WorkloadKind::Clustering), &farm)
                .unwrap();
            farm.start_job(sid.0, &job(9000 + i, WorkloadKind::Clustering));
            if sid.0 == 0 {
                to_zero += 1;
            }
        }
        // Holding 35.7+0.5 °C steady state needs ≈(36.2−22)×17.5 ≈ 249 W
        // → ≈8 more clustering cores on top of the 12 it kept.
        assert!(to_zero >= 4, "server 0 got only {to_zero} jobs");
        assert!(
            to_zero <= 12,
            "server 0 got {to_zero} jobs — keep-warm did not stop"
        );
    }

    #[test]
    fn never_shrinks_during_the_peak() {
        let (mut farm, mut wa) = setup(6, 22.0);
        let base = wa.hot_group_size().unwrap();
        melt_servers(&mut farm, base);
        load_cold_group(&mut farm, &[(5, 32)]);
        wa.refresh(&farm);
        // Force growth: the melted group is warm and full, so a hot job
        // extends the group onto server 4.
        let sid = wa.place(&job(1, WorkloadKind::WebSearch), &farm).unwrap();
        farm.start_job(sid.0, &job(1, WorkloadKind::WebSearch));
        let grown = wa.hot_group_size().unwrap();
        assert!(grown > base);
        // Near peak → refresh must not shrink, even though the grown
        // server's wax is unmelted.
        wa.refresh(&farm);
        assert_eq!(wa.hot_group_size().unwrap(), grown);
    }

    #[test]
    fn shrinks_after_offpeak_refreeze() {
        let (mut farm, mut wa) = setup(6, 22.0);
        let base = wa.hot_group_size().unwrap();
        melt_servers(&mut farm, base);
        load_cold_group(&mut farm, &[(5, 32)]);
        wa.refresh(&farm);
        let sid = wa.place(&job(1, WorkloadKind::WebSearch), &farm).unwrap();
        farm.start_job(sid.0, &job(1, WorkloadKind::WebSearch));
        assert!(wa.hot_group_size().unwrap() > base);
        // Drain everything and cool until the wax refreezes; off-peak
        // the group returns to its Equation-1 base.
        for s in 0..base {
            for c in 0..32 {
                farm.end_job(s, JobId((s * 100 + c) as u64));
            }
        }
        farm.end_job(sid.0, JobId(1));
        for c in 0..32 {
            farm.end_job(5, JobId(90_000 + 500 + c));
        }
        for _ in 0..(48 * 60) {
            farm.tick_physics(Seconds::new(60.0));
        }
        wa.refresh(&farm);
        assert_eq!(wa.hot_group_size().unwrap(), base);
    }

    #[test]
    fn cold_jobs_prefer_cold_group() {
        let (mut farm, mut wa) = setup(10, 22.0);
        let hot = wa.hot_group_size().unwrap();
        let sid = wa.place(&job(0, WorkloadKind::VirusScan), &farm).unwrap();
        assert!(sid.0 >= hot);
        farm.start_job(sid.0, &job(0, WorkloadKind::VirusScan));
    }

    #[test]
    fn none_only_when_cluster_full() {
        let (mut farm, mut wa) = setup(2, 22.0);
        for s in 0..2 {
            for c in 0..32 {
                farm.start_job(s, &job((s * 100 + c) as u64, WorkloadKind::VirusScan));
            }
        }
        wa.refresh(&farm);
        assert_eq!(wa.place(&job(999, WorkloadKind::WebSearch), &farm), None);
        assert_eq!(wa.place(&job(998, WorkloadKind::VirusScan), &farm), None);
    }
}
