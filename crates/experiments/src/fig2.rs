//! Figure 2 — the thermal time shifting concept.
//!
//! Figure 2 in the paper is a conceptual diagram: during peak hours the
//! wax melts and absorbs heat ("thermal load decreased"), during off
//! hours it refreezes and releases it ("thermal load increased"),
//! flattening the cooling load. This module realizes the concept as data:
//! a single always-hot-enough server driven through a diurnal cycle, with
//! and without wax.

use vmt_dcsim::{ClusterConfig, Server, ServerId};
use vmt_units::{Hours, Seconds, Watts};
use vmt_workload::{DiurnalTrace, Job, JobId, TraceConfig, WorkloadKind};

/// One sample of the TTS concept experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct TtsPoint {
    /// Time since start.
    pub hour: f64,
    /// Electrical power of the server (identical with/without wax).
    pub electrical_w: f64,
    /// Cooling load with wax installed.
    pub with_wax_w: f64,
    /// Cooling load without wax (equals the electrical power).
    pub without_wax_w: f64,
    /// Wax melt fraction.
    pub melt_fraction: f64,
}

/// Runs one server, fully loaded with a hot workload scaled by the
/// diurnal envelope, with and without wax, and returns both cooling-load
/// series.
pub fn fig2() -> Vec<TtsPoint> {
    let config = ClusterConfig::paper_default(1);
    let waxless = ClusterConfig::without_wax(1);
    let mut with_wax = Server::from_config(ServerId(0), &config);
    let mut without_wax = Server::from_config(ServerId(0), &waxless);
    let trace = DiurnalTrace::new(TraceConfig::paper_default());

    let mut points = Vec::new();
    let mut next_job = 0u64;
    let mut running: Vec<JobId> = Vec::new();
    let minutes = (trace.horizon().get() * 60.0) as usize;
    for m in 0..minutes {
        let hour = m as f64 / 60.0;
        // Track the envelope with a hot workload budgeted so the server
        // is "hot enough for TTS" at the peak without exhausting its wax
        // before the peak — Figure 2's premise.
        let target = (trace.envelope(Hours::new(hour)).get() * 26.0).round() as usize;
        while running.len() < target {
            let job = Job::new(
                JobId(next_job),
                WorkloadKind::VideoEncoding,
                Seconds::new(600.0),
            );
            next_job += 1;
            with_wax.start_job(&job);
            without_wax.start_job(&job);
            running.push(job.id());
        }
        while running.len() > target {
            let id = running.pop().expect("non-empty");
            with_wax.end_job(id);
            without_wax.end_job(id);
        }
        let a = with_wax.tick(Seconds::new(60.0));
        let b = without_wax.tick(Seconds::new(60.0));
        points.push(TtsPoint {
            hour,
            electrical_w: a.electrical.get(),
            with_wax_w: a.rejected().get(),
            without_wax_w: b.rejected().get(),
            melt_fraction: with_wax.melt_fraction().get(),
        });
    }
    points
}

/// Peak cooling loads `(with_wax, without_wax)` of the concept run.
pub fn peaks(points: &[TtsPoint]) -> (Watts, Watts) {
    let with_wax = points.iter().map(|p| p.with_wax_w).fold(0.0, f64::max);
    let without = points.iter().map(|p| p.without_wax_w).fold(0.0, f64::max);
    (Watts::new(with_wax), Watts::new(without))
}

/// Renders the concept series.
pub fn render() -> String {
    let points = fig2();
    let (with_wax, without) = peaks(&points);
    let mut out = format!(
        "TTS concept (1 hot server): peak {:.1} with wax vs {:.1} without ({:.1}% lower)\n\
         hour   electrical  with-wax  without-wax  melt\n",
        with_wax,
        without,
        (1.0 - with_wax / without) * 100.0
    );
    for p in points.iter().step_by(30) {
        out.push_str(&format!(
            "{:5.1}  {:9.1}  {:8.1}  {:11.1}  {:.2}\n",
            p.hour, p.electrical_w, p.with_wax_w, p.without_wax_w, p.melt_fraction
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wax_flattens_the_peak() {
        let points = fig2();
        let (with_wax, without) = peaks(&points);
        assert!(
            with_wax.get() < without.get() * 0.95,
            "with {with_wax} vs without {without}"
        );
    }

    #[test]
    fn wax_melts_at_peak_and_refreezes_overnight() {
        let points = fig2();
        let at_peak = &points[21 * 60];
        assert!(
            at_peak.melt_fraction > 0.5,
            "peak melt {}",
            at_peak.melt_fraction
        );
        let next_morning = &points[32 * 60];
        assert!(
            next_morning.melt_fraction < at_peak.melt_fraction,
            "overnight refreeze missing"
        );
    }

    #[test]
    fn off_hours_load_is_raised() {
        // Released heat raises the overnight cooling load above the
        // waxless one somewhere in the night.
        let points = fig2();
        let raised = points[currently_night_range()]
            .iter()
            .any(|p| p.with_wax_w > p.without_wax_w + 5.0);
        assert!(raised, "no overnight heat release observed");
    }

    fn currently_night_range() -> std::ops::Range<usize> {
        (24 * 60)..(34 * 60)
    }

    #[test]
    fn electrical_identical_with_and_without_wax() {
        for p in fig2().iter().step_by(60) {
            assert_eq!(p.electrical_w, p.without_wax_w);
        }
    }
}
