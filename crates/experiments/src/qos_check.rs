//! Extension study: does VMT's deliberate load concentration violate
//! QoS?
//!
//! The paper's §IV-C measures that Web Search and Data Caching *can*
//! colocate (Figure 6) and argues contention-mitigation handles the
//! rest. This study closes the loop inside the simulator: take the
//! actual per-server job composition each policy produces at the load
//! peak, scale each server's latency-critical mix onto Figure 6's
//! six-core testbed, and evaluate the colocation latency model on the
//! worst server.
//!
//! The expected (and observed) structural effect: VMT *separates* the
//! two latency-critical workloads — WebSearch is hot-classified, Data
//! Caching cold — so their colocation ratio drops relative to round
//! robin, and the worst-case interference latency cannot get worse.

use crate::runner::Run;
use vmt_core::PolicyKind;
use vmt_dcsim::Server;
use vmt_units::Hours;
use vmt_workload::qos::{caching_latency, search_latency, Colocation};
use vmt_workload::{DiurnalTrace, WorkloadKind};

/// Per-core load levels at which Figure 6 evaluated colocation (the
/// paper's fixed test points).
const CACHING_RPS_PER_CORE: f64 = 45_000.0;
const SEARCH_CLIENTS_PER_CORE: f64 = 37.5;

/// One policy's worst-case latency exposure at the peak.
#[derive(Debug, Clone, PartialEq)]
pub struct QosPoint {
    /// Policy label.
    pub label: String,
    /// Fraction of latency-critical cores that are colocated with the
    /// other latency-critical workload on the same server.
    pub colocation_fraction: f64,
    /// Worst-server caching p90 latency (seconds).
    pub worst_caching_p90: f64,
    /// Worst-server search p90 latency (seconds).
    pub worst_search_p90: f64,
}

/// Scales a server's latency-critical mix onto Figure 6's 6-core box.
fn scaled_allocation(search: u32, caching: u32) -> Option<Colocation> {
    let total = search + caching;
    if total == 0 {
        return None;
    }
    let search_cores = (6.0 * f64::from(search) / f64::from(total)).round() as u32;
    Some(Colocation {
        search_cores: search_cores.min(6),
        caching_cores: 6 - search_cores.min(6),
    })
}

/// Evaluates one policy's peak-time placements.
pub fn evaluate(label: &str, servers: &[Server]) -> QosPoint {
    let mut colocated = 0u32;
    let mut lc_total = 0u32;
    let mut worst_caching: f64 = 0.0;
    let mut worst_search: f64 = 0.0;
    for server in servers {
        let counts = server.kind_counts();
        let search = counts[WorkloadKind::WebSearch.index()];
        let caching = counts[WorkloadKind::DataCaching.index()];
        lc_total += search + caching;
        if search > 0 && caching > 0 {
            colocated += search + caching;
        }
        if let Some(alloc) = scaled_allocation(search, caching) {
            if alloc.caching_cores > 0 {
                worst_caching =
                    worst_caching.max(caching_latency(CACHING_RPS_PER_CORE, alloc).p90.get());
            }
            if alloc.search_cores > 0 {
                worst_search =
                    worst_search.max(search_latency(SEARCH_CLIENTS_PER_CORE, alloc).p90.get());
            }
        }
    }
    QosPoint {
        label: label.to_owned(),
        colocation_fraction: if lc_total == 0 {
            0.0
        } else {
            f64::from(colocated) / f64::from(lc_total)
        },
        worst_caching_p90: worst_caching,
        worst_search_p90: worst_search,
    }
}

/// Runs round robin and VMT-TA to the hour-20 peak and evaluates both.
pub fn qos_check(servers: usize) -> Vec<QosPoint> {
    [PolicyKind::RoundRobin, PolicyKind::VmtTa { gv: 22.0 }]
        .into_iter()
        .map(|policy| {
            let mut run = Run::new(servers, policy);
            run.trace.horizon = Hours::new(20.0);
            let cluster = run.cluster.clone();
            let scheduler = policy.build(&cluster);
            let (_, final_servers) = vmt_dcsim::Simulation::new(
                cluster,
                DiurnalTrace::new(run.trace.clone()),
                scheduler,
            )
            .run_returning_servers();
            evaluate(&policy.label(), &final_servers)
        })
        .collect()
}

/// Renders the check.
pub fn render(servers: usize) -> String {
    let mut out = String::from(
        "QoS at the load peak (worst server, scaled to Figure 6's testbed)\n\
         policy          colocated LC cores   caching p90   search p90\n",
    );
    for p in qos_check(servers) {
        out.push_str(&format!(
            "{:15} {:17.1}%   {:8.2} ms   {:7.3} s\n",
            p.label,
            p.colocation_fraction * 100.0,
            p.worst_caching_p90 * 1e3,
            p.worst_search_p90
        ));
    }
    out.push_str(
        "(VMT separates the latency-critical pair — WebSearch is hot, DataCaching cold —\n\
         so colocation interference cannot exceed the round-robin baseline.)\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vmt_reduces_latency_critical_colocation() {
        let points = qos_check(40);
        let rr = &points[0];
        let vmt = &points[1];
        assert!(
            vmt.colocation_fraction < rr.colocation_fraction * 0.5,
            "VMT colocation {:.2} vs RR {:.2}",
            vmt.colocation_fraction,
            rr.colocation_fraction
        );
        assert!(vmt.worst_search_p90 <= rr.worst_search_p90 + 1e-9);
    }

    #[test]
    fn worst_case_latencies_stay_on_figure_scale() {
        for p in qos_check(40) {
            assert!(
                p.worst_caching_p90 < 0.025,
                "{}: caching p90 {:.4}s",
                p.label,
                p.worst_caching_p90
            );
            assert!(
                p.worst_search_p90 < 0.6,
                "{}: search p90 {:.3}s",
                p.label,
                p.worst_search_p90
            );
        }
    }

    #[test]
    fn allocation_scaling() {
        assert_eq!(scaled_allocation(0, 0), None);
        let alloc = scaled_allocation(10, 10).unwrap();
        assert_eq!(alloc.search_cores + alloc.caching_cores, 6);
        assert_eq!(alloc.search_cores, 3);
        let pure = scaled_allocation(8, 0).unwrap();
        assert_eq!(pure.search_cores, 6);
    }

    #[test]
    fn uses_trace_config_horizon() {
        // The helper must stop at the peak, not run two days.
        let points = qos_check(10);
        assert_eq!(points.len(), 2);
    }
}
