//! Validation of the on-server wax-state estimator.
//!
//! The paper's wax-state model (its reference \[24\]) was validated
//! against hardware; ours is validated against the simulator's physical
//! truth across a grid of air-temperature profiles. The estimator reads
//! only what a real server has — a quantized container-air sensor, once
//! per minute — so its error bounds what VMT-WA's wax threshold can
//! resolve.

use vmt_pcm::{
    estimation_error, HeatExchanger, PcmMaterial, ServerWaxConfig, WaxPack, WaxStateEstimator,
};
use vmt_units::{Celsius, Fraction, Seconds, WattsPerKelvin};

/// One validation scenario's result.
#[derive(Debug, Clone, PartialEq)]
pub struct ValidationPoint {
    /// Scenario label.
    pub label: String,
    /// Final absolute melt-fraction error |physical − estimated|.
    pub final_error: f64,
}

/// An air-temperature profile: minute index → container-air temperature.
type AirProfile = Box<dyn Fn(usize) -> Celsius>;

/// The scenario grid: a label and the air-temperature profile as a
/// function of the minute index.
fn scenarios() -> Vec<(&'static str, AirProfile)> {
    vec![
        (
            "constant hot (41 °C, 8 h)",
            Box::new(|_| Celsius::new(41.0)) as AirProfile,
        ),
        (
            "melt then freeze (42/26 °C)",
            Box::new(|m| Celsius::new(if m < 360 { 42.0 } else { 26.0 })),
        ),
        (
            "diurnal sinusoid (33 ± 7 °C)",
            Box::new(|m| {
                let phase = m as f64 / 1440.0 * std::f64::consts::TAU;
                Celsius::new(33.0 + 7.0 * (phase - std::f64::consts::FRAC_PI_2).sin())
            }),
        ),
        (
            "plateau grazing (35.2–36.2 °C)",
            Box::new(|m| Celsius::new(35.7 + 0.5 * (m as f64 / 90.0).sin())),
        ),
        (
            "step bursts (30/40 °C, 2 h period)",
            Box::new(|m| Celsius::new(if (m / 120) % 2 == 0 { 40.0 } else { 30.0 })),
        ),
    ]
}

/// Runs the validation grid for `hours` per scenario.
pub fn validate(hours: usize) -> Vec<ValidationPoint> {
    let material = PcmMaterial::deployed_paraffin();
    let mass = ServerWaxConfig::default().mass();
    let ua = WattsPerKelvin::new(17.5);
    scenarios()
        .into_iter()
        .map(|(label, profile)| {
            let mut pack = WaxPack::new(material.clone(), mass, Celsius::new(25.0));
            let exchanger = HeatExchanger::new(ua);
            let mut estimator = WaxStateEstimator::new(material.clone(), mass, ua);
            estimator.reset(Celsius::new(25.0), Fraction::ZERO);
            let air = (0..hours * 60).map(profile);
            let final_error = estimation_error(
                &mut pack,
                &exchanger,
                &mut estimator,
                air,
                Seconds::new(60.0),
            );
            ValidationPoint {
                label: label.to_owned(),
                final_error,
            }
        })
        .collect()
}

/// Renders the validation table.
pub fn render() -> String {
    let mut out = String::from(
        "wax-state estimator vs physical truth (24 h per scenario)\n\
         scenario                              final |error|\n",
    );
    for p in validate(24) {
        out.push_str(&format!("  {:36} {:.3}\n", p.label, p.final_error));
    }
    out.push_str(
        "(scheduler-relevant scenarios — ΔT ≥ 2 K while melting — track within a few\n         percent; grazing the melt point inside the sensor's 0.5 °C quantum is the\n         estimator's documented worst case.)\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_scenarios_within_threshold_resolution() {
        for p in validate(24) {
            // The grazing scenario oscillates within the sensor's 0.5 °C
            // quantum of the melt point, the estimator's documented
            // worst case; every scenario the schedulers actually create
            // (ΔT ≥ 2 K while melting) stays within a few percent.
            let bound = if p.label.starts_with("plateau grazing") {
                0.35
            } else {
                0.10
            };
            assert!(
                p.final_error < bound,
                "{}: error {:.3} above bound {bound}",
                p.label,
                p.final_error
            );
        }
    }

    #[test]
    fn grid_is_non_trivial() {
        let points = validate(12);
        assert_eq!(points.len(), 5);
        assert!(points.iter().any(|p| p.final_error > 0.0));
    }
}
