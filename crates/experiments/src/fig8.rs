//! Figure 8 — the normalized two-day datacenter load trace.
//!
//! The paper plots the cumulative (stacked) per-workload load for 100
//! servers over two days. This module samples the same stacked series
//! from the synthetic trace.

use vmt_units::Hours;
use vmt_workload::{DiurnalTrace, TraceConfig, WorkloadKind};

/// One sample of the stacked load trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TracePoint {
    /// Time since trace start.
    pub hour: f64,
    /// Per-workload utilization (fraction of cluster cores), indexed by
    /// [`WorkloadKind::index`].
    pub by_workload: [f64; 5],
    /// Total utilization.
    pub total: f64,
}

/// Samples the paper-default two-day trace every `step_minutes`.
///
/// # Panics
///
/// Panics if `step_minutes` is zero.
pub fn fig8(step_minutes: usize) -> Vec<TracePoint> {
    assert!(step_minutes > 0, "step must be non-zero");
    let trace = DiurnalTrace::new(TraceConfig::paper_default());
    let total_minutes = (trace.horizon().get() * 60.0) as usize;
    (0..total_minutes)
        .step_by(step_minutes)
        .map(|m| {
            let hour = m as f64 / 60.0;
            let t = Hours::new(hour);
            let mut by_workload = [0.0; 5];
            for kind in WorkloadKind::ALL {
                by_workload[kind.index()] = trace.utilization(kind, t).get();
            }
            TracePoint {
                hour,
                by_workload,
                total: by_workload.iter().sum(),
            }
        })
        .collect()
}

/// Renders the stacked series as text (one line per sample).
pub fn render() -> String {
    let mut out = String::from(
        "hour    Clustering DataCaching VideoEncoding VirusScan WebSearch  total(%)\n",
    );
    for p in fig8(30) {
        out.push_str(&format!(
            "{:5.1}   {:.3}      {:.3}       {:.3}         {:.3}     {:.3}      {:5.1}\n",
            p.hour,
            p.by_workload[WorkloadKind::Clustering.index()],
            p.by_workload[WorkloadKind::DataCaching.index()],
            p.by_workload[WorkloadKind::VideoEncoding.index()],
            p.by_workload[WorkloadKind::VirusScan.index()],
            p.by_workload[WorkloadKind::WebSearch.index()],
            p.total * 100.0,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_two_days() {
        let points = fig8(30);
        assert_eq!(points.len(), 96);
        assert!((points.last().unwrap().hour - 47.5).abs() < 1e-9);
    }

    #[test]
    fn peaks_reach_95_percent() {
        let points = fig8(10);
        let max = points.iter().map(|p| p.total).fold(0.0, f64::max);
        assert!((max - 0.95).abs() < 0.03, "max {max}");
    }

    #[test]
    fn stacked_components_sum_to_total() {
        for p in fig8(60) {
            let sum: f64 = p.by_workload.iter().sum();
            assert!((sum - p.total).abs() < 1e-12);
        }
    }

    #[test]
    fn hot_cold_split_is_sixty_forty() {
        // Integrated over the whole trace, hot workloads carry ≈60% of
        // the load.
        let points = fig8(10);
        let hot: f64 = points
            .iter()
            .map(|p| {
                p.by_workload[WorkloadKind::WebSearch.index()]
                    + p.by_workload[WorkloadKind::VideoEncoding.index()]
                    + p.by_workload[WorkloadKind::Clustering.index()]
            })
            .sum();
        let total: f64 = points.iter().map(|p| p.total).sum();
        assert!(
            (hot / total - 0.6).abs() < 0.02,
            "hot share {}",
            hot / total
        );
    }
}
