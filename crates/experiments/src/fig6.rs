//! Figure 6 — latency scaling with load and cores for colocated Web
//! Search and Data Caching.
//!
//! Four panels: Data Caching mean and 90th-percentile latency vs
//! requests/s per core (25k–60k), and Web Search mean and 90th-percentile
//! latency vs clients per core (10–50); each panel compares two mixed
//! allocations against the homogeneous six-core one.

use vmt_workload::qos::{caching_latency, search_latency, Colocation};

/// One point of a Figure 6 panel.
#[derive(Debug, Clone, PartialEq)]
pub struct QosPoint {
    /// Load level (RPS per core for caching, clients per core for
    /// search).
    pub load: f64,
    /// Mean latency in seconds per allocation: `[2C mix, 4C mix, 6C]`.
    pub mean_s: [f64; 3],
    /// 90th-percentile latency in seconds per allocation.
    pub p90_s: [f64; 3],
}

/// The caching panels: RPS per core swept 25k–60k.
pub fn caching_panel() -> Vec<QosPoint> {
    (25..=60)
        .map(|k| {
            let rps = k as f64 * 1000.0;
            let allocs = [
                Colocation::CACHING_2C_SEARCH,
                Colocation::CACHING_4C_SEARCH,
                Colocation::CACHING_6C,
            ];
            let lat = allocs.map(|a| caching_latency(rps, a));
            QosPoint {
                load: rps,
                mean_s: lat.map(|l| l.mean.get()),
                p90_s: lat.map(|l| l.p90.get()),
            }
        })
        .collect()
}

/// The search panels: clients per core swept 10–50.
pub fn search_panel() -> Vec<QosPoint> {
    (10..=50)
        .step_by(2)
        .map(|c| {
            let clients = c as f64;
            let allocs = [
                Colocation::SEARCH_2C_CACHING,
                Colocation::SEARCH_4C_CACHING,
                Colocation::SEARCH_6C,
            ];
            let lat = allocs.map(|a| search_latency(clients, a));
            QosPoint {
                load: clients,
                mean_s: lat.map(|l| l.mean.get()),
                p90_s: lat.map(|l| l.p90.get()),
            }
        })
        .collect()
}

/// Renders all four panels.
pub fn render() -> String {
    let mut out = String::from(
        "Data Caching (latency ms) vs RPS/core\n\
         rps      2C+Search(mean/p90)  4C+Search(mean/p90)  6C(mean/p90)\n",
    );
    for p in caching_panel().iter().step_by(5) {
        out.push_str(&format!(
            "{:6.0}   {:6.2} / {:6.2}      {:6.2} / {:6.2}      {:6.2} / {:6.2}\n",
            p.load,
            p.mean_s[0] * 1e3,
            p.p90_s[0] * 1e3,
            p.mean_s[1] * 1e3,
            p.p90_s[1] * 1e3,
            p.mean_s[2] * 1e3,
            p.p90_s[2] * 1e3,
        ));
    }
    out.push_str(
        "\nWeb Search (latency s) vs clients/core\n\
         clients  2C+Caching(mean/p90) 4C+Caching(mean/p90) 6C(mean/p90)\n",
    );
    for p in search_panel().iter().step_by(4) {
        out.push_str(&format!(
            "{:6.1}   {:6.3} / {:6.3}     {:6.3} / {:6.3}     {:6.3} / {:6.3}\n",
            p.load, p.mean_s[0], p.p90_s[0], p.mean_s[1], p.p90_s[1], p.mean_s[2], p.p90_s[2],
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caching_mid_range_mix_competitive() {
        // At 45k RPS the 2C mix is at or below homogeneous latency.
        let p = caching_panel()
            .into_iter()
            .find(|p| p.load == 45_000.0)
            .unwrap();
        assert!(p.mean_s[0] <= p.mean_s[2] * 1.02);
    }

    #[test]
    fn search_mixes_worse_everywhere() {
        for p in search_panel() {
            assert!(p.mean_s[0] > p.mean_s[2], "clients {}", p.load);
            assert!(p.mean_s[1] > p.mean_s[2], "clients {}", p.load);
        }
    }

    #[test]
    fn panel_sizes() {
        assert_eq!(caching_panel().len(), 36);
        assert_eq!(search_panel().len(), 21);
    }

    #[test]
    fn render_mentions_all_allocations() {
        let s = render();
        assert!(s.contains("2C+Search"));
        assert!(s.contains("4C+Caching"));
    }
}
