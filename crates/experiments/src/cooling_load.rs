//! Figures 13 and 16 — cluster cooling load and peak-reduction bars.
//!
//! Each figure pairs a cooling-load time series (TTS baseline vs three
//! GVs) with a bar chart of peak cooling-load reductions for round
//! robin, coolest first, and GV ∈ {20, 22, 24}. The paper's headline —
//! 12.8% at GV=22 for both VMT-TA and VMT-WA while the baselines get
//! ≈0% — comes from these two figures.

use crate::runner::{execute_all, reduction_percent, Run};
use vmt_core::PolicyKind;
use vmt_dcsim::SimulationResult;

/// The paper's GV set for these figures.
pub const GVS: [f64; 3] = [20.0, 22.0, 24.0];

/// One labelled cooling-load series.
#[derive(Debug, Clone)]
pub struct LoadSeries {
    /// Display label ("TTS", "GV=22", ...).
    pub label: String,
    /// Cooling load per tick, in watts.
    pub watts: Vec<f64>,
}

/// The full figure.
#[derive(Debug, Clone)]
pub struct CoolingLoadFigure {
    /// Whether this is Figure 16 (VMT-WA) rather than Figure 13 (VMT-TA).
    pub wax_aware: bool,
    /// The cooling-load series: TTS (round robin with wax) plus one per
    /// GV.
    pub series: Vec<LoadSeries>,
    /// Peak-reduction bars: (label, percent vs the round-robin peak).
    pub reductions: Vec<(String, f64)>,
    /// The raw results for downstream inspection, in the same order as
    /// the runs: RR, CF, then the GVs.
    pub results: Vec<SimulationResult>,
}

impl CoolingLoadFigure {
    /// The reduction bar for a GV.
    pub fn reduction_at_gv(&self, gv: f64) -> f64 {
        self.reductions
            .iter()
            .find(|(label, _)| label == &format!("GV={gv}"))
            .map(|&(_, r)| r)
            .expect("gv present")
    }

    /// The best reduction across the GV bars.
    pub fn best_reduction(&self) -> f64 {
        self.reductions
            .iter()
            .filter(|(label, _)| label.starts_with("GV"))
            .map(|&(_, r)| r)
            .fold(f64::MIN, f64::max)
    }
}

/// Runs Figure 13 (`wax_aware = false`) or Figure 16 (`true`) on
/// `servers` servers.
pub fn cooling_load(wax_aware: bool, servers: usize) -> CoolingLoadFigure {
    let mut runs = vec![
        Run::new(servers, PolicyKind::RoundRobin),
        Run::new(servers, PolicyKind::CoolestFirst),
    ];
    runs.extend(GVS.iter().map(|&gv| {
        let policy = if wax_aware {
            PolicyKind::vmt_wa(gv)
        } else {
            PolicyKind::VmtTa { gv }
        };
        Run::new(servers, policy)
    }));
    let results = execute_all(&runs);
    let baseline = &results[0];

    let mut series = vec![LoadSeries {
        // Round robin with wax *is* passive TTS on this cluster.
        label: "TTS".to_owned(),
        watts: baseline.cooling.samples().iter().map(|w| w.get()).collect(),
    }];
    series.extend(GVS.iter().zip(&results[2..]).map(|(&gv, r)| LoadSeries {
        label: format!("GV={gv}"),
        watts: r.cooling.samples().iter().map(|w| w.get()).collect(),
    }));

    let labels = ["Round Robin", "Coolest First", "GV=20", "GV=22", "GV=24"];
    let reductions = labels
        .iter()
        .zip(&results)
        .map(|(label, r)| ((*label).to_owned(), reduction_percent(r, baseline)))
        .collect();

    CoolingLoadFigure {
        wax_aware,
        series,
        reductions,
        results,
    }
}

/// Figure 13: VMT-TA.
pub fn fig13(servers: usize) -> CoolingLoadFigure {
    cooling_load(false, servers)
}

/// Figure 16: VMT-WA.
pub fn fig16(servers: usize) -> CoolingLoadFigure {
    cooling_load(true, servers)
}

/// Renders the time series (2-hour steps) and the reduction bars.
pub fn render(figure: &CoolingLoadFigure) -> String {
    let mut out = format!(
        "Peak cooling load for {} (kW)\nhour   ",
        if figure.wax_aware {
            "VMT-WA (Fig 16)"
        } else {
            "VMT-TA (Fig 13)"
        }
    );
    for s in &figure.series {
        out.push_str(&format!("{:>9}", s.label));
    }
    out.push('\n');
    let hours = figure.series[0].watts.len() / 60;
    for h in (0..hours).step_by(2) {
        out.push_str(&format!("{h:4}   "));
        for s in &figure.series {
            out.push_str(&format!("{:9.1}", s.watts[h * 60] / 1e3));
        }
        out.push('\n');
    }
    // Shape overview: the TTS baseline against the best GV.
    let tts: Vec<f64> = figure.series[0].watts.iter().map(|w| w / 1e3).collect();
    let best: Vec<f64> = figure.series[2].watts.iter().map(|w| w / 1e3).collect();
    out.push_str("\nshape (kW): TTS baseline vs GV=22\n");
    out.push_str(&crate::report::ascii_chart(
        &[("TTS", &tts), ("GV=22", &best)],
        72,
        12,
    ));
    out.push_str("\nPeak cooling load reduction (vs round-robin peak)\n");
    for (label, r) in &figure.reductions {
        // Negated to match the paper's bar labels (−12.8 = 12.8% lower).
        out.push_str(&format!("{label:>14}: {:.1}%\n", -r));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const TEST_SERVERS: usize = 100;

    #[test]
    fn fig13_shape_matches_paper() {
        let f = fig13(TEST_SERVERS);
        // Baselines do nothing.
        assert!(f.reductions[0].1.abs() < 0.5, "RR {:?}", f.reductions[0]);
        assert!(f.reductions[1].1.abs() < 1.5, "CF {:?}", f.reductions[1]);
        // GV=22 is the best and lands near the paper's 12.8%.
        let g22 = f.reduction_at_gv(22.0);
        assert!(g22 > 9.0, "GV=22 {g22}");
        assert!(g22 >= f.reduction_at_gv(24.0), "22 vs 24");
        // GV=20 melts out too early and provides little at the peak.
        assert!(
            f.reduction_at_gv(20.0) < g22 * 0.5,
            "GV=20 {}",
            f.reduction_at_gv(20.0)
        );
    }

    #[test]
    fn fig16_wax_aware_rescues_gv20() {
        let ta = fig13(TEST_SERVERS);
        let wa = fig16(TEST_SERVERS);
        // At the optimum both match.
        assert!((wa.reduction_at_gv(22.0) - ta.reduction_at_gv(22.0)).abs() < 1.5);
        // Below the optimum WA does better than TA.
        assert!(
            wa.reduction_at_gv(20.0) > ta.reduction_at_gv(20.0),
            "WA {} vs TA {}",
            wa.reduction_at_gv(20.0),
            ta.reduction_at_gv(20.0)
        );
    }

    #[test]
    fn series_are_complete() {
        let f = fig13(10);
        assert_eq!(f.series.len(), 4);
        for s in &f.series {
            assert_eq!(s.watts.len(), 48 * 60);
        }
        assert_eq!(f.reductions.len(), 5);
    }
}
