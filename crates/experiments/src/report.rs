//! Plain-text table rendering for experiment output.

/// A simple fixed-width text table.
///
/// # Examples
///
/// ```
/// use vmt_experiments::report::TextTable;
///
/// let mut table = TextTable::new(vec!["Workload", "CPU Power", "Class"]);
/// table.row(vec!["WebSearch".into(), "37.2 W".into(), "hot".into()]);
/// let rendered = table.render();
/// assert!(rendered.contains("WebSearch"));
/// assert!(rendered.starts_with("Workload"));
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(headers: Vec<&str>) -> Self {
        Self {
            headers: headers.into_iter().map(str::to_owned).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width does not match the header width.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match header width"
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let render_row = |cells: &[String], out: &mut String| {
            for (i, cell) in cells.iter().enumerate() {
                out.push_str(cell);
                if i + 1 < cols {
                    for _ in 0..(widths[i].saturating_sub(cell.chars().count()) + 2) {
                        out.push(' ');
                    }
                }
            }
            out.push('\n');
        };
        render_row(&self.headers, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            render_row(row, &mut out);
        }
        out
    }
}

/// Renders one or more series as a compact ASCII line chart, one column
/// per sampled point, sharing a common y-scale. Intended for terminal
/// inspection of a figure's *shape*; exact values come from the CSV
/// export.
///
/// # Examples
///
/// ```
/// use vmt_experiments::report::ascii_chart;
///
/// let chart = ascii_chart(
///     &[("a", &[0.0, 1.0, 2.0][..]), ("b", &[2.0, 1.0, 0.0][..])],
///     40,
///     8,
/// );
/// assert!(chart.contains('a'));
/// assert!(chart.lines().count() >= 8);
/// ```
pub fn ascii_chart(series: &[(&str, &[f64])], width: usize, height: usize) -> String {
    let width = width.max(2);
    let height = height.max(2);
    let (mut lo, mut hi) = (f64::MAX, f64::MIN);
    for (_, values) in series {
        for &v in *values {
            lo = lo.min(v);
            hi = hi.max(v);
        }
    }
    if !(lo.is_finite() && hi.is_finite()) || series.iter().all(|(_, v)| v.is_empty()) {
        return String::from(
            "(no data)
",
        );
    }
    if hi - lo < 1e-12 {
        hi = lo + 1.0;
    }
    let mut grid = vec![vec![' '; width]; height];
    for (idx, (_, values)) in series.iter().enumerate() {
        let marker = char::from(b'a' + (idx % 26) as u8);
        #[allow(clippy::needless_range_loop)] // col drives both sampling and placement
        for col in 0..width {
            let pos = col as f64 / (width - 1) as f64 * (values.len() - 1) as f64;
            let v = values[pos.round() as usize];
            let row = ((v - lo) / (hi - lo) * (height - 1) as f64).round() as usize;
            let row = height - 1 - row.min(height - 1);
            grid[row][col] = marker;
        }
    }
    let mut out = String::new();
    for (r, row) in grid.iter().enumerate() {
        let label = if r == 0 {
            format!("{hi:9.1} |")
        } else if r == height - 1 {
            format!("{lo:9.1} |")
        } else {
            "          |".to_owned()
        };
        out.push_str(&label);
        out.extend(row.iter());
        out.push('\n');
    }
    for (idx, (name, _)) in series.iter().enumerate() {
        let marker = char::from(b'a' + (idx % 26) as u8);
        out.push_str(&format!("  {marker} = {name}"));
    }
    out.push('\n');
    out
}

/// Formats a time series as `hour value` lines, down-sampled to roughly
/// `max_points` rows — enough to plot the figure's shape in a terminal
/// or spreadsheet.
pub fn series_lines(dt_hours: f64, values: &[f64], max_points: usize) -> String {
    let stride = (values.len() / max_points.max(1)).max(1);
    values
        .iter()
        .enumerate()
        .step_by(stride)
        .map(|(i, v)| format!("{:6.2}  {:.3}\n", i as f64 * dt_hours, v))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(vec!["A", "Long header"]);
        t.row(vec!["x".into(), "1".into()]);
        t.row(vec!["longer".into(), "2".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[1].starts_with('-'));
        // Columns align: "1" and "2" start at the same offset.
        let c1 = lines[2].find('1').unwrap();
        let c2 = lines[3].find('2').unwrap();
        assert_eq!(c1, c2);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_rejected() {
        let mut t = TextTable::new(vec!["A"]);
        t.row(vec!["x".into(), "y".into()]);
    }

    #[test]
    fn ascii_chart_shape_and_scale() {
        let chart = ascii_chart(&[("x", &[0.0, 5.0, 10.0][..])], 30, 6);
        let lines: Vec<&str> = chart.lines().collect();
        assert_eq!(lines.len(), 7);
        assert!(lines[0].trim_start().starts_with("10.0"));
        assert!(lines[5].trim_start().starts_with("0.0"));
        assert!(lines[6].contains("x = x") || lines[6].contains("a = x"));
    }

    #[test]
    fn ascii_chart_handles_degenerate_input() {
        assert_eq!(ascii_chart(&[("e", &[][..])], 10, 4), "(no data)\n");
        let flat = ascii_chart(&[("f", &[3.0, 3.0][..])], 10, 4);
        assert!(flat.lines().count() >= 4);
    }

    #[test]
    fn series_downsampling() {
        let values: Vec<f64> = (0..100).map(f64::from).collect();
        let s = series_lines(1.0 / 60.0, &values, 10);
        assert_eq!(s.lines().count(), 10);
    }
}
