//! Figure 17 — peak cooling-load reduction vs the VMT-WA wax threshold.
//!
//! The paper sweeps the threshold above which a server counts as "fully
//! melted" from 0.85 to 1.00 (at GV=22, 100 servers) and finds the
//! reduction flat above ≈0.95: the threshold only has to be high enough
//! not to strand usable capacity.

use crate::runner::{execute_all, reduction_percent, Run};
use vmt_core::PolicyKind;

/// The paper's threshold sweep points.
pub const THRESHOLDS: [f64; 6] = [0.85, 0.90, 0.95, 0.98, 0.99, 1.00];

/// One threshold's outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct ThresholdPoint {
    /// The wax threshold.
    pub threshold: f64,
    /// Peak cooling-load reduction (percent vs round robin).
    pub reduction_percent: f64,
}

/// Runs the sweep at GV=22 on `servers` servers.
pub fn fig17(servers: usize) -> Vec<ThresholdPoint> {
    let mut runs = vec![Run::new(servers, PolicyKind::RoundRobin)];
    runs.extend(THRESHOLDS.iter().map(|&t| {
        Run::new(
            servers,
            PolicyKind::VmtWa {
                gv: 22.0,
                wax_threshold: t,
            },
        )
    }));
    let results = execute_all(&runs);
    let baseline = &results[0];
    THRESHOLDS
        .iter()
        .zip(&results[1..])
        .map(|(&threshold, r)| ThresholdPoint {
            threshold,
            reduction_percent: reduction_percent(r, baseline),
        })
        .collect()
}

/// Renders the bar series.
pub fn render(servers: usize) -> String {
    let mut out = String::from("Wax threshold  Peak cooling load reduction (%)\n");
    for p in fig17(servers) {
        out.push_str(&format!(
            "{:13.2}  {:.1}\n",
            p.threshold, p.reduction_percent
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plateau_above_095() {
        let points = fig17(30);
        let at = |t: f64| {
            points
                .iter()
                .find(|p| (p.threshold - t).abs() < 1e-9)
                .unwrap()
                .reduction_percent
        };
        // ≥0.95 all within a point of each other (the paper's plateau).
        let plateau = [at(0.95), at(0.98), at(0.99), at(1.00)];
        let max = plateau.iter().copied().fold(f64::MIN, f64::max);
        let min = plateau.iter().copied().fold(f64::MAX, f64::min);
        assert!(max - min < 2.0, "plateau spread {max}-{min}");
        // 0.85 must not beat the plateau; in the paper it strands wax
        // capacity and loses ≈5 points, in our reproduction the placement
        // balancer limits the damage to ≈0 (see EXPERIMENTS.md).
        assert!(
            at(0.85) <= max + 0.5,
            "0.85 ({}) should not beat the plateau ({max})",
            at(0.85)
        );
    }
}
