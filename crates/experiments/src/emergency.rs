//! Extension study: PCM as an emergency-cooling buffer.
//!
//! Related work the paper cites (\[53\], Islam et al., HPCA 2016)
//! proposes PCM for *power emergencies*. This study asks the thermal
//! version of that question in our substrate: if the cooling plant
//! degrades during the peak — a failed chiller, a water-supply limit —
//! how much heat arrives that the degraded plant cannot remove, and how
//! much of that exposure does VMT's wax absorb?
//!
//! The metric is **thermal exposure**: `∫ max(0, rejected(t) − cap) dt`
//! over the outage window, the energy that must go into room-air
//! temperature rise (and eventually thermal throttling).

use crate::runner::Run;
use vmt_core::PolicyKind;
use vmt_thermal::RoomModel;
use vmt_units::{Hours, Joules, Seconds, Watts};

/// An emergency scenario: the plant's removable power is capped during a
/// window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Outage {
    /// Start of the outage.
    pub start: Hours,
    /// End of the outage.
    pub end: Hours,
    /// Fraction of the healthy peak the degraded plant can still remove.
    pub capacity_fraction: f64,
}

impl Outage {
    /// The paper-style worst case: a 90-minute degradation to 85%
    /// capacity, starting right at the load peak.
    pub fn at_peak() -> Self {
        Self {
            start: Hours::new(19.0),
            end: Hours::new(20.5),
            capacity_fraction: 0.85,
        }
    }
}

/// One policy's exposure under the outage.
#[derive(Debug, Clone, PartialEq)]
pub struct ExposurePoint {
    /// Policy label.
    pub label: String,
    /// Unremovable heat over the outage window.
    pub exposure: Joules,
    /// Peak room-temperature excursion above the setpoint (°C), from
    /// driving the cooling series through a [`RoomModel`] with the
    /// degraded capacity during the outage window.
    pub peak_excursion_c: f64,
}

/// Thermal exposure of a cooling series under an outage, where the cap
/// is `capacity_fraction` of the series' own healthy peak.
pub fn exposure(series: &[f64], dt: Seconds, outage: Outage, healthy_peak: Watts) -> Joules {
    let cap = healthy_peak.get() * outage.capacity_fraction;
    let from = (outage.start.to_seconds().get() / dt.get()) as usize;
    let to = ((outage.end.to_seconds().get() / dt.get()) as usize).min(series.len());
    let mut total = 0.0;
    for &w in &series[from..to] {
        total += (w - cap).max(0.0) * dt.get();
    }
    Joules::new(total)
}

/// Runs the outage scenario for round robin and both VMT algorithms.
pub fn emergency(servers: usize, outage: Outage) -> Vec<ExposurePoint> {
    let runs = [
        Run::new(servers, PolicyKind::RoundRobin),
        Run::new(servers, PolicyKind::VmtTa { gv: 22.0 }),
        Run::new(servers, PolicyKind::vmt_wa(22.0)),
    ];
    let results = crate::runner::execute_all(&runs);
    // The cap is defined by the *baseline* plant sizing: what a
    // non-VMT datacenter would have installed.
    let healthy_peak = results[0].peak_cooling();
    results
        .iter()
        .map(|r| {
            let series: Vec<f64> = r.cooling.samples().iter().map(|w| w.get()).collect();
            ExposurePoint {
                label: r.scheduler_name.clone(),
                exposure: exposure(&series, r.tick, outage, healthy_peak),
                peak_excursion_c: peak_excursion(&series, r.tick, outage, healthy_peak),
            }
        })
        .collect()
}

/// Peak room-temperature excursion when the cooling series is served by
/// a plant that derates to the outage capacity during the window.
pub fn peak_excursion(series: &[f64], dt: Seconds, outage: Outage, healthy_peak: Watts) -> f64 {
    let mut room = RoomModel::paper_default(healthy_peak);
    let mut peak = 0.0f64;
    for (i, &w) in series.iter().enumerate() {
        let hour = i as f64 * dt.get() / 3600.0;
        let degraded = hour >= outage.start.get() && hour < outage.end.get();
        room.set_capacity(if degraded {
            healthy_peak * outage.capacity_fraction
        } else {
            healthy_peak
        });
        room.step(Watts::new(w), dt);
        peak = peak.max(room.excursion().get());
    }
    peak
}

/// Renders the scenario.
pub fn render(servers: usize) -> String {
    let outage = Outage::at_peak();
    let points = emergency(servers, outage);
    let mut out = format!(
        "cooling degraded to {:.0}% of the healthy peak, {:.1}–{:.1} h\n",
        outage.capacity_fraction * 100.0,
        outage.start.get(),
        outage.end.get()
    );
    let baseline = points[0].exposure;
    for p in &points {
        let saved = if baseline.get() > 0.0 {
            (1.0 - p.exposure / baseline) * 100.0
        } else {
            0.0
        };
        out.push_str(&format!(
            "  {:14} unremovable heat {:8.1} MJ   room excursion {:4.1} K   ({:5.1}% less heat than round robin)\n",
            p.label,
            p.exposure.to_megajoules(),
            p.peak_excursion_c,
            saved
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vmt_reduces_thermal_exposure() {
        let points = emergency(50, Outage::at_peak());
        let rr = &points[0];
        let ta = &points[1];
        assert!(
            rr.exposure.get() > 0.0,
            "the outage should bite the baseline"
        );
        assert!(
            ta.exposure.get() < rr.exposure.get() * 0.5,
            "VMT should absorb most of the exposure: {ta:?} vs {rr:?}"
        );
        assert!(
            ta.peak_excursion_c < rr.peak_excursion_c,
            "VMT should keep the room cooler: {ta:?} vs {rr:?}"
        );
    }

    #[test]
    fn exposure_arithmetic() {
        // 2 kW over a 1 kW cap for one hour of a two-hour window.
        let outage = Outage {
            start: Hours::new(0.0),
            end: Hours::new(2.0),
            capacity_fraction: 0.5,
        };
        let series = vec![2000.0; 60];
        let e = exposure(&series, Seconds::new(60.0), outage, Watts::new(2000.0));
        assert!((e.get() - 1000.0 * 3600.0).abs() < 1e-6);
    }

    #[test]
    fn no_exposure_below_cap() {
        let outage = Outage {
            start: Hours::new(0.0),
            end: Hours::new(1.0),
            capacity_fraction: 1.0,
        };
        let series = vec![500.0; 60];
        let e = exposure(&series, Seconds::new(60.0), outage, Watts::new(1000.0));
        assert_eq!(e.get(), 0.0);
    }
}
