//! §V-E — TCO benefits of VMT.
//!
//! Converts the measured peak cooling-load reduction into the paper's
//! dollar and server-count headlines for the 25 MW datacenter: a
//! ≈$2.69M smaller cooling system (or ≈7,339 extra servers) at the full
//! 12.8% reduction, and ≈$1.26M (≈3,191 servers) at the conservative 6%
//! — against a commercial-wax deployment cost of only ≈$174k and an
//! n-paraffin alternative that would cost ≈$13M.

use vmt_pcm::{PcmMaterial, ServerWaxConfig};
use vmt_tco::{CoolingCostModel, OversubscriptionPlan, WaxDeployment};
use vmt_units::{Celsius, Dollars, Kilowatts, Watts};

/// The paper's datacenter: 25 MW critical power of 500 W servers in
/// 1,000-server clusters.
pub const DATACENTER_KW: f64 = 25_000.0;
/// Nameplate server power.
pub const SERVER_PEAK_W: f64 = 500.0;
/// Servers per cluster.
pub const CLUSTER_SIZE: usize = 1000;

/// One row of the §V-E summary.
#[derive(Debug, Clone, PartialEq)]
pub struct TcoScenario {
    /// Scenario label.
    pub label: String,
    /// Peak cooling-load reduction applied.
    pub reduction_percent: f64,
    /// Lifetime cooling-capex savings.
    pub cooling_savings: Dollars,
    /// Additional servers fleet-wide under the original cooling system.
    pub additional_servers: u64,
    /// Additional servers per 1,000-server cluster.
    pub additional_per_cluster: u64,
}

/// The full summary.
#[derive(Debug, Clone, PartialEq)]
pub struct TcoSummary {
    /// Measured/assumed scenarios (full reduction + conservative 6%).
    pub scenarios: Vec<TcoScenario>,
    /// Commercial wax deployment cost for the whole datacenter.
    pub commercial_wax_cost: Dollars,
    /// What n-paraffin at a ≈30 °C melt point would have cost instead.
    pub n_paraffin_cost: Dollars,
}

/// Builds the summary from a measured peak reduction (fraction, e.g.
/// `0.128`).
///
/// # Panics
///
/// Panics if `measured_reduction` is outside `[0, 1)`.
pub fn tco_summary(measured_reduction: f64) -> TcoSummary {
    let cost_model = CoolingCostModel::paper_default();
    let scenario = |label: &str, reduction: f64| {
        let plan = OversubscriptionPlan::new(
            Kilowatts::new(DATACENTER_KW),
            Watts::new(SERVER_PEAK_W),
            reduction,
        );
        TcoScenario {
            label: label.to_owned(),
            reduction_percent: reduction * 100.0,
            cooling_savings: plan.cooling_savings(&cost_model),
            additional_servers: plan.additional_servers(),
            additional_per_cluster: plan.additional_servers_per_cluster(CLUSTER_SIZE),
        }
    };
    let servers = (DATACENTER_KW * 1000.0 / SERVER_PEAK_W) as u64;
    TcoSummary {
        scenarios: vec![
            scenario("measured best (VMT-TA/WA)", measured_reduction),
            scenario("conservative (VMT-WA)", 0.06),
        ],
        commercial_wax_cost: WaxDeployment::new(
            PcmMaterial::deployed_paraffin(),
            ServerWaxConfig::default(),
            servers,
        )
        .total_cost(),
        n_paraffin_cost: WaxDeployment::new(
            PcmMaterial::n_paraffin(Celsius::new(29.7)).expect("valid n-paraffin"),
            ServerWaxConfig::default(),
            servers,
        )
        .total_cost(),
    }
}

/// Runs the cluster simulation to measure the reduction, then builds the
/// summary (the full §V-E pipeline).
pub fn measured(servers: usize) -> (f64, TcoSummary) {
    let figure = crate::cooling_load::fig13(servers);
    let reduction = figure.best_reduction() / 100.0;
    (reduction, tco_summary(reduction.clamp(0.0, 0.99)))
}

/// Renders the summary.
pub fn render(summary: &TcoSummary) -> String {
    let mut out = String::from("TCO benefits (25 MW datacenter, 10-year cooling life)\n");
    for s in &summary.scenarios {
        out.push_str(&format!(
            "  {}: {:.1}% reduction → {} cooling capex saved, or +{} servers ({}/cluster)\n",
            s.label,
            s.reduction_percent,
            s.cooling_savings.display_rounded(),
            s.additional_servers,
            s.additional_per_cluster
        ));
    }
    out.push_str(&format!(
        "  commercial wax deployment: {}\n  n-paraffin alternative:    {}\n",
        summary.commercial_wax_cost.display_rounded(),
        summary.n_paraffin_cost.display_rounded()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_numbers_at_published_reduction() {
        let s = tco_summary(0.128);
        let best = &s.scenarios[0];
        assert_eq!(best.cooling_savings.display_rounded(), "$2,688,000");
        assert_eq!(best.additional_servers, 7_339);
        assert_eq!(best.additional_per_cluster, 146);
        let conservative = &s.scenarios[1];
        assert_eq!(conservative.cooling_savings.display_rounded(), "$1,260,000");
        assert_eq!(conservative.additional_servers, 3_191);
    }

    #[test]
    fn wax_cost_comparison() {
        let s = tco_summary(0.128);
        assert!(s.commercial_wax_cost.get() < 200_000.0);
        assert!(s.n_paraffin_cost.get() > 10_000_000.0);
    }

    #[test]
    fn render_mentions_the_headlines() {
        let out = render(&tco_summary(0.128));
        assert!(out.contains("$2,688,000"));
        assert!(out.contains("7339") || out.contains("7,339") || out.contains("+7339"));
    }
}
