//! Figures 12 and 15 — average hot-group temperature vs GV.
//!
//! Figure 12 (VMT-TA) shows the hot group exceeding the wax melting
//! temperature at low GV while the round-robin average never quite gets
//! there; Figure 15 (VMT-WA) shows the same plus the abrupt temperature
//! drop when the original hot group saturates and the group is extended.

use crate::runner::{execute_all, Run};
use vmt_core::PolicyKind;

/// One policy's hot-group temperature series.
#[derive(Debug, Clone, PartialEq)]
pub struct HotGroupSeries {
    /// The grouping value.
    pub gv: f64,
    /// Mean hot-group air temperature per tick (°C).
    pub temps: Vec<f64>,
}

impl HotGroupSeries {
    /// Peak of the series.
    pub fn peak(&self) -> f64 {
        self.temps.iter().copied().fold(f64::MIN, f64::max)
    }

    /// Temperature at an hour offset.
    pub fn at_hour(&self, hour: f64) -> f64 {
        self.temps[(hour * 60.0) as usize]
    }
}

/// The full figure: round-robin average plus one series per GV.
#[derive(Debug, Clone, PartialEq)]
pub struct HotGroupFigure {
    /// Whether this is the TA (Fig 12) or WA (Fig 15) variant.
    pub wax_aware: bool,
    /// Round-robin cluster-average temperature per tick.
    pub round_robin_avg: Vec<f64>,
    /// Hot-group series per GV.
    pub series: Vec<HotGroupSeries>,
    /// The wax melting temperature (the figures' horizontal line).
    pub melt_line: f64,
}

/// Runs the figure for the given GVs on a cluster of `servers` servers.
pub fn hot_group_temps(wax_aware: bool, gvs: &[f64], servers: usize) -> HotGroupFigure {
    let mut runs = vec![Run::new(servers, PolicyKind::RoundRobin)];
    runs.extend(gvs.iter().map(|&gv| {
        let policy = if wax_aware {
            PolicyKind::vmt_wa(gv)
        } else {
            PolicyKind::VmtTa { gv }
        };
        Run::new(servers, policy)
    }));
    let mut results = execute_all(&runs);
    let rr = results.remove(0);
    HotGroupFigure {
        wax_aware,
        round_robin_avg: rr.avg_temp.iter().map(|t| t.get()).collect(),
        series: gvs
            .iter()
            .zip(results)
            .map(|(&gv, r)| HotGroupSeries {
                gv,
                temps: r.hot_group_temp.iter().map(|t| t.get()).collect(),
            })
            .collect(),
        melt_line: 35.7,
    }
}

/// Figure 12: VMT-TA at the paper's GV set.
pub fn fig12(servers: usize) -> HotGroupFigure {
    hot_group_temps(false, &[21.0, 22.0, 23.0, 24.0, 25.0, 26.0], servers)
}

/// Figure 15: VMT-WA at the paper's GV set.
pub fn fig15(servers: usize) -> HotGroupFigure {
    hot_group_temps(true, &[20.0, 21.0, 22.0, 24.0, 26.0], servers)
}

/// Renders the figure as hourly rows.
pub fn render(figure: &HotGroupFigure) -> String {
    let mut out = format!(
        "Average hot group temperature ({})\nhour   RR-avg  ",
        if figure.wax_aware { "VMT-WA" } else { "VMT-TA" }
    );
    for s in &figure.series {
        out.push_str(&format!("GV={:<5}", s.gv));
    }
    out.push_str(&format!("(melt {:.1} °C)\n", figure.melt_line));
    let hours = figure.round_robin_avg.len() / 60;
    for h in (0..hours).step_by(2) {
        out.push_str(&format!(
            "{:4}   {:6.1}  ",
            h,
            figure.round_robin_avg[h * 60]
        ));
        for s in &figure.series {
            out.push_str(&format!("{:6.1} ", s.temps[h * 60]));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const TEST_SERVERS: usize = 30;

    #[test]
    fn round_robin_stays_below_melt() {
        let f = hot_group_temps(false, &[22.0], TEST_SERVERS);
        let rr_peak = f.round_robin_avg.iter().copied().fold(f64::MIN, f64::max);
        assert!(rr_peak < f.melt_line, "RR peak {rr_peak}");
        // ... but only just ("almost but does not quite reach").
        assert!(rr_peak > f.melt_line - 1.0, "RR peak {rr_peak} too cold");
    }

    #[test]
    fn hot_group_exceeds_melt_at_low_gv() {
        let f = hot_group_temps(false, &[21.0, 22.0], TEST_SERVERS);
        for s in &f.series {
            assert!(s.peak() > f.melt_line, "GV={} peak {}", s.gv, s.peak());
        }
    }

    #[test]
    fn temperature_is_inversely_related_to_gv() {
        // "The degree to which the hot group temperature exceeds the
        // average is inversely proportional to the GV."
        let f = hot_group_temps(false, &[21.0, 24.0], TEST_SERVERS);
        assert!(f.series[0].peak() > f.series[1].peak());
    }

    #[test]
    fn wax_aware_drops_after_saturation() {
        // Figure 15: at GV=20 the average hot-group temperature drops
        // when the original group saturates and cooler servers join.
        let f = hot_group_temps(true, &[20.0], TEST_SERVERS);
        let s = &f.series[0];
        let peak_window_max = s.at_hour(19.0).max(s.at_hour(20.0));
        let late_peak = s.at_hour(21.5);
        assert!(
            late_peak < peak_window_max,
            "no drop: {late_peak} vs {peak_window_max}"
        );
    }
}
