//! Figure 7 — server reliability: round robin vs VMT-WA with rotation.
//!
//! The paper scales a 70,000 h @ 30 °C MTBF by 2× per +10 °C, assumes
//! 20% of servers rotate between groups each month (3 months hot, 2
//! cold), and plots 6-month and 3-year cumulative failure for round robin
//! vs VMT-WA. We drive the same model with *measured* temperatures: the
//! time-average cluster temperature from a round-robin run, and the
//! time-average hot/cold group temperatures from a VMT-WA run.

use crate::runner::Run;
use vmt_core::PolicyKind;
use vmt_reliability::{cumulative_failure_curve, FailureCurve, FailureModel, RotationPolicy};
use vmt_units::Celsius;

/// The Figure 7 result: measured temperatures and both failure curves.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig7 {
    /// Time-average server temperature under round robin.
    pub rr_temp: Celsius,
    /// Time-average hot-group temperature under VMT-WA.
    pub hot_temp: Celsius,
    /// Time-average cold-group temperature under VMT-WA.
    pub cold_temp: Celsius,
    /// Round robin cumulative failure, 36 months.
    pub round_robin: FailureCurve,
    /// VMT-WA (rotated) cumulative failure, 36 months.
    pub vmt: FailureCurve,
}

impl Fig7 {
    /// The 3-year failure-probability gap (VMT − round robin).
    pub fn three_year_gap(&self) -> f64 {
        self.vmt.final_probability() - self.round_robin.final_probability()
    }
}

/// Runs the experiment on a cluster of `servers` servers.
pub fn fig7(servers: usize) -> Fig7 {
    let results = crate::runner::execute_all(&[
        Run::new(servers, PolicyKind::RoundRobin),
        Run::new(servers, PolicyKind::vmt_wa(22.0)),
    ]);
    let (rr, wa) = (&results[0], &results[1]);

    let rr_temp = mean(rr.avg_temp.iter().map(|t| t.get()));
    let hot_temp = mean(wa.hot_group_temp.iter().map(|t| t.get()));
    // Cold-group mean backed out of the cluster mean and group sizes.
    let cold_temp = mean(
        wa.avg_temp
            .iter()
            .zip(&wa.hot_group_temp)
            .zip(&wa.hot_group_sizes)
            .filter(|&((_, _), &size)| size < servers)
            .map(|((avg, hot), &size)| {
                let n = servers as f64;
                let h = size as f64;
                (avg.get() * n - hot.get() * h) / (n - h)
            }),
    );

    let model = FailureModel::paper_default();
    let rotation = RotationPolicy::paper_default();
    let rr_temp = Celsius::new(rr_temp);
    let hot_temp = Celsius::new(hot_temp);
    let cold_temp = Celsius::new(cold_temp);
    Fig7 {
        rr_temp,
        hot_temp,
        cold_temp,
        round_robin: cumulative_failure_curve(&model, &rotation, rr_temp, rr_temp, 36),
        vmt: cumulative_failure_curve(&model, &rotation, hot_temp, cold_temp, 36),
    }
}

fn mean(values: impl Iterator<Item = f64>) -> f64 {
    let mut sum = 0.0;
    let mut count = 0usize;
    for v in values {
        sum += v;
        count += 1;
    }
    sum / count.max(1) as f64
}

/// Renders both reliability panels.
pub fn render(servers: usize) -> String {
    let f = fig7(servers);
    let mut out = format!(
        "Measured temps: RR {:.1}, hot group {:.1}, cold group {:.1}\n\
         month  RR cum. failure (%)  VMT cum. failure (%)\n",
        f.rr_temp, f.hot_temp, f.cold_temp
    );
    for m in (0..36).step_by(3) {
        out.push_str(&format!(
            "{:5}  {:19.2}  {:20.2}\n",
            m + 1,
            f.round_robin.at_month(m) * 100.0,
            f.vmt.at_month(m) * 100.0
        ));
    }
    out.push_str(&format!(
        "3-year gap (VMT − RR): {:.2} percentage points\n",
        f.three_year_gap() * 100.0
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gap_is_small_and_positive() {
        let f = fig7(20);
        let gap = f.three_year_gap();
        assert!(gap > 0.0, "VMT should wear slightly faster, gap {gap}");
        // Paper: 0.4–0.6%; allow headroom for the small test cluster.
        assert!(gap < 0.015, "gap {gap} too large");
    }

    #[test]
    fn measured_temps_are_ordered() {
        let f = fig7(20);
        assert!(f.hot_temp > f.rr_temp);
        assert!(f.cold_temp < f.rr_temp);
    }

    #[test]
    fn curves_cover_three_years() {
        let f = fig7(10);
        assert_eq!(f.round_robin.months(), 36);
        assert_eq!(f.vmt.months(), 36);
    }
}
