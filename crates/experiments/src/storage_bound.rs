//! Extension study: how close does VMT get to the optimum of its
//! storage?
//!
//! Related work stores cooling capacity *sensibly* at the plant (chilled
//! water tanks) rather than *latently* in the servers. A plant-level
//! store of energy `E` and unlimited placement freedom gives the
//! information-theoretic best peak shave: remove heat from exactly the
//! highest-load minutes until the budget is spent (the classic
//! water-filling solution). Comparing VMT's measured reduction against
//! that bound — computed for the *same* stored-energy budget the wax
//! actually charged — shows how much of the storage's potential the
//! placement policy extracts, and how much is lost to VMT's constraints
//! (wax melts only where jobs heat it, absorbs at a finite `UA·ΔT`
//! rate, and sits behind per-server airflow).

use crate::runner::Run;
use vmt_core::PolicyKind;
use vmt_units::{Joules, Seconds, Watts};

/// Result of the bound comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct StorageBound {
    /// The energy the wax actually stored at its daily maximum.
    pub budget: Joules,
    /// VMT-TA's measured peak reduction (percent vs round robin).
    pub measured_percent: f64,
    /// The ideal plant-level store's reduction with the same budget.
    pub ideal_percent: f64,
}

impl StorageBound {
    /// Fraction of the ideal shave the placement policy extracted.
    pub fn efficiency(&self) -> f64 {
        if self.ideal_percent == 0.0 {
            return 1.0;
        }
        self.measured_percent / self.ideal_percent
    }
}

/// The lowest shaved peak achievable on one charge of `budget`: the
/// water-filling level `L` such that `∫ max(0, s−L) dt = budget`.
pub fn ideal_shaved_peak(series: &[f64], dt: Seconds, budget: Joules) -> Watts {
    let peak = series.iter().cloned().fold(0.0, f64::max);
    let mut lo = 0.0;
    let mut hi = peak;
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        let required: f64 = series.iter().map(|&s| (s - mid).max(0.0) * dt.get()).sum();
        if required > budget.get() {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Watts::new(hi)
}

/// The shaved peak over a multi-day series when the store recharges
/// overnight: each 24-hour day gets the full budget, and the binding
/// peak is the worst day's water-filling level.
pub fn ideal_shaved_peak_daily(series: &[f64], dt: Seconds, budget: Joules) -> Watts {
    let per_day = (24.0 * 3600.0 / dt.get()).round() as usize;
    series
        .chunks(per_day.max(1))
        .map(|day| ideal_shaved_peak(day, dt, budget))
        .fold(Watts::ZERO, Watts::max)
}

/// Runs the comparison: measure VMT-TA at GV=22, take the energy its wax
/// actually charged on day one, and compute the ideal shave of the
/// round-robin cooling series with that same budget.
pub fn storage_bound(servers: usize) -> StorageBound {
    let results = crate::runner::execute_all(&[
        Run::new(servers, PolicyKind::RoundRobin),
        Run::new(servers, PolicyKind::VmtTa { gv: 22.0 }),
    ]);
    let (rr, ta) = (&results[0], &results[1]);
    let budget = ta.max_stored_energy();
    let rr_series: Vec<f64> = rr.cooling.samples().iter().map(|w| w.get()).collect();
    let ideal_peak = ideal_shaved_peak_daily(&rr_series, rr.tick, budget);
    let rr_peak = rr.peak_cooling();
    StorageBound {
        budget,
        measured_percent: ta.compare_peak(rr).reduction_percent(),
        ideal_percent: (1.0 - ideal_peak / rr_peak) * 100.0,
    }
}

/// Renders the comparison.
pub fn render(servers: usize) -> String {
    let b = storage_bound(servers);
    format!(
        "stored-energy budget (from the VMT run): {:.1} MJ\n\
         ideal plant-level store with that budget: {:.1}% peak reduction\n\
         VMT-TA measured:                          {:.1}% peak reduction\n\
         placement efficiency: {:.0}% of the ideal shave\n",
        b.budget.to_megajoules(),
        b.ideal_percent,
        b.measured_percent,
        b.efficiency() * 100.0
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn water_filling_level_is_exact_on_a_rectangle() {
        // A 1-hour 2 kW spike over a 1 kW floor: a 1.8 MJ budget shaves
        // the spike by 0.5 kW.
        let mut series = vec![1000.0; 180];
        for s in series.iter_mut().take(120).skip(60) {
            *s = 2000.0;
        }
        let level = ideal_shaved_peak(&series, Seconds::new(60.0), Joules::new(1.8e6));
        assert!((level.get() - 1500.0).abs() < 1.0, "level {level}");
    }

    #[test]
    fn zero_budget_shaves_nothing() {
        let series = vec![100.0, 200.0, 150.0];
        let level = ideal_shaved_peak(&series, Seconds::new(60.0), Joules::ZERO);
        assert!((level.get() - 200.0).abs() < 0.01);
    }

    #[test]
    fn measured_is_bounded_by_ideal_and_meaningful() {
        let b = storage_bound(50);
        assert!(b.ideal_percent >= b.measured_percent - 0.3, "{b:?}");
        assert!(
            b.efficiency() > 0.3,
            "placement should extract a meaningful share: {b:?}"
        );
    }
}
