//! Ablation studies for the design choices `DESIGN.md` calls out.
//!
//! The paper fixes several mechanisms without isolating their
//! contributions; these experiments vary one at a time:
//!
//! * [`wa_tuning`] — VMT-WA's saturation-reaction machinery: keep-warm
//!   safety net, saturated-server balancer penalty, count-based growth.
//! * [`oracle_vs_estimator`] — what the on-server wax-state estimator's
//!   quantization error costs versus a physically impossible oracle.
//! * [`taper_sweep`] — sensitivity to the exchanger's phase-interface
//!   taper coefficient.
//! * [`wax_volume_sweep`] — how much of the 4.0 L wax budget the benefit
//!   actually needs.
//! * [`time_constant_sweep`] — sensitivity to the server's thermal lag.
//! * [`duration_model`] — uniform vs exponential job service times.

use crate::runner::reduction_percent;
use vmt_core::{GroupingValue, PolicyKind, VmtConfig, VmtWa, WaTuning};
use vmt_dcsim::{ClusterConfig, Scheduler, Simulation, SimulationResult};
use vmt_units::{Liters, Seconds};
use vmt_workload::{DiurnalTrace, TraceConfig};

/// One ablation row: a labelled peak-cooling reduction.
#[derive(Debug, Clone, PartialEq)]
pub struct AblationPoint {
    /// What was varied.
    pub label: String,
    /// Peak cooling-load reduction vs round robin (percent).
    pub reduction_percent: f64,
}

fn run_with(cluster: ClusterConfig, scheduler: Box<dyn Scheduler>) -> SimulationResult {
    Simulation::new(
        cluster,
        DiurnalTrace::new(TraceConfig::paper_default()),
        scheduler,
    )
    .run()
}

fn baseline(servers: usize) -> SimulationResult {
    let cluster = ClusterConfig::paper_default(servers);
    let sched = PolicyKind::RoundRobin.build(&cluster);
    run_with(cluster, sched)
}

/// VMT-WA reaction-machinery variants at a mis-tuned GV=20, where the
/// saturation reaction matters most.
pub fn wa_tuning(servers: usize) -> Vec<AblationPoint> {
    let base = baseline(servers);
    let variants: [(&str, WaTuning); 4] = [
        ("default (keep-warm only)", WaTuning::default()),
        (
            "no keep-warm",
            WaTuning {
                keep_warm: false,
                ..WaTuning::default()
            },
        ),
        (
            "+ melted penalty 2 K",
            WaTuning {
                melted_penalty_k: 2.0,
                ..WaTuning::default()
            },
        ),
        (
            "+ count growth 2/tick",
            WaTuning {
                count_growth_per_tick: 2,
                ..WaTuning::default()
            },
        ),
    ];
    variants
        .into_iter()
        .map(|(label, tuning)| {
            let cluster = ClusterConfig::paper_default(servers);
            let config = VmtConfig::new(GroupingValue::new(20.0), &cluster);
            let r = run_with(cluster, Box::new(VmtWa::with_tuning(config, tuning)));
            AblationPoint {
                label: label.to_owned(),
                reduction_percent: reduction_percent(&r, &base),
            }
        })
        .collect()
}

/// Estimator-driven VMT-WA versus an oracle that reads the physical wax
/// state, at the optimal GV.
pub fn oracle_vs_estimator(servers: usize) -> Vec<AblationPoint> {
    let base = baseline(servers);
    [
        ("estimator (deployable)", false),
        ("oracle (physical state)", true),
    ]
    .into_iter()
    .map(|(label, oracle)| {
        let mut cluster = ClusterConfig::paper_default(servers);
        cluster.oracle_wax_state = oracle;
        let sched = PolicyKind::vmt_wa(22.0).build(&cluster);
        let r = run_with(cluster, sched);
        AblationPoint {
            label: label.to_owned(),
            reduction_percent: reduction_percent(&r, &base),
        }
    })
    .collect()
}

/// Phase-interface taper coefficient sweep at the optimal GV.
pub fn taper_sweep(servers: usize) -> Vec<AblationPoint> {
    let base = baseline(servers);
    [0.0, 0.5, 1.0, 2.0]
        .into_iter()
        .map(|taper| {
            let mut cluster = ClusterConfig::paper_default(servers);
            cluster
                .wax
                .as_mut()
                .expect("paper cluster has wax")
                .interface_taper = taper;
            let sched = PolicyKind::VmtTa { gv: 22.0 }.build(&cluster);
            let r = run_with(cluster, sched);
            AblationPoint {
                label: format!("taper b={taper}"),
                reduction_percent: reduction_percent(&r, &base),
            }
        })
        .collect()
}

/// Wax volume sweep: is the full 4.0 L budget needed?
pub fn wax_volume_sweep(servers: usize) -> Vec<AblationPoint> {
    let base = baseline(servers);
    [1.0, 2.0, 3.0, 4.0]
        .into_iter()
        .map(|liters| {
            let mut cluster = ClusterConfig::paper_default(servers);
            cluster.wax.as_mut().expect("paper cluster has wax").sizing =
                vmt_pcm::ServerWaxConfig::new(Liters::new(liters), 4)
                    .expect("within chassis limit");
            let sched = PolicyKind::VmtTa { gv: 22.0 }.build(&cluster);
            let r = run_with(cluster, sched);
            AblationPoint {
                label: format!("{liters:.0} L per server"),
                reduction_percent: reduction_percent(&r, &base),
            }
        })
        .collect()
}

/// Job-duration distribution: does the heavier exponential tail change
/// the headline?
pub fn duration_model(servers: usize) -> Vec<AblationPoint> {
    use vmt_workload::DurationModel;
    [
        ("uniform ±25% (default)", DurationModel::default()),
        ("exponential service times", DurationModel::Exponential),
    ]
    .into_iter()
    .map(|(label, model)| {
        let mut base_cluster = ClusterConfig::paper_default(servers);
        base_cluster.duration_model = model;
        let base = run_with(
            base_cluster.clone(),
            PolicyKind::RoundRobin.build(&base_cluster),
        );
        let sched = PolicyKind::VmtTa { gv: 22.0 }.build(&base_cluster);
        let r = run_with(base_cluster, sched);
        AblationPoint {
            label: label.to_owned(),
            reduction_percent: reduction_percent(&r, &base),
        }
    })
    .collect()
}

/// Server thermal-lag sweep at the optimal GV.
pub fn time_constant_sweep(servers: usize) -> Vec<AblationPoint> {
    let base = baseline(servers);
    [60.0, 300.0, 900.0]
        .into_iter()
        .map(|tau| {
            let mut cluster = ClusterConfig::paper_default(servers);
            cluster.thermal_time_constant = Seconds::new(tau);
            let sched = PolicyKind::VmtTa { gv: 22.0 }.build(&cluster);
            let r = run_with(cluster, sched);
            AblationPoint {
                label: format!("τ = {tau:.0} s"),
                reduction_percent: reduction_percent(&r, &base),
            }
        })
        .collect()
}

/// Renders every ablation.
pub fn render(servers: usize) -> String {
    let mut out = String::new();
    let sections: [(&str, Vec<AblationPoint>); 6] = [
        ("VMT-WA saturation reaction (GV=20)", wa_tuning(servers)),
        (
            "wax-state source (VMT-WA, GV=22)",
            oracle_vs_estimator(servers),
        ),
        (
            "exchanger interface taper (VMT-TA, GV=22)",
            taper_sweep(servers),
        ),
        ("wax volume (VMT-TA, GV=22)", wax_volume_sweep(servers)),
        (
            "server thermal lag (VMT-TA, GV=22)",
            time_constant_sweep(servers),
        ),
        (
            "job-duration distribution (VMT-TA, GV=22)",
            duration_model(servers),
        ),
    ];
    for (title, points) in sections {
        out.push_str(&format!("{title}\n"));
        for p in points {
            out.push_str(&format!("  {:28} {:5.1}%\n", p.label, p.reduction_percent));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const TEST_SERVERS: usize = 50;

    #[test]
    fn estimator_is_close_to_oracle() {
        let points = oracle_vs_estimator(TEST_SERVERS);
        let est = points[0].reduction_percent;
        let oracle = points[1].reduction_percent;
        assert!(
            (est - oracle).abs() < 2.0,
            "estimator {est:.1}% vs oracle {oracle:.1}%"
        );
    }

    #[test]
    fn more_wax_does_not_hurt() {
        let points = wax_volume_sweep(TEST_SERVERS);
        let one = points[0].reduction_percent;
        let four = points[3].reduction_percent;
        assert!(four >= one - 0.5, "4 L {four:.1}% vs 1 L {one:.1}%");
    }

    #[test]
    fn headline_survives_exponential_durations() {
        let points = duration_model(TEST_SERVERS);
        let uniform = points[0].reduction_percent;
        let exponential = points[1].reduction_percent;
        assert!(
            (uniform - exponential).abs() < 3.0,
            "uniform {uniform:.1}% vs exponential {exponential:.1}%"
        );
        assert!(exponential > 8.0, "exponential {exponential:.1}%");
    }

    #[test]
    fn tuning_variants_all_run() {
        let points = wa_tuning(TEST_SERVERS);
        assert_eq!(points.len(), 4);
        for p in &points {
            assert!(p.reduction_percent.is_finite());
        }
    }
}
