//! Reproduction harness for every table and figure of the VMT paper
//! (Skach et al., ISCA 2018).
//!
//! Each module reproduces one artifact of the paper's evaluation and
//! returns typed series; the `vmt-experiments` binary prints them in the
//! same rows/series the paper reports. `EXPERIMENTS.md` at the repository
//! root records paper-vs-measured values for each.
//!
//! | module | paper artifact |
//! |---|---|
//! | [`table1`] | Table I — workload power and VMT classes |
//! | [`table2`] | Table II — GV → virtual melting temperature mapping |
//! | [`fig1`] | Figure 1 — workload-mix region maps |
//! | [`fig2`] | Figure 2 — TTS load-flattening concept |
//! | [`fig6`] | Figure 6 — colocation QoS curves |
//! | [`fig7`] | Figure 7 — reliability, round robin vs VMT-WA |
//! | [`fig8`] | Figure 8 — two-day stacked load trace |
//! | [`heatmaps`] | Figures 9, 10, 11, 14 — per-server temperature/melt heatmaps |
//! | [`hot_group`] | Figures 12, 15 — hot-group temperature vs GV |
//! | [`cooling_load`] | Figures 13, 16 — cooling-load series + reduction bars |
//! | [`threshold`] | Figure 17 — wax-threshold sweep |
//! | [`gv_sweep`] | Figure 18 — GV sweep, VMT-TA vs VMT-WA |
//! | [`inlet_variation`] | Figures 19, 20 — inlet-temperature variation |
//! | [`tco_summary`] | §V-E — cost savings and added servers |
//! | [`ablations`] | design-choice ablations (beyond the paper) |
//! | [`emergency`] | PCM as an emergency-cooling buffer (beyond the paper) |
//! | [`storage_bound`] | VMT vs the ideal plant-level store (beyond the paper) |
//! | [`qos_check`] | QoS under VMT's placements (closes §IV-C's loop) |
//! | [`preserve`] | raising the virtual melting temperature (§III remark) |
//! | [`estimator_validation`] | on-server wax-state model vs physical truth |
//!
//! Cluster sizes default to the paper's (1,000 servers for the headline
//! experiments, 100 for parameter sweeps) but every entry point takes a
//! `servers` argument so tests and benches can run scaled-down versions.

pub mod ablations;
pub mod cooling_load;
pub mod emergency;
pub mod estimator_validation;
pub mod fig1;
pub mod fig2;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod gv_sweep;
pub mod heatmaps;
pub mod hot_group;
pub mod inlet_variation;
pub mod preserve;
pub mod qos_check;
pub mod report;
pub mod runner;
pub mod storage_bound;
pub mod table1;
pub mod table2;
pub mod tco_summary;
pub mod threshold;
