//! Extension study: raising the virtual melting temperature.
//!
//! Realizes the paper's §III remark that VMT "can also raise the melting
//! temperature … preserving wax in anticipation of a very hot peak". A
//! hot afternoon shoulder precedes the evening peak; plain VMT-TA melts
//! through the shoulder and exhausts its wax before the evening plateau
//! ends, while [`VmtPreserve`] declines to melt until its engage hour
//! and holds the plateau capped to the last minute.
//!
//! [`VmtPreserve`]: vmt_core::VmtPreserve

use crate::runner::Run;
use vmt_core::PolicyKind;
use vmt_workload::SecondPeak;

/// One policy's outcome on the shoulder-before-peak scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct PreservePoint {
    /// Policy label.
    pub label: String,
    /// Cluster wax melted (fraction) entering the evening (17 h).
    pub melted_at_evening: f64,
    /// Mean cooling load over the plateau's final hour (kW).
    pub late_plateau_kw: f64,
}

/// Runs the scenario for round robin, plain VMT-TA, and VMT-Preserve.
pub fn preserve(servers: usize) -> Vec<PreservePoint> {
    let policies = [
        PolicyKind::RoundRobin,
        PolicyKind::VmtTa { gv: 22.0 },
        PolicyKind::Preserve {
            gv: 22.0,
            engage_hour: 16.0,
        },
    ];
    let runs: Vec<Run> = policies
        .iter()
        .map(|&policy| {
            let mut run = Run::new(servers, policy);
            run.trace.second_peak = Some(SecondPeak {
                hour: 14.5,
                utilization: 0.95,
                width_hours: 3.5,
            });
            run
        })
        .collect();
    let results = crate::runner::execute_all(&runs);
    policies
        .iter()
        .zip(&results)
        .map(|(policy, r)| {
            let evening_row = (17 * 60) / 5;
            let melted = r.melt_heatmap.rows[evening_row].iter().sum::<f64>()
                / r.melt_heatmap.rows[evening_row].len() as f64;
            let from = (20.5 * 60.0) as usize;
            let to = (21.5 * 60.0) as usize;
            let late = r.cooling.samples()[from..to]
                .iter()
                .map(|w| w.get())
                .sum::<f64>()
                / (to - from) as f64;
            PreservePoint {
                label: policy.label(),
                melted_at_evening: melted,
                late_plateau_kw: late / 1e3,
            }
        })
        .collect()
}

/// Renders the scenario.
pub fn render(servers: usize) -> String {
    let mut out = String::from(
        "hot shoulder (0.95 util @ 14.5 h) before the evening peak\n\
         policy                      wax melted @17h   late-plateau cooling\n",
    );
    for p in preserve(servers) {
        out.push_str(&format!(
            "{:27} {:14.1}%   {:10.1} kW\n",
            p.label,
            p.melted_at_evening * 100.0,
            p.late_plateau_kw
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserve_enters_the_evening_with_a_fuller_battery() {
        let points = preserve(40);
        let plain = &points[1];
        let pres = &points[2];
        assert!(pres.melted_at_evening < plain.melted_at_evening * 0.3);
        assert!(pres.late_plateau_kw < plain.late_plateau_kw);
    }
}
