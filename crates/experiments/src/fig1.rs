//! Figure 1 — which workload mixes need VMT.
//!
//! For six pairwise workload mixes the paper sweeps the work ratio and
//! classifies each point into three regions:
//!
//! * **VMT/TTS** — the uniformly mixed exhaust temperature already
//!   exceeds the wax melting point: passive TTS works.
//! * **Needs VMT** — the average is too cool, but concentrating the hot
//!   component on a subset of servers can still melt wax: only VMT
//!   extracts value from the PCM.
//! * **Neither** — even the hot component alone cannot cross the melt
//!   line; no placement policy can melt wax.

use vmt_units::{Celsius, Watts};
use vmt_workload::{WorkloadKind, WorkloadMix};

/// Region classification of one mix point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Region {
    /// Passive TTS already works.
    VmtTts,
    /// Only VMT can melt wax here.
    NeedsVmt,
    /// No placement can melt wax.
    Neither,
}

impl core::fmt::Display for Region {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(match self {
            Region::VmtTts => "VMT/TTS",
            Region::NeedsVmt => "Needs VMT",
            Region::Neither => "Neither",
        })
    }
}

/// One point of a Figure 1 panel.
#[derive(Debug, Clone, PartialEq)]
pub struct MixPoint {
    /// Share of the first-named workload, in percent.
    pub work_ratio_percent: f64,
    /// Exhaust temperature of a uniformly loaded server at peak.
    pub exhaust: Celsius,
    /// Region classification.
    pub region: Region,
}

/// One panel: a workload pair and its swept points.
#[derive(Debug, Clone, PartialEq)]
pub struct MixPanel {
    /// The pair, first-named workload first.
    pub pair: (WorkloadKind, WorkloadKind),
    /// Points for work ratios 0–100%.
    pub points: Vec<MixPoint>,
}

/// The six mixes of Figure 1 (first-named workload is the ratio axis).
pub const PAIRS: [(WorkloadKind, WorkloadKind); 6] = [
    (WorkloadKind::DataCaching, WorkloadKind::WebSearch),
    (WorkloadKind::VirusScan, WorkloadKind::Clustering),
    (WorkloadKind::Clustering, WorkloadKind::VideoEncoding),
    (WorkloadKind::VirusScan, WorkloadKind::VideoEncoding),
    (WorkloadKind::VirusScan, WorkloadKind::WebSearch),
    (WorkloadKind::WebSearch, WorkloadKind::Clustering),
];

/// Peak per-server core occupancy (95% of 32 cores).
const PEAK_OCCUPANCY: f64 = 0.95 * 32.0;
/// Cluster thermal constants (paper defaults).
const INLET_C: f64 = 22.0;
const CAPACITY_W_PER_K: f64 = 17.5;
const IDLE_W: f64 = 100.0;
const MELT_C: f64 = 35.7;

/// Steady exhaust temperature of a server whose occupied cores draw
/// `core_power` each at peak occupancy.
fn exhaust_at_peak(core_power: Watts) -> Celsius {
    Celsius::new(INLET_C + (IDLE_W + PEAK_OCCUPANCY * core_power.get()) / CAPACITY_W_PER_K)
}

/// Classifies one (pair, ratio) point.
fn classify(pair: (WorkloadKind, WorkloadKind), ratio: f64) -> MixPoint {
    let mix = match ratio {
        r if r <= 0.0 => WorkloadMix::pair(pair.0, pair.1, 0.0),
        r if r >= 1.0 => WorkloadMix::pair(pair.0, pair.1, 1.0),
        r => WorkloadMix::pair(pair.0, pair.1, r),
    };
    let exhaust = exhaust_at_peak(mix.mean_core_power());
    let melt = Celsius::new(MELT_C);
    let region = if exhaust >= melt {
        Region::VmtTts
    } else {
        // Can the hotter component, concentrated by VMT, melt wax?
        let (hot_kind, hot_share) = if pair.0.core_power() >= pair.1.core_power() {
            (pair.0, ratio)
        } else {
            (pair.1, 1.0 - ratio)
        };
        let concentrated = exhaust_at_peak(hot_kind.core_power());
        if hot_share > 0.0 && concentrated >= melt {
            Region::NeedsVmt
        } else {
            Region::Neither
        }
    };
    MixPoint {
        work_ratio_percent: ratio * 100.0,
        exhaust,
        region,
    }
}

/// Computes all six panels at 5% ratio steps.
pub fn fig1() -> Vec<MixPanel> {
    PAIRS
        .iter()
        .map(|&pair| MixPanel {
            pair,
            points: (0..=20).map(|i| classify(pair, i as f64 * 0.05)).collect(),
        })
        .collect()
}

/// Renders the six panels.
pub fn render() -> String {
    let mut out = String::new();
    for panel in fig1() {
        out.push_str(&format!(
            "\n{}-{} Mix (ratio = % {})\n ratio%  exhaust  region\n",
            panel.pair.0, panel.pair.1, panel.pair.0
        ));
        for p in panel.points.iter().step_by(2) {
            out.push_str(&format!(
                "{:6.0}  {:6.1}  {}\n",
                p.work_ratio_percent,
                p.exhaust.get(),
                p.region
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn panel(a: WorkloadKind, b: WorkloadKind) -> MixPanel {
        fig1()
            .into_iter()
            .find(|p| p.pair == (a, b))
            .expect("pair exists")
    }

    #[test]
    fn six_panels_of_21_points() {
        let panels = fig1();
        assert_eq!(panels.len(), 6);
        for p in &panels {
            assert_eq!(p.points.len(), 21);
        }
    }

    #[test]
    fn pure_video_is_tts_territory() {
        // 0% VirusScan in the Scanning–Video mix = all video: hot enough
        // for plain TTS.
        let p = panel(WorkloadKind::VirusScan, WorkloadKind::VideoEncoding);
        assert_eq!(p.points[0].region, Region::VmtTts);
        // 100% VirusScan: nothing can melt wax.
        assert_eq!(p.points[20].region, Region::Neither);
        // In between there must be a Needs-VMT band.
        assert!(p.points.iter().any(|q| q.region == Region::NeedsVmt));
    }

    #[test]
    fn caching_search_mix_needs_vmt_in_the_middle() {
        let p = panel(WorkloadKind::DataCaching, WorkloadKind::WebSearch);
        // All search (ratio 0) exceeds the melt line on its own.
        assert_eq!(p.points[0].region, Region::VmtTts);
        // Mid-range mixes are too cool on average but rescued by VMT.
        assert!(p.points.iter().any(|q| q.region == Region::NeedsVmt));
    }

    #[test]
    fn regions_are_ordered_along_the_sweep() {
        // Along each sweep from hot-pure to cold-pure, the region can
        // only go VMT/TTS → Needs VMT → Neither (monotone cooling).
        for panel in fig1() {
            let (first, second) = panel.pair;
            // Orient the sweep from hot end to cold end.
            let points: Vec<&MixPoint> = if first.core_power() > second.core_power() {
                panel.points.iter().rev().collect()
            } else {
                panel.points.iter().collect()
            };
            let mut rank = 0;
            for p in points {
                let r = match p.region {
                    Region::VmtTts => 0,
                    Region::NeedsVmt => 1,
                    Region::Neither => 2,
                };
                assert!(r >= rank, "region regressed in {:?}", panel.pair);
                rank = rank.max(r);
            }
        }
    }

    #[test]
    fn exhaust_range_matches_figure_axis() {
        // Figure 1's y-axis spans 20–50 °C; our curves stay within it.
        for panel in fig1() {
            for p in &panel.points {
                assert!(p.exhaust.get() > 20.0 && p.exhaust.get() < 50.0);
            }
        }
    }
}
