//! Shared simulation plumbing for the experiment modules.

use vmt_core::PolicyKind;
use vmt_dcsim::{ClusterConfig, Simulation, SimulationResult};
use vmt_workload::{DiurnalTrace, TraceConfig};

/// A fully specified experiment run: cluster + trace + policy.
///
/// # Examples
///
/// ```
/// use vmt_core::PolicyKind;
/// use vmt_experiments::runner::Run;
///
/// let result = Run::new(20, PolicyKind::RoundRobin).execute();
/// assert_eq!(result.scheduler_name, "round-robin");
/// ```
#[derive(Debug, Clone)]
pub struct Run {
    /// Cluster configuration.
    pub cluster: ClusterConfig,
    /// Trace configuration.
    pub trace: TraceConfig,
    /// Placement policy.
    pub policy: PolicyKind,
}

impl Run {
    /// A paper-default run of `servers` servers under `policy`.
    pub fn new(servers: usize, policy: PolicyKind) -> Self {
        Self {
            cluster: ClusterConfig::paper_default(servers),
            trace: TraceConfig::paper_default(),
            policy,
        }
    }

    /// Executes the run.
    pub fn execute(&self) -> SimulationResult {
        let scheduler = self.policy.build(&self.cluster);
        Simulation::new(
            self.cluster.clone(),
            DiurnalTrace::new(self.trace.clone()),
            scheduler,
        )
        .run()
    }
}

/// Executes several runs concurrently (one OS thread each) and returns
/// the results in input order.
///
/// Parameter sweeps dominate the harness's wall-clock; the runs are
/// independent and deterministic, so scoped threads give a linear
/// speedup without any change in output.
pub fn execute_all(runs: &[Run]) -> Vec<SimulationResult> {
    let mut results: Vec<Option<SimulationResult>> = (0..runs.len()).map(|_| None).collect();
    crossbeam::thread::scope(|scope| {
        for (run, out) in runs.iter().zip(results.iter_mut()) {
            scope.spawn(move |_| {
                *out = Some(run.execute());
            });
        }
    })
    .expect("simulation worker panicked");
    results
        .into_iter()
        .map(|r| r.expect("all runs executed"))
        .collect()
}

/// Peak cooling-load reduction of `subject` relative to `baseline`, in
/// percent (the paper's headline metric).
pub fn reduction_percent(subject: &SimulationResult, baseline: &SimulationResult) -> f64 {
    subject.compare_peak(baseline).reduction_percent()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_matches_serial() {
        let runs = vec![
            Run::new(4, PolicyKind::RoundRobin),
            Run::new(4, PolicyKind::CoolestFirst),
        ];
        let parallel = execute_all(&runs);
        let serial: Vec<_> = runs.iter().map(Run::execute).collect();
        assert_eq!(parallel[0].cooling, serial[0].cooling);
        assert_eq!(parallel[1].cooling, serial[1].cooling);
    }

    #[test]
    fn reduction_vs_self_is_zero() {
        let r = Run::new(4, PolicyKind::RoundRobin).execute();
        assert_eq!(reduction_percent(&r, &r), 0.0);
    }
}
