//! Shared simulation plumbing for the experiment modules.

use vmt_core::PolicyKind;
use vmt_dcsim::{ClusterConfig, Simulation, SimulationResult, TelemetryConfig};
use vmt_workload::{DiurnalTrace, TraceConfig};

/// A fully specified experiment run: cluster + trace + policy.
///
/// # Examples
///
/// ```
/// use vmt_core::PolicyKind;
/// use vmt_experiments::runner::Run;
///
/// let result = Run::new(20, PolicyKind::RoundRobin).execute();
/// assert_eq!(result.scheduler_name, "round-robin");
/// ```
#[derive(Debug, Clone)]
pub struct Run {
    /// Cluster configuration.
    pub cluster: ClusterConfig,
    /// Trace configuration.
    pub trace: TraceConfig,
    /// Placement policy.
    pub policy: PolicyKind,
    /// Worker threads for the sharded physics tick (results are
    /// bit-identical at any value; see `ServerFarm::set_threads`).
    /// Defaults to [`vmt_dcsim::default_tick_threads`], which honours
    /// the `VMT_THREADS` environment variable.
    pub tick_threads: usize,
}

impl Run {
    /// A paper-default run of `servers` servers under `policy`.
    pub fn new(servers: usize, policy: PolicyKind) -> Self {
        Self {
            cluster: ClusterConfig::paper_default(servers),
            trace: TraceConfig::paper_default(),
            policy,
            tick_threads: vmt_dcsim::default_tick_threads(),
        }
    }

    /// Sets the physics-tick thread count for this run.
    pub fn with_tick_threads(mut self, threads: usize) -> Self {
        self.tick_threads = threads.max(1);
        self
    }

    /// Executes the run.
    pub fn execute(&self) -> SimulationResult {
        let scheduler = self.policy.build(&self.cluster);
        Simulation::new(
            self.cluster.clone(),
            DiurnalTrace::new(self.trace.clone()),
            scheduler,
        )
        .with_threads(self.tick_threads)
        .run()
    }

    /// Executes the run with telemetry attached.
    ///
    /// `TelemetryConfig` is not `Clone` (it owns the event sink), so it
    /// is a per-call argument rather than a field of the reusable `Run`.
    /// Keep clones of the config's `summary` handle and registry before
    /// calling to read the results; telemetry is observational only, so
    /// the returned `SimulationResult` is identical to `execute()`'s.
    pub fn execute_with_telemetry(&self, telemetry: TelemetryConfig) -> SimulationResult {
        let scheduler = self.policy.build(&self.cluster);
        Simulation::new(
            self.cluster.clone(),
            DiurnalTrace::new(self.trace.clone()),
            scheduler,
        )
        .with_threads(self.tick_threads)
        .with_telemetry(telemetry)
        .run()
    }
}

/// Executes several runs on a bounded worker pool and returns the
/// results in input order.
///
/// Parameter sweeps dominate the harness's wall-clock; the runs are
/// independent and deterministic, so parallel execution changes nothing
/// in the output. Unlike a thread-per-run scheme, the pool is bounded
/// by the machine's core count: a 50-run sweep on an 8-core box starts
/// 8 OS threads, not 50, so memory stays proportional to parallelism
/// and the threads never oversubscribe the CPU.
pub fn execute_all(runs: &[Run]) -> Vec<SimulationResult> {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    if runs.is_empty() {
        return Vec::new();
    }
    // Each run may itself spawn tick_threads workers for the sharded
    // physics sweep; budget sweep workers so that
    // sweep workers x tick threads <= available parallelism, keeping the
    // machine from oversubscribing when both levels are parallel.
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let tick_threads = runs
        .iter()
        .map(|r| r.tick_threads.max(1))
        .max()
        .unwrap_or(1);
    let workers = (cores / tick_threads).max(1).min(runs.len());
    if workers <= 1 {
        return runs.iter().map(Run::execute).collect();
    }

    // Work-stealing by index claim: each worker grabs the next
    // unclaimed run and writes its result into that run's slot, so the
    // output order is the input order regardless of completion order.
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<SimulationResult>>> =
        (0..runs.len()).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(run) = runs.get(i) else { break };
                *slots[i].lock().expect("result slot poisoned") = Some(run.execute());
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("all runs executed")
        })
        .collect()
}

/// Peak cooling-load reduction of `subject` relative to `baseline`, in
/// percent (the paper's headline metric).
pub fn reduction_percent(subject: &SimulationResult, baseline: &SimulationResult) -> f64 {
    subject.compare_peak(baseline).reduction_percent()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_matches_serial() {
        let runs = vec![
            Run::new(4, PolicyKind::RoundRobin),
            Run::new(4, PolicyKind::CoolestFirst),
        ];
        let parallel = execute_all(&runs);
        let serial: Vec<_> = runs.iter().map(Run::execute).collect();
        assert_eq!(parallel[0].cooling, serial[0].cooling);
        assert_eq!(parallel[1].cooling, serial[1].cooling);
    }

    #[test]
    fn reduction_vs_self_is_zero() {
        let r = Run::new(4, PolicyKind::RoundRobin).execute();
        assert_eq!(reduction_percent(&r, &r), 0.0);
    }
}
