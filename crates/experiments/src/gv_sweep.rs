//! Figure 18 — peak cooling-load reduction as the GV sweeps 10–30,
//! VMT-TA vs VMT-WA.
//!
//! The figure behind the paper's robustness argument: both algorithms
//! peak at GV=22 and decline together above it, but *below* the optimum
//! VMT-TA collapses (wax melts out before the peak) while VMT-WA
//! degrades gracefully by extending the hot group.

use crate::runner::{execute_all, reduction_percent, Run};
use vmt_core::PolicyKind;

/// One GV's outcome for both algorithms.
#[derive(Debug, Clone, PartialEq)]
pub struct GvPoint {
    /// The grouping value.
    pub gv: f64,
    /// VMT-TA peak reduction (percent).
    pub ta_percent: f64,
    /// VMT-WA peak reduction (percent).
    pub wa_percent: f64,
}

/// Runs the sweep over `gvs` on `servers` servers.
pub fn gv_sweep(gvs: &[f64], servers: usize) -> Vec<GvPoint> {
    let mut runs = vec![Run::new(servers, PolicyKind::RoundRobin)];
    for &gv in gvs {
        runs.push(Run::new(servers, PolicyKind::VmtTa { gv }));
        runs.push(Run::new(servers, PolicyKind::vmt_wa(gv)));
    }
    let results = execute_all(&runs);
    let baseline = &results[0];
    gvs.iter()
        .enumerate()
        .map(|(i, &gv)| GvPoint {
            gv,
            ta_percent: reduction_percent(&results[1 + 2 * i], baseline),
            wa_percent: reduction_percent(&results[2 + 2 * i], baseline),
        })
        .collect()
}

/// Figure 18's sweep: GV 10–30 in steps of 2.
pub fn fig18(servers: usize) -> Vec<GvPoint> {
    let gvs: Vec<f64> = (5..=15).map(|i| i as f64 * 2.0).collect();
    gv_sweep(&gvs, servers)
}

/// The GV at which an algorithm peaks.
pub fn best_gv(points: &[GvPoint], wax_aware: bool) -> f64 {
    points
        .iter()
        .max_by(|a, b| {
            let (x, y) = if wax_aware {
                (a.wa_percent, b.wa_percent)
            } else {
                (a.ta_percent, b.ta_percent)
            };
            x.partial_cmp(&y).expect("reductions are finite")
        })
        .expect("non-empty sweep")
        .gv
}

/// Renders the sweep.
pub fn render(servers: usize) -> String {
    let points = fig18(servers);
    let mut out = String::from("GV    VMT-TA (%)  VMT-WA (%)\n");
    for p in &points {
        out.push_str(&format!(
            "{:4.0}  {:10.1}  {:10.1}\n",
            p.gv, p.ta_percent, p.wa_percent
        ));
    }
    out.push_str(&format!(
        "best GV: TA={} WA={}\n",
        best_gv(&points, false),
        best_gv(&points, true)
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_peak_at_gv22() {
        let points = gv_sweep(&[18.0, 20.0, 22.0, 24.0, 26.0], 100);
        assert_eq!(best_gv(&points, false), 22.0);
        assert_eq!(best_gv(&points, true), 22.0);
    }

    #[test]
    fn wa_is_more_robust_below_the_optimum() {
        let points = gv_sweep(&[18.0, 20.0, 22.0], 100);
        let at = |gv: f64| points.iter().find(|p| p.gv == gv).unwrap();
        // TA collapses hard below the optimum; WA holds on to a
        // meaningful fraction.
        assert!(at(20.0).wa_percent > at(20.0).ta_percent);
        assert!(at(18.0).wa_percent >= at(18.0).ta_percent - 0.5);
        assert!(at(20.0).ta_percent < at(22.0).ta_percent * 0.5);
    }

    #[test]
    fn both_decline_together_above_the_optimum() {
        let points = gv_sweep(&[22.0, 26.0, 30.0], 100);
        let at = |gv: f64| points.iter().find(|p| p.gv == gv).unwrap();
        assert!(at(26.0).ta_percent < at(22.0).ta_percent);
        assert!(at(30.0).ta_percent < at(26.0).ta_percent);
        // TA and WA track each other above the optimum.
        assert!((at(26.0).ta_percent - at(26.0).wa_percent).abs() < 3.0);
    }
}
