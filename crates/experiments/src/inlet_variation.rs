//! Figures 19 and 20 — peak reduction under inlet-temperature variation.
//!
//! Real datacenters have uneven inlet temperatures across servers. The
//! paper draws per-server inlets from a normal distribution with σ of 0,
//! 1, and 2 °C, sweeps the GV from 16 to 28, and averages five runs of
//! 100 servers each. Findings it reports: the optimum GV shifts slightly
//! upward under variation ("better to miss high than miss low"), and
//! even σ=2 still reaches ≈10.9% peak reduction with VMT-WA.

use crate::runner::{execute_all, reduction_percent, Run};
use vmt_core::PolicyKind;
use vmt_thermal::InletModel;
use vmt_units::{Celsius, DegC};

/// One (σ, GV) cell of the sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct VariationPoint {
    /// Inlet standard deviation (°C).
    pub stdev: f64,
    /// The grouping value.
    pub gv: f64,
    /// Mean peak reduction across the seeds (percent).
    pub reduction_percent: f64,
}

/// The sweep for one algorithm.
#[derive(Debug, Clone, PartialEq)]
pub struct VariationFigure {
    /// Whether this is Figure 20 (VMT-WA) rather than Figure 19 (VMT-TA).
    pub wax_aware: bool,
    /// All (σ, GV) cells.
    pub points: Vec<VariationPoint>,
}

impl VariationFigure {
    /// The reduction at a (σ, GV) cell.
    pub fn at(&self, stdev: f64, gv: f64) -> f64 {
        self.points
            .iter()
            .find(|p| p.stdev == stdev && p.gv == gv)
            .expect("cell exists")
            .reduction_percent
    }

    /// The best (GV, reduction) for a σ.
    pub fn best_for(&self, stdev: f64) -> (f64, f64) {
        self.points
            .iter()
            .filter(|p| p.stdev == stdev)
            .map(|p| (p.gv, p.reduction_percent))
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
            .expect("non-empty")
    }
}

/// Runs the sweep: σ ∈ {0, 1, 2}, the given GVs, `seeds` runs per cell
/// of `servers` servers each.
pub fn inlet_variation(
    wax_aware: bool,
    gvs: &[f64],
    servers: usize,
    seeds: usize,
) -> VariationFigure {
    let stdevs = [0.0, 1.0, 2.0];
    // Build all runs: baselines (one RR per σ per seed) and subjects.
    let mut runs = Vec::new();
    for &stdev in &stdevs {
        for seed in 0..seeds {
            let mut base = Run::new(servers, PolicyKind::RoundRobin);
            base.cluster.inlet = inlet_model(stdev, seed as u64);
            runs.push(base);
            for &gv in gvs {
                let policy = if wax_aware {
                    PolicyKind::vmt_wa(gv)
                } else {
                    PolicyKind::VmtTa { gv }
                };
                let mut run = Run::new(servers, policy);
                run.cluster.inlet = inlet_model(stdev, seed as u64);
                runs.push(run);
            }
        }
    }
    let results = execute_all(&runs);

    // Stride through the results mirroring the construction order.
    let per_seed = 1 + gvs.len();
    let mut points = Vec::new();
    for (si, &stdev) in stdevs.iter().enumerate() {
        for (gi, &gv) in gvs.iter().enumerate() {
            let mut total = 0.0;
            for seed in 0..seeds {
                let base = &results[(si * seeds + seed) * per_seed];
                let subject = &results[(si * seeds + seed) * per_seed + 1 + gi];
                total += reduction_percent(subject, base);
            }
            points.push(VariationPoint {
                stdev,
                gv,
                reduction_percent: total / seeds as f64,
            });
        }
    }
    VariationFigure { wax_aware, points }
}

fn inlet_model(stdev: f64, seed: u64) -> InletModel {
    if stdev == 0.0 {
        InletModel::uniform(Celsius::new(22.0))
    } else {
        InletModel::normal(Celsius::new(22.0), DegC::new(stdev), 0xF1A7 + seed)
    }
}

/// Figure 19: VMT-TA, GV 16–28, five seeds of 100 servers.
pub fn fig19(servers: usize, seeds: usize) -> VariationFigure {
    let gvs: Vec<f64> = (8..=14).map(|i| i as f64 * 2.0).collect();
    inlet_variation(false, &gvs, servers, seeds)
}

/// Figure 20: VMT-WA, GV 16–28, five seeds of 100 servers.
pub fn fig20(servers: usize, seeds: usize) -> VariationFigure {
    let gvs: Vec<f64> = (8..=14).map(|i| i as f64 * 2.0).collect();
    inlet_variation(true, &gvs, servers, seeds)
}

/// Renders the sweep.
pub fn render(figure: &VariationFigure) -> String {
    let mut out = format!(
        "{}: peak cooling load reduction (%) with inlet temperature variation\n\
         GV     σ=0     σ=1     σ=2\n",
        if figure.wax_aware {
            "VMT-WA (Fig 20)"
        } else {
            "VMT-TA (Fig 19)"
        }
    );
    let first_stdev = figure.points.first().map(|p| p.stdev).unwrap_or(0.0);
    let gvs: Vec<f64> = figure
        .points
        .iter()
        .filter(|p| p.stdev == first_stdev)
        .map(|p| p.gv)
        .collect();
    for gv in gvs {
        out.push_str(&format!(
            "{:4.0}  {:6.1}  {:6.1}  {:6.1}\n",
            gv,
            figure.at(0.0, gv),
            figure.at(1.0, gv),
            figure.at(2.0, gv)
        ));
    }
    for stdev in [0.0, 1.0, 2.0] {
        let (gv, r) = figure.best_for(stdev);
        out.push_str(&format!("σ={stdev}: best {r:.1}% at GV={gv}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variation_softens_but_does_not_kill_the_benefit() {
        let f = inlet_variation(true, &[20.0, 22.0, 24.0], 100, 2);
        let (_, best0) = f.best_for(0.0);
        let (_, best2) = f.best_for(2.0);
        assert!(best0 > 8.0, "σ=0 best {best0}");
        // σ=2 still delivers a large share of the benefit (the paper
        // keeps 10.9% of 12.8%; our balancer compensates less of the
        // spread, keeping ≈45%).
        assert!(best2 > best0 * 0.4, "σ=2 best {best2} vs σ=0 {best0}");
    }

    #[test]
    fn optimum_does_not_move_down_under_variation() {
        // "The optimal choice of GV increases slightly … better to miss
        // high than miss low."
        let f = inlet_variation(false, &[20.0, 22.0, 24.0], 100, 2);
        let (gv0, _) = f.best_for(0.0);
        let (gv2, _) = f.best_for(2.0);
        assert!(gv2 >= gv0, "optimum moved down: {gv0} → {gv2}");
    }

    #[test]
    fn cell_lookup() {
        let f = inlet_variation(false, &[22.0], 10, 1);
        assert_eq!(f.points.len(), 3);
        let _ = f.at(1.0, 22.0);
    }
}
