//! Table I — workloads considered for the scale-out study.
//!
//! Reproduces the paper's Table I and cross-checks the published hot/cold
//! classes against the [`ThermalClassifier`]'s derivation from the
//! cluster's thermal constants.
//!
//! [`ThermalClassifier`]: vmt_workload::ThermalClassifier

use crate::report::TextTable;
use vmt_units::Watts;
use vmt_workload::{ThermalClassifier, VmtClass, WorkloadKind};

/// One row of Table I.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    /// The workload.
    pub workload: WorkloadKind,
    /// CPU power (per 8-core package).
    pub cpu_power: Watts,
    /// The class printed in the paper's table.
    pub published_class: VmtClass,
    /// The class our thermal classifier derives.
    pub derived_class: VmtClass,
}

/// Computes Table I.
pub fn table1() -> Vec<Table1Row> {
    let classifier = ThermalClassifier::paper_default();
    WorkloadKind::ALL
        .iter()
        .map(|&workload| Table1Row {
            workload,
            cpu_power: workload.cpu_power(),
            published_class: workload.vmt_class(),
            derived_class: classifier.classify(workload),
        })
        .collect()
}

/// Renders Table I in the paper's layout.
pub fn render() -> String {
    let mut table = TextTable::new(vec!["Workload", "CPU Power", "VMT Class", "Derived"]);
    for row in table1() {
        table.row(vec![
            row.workload.to_string(),
            format!("{:.1}", row.cpu_power),
            row.published_class.to_string(),
            row.derived_class.to_string(),
        ]);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_classes_match_published() {
        for row in table1() {
            assert_eq!(row.derived_class, row.published_class, "{}", row.workload);
        }
    }

    #[test]
    fn render_contains_all_rows() {
        let s = render();
        for kind in WorkloadKind::ALL {
            assert!(s.contains(kind.name()), "{kind} missing");
        }
        assert!(s.contains("37.2 W"));
    }
}
