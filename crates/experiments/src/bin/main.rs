//! `vmt-experiments` — regenerate any table or figure of the VMT paper,
//! or drive a single instrumented run.
//!
//! ```text
//! vmt-experiments <id> [--servers N] [--seeds K] [--threads T]
//! vmt-experiments all [--servers N]
//! vmt-experiments run [--policy NAME] [--gv F] [--servers N] [--hours H]
//!                     [--seed S] [--threads T] [--telemetry FILE]
//!                     [--snapshot-every N] [--progress [N]]
//! vmt-experiments check-telemetry FILE
//! ```
//!
//! IDs: `table1 table2 fig1 fig2 fig6 fig7 fig8 fig9 fig10 fig11 fig12
//! fig13 fig14 fig15 fig16 fig17 fig18 fig19 fig20 tco ablations
//! emergency bound qos preserve estimator`.
//!
//! `--servers` overrides the cluster size (paper defaults: 1,000 for
//! fig12/13/15/16 and tco, 100 for everything simulation-backed).
//!
//! `--threads` sets the worker count of the sharded physics tick
//! (equivalent to exporting `VMT_THREADS`). Results are bit-identical
//! at any value; only wall-clock time changes. The sweep runner keeps
//! sweep-workers x tick-threads within the machine's parallelism.
//!
//! Unrecognized flags are errors, not silently ignored — a typo like
//! `--sevrers` must not quietly run the default cluster size.

use std::collections::HashMap;
use vmt_experiments::heatmaps::HeatmapFigure;
use vmt_experiments::runner::Run;
use vmt_experiments::*;

const EXPERIMENT_IDS: [&str; 26] = [
    "table1",
    "table2",
    "fig1",
    "fig2",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "fig16",
    "fig17",
    "fig18",
    "fig19",
    "fig20",
    "tco",
    "ablations",
    "emergency",
    "bound",
    "qos",
    "preserve",
    "estimator",
];

fn print_help() {
    println!("vmt-experiments — VMT paper reproduction harness");
    println!();
    println!("usage:");
    println!("  vmt-experiments <id|all> [--servers N] [--seeds K] [--threads T]");
    println!("  vmt-experiments run [options]");
    println!("  vmt-experiments check-telemetry FILE");
    println!("  vmt-experiments --help");
    println!();
    println!("experiment ids:");
    println!("  {}", EXPERIMENT_IDS.join(" "));
    println!();
    println!("run options (single instrumented simulation):");
    println!("  --policy NAME        round-robin | coolest-first | vmt-ta | vmt-wa |");
    println!("                       adaptive-gv | vmt-preserve   (default vmt-wa)");
    println!("  --gv F               grouping value (default 22)");
    println!("  --servers N          cluster size (default 1000)");
    println!("  --hours H            trace horizon in simulated hours (default 48)");
    println!("  --seed S             workload seed (default: paper default)");
    println!("  --threads T          physics worker threads (results bit-identical)");
    println!("  --telemetry FILE     write a JSONL event stream to FILE");
    println!("  --snapshot-every N   snapshot cadence in ticks (default 60 = hourly)");
    println!("  --progress [N]       live progress line every N ticks (default 60)");
    println!();
    println!("check-telemetry validates a JSONL stream written by `run --telemetry`:");
    println!("  RunConfig first, Summary last, schema versions consistent.");
}

/// Exits with a usage error (status 2).
fn die(message: &str) -> ! {
    eprintln!("error: {message}");
    eprintln!("run `vmt-experiments --help` for usage");
    std::process::exit(2);
}

/// Strict `--flag value` parser: every argument must be a known flag,
/// and every flag except `--progress` requires a value. Returns the
/// flag→value map; exits with a usage error otherwise.
fn parse_flags(args: &[String], known: &[&str]) -> HashMap<String, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        if !known.contains(&arg.as_str()) {
            die(&format!("unrecognized argument `{arg}`"));
        }
        let value = args.get(i + 1).filter(|v| !v.starts_with("--"));
        match value {
            Some(v) => {
                flags.insert(arg.clone(), v.clone());
                i += 2;
            }
            // `--progress` alone means "default cadence".
            None if arg == "--progress" => {
                flags.insert(arg.clone(), "60".to_owned());
                i += 1;
            }
            None => die(&format!("flag `{arg}` requires a value")),
        }
    }
    flags
}

/// Fetches and parses a numeric flag, exiting on malformed input.
fn numeric<T: std::str::FromStr>(flags: &HashMap<String, String>, name: &str) -> Option<T> {
    flags.get(name).map(|v| {
        v.parse()
            .unwrap_or_else(|_| die(&format!("flag `{name}` got unparseable value `{v}`")))
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        print_help();
        std::process::exit(2);
    };
    match command.as_str() {
        "--help" | "-h" | "help" => print_help(),
        "run" => cmd_run(&args[1..]),
        "check-telemetry" => cmd_check_telemetry(&args[1..]),
        id => cmd_experiment(id, &args[1..]),
    }
}

/// The figure/table regeneration path (`vmt-experiments <id|all>`).
fn cmd_experiment(id: &str, rest: &[String]) {
    if id.starts_with("--") {
        die(&format!("unrecognized argument `{id}`"));
    }
    if id != "all" && !EXPERIMENT_IDS.contains(&id) {
        die(&format!("unknown experiment id `{id}`"));
    }
    let flags = parse_flags(rest, &["--servers", "--seeds", "--threads"]);
    let servers: Option<usize> = numeric(&flags, "--servers");
    let seeds: usize = numeric(&flags, "--seeds").unwrap_or(5);
    if let Some(threads) = numeric::<usize>(&flags, "--threads") {
        // The experiment modules build their own `Run`s, whose default
        // tick-thread count reads VMT_THREADS — so one env write plumbs
        // the flag through every figure and sweep.
        std::env::set_var("VMT_THREADS", threads.max(1).to_string());
    }

    if id == "all" {
        for id in EXPERIMENT_IDS {
            println!("==================== {id} ====================");
            run_one(id, servers, seeds);
        }
        return;
    }
    run_one(id, servers, seeds);
}

/// A single instrumented simulation (`vmt-experiments run`).
fn cmd_run(rest: &[String]) {
    let flags = parse_flags(
        rest,
        &[
            "--policy",
            "--gv",
            "--servers",
            "--hours",
            "--seed",
            "--threads",
            "--telemetry",
            "--snapshot-every",
            "--progress",
        ],
    );
    let gv: f64 = numeric(&flags, "--gv").unwrap_or(22.0);
    let policy_name = flags.get("--policy").map_or("vmt-wa", String::as_str);
    let Some(policy) = vmt_core::PolicyKind::parse(policy_name, gv) else {
        die(&format!("unknown policy `{policy_name}`"));
    };
    let servers: usize = numeric(&flags, "--servers").unwrap_or(1000);
    let hours: f64 = numeric(&flags, "--hours").unwrap_or(48.0);
    if !hours.is_finite() || hours <= 0.0 {
        die("`--hours` must be positive");
    }

    let mut run = Run::new(servers, policy);
    run.trace.horizon = vmt_units::Hours::new(hours);
    if let Some(seed) = numeric::<u64>(&flags, "--seed") {
        run.cluster.seed = seed;
        run.trace.seed = seed;
    }
    if let Some(threads) = numeric::<usize>(&flags, "--threads") {
        run = run.with_tick_threads(threads);
    }

    let mut telemetry = vmt_dcsim::TelemetryConfig::new();
    if let Some(path) = flags.get("--telemetry") {
        match vmt_telemetry::EventSink::to_file(std::path::Path::new(path)) {
            Ok(sink) => telemetry = telemetry.with_sink(sink),
            Err(err) => die(&format!("cannot open `{path}` for telemetry: {err}")),
        }
    }
    if let Some(every) = numeric::<u64>(&flags, "--snapshot-every") {
        telemetry = telemetry.with_snapshot_every(every);
    }
    if let Some(every) = numeric::<u64>(&flags, "--progress") {
        telemetry = telemetry.with_progress_every(every);
    }
    let summary = telemetry.summary.clone();

    let result = run.execute_with_telemetry(telemetry);

    match summary.get() {
        Some(summary) => print!("{}", vmt_telemetry::render_report(&summary)),
        None => {
            // Telemetry always deposits a summary; this is a belt for a
            // future code path that drops it.
            println!(
                "{}: {} placements, {} dropped, peak cooling {:.1} kW",
                result.scheduler_name,
                result.placements,
                result.dropped_jobs,
                result.peak_cooling().get() / 1e3
            );
        }
    }
    if let Some(path) = flags.get("--telemetry") {
        println!("telemetry stream: {path}");
    }
}

/// Validates a JSONL stream (`vmt-experiments check-telemetry FILE`).
fn cmd_check_telemetry(rest: &[String]) {
    let [path] = rest else {
        die("usage: vmt-experiments check-telemetry FILE");
    };
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(err) => die(&format!("cannot read `{path}`: {err}")),
    };
    match vmt_telemetry::validate_stream(&text) {
        Ok(stream) => {
            println!(
                "ok: {} events ({} snapshots, {} melt, {} hot-group)",
                stream.events, stream.snapshots, stream.melts, stream.hot_group_events
            );
            println!(
                "run: {} on {} servers, {} ticks planned, {} run at {:.0} ticks/s",
                stream.run_config.policy,
                stream.run_config.servers,
                stream.run_config.ticks,
                stream.summary.ticks_run,
                stream.summary.ticks_per_s,
            );
        }
        Err(err) => {
            eprintln!("invalid telemetry stream: {err}");
            std::process::exit(1);
        }
    }
}

/// When `VMT_CSV_DIR` is set, drops each run's time series there as
/// `<figure>_<policy>.csv` for external plotting.
fn write_series_csv(figure: &vmt_experiments::cooling_load::CoolingLoadFigure, name: &str) {
    let Ok(dir) = std::env::var("VMT_CSV_DIR") else {
        return;
    };
    for result in &figure.results {
        let path = std::path::Path::new(&dir).join(format!(
            "{name}_{}.csv",
            result.scheduler_name.replace(' ', "_")
        ));
        if let Err(err) = std::fs::write(&path, result.series_csv()) {
            eprintln!("warning: could not write {}: {err}", path.display());
        }
    }
}

fn run_one(id: &str, servers: Option<usize>, seeds: usize) {
    // Paper sizes: 1,000 servers for the headline cluster experiments,
    // 100 for the parameter sweeps.
    let large = servers.unwrap_or(1000);
    let sweep = servers.unwrap_or(100);
    match id {
        "table1" => print!("{}", table1::render()),
        "table2" => print!("{}", table2::render(sweep)),
        "fig1" => print!("{}", fig1::render()),
        "fig2" => print!("{}", fig2::render()),
        "fig6" => print!("{}", fig6::render()),
        "fig7" => print!("{}", fig7::render(sweep)),
        "fig8" => print!("{}", fig8::render()),
        "fig9" => print!("{}", heatmaps::render(HeatmapFigure::Fig9RoundRobin, sweep)),
        "fig10" => print!(
            "{}",
            heatmaps::render(HeatmapFigure::Fig10CoolestFirst, sweep)
        ),
        "fig11" => print!("{}", heatmaps::render(HeatmapFigure::Fig11VmtTa, sweep)),
        "fig12" => print!("{}", hot_group::render(&hot_group::fig12(large))),
        "fig13" => {
            let figure = cooling_load::fig13(large);
            write_series_csv(&figure, "fig13");
            print!("{}", cooling_load::render(&figure));
        }
        "fig14" => print!("{}", heatmaps::render(HeatmapFigure::Fig14VmtWa, sweep)),
        "fig15" => print!("{}", hot_group::render(&hot_group::fig15(large))),
        "fig16" => {
            let figure = cooling_load::fig16(large);
            write_series_csv(&figure, "fig16");
            print!("{}", cooling_load::render(&figure));
        }
        "fig17" => print!("{}", threshold::render(sweep)),
        "fig18" => print!("{}", gv_sweep::render(sweep)),
        "fig19" => print!(
            "{}",
            inlet_variation::render(&inlet_variation::fig19(sweep, seeds))
        ),
        "fig20" => print!(
            "{}",
            inlet_variation::render(&inlet_variation::fig20(sweep, seeds))
        ),
        "ablations" => print!("{}", ablations::render(sweep)),
        "emergency" => print!("{}", emergency::render(sweep)),
        "bound" => print!("{}", storage_bound::render(sweep)),
        "qos" => print!("{}", qos_check::render(sweep)),
        "preserve" => print!("{}", preserve::render(sweep)),
        "estimator" => print!("{}", estimator_validation::render()),
        "tco" => {
            let (reduction, summary) = tco_summary::measured(large);
            println!("measured best peak reduction: {:.1}%", reduction * 100.0);
            print!("{}", tco_summary::render(&summary));
        }
        other => die(&format!("unknown experiment id `{other}`")),
    }
}
